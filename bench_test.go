// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per table/figure, reduced scale per iteration — the same
// code paths cmd/experiments runs at full scale), plus micro-benchmarks of
// the core components and ablation benches for the design choices DESIGN.md
// calls out.
//
//	go test -bench=. -benchmem
package cvcp_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	root "cvcp"
	"cvcp/internal/cluster/copkmeans"
	"cvcp/internal/cluster/fosc"
	"cvcp/internal/cluster/hierarchy"
	"cvcp/internal/cluster/mpckmeans"
	"cvcp/internal/cluster/optics"
	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/datagen"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/experiments"
	"cvcp/internal/stats"
)

// benchConfig is the reduced-scale experiment configuration used by the
// per-table/figure benchmarks: identical code paths, fewer repetitions.
func benchConfig() experiments.Config {
	return experiments.Config{
		Trials:     1,
		ALOISets:   2,
		ALOITrials: 1,
		NFolds:     3,
		Seed:       20140324,
		Out:        io.Discard,
	}
}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	r, err := experiments.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per figure of the paper.
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// One benchmark per table of the paper.
func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13") }
func BenchmarkTable14(b *testing.B) { benchExperiment(b, "table14") }
func BenchmarkTable15(b *testing.B) { benchExperiment(b, "table15") }
func BenchmarkTable16(b *testing.B) { benchExperiment(b, "table16") }

// --- micro-benchmarks of the core components ---

func BenchmarkOPTICS(b *testing.B) {
	for _, size := range []struct {
		name string
		n    int
	}{{"aloi125", 125}, {"ionosphere351", 351}} {
		ds := datagen.Ionosphere(1)
		x := ds.X[:size.n]
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := optics.Run(x, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDendrogramFromReachability(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	ord, err := optics.Run(ds.X, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.FromReachability(ord); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFOSCExtract(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	ord, err := optics.Run(ds.X, 6)
	if err != nil {
		b.Fatal(err)
	}
	dend, err := hierarchy.FromReachability(ord)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRand(2)
	cons := constraints.FromLabels(ds.SampleLabels(r, 0.2), ds.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fosc.Extract(dend, cons, fosc.Config{MinClusterSize: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPCKMeans(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	r := stats.NewRand(2)
	cons := constraints.FromLabels(ds.SampleLabels(r, 0.2), ds.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mpckmeans.Run(ds.X, cons, mpckmeans.Config{K: 5, Seed: int64(i), LearnMetric: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	ds := datagen.Ecoli(1)
	r := stats.NewRand(2)
	given := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.15), 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := constraints.Closure(given); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCVCPSelectFOSC(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Select(context.Background(), root.Spec{
			Dataset:     ds,
			Grid:        root.Grid{{Algorithm: root.FOSCOpticsDend{}, Params: root.DefaultMinPtsRange}},
			Supervision: root.Labels(labeled),
			Options:     root.Options{Seed: int64(i), NFolds: 5},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCVCPSelectMPCK(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.Select(context.Background(), root.Spec{
			Dataset:     ds,
			Grid:        root.Grid{{Algorithm: root.MPCKMeans{}, Params: root.KRange(2, 9)}},
			Supervision: root.Labels(labeled),
			Options:     root.Options{Seed: int64(i), NFolds: 5},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCOPKMeans(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	r := stats.NewRand(2)
	cons := constraints.FromLabels(ds.SampleLabels(r, 0.2), ds.Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := copkmeans.Run(ds.X, cons, copkmeans.Config{K: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapSelect(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corecvcp.Select(context.Background(), corecvcp.Spec{
			Dataset:     ds,
			Grid:        corecvcp.Grid{{Algorithm: corecvcp.MPCKMeans{}, Params: []int{3, 5, 7}}},
			Supervision: corecvcp.Labels(labeled),
			Scorer:      corecvcp.Bootstrap{Rounds: 5},
			Options:     corecvcp.Options{Seed: int64(i)},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches for DESIGN.md §6 ---

// BenchmarkAblationFoldCount compares CVCP cost across fold counts
// (n ∈ {2,5,10}): fold count multiplies the clustering work per candidate.
func BenchmarkAblationFoldCount(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.2)
	for _, folds := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("folds%d", folds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := root.Select(context.Background(), root.Spec{
					Dataset:     ds,
					Grid:        root.Grid{{Algorithm: root.FOSCOpticsDend{}, Params: root.DefaultMinPtsRange}},
					Supervision: root.Labels(labeled),
					Options:     root.Options{Seed: int64(i), NFolds: folds},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMetricLearning compares MPCK-Means with and without
// per-cluster metric learning (PCK-Means): the metric update dominates at
// high dimension.
func BenchmarkAblationMetricLearning(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	cons := constraints.FromLabels(ds.SampleLabels(stats.NewRand(2), 0.2), ds.Y)
	for _, learn := range []bool{false, true} {
		name := "pck"
		if learn {
			name = "mpck"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mpckmeans.Run(ds.X, cons, mpckmeans.Config{
					K: 5, Seed: int64(i), LearnMetric: learn,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClosureFolds compares the paper's leakage-free constraint
// fold construction against the naive edge split it warns about: correctness
// costs one transitive closure.
func BenchmarkAblationClosureFolds(b *testing.B) {
	ds := datagen.Ecoli(1)
	r := stats.NewRand(2)
	given := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.15), 0.5)
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := constraints.SplitConstraints(stats.NewRand(int64(i)), given, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-leaky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := constraints.NaiveSplitConstraints(stats.NewRand(int64(i)), given, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// legacyPerParamSelect replicates the pre-engine concurrency scheme —
// whole parameters fan out, the folds within a parameter run serially —
// on exactly the folds, seeds and scoring of SelectWithLabels. It is the
// baseline BenchmarkEngineFoldParamGrid measures the fold×parameter engine
// against; the library itself no longer contains this path.
func legacyPerParamSelect(alg corecvcp.Algorithm, ds *dataset.Dataset, labeledIdx, params []int, nfolds int, seed int64) (*corecvcp.Selection, error) {
	n := constraints.AdaptFolds(nfolds, len(labeledIdx))
	folds, err := constraints.SplitLabels(stats.NewRand(seed), labeledIdx, n)
	if err != nil {
		return nil, err
	}
	type cvFold struct{ train, test *constraints.Set }
	fs := make([]cvFold, len(folds))
	for i, f := range folds {
		fs[i] = cvFold{
			train: constraints.FromLabels(f.TrainIdx, ds.Y),
			test:  constraints.FromLabels(f.TestIdx, ds.Y),
		}
	}
	scores := make([]corecvcp.ParamScore, len(params))
	errs := make([]error, len(params))
	var wg sync.WaitGroup
	for pi := range params {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			ps := corecvcp.ParamScore{Param: params[pi], FoldScores: make([]float64, len(fs))}
			for fi, f := range fs {
				s := stats.SplitSeed(seed, pi*len(fs)+fi+1)
				labels, err := alg.Cluster(ds, f.train, params[pi], s)
				if err != nil {
					errs[pi] = err
					return
				}
				ps.FoldScores[fi] = eval.ConstraintF(labels, f.test)
			}
			ps.Score = stats.Mean(ps.FoldScores)
			scores[pi] = ps
		}(pi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	best := scores[0]
	for _, ps := range scores[1:] {
		if ps.Score > best.Score {
			best = ps
		}
	}
	full := constraints.FromLabels(labeledIdx, ds.Y)
	finalLabels, err := alg.Cluster(ds, full, best.Param, stats.SplitSeed(seed, 0))
	if err != nil {
		return nil, err
	}
	return &corecvcp.Selection{Algorithm: alg.Name(), Best: best, Scores: scores, FinalLabels: finalLabels}, nil
}

// engineSelect is the engine-side selection BenchmarkEngineFoldParamGrid
// measures: MPCK-Means parameter selection through the unified Select core.
func engineSelect(ds *dataset.Dataset, labeled, params []int, opt corecvcp.Options) (*corecvcp.Selection, error) {
	res, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        corecvcp.Grid{{Algorithm: corecvcp.MPCKMeans{}, Params: params}},
		Supervision: corecvcp.Labels(labeled),
		Options:     opt,
	})
	if err != nil {
		return nil, err
	}
	return res.PerCandidate[0], nil
}

// BenchmarkEngineFoldParamGrid compares the old per-parameter fan-out with
// the fold×parameter engine on a grid shaped to expose the difference: two
// candidate parameters of very different cost and eight folds. The legacy
// path can use at most two cores and is gated by the expensive parameter's
// serial fold loop; the engine schedules all sixteen cells, so on a host
// with ≥4 cores it finishes the same (bit-identical — verified before
// timing) selection well over 1.5× faster.
func BenchmarkEngineFoldParamGrid(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.3)
	params := []int{3, 9}
	const nfolds = 8
	const seed = 42

	legacy, err := legacyPerParamSelect(corecvcp.MPCKMeans{}, ds, labeled, params, nfolds, seed)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := engineSelect(ds, labeled, params, corecvcp.Options{Seed: seed, NFolds: nfolds, Workers: -1})
	if err != nil {
		b.Fatal(err)
	}
	if legacy.Best.Param != engine.Best.Param || legacy.Best.Score != engine.Best.Score {
		b.Fatalf("selection differs: legacy %+v, engine %+v", legacy.Best, engine.Best)
	}
	for i := range legacy.Scores {
		if legacy.Scores[i].Score != engine.Scores[i].Score {
			b.Fatalf("param %d: legacy score %v, engine score %v",
				legacy.Scores[i].Param, legacy.Scores[i].Score, engine.Scores[i].Score)
		}
		for j := range legacy.Scores[i].FoldScores {
			if legacy.Scores[i].FoldScores[j] != engine.Scores[i].FoldScores[j] {
				b.Fatalf("param %d fold %d: scores differ", legacy.Scores[i].Param, j)
			}
		}
	}
	for i := range legacy.FinalLabels {
		if legacy.FinalLabels[i] != engine.FinalLabels[i] {
			b.Fatal("final labels differ")
		}
	}

	b.Run("perparam-legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := legacyPerParamSelect(corecvcp.MPCKMeans{}, ds, labeled, params, nfolds, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("foldparam-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := engineSelect(ds, labeled, params, corecvcp.Options{Seed: seed, NFolds: nfolds, Workers: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineWorkers shows how the fold×parameter grid scales with the
// worker bound on a wider grid (8 parameters × 5 folds of FOSC-OPTICSDend,
// which also exercises the shared OPTICS/distance cache under concurrency).
func BenchmarkEngineWorkers(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.2)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := root.Select(context.Background(), root.Spec{
					Dataset:     ds,
					Grid:        root.Grid{{Algorithm: root.FOSCOpticsDend{}, Params: root.DefaultMinPtsRange}},
					Supervision: root.Labels(labeled),
					Options:     root.Options{Seed: 7, NFolds: 5, Workers: workers},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelSweep compares the serial and parallel parameter
// sweeps (on one core they should be comparable; the parallel path exists
// for multi-core hosts).
func BenchmarkAblationParallelSweep(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.2)
	for _, workers := range []int{1, -1} {
		name := "serial"
		if workers < 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corecvcp.Select(context.Background(), corecvcp.Spec{
					Dataset:     ds,
					Grid:        corecvcp.Grid{{Algorithm: corecvcp.MPCKMeans{}, Params: []int{2, 4, 6, 8}}},
					Supervision: corecvcp.Labels(labeled),
					Options:     corecvcp.Options{Seed: int64(i), NFolds: 3, Workers: workers},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// crossMethodGrid is the candidate grid of BenchmarkCrossMethodGrid: three
// clustering paradigms with their own parameter ranges on one dataset.
func crossMethodGrid() corecvcp.Grid {
	return corecvcp.Grid{
		{Algorithm: corecvcp.FOSCOpticsDend{}, Params: []int{3, 6, 9, 12}},
		{Algorithm: corecvcp.MPCKMeans{}, Params: []int{3, 5, 7}},
		{Algorithm: corecvcp.COPKMeans{}, Params: []int{3, 5, 7}},
	}
}

// legacySequentialCrossMethod replicates the pre-redesign cross-method
// selection: one full, independent selection per candidate, run back to
// back — each candidate gets its own engine run, so the worker pool drains
// to a barrier at every candidate boundary and no cells of different
// candidates ever overlap. The unified grid removed exactly this structure;
// the library itself no longer contains it.
func legacySequentialCrossMethod(ds *dataset.Dataset, grid corecvcp.Grid, labeled []int, opt corecvcp.Options) (*corecvcp.Result, error) {
	out := &corecvcp.Result{}
	for _, cand := range grid {
		res, err := corecvcp.Select(context.Background(), corecvcp.Spec{
			Dataset:     ds,
			Grid:        corecvcp.Grid{cand},
			Supervision: corecvcp.Labels(labeled),
			Options:     opt,
		})
		if err != nil {
			return nil, err
		}
		sel := res.PerCandidate[0]
		out.PerCandidate = append(out.PerCandidate, sel)
		if out.Winner == nil || sel.Best.Score > out.Winner.Best.Score {
			out.Winner = sel
		}
	}
	return out, nil
}

// BenchmarkCrossMethodGrid measures the tentpole of the unified Select API:
// cross-method selection as ONE shared (algorithm, parameter, fold) engine
// run — one worker pool, one Limiter, one run cache across all candidates —
// against the legacy sequential per-candidate loop. Bit-identity of the two
// is asserted before timing: same winners, same per-fold scores to the last
// bit, same final labelings.
func BenchmarkCrossMethodGrid(b *testing.B) {
	ds := datagen.ALOI(1, 1)[0]
	labeled := ds.SampleLabels(stats.NewRand(2), 0.3)
	opt := corecvcp.Options{Seed: 42, NFolds: 5, Workers: -1}
	grid := crossMethodGrid()

	legacy, err := legacySequentialCrossMethod(ds, grid, labeled, opt)
	if err != nil {
		b.Fatal(err)
	}
	unified, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        grid,
		Supervision: corecvcp.Labels(labeled),
		Options:     opt,
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(legacy.PerCandidate) != len(unified.PerCandidate) {
		b.Fatalf("candidate counts differ: %d vs %d", len(legacy.PerCandidate), len(unified.PerCandidate))
	}
	for ci := range legacy.PerCandidate {
		l, u := legacy.PerCandidate[ci], unified.PerCandidate[ci]
		if l.Algorithm != u.Algorithm || l.Best.Param != u.Best.Param || l.Best.Score != u.Best.Score {
			b.Fatalf("candidate %d: legacy (%s, %d, %v) vs unified (%s, %d, %v)",
				ci, l.Algorithm, l.Best.Param, l.Best.Score, u.Algorithm, u.Best.Param, u.Best.Score)
		}
		for pi := range l.Scores {
			for fi := range l.Scores[pi].FoldScores {
				if l.Scores[pi].FoldScores[fi] != u.Scores[pi].FoldScores[fi] {
					b.Fatalf("candidate %d param %d fold %d: scores differ", ci, l.Scores[pi].Param, fi)
				}
			}
		}
		for i := range l.FinalLabels {
			if l.FinalLabels[i] != u.FinalLabels[i] {
				b.Fatalf("candidate %d: final labels differ", ci)
			}
		}
	}
	if legacy.Winner.Algorithm != unified.Winner.Algorithm {
		b.Fatalf("winners differ: %s vs %s", legacy.Winner.Algorithm, unified.Winner.Algorithm)
	}

	b.Run("percandidate-legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := legacySequentialCrossMethod(ds, grid, labeled, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sharedgrid-unified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := corecvcp.Select(context.Background(), corecvcp.Spec{
				Dataset:     ds,
				Grid:        grid,
				Supervision: corecvcp.Labels(labeled),
				Options:     opt,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
