// Command datagen writes the synthetic surrogate datasets of the evaluation
// to CSV files (attributes, then the class label as the last column), so
// they can be inspected or fed back through cmd/cvcp.
//
//	datagen -out ./data            # all datasets, default seed
//	datagen -out ./data -aloisets 5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cvcp/internal/datagen"
	"cvcp/internal/dataset"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 20140324, "generator seed")
		aloiSets = flag.Int("aloisets", 3, "number of ALOI k5 sets to emit")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var all []*dataset.Dataset
	all = append(all, datagen.ALOI(*seed, *aloiSets)...)
	all = append(all, datagen.UCISuite(*seed)...)
	for _, ds := range all {
		path := filepath.Join(*out, ds.Name+".csv")
		if err := ds.SaveCSV(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d objects, %d attributes, %d classes)\n",
			path, ds.N(), ds.Dims(), ds.NumClasses())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
