// Command datagen writes the synthetic surrogate datasets of the evaluation
// to CSV files (attributes, then the class label as the last column), so
// they can be inspected or fed back through cmd/cvcp.
//
//	datagen -out ./data            # all datasets, default seed
//	datagen -out ./data -aloisets 5 -seed 7
//
// With -append it instead emits encoded row-batch files — the growth
// format cmd/cvcp -dataset-dir reads and POST /v1/datasets/{id}/rows
// accepts — one file per batch index, deterministic per (seed, batch):
//
//	datagen -append -out ./growth -batches 3 -rows 40
//	datagen -append -out ./growth -batches 1 -batch0 3 -rows 40  # next batch
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cvcp/internal/datagen"
	"cvcp/internal/dataset"
)

func main() {
	var (
		out      = flag.String("out", ".", "output directory")
		seed     = flag.Int64("seed", 20140324, "generator seed")
		aloiSets = flag.Int("aloisets", 3, "number of ALOI k5 sets to emit")
		appendB  = flag.Bool("append", false, "emit row-batch files for a growing dataset instead of the CSV suites")
		batches  = flag.Int("batches", 1, "number of row batches to emit (-append)")
		batch0   = flag.Int("batch0", 0, "index of the first batch — continue a growth sequence where an earlier run stopped (-append)")
		rows     = flag.Int("rows", 40, "rows per batch (-append)")
		dims     = flag.Int("dims", 2, "attributes per row (-append)")
		classes  = flag.Int("classes", 2, "number of classes (-append)")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *appendB {
		emitBatches(*out, *seed, *batch0, *batches, *rows, *dims, *classes)
		return
	}
	var all []*dataset.Dataset
	all = append(all, datagen.ALOI(*seed, *aloiSets)...)
	all = append(all, datagen.UCISuite(*seed)...)
	for _, ds := range all {
		path := filepath.Join(*out, ds.Name+".csv")
		if err := ds.SaveCSV(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d objects, %d attributes, %d classes)\n",
			path, ds.N(), ds.Dims(), ds.NumClasses())
	}
}

// emitBatches writes batches encoded row-batch files starting at index
// batch0. File names sort in batch order ("batch-000000.rowbatch", ...),
// which is exactly the order cmd/cvcp -dataset-dir replays them in.
func emitBatches(out string, seed int64, batch0, batches, rows, dims, classes int) {
	if rows < 1 || dims < 1 || classes < 1 || batches < 1 || batch0 < 0 {
		fatal(fmt.Errorf("-append wants positive -batches/-rows/-dims/-classes and a non-negative -batch0"))
	}
	for i := 0; i < batches; i++ {
		idx := batch0 + i
		b := datagen.GrowthBatch(seed, idx, rows, dims, classes)
		path := filepath.Join(out, fmt.Sprintf("batch-%06d.rowbatch", idx))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := dataset.EncodeRowBatch(f, b); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows, %d attributes, %d classes)\n", path, rows, dims, classes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
