// Command cvcp runs CVCP model selection on a CSV dataset.
//
// Scenario I — the CSV carries labels in its last column and a fraction of
// them is used as supervision:
//
//	cvcp -data mydata.csv -labeled -algo fosc -labelfrac 0.10
//
// Scenario II — supervision is a constraint file (lines "a b ml" or
// "a b cl", object indices are zero-based CSV row numbers):
//
//	cvcp -data mydata.csv -algo mpck -constraints cons.txt -kmin 2 -kmax 10
//
// The tool prints the per-parameter CVCP scores, the selected parameter and
// the final cluster assignment (one "object cluster" line per object; -1 is
// noise).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	root "cvcp"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV dataset path (required)")
		labeled  = flag.Bool("labeled", false, "last CSV column is an integer class label")
		algo     = flag.String("algo", "fosc", "algorithm: fosc (MinPts selection) or mpck (k selection)")
		consPath = flag.String("constraints", "", "constraint file for Scenario II")
		frac     = flag.Float64("labelfrac", 0.10, "fraction of labels used as supervision in Scenario I")
		kmin     = flag.Int("kmin", 2, "smallest k candidate (mpck)")
		kmax     = flag.Int("kmax", 10, "largest k candidate (mpck)")
		folds    = flag.Int("folds", 10, "cross-validation folds")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", -1, "concurrent fold×parameter tasks (-1 = one per CPU, 1 = serial; results are identical either way)")
		progress = flag.Bool("progress", false, "report grid progress on stderr")
		quiet    = flag.Bool("quiet", false, "suppress the per-object assignment output")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C abandons the selection mid-grid instead of waiting it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, err := root.LoadCSV(*data, *data, *labeled)
	if err != nil {
		fatal(err)
	}

	var alg root.Algorithm
	var params []int
	switch *algo {
	case "fosc":
		alg = root.FOSCOpticsDend{}
		params = root.DefaultMinPtsRange
	case "mpck":
		alg = root.MPCKMeans{}
		params = root.KRange(*kmin, *kmax)
	default:
		fatal(fmt.Errorf("unknown -algo %q (want fosc or mpck)", *algo))
	}

	opt := root.Options{NFolds: *folds, Seed: *seed, Workers: *workers, Context: ctx}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcvcp: %d/%d fold×parameter tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	var sel *root.Selection
	switch {
	case *consPath != "":
		cons, err := loadConstraints(*consPath)
		if err != nil {
			fatal(err)
		}
		sel, err = root.SelectWithConstraints(alg, ds, cons, params, opt)
		if err != nil {
			fatal(err)
		}
	case *labeled:
		r := root.NewRand(*seed)
		idx := ds.SampleLabels(r, *frac)
		sel, err = root.SelectWithLabels(alg, ds, idx, params, opt)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need either -labeled (Scenario I) or -constraints FILE (Scenario II)"))
	}

	fmt.Printf("algorithm: %s\n", sel.Algorithm)
	fmt.Println("parameter scores (cross-validated constraint F-measure):")
	for _, ps := range sel.Scores {
		marker := " "
		if ps.Param == sel.Best.Param {
			marker = "*"
		}
		fmt.Printf(" %s param=%-4d score=%.4f\n", marker, ps.Param, ps.Score)
	}
	fmt.Printf("selected parameter: %d\n", sel.Best.Param)
	if !*quiet {
		fmt.Println("final assignment (object cluster):")
		for i, l := range sel.FinalLabels {
			fmt.Printf("%d %d\n", i, l)
		}
	}
}

// loadConstraints parses a constraint file: one constraint per line,
// "<a> <b> ml" or "<a> <b> cl" with zero-based object indices; blank lines
// and lines starting with '#' are ignored.
func loadConstraints(path string) (*root.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cons := root.NewConstraints()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var a, b int
		var kind string
		if _, err := fmt.Sscanf(text, "%d %d %s", &a, &b, &kind); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %w", path, line, text, err)
		}
		switch strings.ToLower(kind) {
		case "ml", "must", "mustlink", "must-link":
			cons.Add(a, b, true)
		case "cl", "cannot", "cannotlink", "cannot-link":
			cons.Add(a, b, false)
		default:
			return nil, fmt.Errorf("%s:%d: unknown constraint kind %q", path, line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cons, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvcp:", err)
	os.Exit(1)
}
