// Command cvcp runs CVCP model selection on a CSV dataset through the
// library's unified Select(ctx, Spec) API.
//
// Scenario I — the CSV carries labels in its last column and a fraction of
// them is used as supervision:
//
//	cvcp -data mydata.csv -labeled -algo fosc -labelfrac 0.10
//
// Scenario II — supervision is a constraint file (lines "a b ml" or
// "a b cl", object indices are zero-based CSV row numbers):
//
//	cvcp -data mydata.csv -algo mpck -constraints cons.txt -kmin 2 -kmax 10
//
// Cross-method selection — a comma-separated -algo list puts every method
// into one shared selection grid and the best method+parameter wins:
//
//	cvcp -data mydata.csv -labeled -algo fosc,mpck,copk
//
// The -scorer flag swaps the scoring strategy: cv (default), bootstrap, or
// a relative validity index (silhouette, davies-bouldin, calinski-harabasz,
// dunn).
//
// The tool prints the per-parameter scores of every candidate, the selected
// method and parameter, and the final cluster assignment (one
// "object cluster" line per object; -1 is noise).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"

	root "cvcp"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV dataset path (required)")
		labeled  = flag.Bool("labeled", false, "last CSV column is an integer class label")
		algo     = flag.String("algo", "fosc", "comma-separated candidate algorithms: fosc (MinPts selection), mpck and/or copk (k selection)")
		scorer   = flag.String("scorer", "cv", "scoring strategy: cv, bootstrap, or a validity index (silhouette, davies-bouldin, calinski-harabasz, dunn)")
		rounds   = flag.Int("rounds", 0, "bootstrap rounds when -scorer bootstrap (0 = default 10)")
		consPath = flag.String("constraints", "", "constraint file for Scenario II")
		frac     = flag.Float64("labelfrac", 0.10, "fraction of labels used as supervision in Scenario I")
		kmin     = flag.Int("kmin", 2, "smallest k candidate (mpck/copk)")
		kmax     = flag.Int("kmax", 10, "largest k candidate (mpck/copk)")
		folds    = flag.Int("folds", 10, "cross-validation folds")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", -1, "concurrent grid tasks (-1 = one per CPU, 1 = serial; results are identical either way)")
		matrix32 = flag.Bool("matrix32", false, "store the FOSC OPTICS distance matrix in float32 (half the memory; requires fosc in -algo)")
		eps      = flag.Float64("eps", 0, "finite OPTICS generating distance for fosc: compute neighborhoods within this radius on demand instead of the dense matrix (0 = dense)")
		progress = flag.Bool("progress", false, "report grid progress on stderr")
		quiet    = flag.Bool("quiet", false, "suppress the per-object assignment output")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Mirror the server's strict option handling: an option that the
	// chosen scorer would silently ignore is an error, not a no-op.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["folds"] && *scorer != "cv" {
		fatal(fmt.Errorf("-folds applies only to the cross-validation scorer (-scorer cv)"))
	}
	if explicit["rounds"] && *scorer != "bootstrap" {
		fatal(fmt.Errorf("-rounds requires -scorer bootstrap"))
	}

	// Ctrl-C abandons the selection mid-grid instead of waiting it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ds, err := root.LoadCSV(*data, *data, *labeled)
	if err != nil {
		fatal(err)
	}

	var grid root.Grid
	seen := map[string]bool{}
	for _, name := range strings.Split(*algo, ",") {
		name = strings.TrimSpace(name)
		if seen[name] {
			fatal(fmt.Errorf("duplicate algorithm %q in -algo", name))
		}
		seen[name] = true
		switch name {
		case "fosc":
			grid = append(grid, root.Candidate{Algorithm: root.FOSCOpticsDend{Matrix32: *matrix32, Eps: *eps}, Params: root.DefaultMinPtsRange})
		case "mpck":
			grid = append(grid, root.Candidate{Algorithm: root.MPCKMeans{}, Params: root.KRange(*kmin, *kmax)})
		case "copk":
			grid = append(grid, root.Candidate{Algorithm: root.COPKMeans{}, Params: root.KRange(*kmin, *kmax)})
		default:
			fatal(fmt.Errorf("unknown -algo %q (want fosc, mpck or copk)", name))
		}
	}
	if *matrix32 && !seen["fosc"] {
		fatal(fmt.Errorf("-matrix32 applies only to the fosc method (add fosc to -algo)"))
	}
	switch {
	case *eps < 0 || math.IsNaN(*eps):
		fatal(fmt.Errorf("-eps %v: want a positive radius", *eps))
	case *eps > 0 && !seen["fosc"]:
		fatal(fmt.Errorf("-eps applies only to the fosc method (add fosc to -algo)"))
	case *eps > 0 && *matrix32:
		fatal(fmt.Errorf("-eps and -matrix32 are mutually exclusive (the ε-range driver computes distances on demand, not from a matrix)"))
	}

	var sup root.Supervision
	switch {
	case *consPath != "":
		cons, err := loadConstraints(*consPath)
		if err != nil {
			fatal(err)
		}
		sup = root.ConstraintSet(cons)
	case *labeled:
		r := root.NewRand(*seed)
		sup = root.Labels(ds.SampleLabels(r, *frac))
	default:
		fatal(fmt.Errorf("need either -labeled (Scenario I) or -constraints FILE (Scenario II)"))
	}

	strategy, err := root.ScorerByName(*scorer, *rounds)
	if err != nil {
		fatal(err)
	}

	opt := root.Options{NFolds: *folds, Seed: *seed, Workers: *workers}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcvcp: %d/%d grid tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := root.Select(ctx, root.Spec{
		Dataset:     ds,
		Grid:        grid,
		Supervision: sup,
		Scorer:      strategy,
		Options:     opt,
	})
	if err != nil {
		fatal(err)
	}

	for _, sel := range res.PerCandidate {
		fmt.Printf("algorithm: %s\n", sel.Algorithm)
		fmt.Println("parameter scores:")
		for _, ps := range sel.Scores {
			marker := " "
			if ps.Param == sel.Best.Param {
				marker = "*"
			}
			fmt.Printf(" %s param=%-4d score=%.4f\n", marker, ps.Param, ps.Score)
		}
	}
	if len(res.PerCandidate) > 1 {
		fmt.Printf("selected algorithm: %s\n", res.Winner.Algorithm)
	}
	fmt.Printf("selected parameter: %d\n", res.Winner.Best.Param)
	if !*quiet {
		fmt.Println("final assignment (object cluster):")
		for i, l := range res.Winner.FinalLabels {
			fmt.Printf("%d %d\n", i, l)
		}
	}
}

// loadConstraints parses a constraint file: one constraint per line,
// "<a> <b> ml" or "<a> <b> cl" with zero-based object indices; blank lines
// and lines starting with '#' are ignored.
func loadConstraints(path string) (*root.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cons := root.NewConstraints()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var a, b int
		var kind string
		if _, err := fmt.Sscanf(text, "%d %d %s", &a, &b, &kind); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %w", path, line, text, err)
		}
		switch strings.ToLower(kind) {
		case "ml", "must", "mustlink", "must-link":
			cons.Add(a, b, true)
		case "cl", "cannot", "cannotlink", "cannot-link":
			cons.Add(a, b, false)
		default:
			return nil, fmt.Errorf("%s:%d: unknown constraint kind %q", path, line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cons, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvcp:", err)
	os.Exit(1)
}
