// Command cvcp runs CVCP model selection on a CSV dataset through the
// library's unified Select(ctx, Spec) API.
//
// Scenario I — the CSV carries labels in its last column and a fraction of
// them is used as supervision:
//
//	cvcp -data mydata.csv -labeled -algo fosc -labelfrac 0.10
//
// Scenario II — supervision is a constraint file (lines "a b ml" or
// "a b cl", object indices are zero-based CSV row numbers):
//
//	cvcp -data mydata.csv -algo mpck -constraints cons.txt -kmin 2 -kmax 10
//
// Cross-method selection — a comma-separated -algo list puts every method
// into one shared selection grid and the best method+parameter wins:
//
//	cvcp -data mydata.csv -labeled -algo fosc,mpck,copk
//
// The -scorer flag swaps the scoring strategy: cv (default), bootstrap, or
// a relative validity index (silhouette, davies-bouldin, calinski-harabasz,
// dunn).
//
// Incremental re-selection — -dataset-dir replays a directory of encoded
// row-batch files (cmd/datagen -append output, lexical file order) as a
// growing versioned dataset, scores it with append-stable folds, and keeps
// a persistent cell cache next to the batches; re-running after new
// batches arrive recomputes only the folds the appended rows dirtied, with
// a result bit-identical to a from-scratch run:
//
//	datagen -append -out ./growth -batches 3
//	cvcp -dataset-dir ./growth -algo fosc -labelfrac 0.5 -folds 2
//	datagen -append -out ./growth -batches 1 -batch0 3
//	cvcp -dataset-dir ./growth -algo fosc -labelfrac 0.5 -folds 2  # reuses clean folds
//
// The tool prints the per-parameter scores of every candidate, the selected
// method and parameter, and the final cluster assignment (one
// "object cluster" line per object; -1 is noise).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"

	root "cvcp"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/runner"
	"cvcp/internal/store"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV dataset path (required unless -dataset-dir)")
		dsetDir  = flag.String("dataset-dir", "", "directory of row-batch files (*.rowbatch, lexical order): incremental re-selection with a persistent cell cache in <dir>/cellcache")
		labeled  = flag.Bool("labeled", false, "last CSV column is an integer class label")
		algo     = flag.String("algo", "fosc", "comma-separated candidate algorithms: fosc (MinPts selection), mpck and/or copk (k selection)")
		scorer   = flag.String("scorer", "cv", "scoring strategy: cv, bootstrap, or a validity index (silhouette, davies-bouldin, calinski-harabasz, dunn)")
		rounds   = flag.Int("rounds", 0, "bootstrap rounds when -scorer bootstrap (0 = default 10)")
		consPath = flag.String("constraints", "", "constraint file for Scenario II")
		frac     = flag.Float64("labelfrac", 0.10, "fraction of labels used as supervision in Scenario I")
		kmin     = flag.Int("kmin", 2, "smallest k candidate (mpck/copk)")
		kmax     = flag.Int("kmax", 10, "largest k candidate (mpck/copk)")
		folds    = flag.Int("folds", 10, "cross-validation folds")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", -1, "concurrent grid tasks (-1 = one per CPU, 1 = serial; results are identical either way)")
		matrix32 = flag.Bool("matrix32", false, "store the FOSC OPTICS distance matrix in float32 (half the memory; requires fosc in -algo)")
		eps      = flag.Float64("eps", 0, "finite OPTICS generating distance for fosc: compute neighborhoods within this radius on demand instead of the dense matrix (0 = dense)")
		progress = flag.Bool("progress", false, "report grid progress on stderr")
		quiet    = flag.Bool("quiet", false, "suppress the per-object assignment output")
	)
	flag.Parse()
	if (*data == "") == (*dsetDir == "") {
		fmt.Fprintln(os.Stderr, "cvcp: exactly one of -data and -dataset-dir is required")
		flag.Usage()
		os.Exit(2)
	}
	// Mirror the server's strict option handling: an option that the
	// chosen scorer would silently ignore is an error, not a no-op.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["folds"] && *scorer != "cv" {
		fatal(fmt.Errorf("-folds applies only to the cross-validation scorer (-scorer cv)"))
	}
	if explicit["rounds"] && *scorer != "bootstrap" {
		fatal(fmt.Errorf("-rounds requires -scorer bootstrap"))
	}
	if *dsetDir != "" {
		// The incremental path is exactly the server's dataset-job shape:
		// stable-fold cross-validation over labeled row batches. Options
		// that contradict it are errors, like everywhere else.
		if *scorer != "cv" {
			fatal(fmt.Errorf("-dataset-dir requires the cross-validation scorer (-scorer cv): cached cell scores are fold scores"))
		}
		if *consPath != "" {
			fatal(fmt.Errorf("-dataset-dir selections take Scenario I supervision from the batch labels, not -constraints"))
		}
		if explicit["labeled"] {
			fatal(fmt.Errorf("-labeled is implied by -dataset-dir (row batches declare their label layout)"))
		}
	}

	// Ctrl-C abandons the selection mid-grid instead of waiting it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var (
		ds        *root.Dataset
		cellCache *runner.ScoreCache
		cellStats *corecvcp.CellStats
		err       error
	)
	if *dsetDir != "" {
		var closeCache func()
		ds, cellCache, closeCache, err = openDatasetDir(*dsetDir)
		if err != nil {
			fatal(err)
		}
		defer closeCache()
		cellStats = &corecvcp.CellStats{}
	} else {
		ds, err = root.LoadCSV(*data, *data, *labeled)
		if err != nil {
			fatal(err)
		}
	}

	var grid root.Grid
	seen := map[string]bool{}
	for _, name := range strings.Split(*algo, ",") {
		name = strings.TrimSpace(name)
		if seen[name] {
			fatal(fmt.Errorf("duplicate algorithm %q in -algo", name))
		}
		seen[name] = true
		switch name {
		case "fosc":
			grid = append(grid, root.Candidate{Algorithm: root.FOSCOpticsDend{Matrix32: *matrix32, Eps: *eps}, Params: root.DefaultMinPtsRange})
		case "mpck":
			grid = append(grid, root.Candidate{Algorithm: root.MPCKMeans{}, Params: root.KRange(*kmin, *kmax)})
		case "copk":
			grid = append(grid, root.Candidate{Algorithm: root.COPKMeans{}, Params: root.KRange(*kmin, *kmax)})
		default:
			fatal(fmt.Errorf("unknown -algo %q (want fosc, mpck or copk)", name))
		}
	}
	if *matrix32 && !seen["fosc"] {
		fatal(fmt.Errorf("-matrix32 applies only to the fosc method (add fosc to -algo)"))
	}
	switch {
	case *eps < 0 || math.IsNaN(*eps):
		fatal(fmt.Errorf("-eps %v: want a positive radius", *eps))
	case *eps > 0 && !seen["fosc"]:
		fatal(fmt.Errorf("-eps applies only to the fosc method (add fosc to -algo)"))
	case *eps > 0 && *matrix32:
		fatal(fmt.Errorf("-eps and -matrix32 are mutually exclusive (the ε-range driver computes distances on demand, not from a matrix)"))
	}

	var sup root.Supervision
	switch {
	case *dsetDir != "":
		// Append-stable folds and per-fold supervision: the cached score
		// of a fold no new row landed in stays valid across appends.
		sup = corecvcp.StableLabels(*frac)
	case *consPath != "":
		cons, err := loadConstraints(*consPath)
		if err != nil {
			fatal(err)
		}
		sup = root.ConstraintSet(cons)
	case *labeled:
		r := root.NewRand(*seed)
		sup = root.Labels(ds.SampleLabels(r, *frac))
	default:
		fatal(fmt.Errorf("need either -labeled (Scenario I) or -constraints FILE (Scenario II)"))
	}

	strategy, err := root.ScorerByName(*scorer, *rounds)
	if err != nil {
		fatal(err)
	}

	opt := root.Options{NFolds: *folds, Seed: *seed, Workers: *workers, CellCache: cellCache, CellStats: cellStats}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rcvcp: %d/%d grid tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	res, err := root.Select(ctx, root.Spec{
		Dataset:     ds,
		Grid:        grid,
		Supervision: sup,
		Scorer:      strategy,
		Options:     opt,
	})
	if err != nil {
		fatal(err)
	}

	for _, sel := range res.PerCandidate {
		fmt.Printf("algorithm: %s\n", sel.Algorithm)
		fmt.Println("parameter scores:")
		for _, ps := range sel.Scores {
			marker := " "
			if ps.Param == sel.Best.Param {
				marker = "*"
			}
			fmt.Printf(" %s param=%-4d score=%.4f\n", marker, ps.Param, ps.Score)
		}
	}
	if len(res.PerCandidate) > 1 {
		fmt.Printf("selected algorithm: %s\n", res.Winner.Algorithm)
	}
	fmt.Printf("selected parameter: %d\n", res.Winner.Best.Param)
	if cellStats != nil {
		fmt.Printf("grid cells computed: %d, reused from cache: %d\n", cellStats.Computed(), cellStats.Reused())
	}
	if !*quiet {
		fmt.Println("final assignment (object cluster):")
		for i, l := range res.Winner.FinalLabels {
			fmt.Printf("%d %d\n", i, l)
		}
	}
}

// cellCacheEntries bounds the in-memory tier of the -dataset-dir cell
// cache; the persistent tier (<dir>/cellcache) is unbounded.
const cellCacheEntries = 4096

// datasetDirOwner is the owning record of every cell score the
// -dataset-dir cache persists. The file store's startup sweep deletes
// cell records whose owner record is gone, so the owner is written before
// any score is cached.
const datasetDirOwner = "ds-local"

// openDatasetDir replays the *.rowbatch files of dir (lexical order —
// cmd/datagen -append names them so that this is batch order) into a
// versioned dataset, snapshots its latest version, and opens the
// persistent cell cache in dir/cellcache. Identical batch sequences build
// bit-identical snapshots, so cached cell scores carry across runs: a
// re-run after new batches recomputes only the dirtied folds.
func openDatasetDir(dir string) (*root.Dataset, *runner.ScoreCache, func(), error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rowbatch"))
	if err != nil {
		return nil, nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, nil, fmt.Errorf("no *.rowbatch files in %s (generate them with datagen -append)", dir)
	}
	sort.Strings(paths)
	first, err := readBatch(paths[0])
	if err != nil {
		return nil, nil, nil, err
	}
	if first.Labels == nil {
		return nil, nil, nil, fmt.Errorf("%s: unlabeled batch (the incremental path needs Scenario I labels)", paths[0])
	}
	v := dataset.NewVersioned(filepath.Base(filepath.Clean(dir)), true)
	if _, err := v.Append(first); err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", paths[0], err)
	}
	for _, p := range paths[1:] {
		b, err := readBatch(p)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := v.Append(b); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", p, err)
		}
	}
	ds, err := v.Snapshot(v.Version())
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := store.Open(filepath.Join(dir, "cellcache"))
	if err != nil {
		return nil, nil, nil, err
	}
	if _, ok, err := st.Get(datasetDirOwner); err != nil {
		st.Close()
		return nil, nil, nil, err
	} else if !ok {
		if err := st.Put(store.Record{ID: datasetDirOwner, Status: "dataset"}); err != nil {
			st.Close()
			return nil, nil, nil, err
		}
	}
	fmt.Fprintf(os.Stderr, "cvcp: %s at version %d (%d batches, %d rows)\n", v.Name(), v.Version(), len(paths), v.N())
	cache := runner.NewScoreCache(store.NewCellCache(st, datasetDirOwner), cellCacheEntries)
	return ds, cache, func() { st.Close() }, nil
}

// readBatch decodes one encoded row-batch file.
func readBatch(path string) (dataset.RowBatch, error) {
	f, err := os.Open(path)
	if err != nil {
		return dataset.RowBatch{}, err
	}
	defer f.Close()
	b, err := dataset.DecodeRowBatch(f, 0)
	if err != nil {
		return dataset.RowBatch{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// loadConstraints parses a constraint file: one constraint per line,
// "<a> <b> ml" or "<a> <b> cl" with zero-based object indices; blank lines
// and lines starting with '#' are ignored.
func loadConstraints(path string) (*root.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cons := root.NewConstraints()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var a, b int
		var kind string
		if _, err := fmt.Sscanf(text, "%d %d %s", &a, &b, &kind); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: %w", path, line, text, err)
		}
		switch strings.ToLower(kind) {
		case "ml", "must", "mustlink", "must-link":
			cons.Add(a, b, true)
		case "cl", "cannot", "cannotlink", "cannot-link":
			cons.Add(a, b, false)
		default:
			return nil, fmt.Errorf("%s:%d: unknown constraint kind %q", path, line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cons, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cvcp:", err)
	os.Exit(1)
}
