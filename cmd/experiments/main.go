// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 4).
//
// Usage:
//
//	experiments -exp table5            # one experiment
//	experiments -exp all               # everything, in paper order
//	experiments -list                  # list experiment ids
//	experiments -exp table1 -trials 50 -aloisets 100 -folds 10   # paper scale
//
// All randomness is seeded; identical flags produce identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cvcp/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table16, fig5..fig12, or 'all')")
		list     = flag.Bool("list", false, "list experiments and exit")
		trials   = flag.Int("trials", 0, "independent trials per dataset (0 = default; paper uses 50)")
		aloiSets = flag.Int("aloisets", 0, "ALOI collection size (0 = default; paper uses 100)")
		aloiTr   = flag.Int("aloitrials", 0, "trials per ALOI set (0 = default)")
		folds    = flag.Int("folds", 0, "cross-validation folds (0 = default; paper uses 10)")
		seed     = flag.Int64("seed", 0, "master seed (0 = default)")
		workers  = flag.Int("workers", 0, "concurrent fold×parameter tasks per trial (0 = one per CPU, 1 = serial; output is identical either way)")
		progress = flag.Bool("progress", false, "report engine grid progress on stderr")
		paper    = flag.Bool("paper", false, "use full paper-scale settings (slow)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", r.Name, r.Description)
		}
		return
	}

	cfg := experiments.Default(os.Stdout)
	if *paper {
		cfg = experiments.Paper(os.Stdout)
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *aloiSets > 0 {
		cfg.ALOISets = *aloiSets
	}
	if *aloiTr > 0 {
		cfg.ALOITrials = *aloiTr
	}
	if *folds > 0 {
		cfg.NFolds = *folds
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *progress {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rexperiments: %d/%d grid tasks", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.Registry()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			r, err := experiments.Lookup(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		fmt.Printf("== %s: %s ==\n", r.Name, r.Description)
		start := time.Now()
		if err := r.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", r.Name, time.Since(start).Seconds())
	}
}
