// Command bench is the repository's benchmark harness: it runs the
// performance-critical micro-benchmarks (distance kernels, blocked
// DistMatrix builders, OPTICS on a shared matrix) plus one end-to-end CVCP
// selection, and appends the measurements as a schema-validated record to
// the BENCH_v5.json ledger (see internal/benchjson). CI's bench-smoke job
// runs it with -short to keep the harness and schema honest on every PR;
// full runs are committed per PR so performance history travels with the
// code.
//
// Usage:
//
//	bench                     # full run, append to BENCH_v5.json
//	bench -short -o /tmp/b.json   # reduced sizes (CI smoke)
//	bench -validate BENCH_v5.json # schema-check an existing ledger
//	bench -trend BENCH_v5.json    # fail if the last record regressed >20%
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"cvcp/internal/benchjson"
	"cvcp/internal/cluster/optics"
	"cvcp/internal/constraints"
	"cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/linalg"
	"cvcp/internal/stats"
)

func main() {
	var (
		out      = flag.String("o", "BENCH_v5.json", "benchmark ledger to append to")
		short    = flag.Bool("short", false, "reduced problem sizes (CI smoke run)")
		validate = flag.String("validate", "", "validate the ledger at this path and exit")
		trend    = flag.String("trend", "", "compare the ledger's last two comparable records and fail on regression, then exit")
		trendMax = flag.Float64("trend-max", 0.20, "maximum tolerated ns/op regression fraction for -trend")
	)
	flag.Parse()

	if *trend != "" {
		os.Exit(trendCheck(*trend, *trendMax))
	}

	if *validate != "" {
		recs, err := benchjson.Load(*validate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(recs) == 0 {
			fmt.Fprintf(os.Stderr, "%s: ledger has no records\n", *validate)
			os.Exit(1)
		}
		fmt.Printf("%s: %d valid record(s), schema %d\n", *validate, len(recs), benchjson.Schema)
		return
	}

	rec := &benchjson.Record{
		Schema:    benchjson.Schema,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		Short:     *short,
	}

	n, dim := 256, 64
	if *short {
		n = 96
	}
	rows := randRows(1, n, dim)

	// Pairwise kernels: four squared distances per op either way, so the
	// speedup is a pure kernel comparison.
	panel := make([]float64, 4*dim)
	linalg.Pack4(panel, rows[1], rows[2], rows[3], rows[4])
	var sink float64
	scalarKernel := measure("SqDist/scalar4x", 4*dim*8, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += linalg.SqDist(rows[0], rows[1])
			sink += linalg.SqDist(rows[0], rows[2])
			sink += linalg.SqDist(rows[0], rows[3])
			sink += linalg.SqDist(rows[0], rows[4])
		}
	})
	quadKernel := measure("SqDist/quad", 4*dim*8, func(b *testing.B) {
		var dst [4]float64
		for i := 0; i < b.N; i++ {
			linalg.SqDist4(&dst, rows[0], panel)
			sink += dst[0] + dst[1] + dst[2] + dst[3]
		}
	})
	quadKernel.SpeedupVsBaseline = round2(scalarKernel.NsPerOp / quadKernel.NsPerOp)

	// Matrix builders: same n·(n−1)/2 pairs per op, naive scalar builder
	// as the baseline.
	pairBytes := n * (n - 1) / 2 * dim * 8
	naive := measure(fmt.Sprintf("DistMatrixBuild/naive/n=%d,d=%d", n, dim), pairBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.NewDistMatrixNaive(rows)
		}
	})
	blocked := measure(fmt.Sprintf("DistMatrixBuild/blocked/n=%d,d=%d", n, dim), pairBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.NewDistMatrix(rows)
		}
	})
	condensed := measure(fmt.Sprintf("DistMatrixBuild/blocked-condensed/n=%d,d=%d", n, dim), pairBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.NewDistMatrixCondensed(rows)
		}
	})
	condensed32 := measure(fmt.Sprintf("DistMatrixBuild/blocked-condensed32/n=%d,d=%d", n, dim), pairBytes, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linalg.NewDistMatrixCondensed32(rows)
		}
	})
	blocked.SpeedupVsBaseline = round2(naive.NsPerOp / blocked.NsPerOp)
	condensed.SpeedupVsBaseline = round2(naive.NsPerOp / condensed.NsPerOp)
	condensed32.SpeedupVsBaseline = round2(naive.NsPerOp / condensed32.NsPerOp)

	// OPTICS on a shared condensed matrix (the selection engine's hot
	// path: RowInto-driven core distances plus heap expansion).
	dm := linalg.NewDistMatrixCondensed(rows)
	opticsBench := measure(fmt.Sprintf("OpticsRunWithMatrix/n=%d,minPts=6", n), 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := optics.RunWithMatrix(dm, 6); err != nil {
				b.Fatal(err)
			}
		}
	})

	rec.Benchmarks = []benchjson.Benchmark{
		scalarKernel, quadKernel, naive, blocked, condensed, condensed32, opticsBench,
	}

	// End-to-end: one cold FOSC-OPTICSDend selection (grid × folds,
	// including the shared matrix build), the number a PR is judged by.
	rec.SelectionWallNs = selectionWall(*short)

	if err := benchjson.Append(*out, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("commit %s  %s  short=%v\n", rec.GitSHA, rec.GoVersion, rec.Short)
	for _, b := range rec.Benchmarks {
		line := fmt.Sprintf("%-48s %12.0f ns/op %8d B/op %6d allocs/op", b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
		if b.MBPerSec > 0 {
			line += fmt.Sprintf(" %9.1f MB/s", b.MBPerSec)
		}
		if b.SpeedupVsBaseline > 0 {
			line += fmt.Sprintf("   %.2fx", b.SpeedupVsBaseline)
		}
		fmt.Println(line)
	}
	fmt.Printf("%-48s %12d ns\n", "SelectionWall/FOSC-OPTICSDend", rec.SelectionWallNs)
	fmt.Printf("appended record %d to %s\n", len(mustLoad(*out)), *out)
	_ = sink
}

// trendCheck compares the ledger's newest record against the most recent
// earlier record of the same flavor (full vs -short — their problem sizes
// differ, so cross-flavor ns/op is not comparable) and reports, per
// benchmark name present in both, how ns/op moved. A regression beyond
// maxRegression (fractional; 0.20 means +20%) fails the check. Fewer than
// two comparable records is a trivial pass: the first committed record of
// a flavor has no baseline yet.
func trendCheck(path string, maxRegression float64) int {
	recs := mustLoad(path)
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "%s: ledger has no records\n", path)
		return 1
	}
	cur := recs[len(recs)-1]
	var prev *benchjson.Record
	for i := len(recs) - 2; i >= 0; i-- {
		if recs[i].Short == cur.Short {
			prev = &recs[i]
			break
		}
	}
	if prev == nil {
		fmt.Printf("%s: no earlier short=%v record to compare against; trend check trivially passes\n", path, cur.Short)
		return 0
	}

	base := map[string]float64{}
	for _, b := range prev.Benchmarks {
		base[b.Name] = b.NsPerOp
	}
	fmt.Printf("trend %s: %s -> %s (short=%v, limit +%.0f%%)\n",
		path, shortSHA(prev.GitSHA), shortSHA(cur.GitSHA), cur.Short, maxRegression*100)
	failed := false
	compared := 0
	for _, b := range cur.Benchmarks {
		was, ok := base[b.Name]
		if !ok || was <= 0 {
			continue
		}
		compared++
		delta := b.NsPerOp/was - 1
		verdict := "ok"
		if delta > maxRegression {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-48s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n", b.Name, was, b.NsPerOp, delta*100, verdict)
	}
	if compared == 0 {
		fmt.Println("  no benchmark names in common; trend check trivially passes")
		return 0
	}
	if failed {
		fmt.Fprintf(os.Stderr, "trend check failed: ns/op regressed more than %.0f%% since the previous record\n", maxRegression*100)
		return 1
	}
	return 0
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

// measure runs one benchmark function with testing.Benchmark and converts
// the result to a ledger entry. bytes is the data volume per op (0 to skip
// throughput).
func measure(name string, bytes int, f func(b *testing.B)) benchjson.Benchmark {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		if bytes > 0 {
			b.SetBytes(int64(bytes))
		}
		f(b)
	})
	out := benchjson.Benchmark{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if bytes > 0 && r.T > 0 {
		out.MBPerSec = round2(float64(bytes) * float64(r.N) / r.T.Seconds() / 1e6)
	}
	return out
}

// selectionWall times one full constraint-supervised selection on a
// three-blob reference dataset and returns the wall time in nanoseconds.
func selectionWall(short bool) int64 {
	m := 20
	params := []int{3, 6, 9, 12}
	if short {
		m = 12
		params = []int{3, 6}
	}
	r := stats.NewRand(7)
	var x [][]float64
	var y []int
	for c := 0; c < 3; c++ {
		for i := 0; i < m; i++ {
			x = append(x, []float64{12 * float64(c%2) * 1.5, 12 * float64(c/2) * 1.5})
			x[len(x)-1][0] += r.NormFloat64()
			x[len(x)-1][1] += r.NormFloat64()
			y = append(y, c)
		}
	}
	ds := dataset.MustNew("bench-blobs", x, y)
	cr := stats.NewRand(8)
	cons := constraints.Sample(cr, constraints.Pool(cr, y, 0.3), 0.5)
	start := time.Now()
	_, err := cvcp.Select(context.Background(), cvcp.Spec{
		Dataset:     ds,
		Grid:        cvcp.Grid{{Algorithm: cvcp.FOSCOpticsDend{}, Params: params}},
		Supervision: cvcp.ConstraintSet(cons),
		Options:     cvcp.Options{Seed: 9, NFolds: 4},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return time.Since(start).Nanoseconds()
}

func randRows(seed int64, n, d int) [][]float64 {
	r := stats.NewRand(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64()
		}
	}
	return rows
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func mustLoad(path string) []benchjson.Record {
	recs, err := benchjson.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return recs
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
