// Command cvcplint runs the repo's custom static-analysis suite — the
// analyzers in internal/analysis that mechanically enforce the
// determinism and concurrency contracts (bit-identical selections at
// any worker count, across restarts, and across distributed nodes).
//
// Usage:
//
//	cvcplint [-list] [-v] [packages ...]
//
// With no arguments it analyzes ./... from the current directory. The
// exit status is 0 when every finding is suppressed or absent, 2 when
// unsuppressed diagnostics remain (the vet convention), 1 on loader or
// type-checking errors. Suppress individual findings with
//
//	//cvcplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on (or immediately above) the flagged line; the reason is mandatory.
// See docs/static-analysis.md for the analyzer catalog.
package main

import (
	"flag"
	"fmt"
	"os"

	"cvcp/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cvcplint [-list] [-v] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	failures := 0
	for _, path := range loader.Targets() {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		for _, d := range analysis.Apply(pkg, analyzers) {
			if d.Suppressed {
				if *verbose {
					fmt.Printf("%s: [%s] suppressed: %s\n", d.Pos, d.Analyzer, d.Message)
				}
				continue
			}
			failures++
			fmt.Printf("%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "cvcplint: %d unsuppressed finding(s)\n", failures)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cvcplint: %v\n", err)
	os.Exit(1)
}
