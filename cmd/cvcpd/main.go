// Command cvcpd serves CVCP model selection over HTTP: clients POST a CSV
// dataset plus selection options, the server queues the job, runs its
// fold×parameter grid on a bounded machine-wide worker budget through the
// selection engine, and exposes status, results and a live progress stream.
//
//	cvcpd -addr :8080 -workers 8 -max-running 2 -store-dir /var/lib/cvcpd
//
// Endpoints (docs/api.md is the full reference):
//
//	POST   /v1/jobs             submit (CSV body + query options, multipart,
//	                            or JSON with inline CSV)
//	GET    /v1/jobs             list jobs, cursor-paginated (?limit=&cursor=)
//	GET    /v1/jobs/{id}        status, progress and result
//	DELETE /v1/jobs/{id}        cancel (a queued job leaves the queue at once)
//	GET    /v1/jobs/{id}/events progress as Server-Sent Events
//	POST   /v1/batches          submit N datasets sharing one option set
//	GET    /v1/batches/{id}     aggregate per-item batch status
//	GET    /healthz             liveness
//
// With -store-dir the job store is durable: every job transition and
// progress event is appended to a write-ahead log in that directory, and
// a restarted server lists the finished jobs — with their full SSE event
// histories, replayed with identical sequence numbers — and re-queues
// (and deterministically re-runs) whatever was interrupted. Without it,
// jobs live in memory only.
//
// The HTTP server runs with -read-header-timeout, -read-timeout and
// -idle-timeout armed but no global write timeout: SSE streams stay open
// as long as the job runs, protected instead by a per-event write
// deadline inside the handler.
//
// On SIGTERM/SIGINT the server stops accepting jobs, gives running and
// queued jobs -drain-timeout to finish, force-cancels whatever remains,
// compacts the store and exits.
//
// Distributed topologies (-role): a coordinator serves the same API but
// shards every distributable job's grid through the shared store, where
// worker processes — started with -role=worker over the same -store-dir —
// lease and compute the shards. Deterministic seeding makes any topology
// (including one that loses workers mid-shard) select bit-identically to
// a single process:
//
//	cvcpd -role=coordinator -store-dir /shared/cvcpd -addr :8080
//	cvcpd -role=worker      -store-dir /shared/cvcpd
//	cvcpd -role=worker      -store-dir /shared/cvcpd
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cvcp/internal/metrics"
	"cvcp/internal/server"
	"cvcp/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "global worker budget: fold×parameter tasks executing at once across ALL jobs (0 = one per CPU)")
		maxRunning   = flag.Int("max-running", 2, "jobs in the running state at once")
		queueDepth   = flag.Int("queue", 64, "bounded FIFO queue depth; submissions beyond it are rejected")
		retain       = flag.Int("retain", 64, "finished jobs kept before oldest-first eviction")
		maxBody      = flag.Int64("max-body", 32<<20, "request body size limit in bytes")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long a SIGTERM drain waits for jobs before force-cancelling")
		storeDir     = flag.String("store-dir", "", "directory for the durable job store (empty = in-memory, lost on exit)")
		readHeader   = flag.Duration("read-header-timeout", 10*time.Second, "time limit for reading a request's headers")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "time limit for reading a whole request, body included — size it to -max-body over your slowest client link (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
		role         = flag.String("role", "single", "topology role: single (compute in-process), coordinator (shard jobs into the shared store), worker (lease and compute shards; serves no API)")
		workerID     = flag.String("worker-id", "", "unique worker name in the topology (default hostname-pid)")
		shardCells   = flag.Int("shard-cells", 0, "coordinator: target grid cells per shard (0 = 16)")
		leaseTTL     = flag.Duration("lease-ttl", 0, "shard lease lifetime without heartbeat before reclaim (0 = 10s)")
		poll         = flag.Duration("poll", 0, "shard watch/scan interval (0 = 100ms)")
		metricsOn    = flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics on the API listener")
		pprofAddr    = flag.String("pprof-addr", "", "auxiliary listen address serving /debug/pprof/ and /metrics, every role including workers (empty = off)")
		apiKeys      = flag.String("api-keys", "", "API key file enabling tenant auth and weighted fair queueing (lines: <key> <tenant> [weight [max_queued]]; empty = open API)")
	)
	flag.Parse()

	cfg := server.Config{
		QueueDepth:     *queueDepth,
		MaxRunningJobs: *maxRunning,
		WorkerBudget:   *workers,
		RetainFinished: *retain,
		MaxBodyBytes:   *maxBody,
		ShardCells:     *shardCells,
		LeaseTTL:       *leaseTTL,
		Poll:           *poll,
		DisableMetrics: !*metricsOn,
	}
	if *apiKeys != "" {
		f, err := os.Open(*apiKeys)
		if err != nil {
			fatal(err)
		}
		tenants, err := server.ParseTenants(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("-api-keys %s: %w", *apiKeys, err))
		}
		cfg.Tenants = tenants
		fmt.Fprintf(os.Stderr, "cvcpd: API keys enabled for %d tenant(s)\n", len(tenants))
	}
	startAux(*pprofAddr)
	var closeStore func() error
	switch server.Role(*role) {
	case server.RoleSingle:
		if *storeDir != "" {
			fileStore, err := store.Open(*storeDir)
			if err != nil {
				fatal(err)
			}
			if n, err := fileStore.Len(); err == nil && n > 0 {
				fmt.Fprintf(os.Stderr, "cvcpd: replaying %d record(s) from %s\n", n, *storeDir)
			}
			cfg.Store = fileStore
			closeStore = fileStore.Close
		}
	case server.RoleCoordinator, server.RoleWorker:
		// Distributed roles share one store directory across processes;
		// the multi-process store coordinates through a file lock.
		if *storeDir == "" {
			fatal(fmt.Errorf("-role=%s requires -store-dir (the topology's shared store)", *role))
		}
		shared, err := store.OpenShared(*storeDir)
		if err != nil {
			fatal(err)
		}
		cfg.Store = shared
		cfg.Role = server.Role(*role)
		closeStore = shared.Close
	default:
		fatal(fmt.Errorf("unknown -role %q (want single, coordinator or worker)", *role))
	}

	if cfg.Role == server.RoleWorker {
		runWorker(cfg, *workerID, *workers, *leaseTTL, *poll, closeStore)
		return
	}

	mgr := server.NewManager(cfg)
	// No WriteTimeout: a global one would kill every SSE stream that
	// outlives it. The SSE handler arms a per-event write deadline
	// instead (and clears the read deadline for the stream's lifetime),
	// so dead clients still tear down within one timeout.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewHandler(mgr),
		ReadHeaderTimeout: *readHeader,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	ecfg := mgr.Config()
	fmt.Fprintf(os.Stderr, "cvcpd: listening on %s (workers=%d, max-running=%d, queue=%d)\n",
		*addr, ecfg.WorkerBudget, ecfg.MaxRunningJobs, ecfg.QueueDepth)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: reject new submissions, let accepted jobs finish (the
	// manager force-cancels them when the drain deadline passes), then close
	// the listener — by now every SSE stream has received its terminal event.
	fmt.Fprintln(os.Stderr, "cvcpd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cvcpd: drain deadline hit, jobs force-cancelled: %v\n", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	// Compact the final job states into the snapshot after the drain, so
	// the next start replays a clean store.
	if closeStore != nil {
		if err := closeStore(); err != nil {
			fmt.Fprintf(os.Stderr, "cvcpd: closing job store: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "cvcpd: bye")
}

// runWorker is the headless worker role: no HTTP server, no job manager —
// just the shard lease/compute loop against the shared store until
// SIGTERM/SIGINT.
func runWorker(cfg server.Config, id string, workers int, leaseTTL, poll time.Duration, closeStore func() error) {
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "cvcpd: worker %s computing shards (workers=%d)\n", id, workers)
	err := server.RunWorker(ctx, server.WorkerConfig{
		Store:    cfg.Store,
		ID:       id,
		Workers:  workers,
		LeaseTTL: leaseTTL,
		Poll:     poll,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "cvcpd:", err)
	}
	if closeStore != nil {
		if err := closeStore(); err != nil {
			fmt.Fprintf(os.Stderr, "cvcpd: closing job store: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "cvcpd: bye")
}

// startAux serves the operational auxiliary listener — /debug/pprof/ and
// /metrics — when -pprof-addr is set. It runs for every role: workers have
// no API listener, so this is their only exposition surface. The listener
// is deliberately separate from the API so profiling and scraping can stay
// on a private interface while the API faces clients.
func startAux(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", metrics.Handler())
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "cvcpd: pprof and metrics on %s\n", addr)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "cvcpd: pprof listener: %v\n", err)
		}
	}()
}

func fatal(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cvcpd:", err)
		os.Exit(1)
	}
}
