package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// e2eDataset builds a deterministic labeled three-cluster CSV, large
// enough that a distributed run spans many shards and survives losing a
// worker mid-grid.
func e2eDataset() string {
	var b strings.Builder
	for i := 0; i < 300; i++ {
		cl := i % 3
		bx, by := 0.0, 0.0
		switch cl {
		case 1:
			bx = 12
		case 2:
			by = 12
		}
		fmt.Fprintf(&b, "%g,%g,%d\n", bx+0.3*float64(i%7), by+0.2*float64(i%5), cl)
	}
	return b.String()
}

const e2eQuery = "name=blobs&algorithm=fosc&params=3,4,5,6,7,8&folds=3&seed=7&label_fraction=0.4&has_label=1"

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// startCvcpd launches one cvcpd process and returns it with its stderr
// buffer. The caller owns termination.
func startCvcpd(t *testing.T, bin string, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	cmd.Stdout = &errBuf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, &errBuf
}

func waitHealthy(t *testing.T, addr string, logs *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server on %s never became healthy; logs:\n%s", addr, logs.String())
}

// submitAndWait submits the e2e job as a raw CSV body and polls until it
// is terminal, returning the final job document.
func submitAndWait(t *testing.T, addr, csv string, onRunning func()) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/jobs?"+e2eQuery, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil || created.ID == "" {
		t.Fatalf("submit: status %d, decode err %v", resp.StatusCode, err)
	}

	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]json.RawMessage
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var status string
		_ = json.Unmarshal(doc["status"], &status)
		switch status {
		case "running":
			if onRunning != nil {
				onRunning()
				onRunning = nil
			}
		case "done":
			return doc
		case "failed", "cancelled":
			var msg string
			_ = json.Unmarshal(doc["error"], &msg)
			t.Fatalf("job %s finished as %s: %s", created.ID, status, msg)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return nil
}

func terminate(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		<-done
	}
}

// TestE2ETopologyBitIdentical is the process-level topology smoke CI
// runs: real cvcpd binaries — one single-node, then one coordinator with
// two workers over a shared store directory — must produce byte-identical
// result documents for the same submission, even though one worker is
// SIGKILLed while the job runs and its leased shards must be reclaimed
// and recomputed by the survivor.
func TestE2ETopologyBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "cvcpd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building cvcpd: %v\n%s", err, out)
	}
	csv := e2eDataset()

	// Reference: one single-node server, in-memory store.
	singleAddr := freePort(t)
	single, singleLogs := startCvcpd(t, bin, "-role=single", "-addr", singleAddr, "-workers", "2")
	defer terminate(single)
	waitHealthy(t, singleAddr, singleLogs)
	want := submitAndWait(t, singleAddr, csv, nil)
	terminate(single)

	// Topology: coordinator + two workers over one shared store
	// directory. Short lease TTL so the killed worker's shards reclaim
	// quickly.
	dir := t.TempDir()
	coordAddr := freePort(t)
	shared := []string{"-store-dir", dir, "-lease-ttl", "500ms", "-poll", "5ms"}
	coord, coordLogs := startCvcpd(t, bin, append([]string{"-role=coordinator", "-addr", coordAddr, "-shard-cells", "2"}, shared...)...)
	defer terminate(coord)
	w1, _ := startCvcpd(t, bin, append([]string{"-role=worker", "-worker-id", "w1", "-workers", "2"}, shared...)...)
	defer terminate(w1)
	w2, _ := startCvcpd(t, bin, append([]string{"-role=worker", "-worker-id", "w2", "-workers", "2"}, shared...)...)
	defer terminate(w2)
	waitHealthy(t, coordAddr, coordLogs)

	got := submitAndWait(t, coordAddr, csv, func() {
		// The job is running (its shards are being computed): kill one
		// worker the hard way. Whatever it held mid-shard must expire and
		// recompute — to the same bits — on the survivor.
		_ = w1.Process.Kill() // SIGKILL: no drain, no cleanup
	})

	// Byte-equal result documents ARE bit-identical selections: Go's
	// float JSON encoding is the shortest exact representation, so equal
	// text means equal float64 bits for every score, and equal labels.
	if string(got["result"]) != string(want["result"]) {
		t.Fatalf("distributed result differs from single-node:\n got: %s\nwant: %s", got["result"], want["result"])
	}
}
