// Package cvcp is a from-scratch Go implementation of CVCP —
// "Cross-Validation for finding Clustering Parameters" — the model-selection
// framework for semi-supervised clustering of Pourrajabi, Moulavi, Campello,
// Zimek, Sander and Goebel (EDBT 2014), together with every component the
// paper's evaluation depends on: the FOSC-OPTICSDend density-based
// semi-supervised clustering method, MPCK-Means, constraint machinery with
// transitive closure, leakage-free cross-validation fold construction, and
// the internal/external evaluation measures.
//
// # Quick start
//
// Scenario I — the user can label a few objects:
//
//	ds, _ := cvcp.LoadCSV("mydata", "mydata.csv", true)
//	labeled := ds.SampleLabels(rng, 0.10) // or indices the user labeled
//	sel, _ := cvcp.SelectWithLabels(cvcp.FOSCOpticsDend{}, ds, labeled,
//		cvcp.DefaultMinPtsRange, cvcp.Options{Seed: 1})
//	fmt.Println("best MinPts:", sel.Best.Param)
//	use(sel.FinalLabels)
//
// Scenario II — the user has must-link / cannot-link constraints:
//
//	cons := cvcp.NewConstraints()
//	cons.Add(3, 17, true)  // must-link
//	cons.Add(3, 42, false) // cannot-link
//	sel, _ := cvcp.SelectWithConstraints(cvcp.MPCKMeans{}, ds, cons,
//		cvcp.KRange(2, 10), cvcp.Options{Seed: 1})
//
// The examples/ directory contains complete runnable programs, and
// cmd/experiments regenerates every table and figure of the paper.
//
// # Concurrency
//
// The cross-validation grid — every (candidate parameter, fold) pair — is
// scheduled onto a bounded worker pool, controlled by four Options fields:
//
//   - Workers bounds this selection's concurrency (0 = serial, -1 = one
//     worker per CPU, any positive value an explicit bound);
//   - Context cancels a selection mid-grid (the selection returns the
//     context's error);
//   - Progress observes completion: it is called after every finished
//     fold×parameter task with (done, total), serialized and monotone;
//   - Limiter, when non-nil, draws every task's execution slot from a
//     budget shared with other selections — multi-tenant callers (e.g.
//     the cvcpd server) bound machine-wide load with one Limiter while
//     Workers still bounds each selection.
//
// # Determinism
//
// Selections are bit-identical for every Workers value and Limiter
// budget: per-task seeds derive from grid position, never from scheduling
// order, every task writes only its own result slot, and error reporting
// picks the lowest-indexed failure. Expensive intermediates that depend
// only on the dataset (pairwise distances, OPTICS orderings per MinPts)
// are shared across folds, parameters and the final clustering through a
// single-flight cache, which changes cost, never results.
package cvcp

import (
	"io"
	"math/rand"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Dataset is a numeric dataset with optional ground-truth class labels.
type Dataset = dataset.Dataset

// Constraints is a deduplicated set of pairwise must-link / cannot-link
// constraints.
type Constraints = constraints.Set

// Constraint is a single pairwise constraint.
type Constraint = constraints.Constraint

// Algorithm is a semi-supervised clustering algorithm with one integer
// parameter under selection.
type Algorithm = corecvcp.Algorithm

// Options configures a model-selection run.
type Options = corecvcp.Options

// Limiter is a global execution budget shared by several selections: when
// set on Options.Limiter, the total number of fold×parameter tasks running
// across all selections holding the same Limiter never exceeds its
// capacity. cmd/cvcpd uses one Limiter as its server-wide worker budget.
type Limiter = runner.Limiter

// NewLimiter returns a Limiter with n execution slots (minimum 1).
func NewLimiter(n int) *Limiter { return runner.NewLimiter(n) }

// Selection is the outcome of a model-selection run.
type Selection = corecvcp.Selection

// ParamScore is the cross-validated quality of one candidate parameter.
type ParamScore = corecvcp.ParamScore

// FOSCOpticsDend is the density-based semi-supervised clustering method
// (parameter: MinPts).
type FOSCOpticsDend = corecvcp.FOSCOpticsDend

// MPCKMeans is metric pairwise constrained k-means (parameter: k).
type MPCKMeans = corecvcp.MPCKMeans

// COPKMeans is hard-constrained k-means (Wagstaff et al. 2001; parameter:
// k) — the additional method the paper's future work calls for.
type COPKMeans = corecvcp.COPKMeans

// Candidate pairs an algorithm with its parameter range for cross-method
// selection.
type Candidate = corecvcp.Candidate

// AlgorithmSelection is the outcome of a cross-method selection.
type AlgorithmSelection = corecvcp.AlgorithmSelection

// DefaultMinPtsRange is the MinPts candidate range the paper uses for
// FOSC-OPTICSDend: {3, 6, 9, 12, 15, 18, 21, 24}.
var DefaultMinPtsRange = corecvcp.DefaultMinPtsRange

// KRange returns the candidate range {lo, ..., hi} for the number of
// clusters. The paper uses 2..M with M a reasonable upper bound.
func KRange(lo, hi int) []int { return corecvcp.KRange(lo, hi) }

// NewDataset validates x (and y, if non-nil) and wraps them in a Dataset.
func NewDataset(name string, x [][]float64, y []int) (*Dataset, error) {
	return dataset.New(name, x, y)
}

// LoadCSV reads a dataset from a CSV file; when hasLabel is true the last
// column is the integer class label.
func LoadCSV(name, path string, hasLabel bool) (*Dataset, error) {
	return dataset.LoadCSV(name, path, hasLabel)
}

// ReadCSV parses a dataset from CSV.
func ReadCSV(name string, r io.Reader, hasLabel bool) (*Dataset, error) {
	return dataset.ReadCSV(name, r, hasLabel)
}

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints { return constraints.NewSet() }

// ConstraintsFromLabels derives all pairwise constraints among the given
// labeled objects: must-link for same-label pairs, cannot-link otherwise.
func ConstraintsFromLabels(indices []int, y []int) *Constraints {
	return constraints.FromLabels(indices, y)
}

// TransitiveClosure extends a constraint set to its transitive closure,
// reporting an error for inconsistent inputs.
func TransitiveClosure(s *Constraints) (*Constraints, error) {
	return constraints.Closure(s)
}

// SelectWithLabels runs CVCP in Scenario I: supervision is a set of labeled
// objects (indices into ds; labels are read from ds.Y).
func SelectWithLabels(alg Algorithm, ds *Dataset, labeledIdx []int, params []int, opt Options) (*Selection, error) {
	return corecvcp.SelectWithLabels(alg, ds, labeledIdx, params, opt)
}

// SelectWithConstraints runs CVCP in Scenario II: supervision is a set of
// pairwise constraints.
func SelectWithConstraints(alg Algorithm, ds *Dataset, cons *Constraints, params []int, opt Options) (*Selection, error) {
	return corecvcp.SelectWithConstraints(alg, ds, cons, params, opt)
}

// ValidityIndex is a relative clustering validity criterion usable as an
// unsupervised model-selection baseline.
type ValidityIndex = corecvcp.ValidityIndex

// ValidityIndices returns Silhouette, Davies–Bouldin, Calinski–Harabasz and
// Dunn — the classical criteria from the comparative study the paper cites.
func ValidityIndices() []ValidityIndex { return corecvcp.ValidityIndices() }

// SelectByValidityIndex picks the parameter whose full-supervision
// clustering optimizes the given relative validity criterion.
func SelectByValidityIndex(alg Algorithm, ds *Dataset, full *Constraints, params []int, vi ValidityIndex, opt Options) (*Selection, error) {
	return corecvcp.SelectByValidityIndex(alg, ds, full, params, vi, opt)
}

// SelectBySilhouette is the classical unsupervised model-selection baseline:
// pick the parameter whose full-supervision clustering maximizes the
// Silhouette coefficient.
func SelectBySilhouette(alg Algorithm, ds *Dataset, full *Constraints, params []int, opt Options) (*Selection, error) {
	return corecvcp.SelectBySilhouette(alg, ds, full, params, opt)
}

// SelectAlgorithmWithLabels runs CVCP across several candidate algorithms
// on the same Scenario I supervision and returns the best method+parameter
// combination — the cross-paradigm extension of the paper's future work.
func SelectAlgorithmWithLabels(cands []Candidate, ds *Dataset, labeledIdx []int, opt Options) (*AlgorithmSelection, error) {
	return corecvcp.SelectAlgorithmWithLabels(cands, ds, labeledIdx, opt)
}

// SelectAlgorithmWithConstraints is SelectAlgorithmWithLabels for
// Scenario II supervision.
func SelectAlgorithmWithConstraints(cands []Candidate, ds *Dataset, cons *Constraints, opt Options) (*AlgorithmSelection, error) {
	return corecvcp.SelectAlgorithmWithConstraints(cands, ds, cons, opt)
}

// BootstrapWithLabels scores parameters by bootstrap resampling instead of
// cross-validation — the alternative partition-based evaluation mentioned
// in the paper's Section 3.1.
func BootstrapWithLabels(alg Algorithm, ds *Dataset, labeledIdx []int, params []int, rounds int, opt Options) (*Selection, error) {
	return corecvcp.BootstrapWithLabels(alg, ds, labeledIdx, params, rounds, opt)
}

// ConstraintF scores a labeling as a classifier over the given constraints —
// the paper's internal quality measure (average per-class F-measure).
func ConstraintF(labels []int, cons *Constraints) float64 {
	return eval.ConstraintF(labels, cons)
}

// OverallF computes the Overall F-Measure between a labeling and the ground
// truth over the evaluation objects (all objects when evalIdx is nil).
func OverallF(labels, truth []int, evalIdx []int) float64 {
	return eval.OverallF(labels, truth, evalIdx)
}

// Silhouette computes the mean Silhouette coefficient of a labeling.
func Silhouette(x [][]float64, labels []int) float64 {
	return eval.Silhouette(x, labels)
}

// NewRand returns a deterministic random source for use with the sampling
// helpers on Dataset.
func NewRand(seed int64) *rand.Rand { return stats.NewRand(seed) }

// ConstraintPool builds the paper's candidate constraint pool: objFrac of
// the objects of each class, all pairwise constraints among them.
func ConstraintPool(r *rand.Rand, y []int, objFrac float64) *Constraints {
	return constraints.Pool(r, y, objFrac)
}

// SampleConstraints draws a uniform subset containing frac of the
// constraints in s.
func SampleConstraints(r *rand.Rand, s *Constraints, frac float64) *Constraints {
	return constraints.Sample(r, s, frac)
}
