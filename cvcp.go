// Package cvcp is a from-scratch Go implementation of CVCP —
// "Cross-Validation for finding Clustering Parameters" — the model-selection
// framework for semi-supervised clustering of Pourrajabi, Moulavi, Campello,
// Zimek, Sander and Goebel (EDBT 2014), together with every component the
// paper's evaluation depends on: the FOSC-OPTICSDend density-based
// semi-supervised clustering method, MPCK-Means, constraint machinery with
// transitive closure, leakage-free cross-validation fold construction, and
// the internal/external evaluation measures.
//
// # Quick start
//
// Model selection is one call, Select(ctx, Spec): a Spec names the dataset,
// a Grid of candidate (algorithm, parameter-range) pairs, the Supervision
// (Scenario I labels or Scenario II constraints) and a Scorer strategy.
//
// Scenario I — the user can label a few objects:
//
//	ds, _ := cvcp.LoadCSV("mydata", "mydata.csv", true)
//	labeled := ds.SampleLabels(rng, 0.10) // or indices the user labeled
//	res, _ := cvcp.Select(ctx, cvcp.Spec{
//		Dataset:     ds,
//		Grid:        cvcp.Grid{{Algorithm: cvcp.FOSCOpticsDend{}, Params: cvcp.DefaultMinPtsRange}},
//		Supervision: cvcp.Labels(labeled),
//		Options:     cvcp.Options{Seed: 1},
//	})
//	fmt.Println("best MinPts:", res.Winner.Best.Param)
//	use(res.Winner.FinalLabels)
//
// Scenario II — the user has must-link / cannot-link constraints:
//
//	cons := cvcp.NewConstraints()
//	cons.Add(3, 17, true)  // must-link
//	cons.Add(3, 42, false) // cannot-link
//	res, _ := cvcp.Select(ctx, cvcp.Spec{
//		Dataset:     ds,
//		Grid:        cvcp.Grid{{Algorithm: cvcp.MPCKMeans{}, Params: cvcp.KRange(2, 10)}},
//		Supervision: cvcp.ConstraintSet(cons),
//		Options:     cvcp.Options{Seed: 1},
//	})
//
// Everything composes along three orthogonal axes:
//
//   - Grid — one candidate is parameter selection; several candidates are
//     cross-method selection (the whole grid runs as one engine dispatch,
//     sharing one worker pool, one Limiter and one run cache);
//   - Supervision — Labels(idx) or ConstraintSet(cons);
//   - Scorer — nil/CrossValidation{} (the paper's CVCP criterion),
//     Bootstrap{Rounds: n} (resampling), or Validity{Index: vi} (the
//     classical unsupervised baselines).
//
// The historical entry points (SelectWithLabels, SelectWithConstraints,
// SelectAlgorithmWith*, BootstrapWithLabels, SelectByValidityIndex,
// SelectBySilhouette) remain as thin deprecated wrappers over Select and
// return bit-identical results.
//
// The examples/ directory contains complete runnable programs, and
// cmd/experiments regenerates every table and figure of the paper.
//
// # Concurrency
//
// The scoring grid — every (candidate, parameter, fold) cell — is
// scheduled onto a bounded worker pool, controlled by four Options fields:
//
//   - Workers bounds this selection's concurrency (0 = serial, -1 = one
//     worker per CPU, any positive value an explicit bound);
//   - Context cancels a selection mid-grid (the ctx argument of Select
//     supersedes it when non-nil);
//   - Progress observes completion: it is called after every finished
//     grid task with (done, total), serialized and monotone;
//   - Limiter, when non-nil, draws every task's execution slot from a
//     budget shared with other selections — multi-tenant callers (e.g.
//     the cvcpd server) bound machine-wide load with one Limiter while
//     Workers still bounds each selection.
//
// # Determinism
//
// Selections are bit-identical for every Workers value and Limiter
// budget: per-task seeds derive from grid position, never from scheduling
// order, every task writes only its own result slot, and error reporting
// picks the lowest-indexed failure. A multi-candidate Select is
// bit-identical to selecting each candidate alone. Expensive intermediates
// that depend only on the dataset (pairwise distances, OPTICS orderings per
// MinPts) are shared across folds, parameters, candidates and the final
// clustering through a single-flight cache, which changes cost, never
// results.
package cvcp

import (
	"context"
	"io"
	"math/rand"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Dataset is a numeric dataset with optional ground-truth class labels.
type Dataset = dataset.Dataset

// Constraints is a deduplicated set of pairwise must-link / cannot-link
// constraints.
type Constraints = constraints.Set

// Constraint is a single pairwise constraint.
type Constraint = constraints.Constraint

// Algorithm is a semi-supervised clustering algorithm with one integer
// parameter under selection.
type Algorithm = corecvcp.Algorithm

// Options configures a model-selection run.
type Options = corecvcp.Options

// Spec is the declarative description of one model selection: dataset,
// candidate Grid, Supervision and Scorer. See Select.
type Spec = corecvcp.Spec

// Grid is the candidate set of one selection; each entry pairs an algorithm
// with its parameter range.
type Grid = corecvcp.Grid

// Result is the outcome of a unified selection: every candidate's Selection
// plus the overall winner.
type Result = corecvcp.Result

// Supervision is the partial ground truth driving a selection; Labels and
// ConstraintSet are the two scenarios.
type Supervision = corecvcp.Supervision

// Fold is one train/test split of supervision in constraint form, as
// produced by a Supervision for the partition-based scorers.
type Fold = corecvcp.Fold

// Scorer is the pluggable scoring strategy of a selection; CrossValidation,
// Bootstrap and Validity are the built-in implementations.
type Scorer = corecvcp.Scorer

// CrossValidation scores candidates by n-fold cross-validation — the
// paper's CVCP criterion and the default Scorer.
type CrossValidation = corecvcp.CrossValidation

// Bootstrap scores candidates by bootstrap resampling (out-of-bag testing)
// instead of cross-validation.
type Bootstrap = corecvcp.Bootstrap

// Validity scores candidates by a relative clustering validity index — the
// classical unsupervised model-selection baseline.
type Validity = corecvcp.Validity

// ScorerByName maps a scoring-strategy name ("cv", "bootstrap", or a
// validity index name) onto its Scorer implementation; every name-based
// surface (cmd/cvcp -scorer, the cvcpd job spec) shares this mapping.
func ScorerByName(name string, rounds int) (Scorer, error) {
	return corecvcp.ScorerByName(name, rounds)
}

// ScorerNames returns every name ScorerByName accepts.
func ScorerNames() []string { return corecvcp.ScorerNames() }

// Select is the single entry point of the framework: it scores every
// candidate of spec.Grid against spec.Supervision with spec.Scorer (nil
// means CrossValidation{}) and returns the per-candidate selections plus
// the overall winner. The whole workload dispatches through the execution
// engine as one run; ctx cancels it mid-grid.
func Select(ctx context.Context, spec Spec) (*Result, error) {
	return corecvcp.Select(ctx, spec)
}

// Labels is Scenario I supervision: the objects at the given indices are
// labeled (labels are read from the dataset's Y column).
func Labels(idx []int) Supervision { return corecvcp.Labels(idx) }

// ConstraintSet is Scenario II supervision: a set of pairwise must-link /
// cannot-link constraints.
func ConstraintSet(cons *Constraints) Supervision { return corecvcp.ConstraintSet(cons) }

// Limiter is a global execution budget shared by several selections: when
// set on Options.Limiter, the total number of grid tasks running across all
// selections holding the same Limiter never exceeds its capacity.
// cmd/cvcpd uses one Limiter as its server-wide worker budget.
type Limiter = runner.Limiter

// NewLimiter returns a Limiter with n execution slots (minimum 1).
func NewLimiter(n int) *Limiter { return runner.NewLimiter(n) }

// Selection is the outcome of scoring one grid candidate.
type Selection = corecvcp.Selection

// ParamScore is the cross-validated quality of one candidate parameter.
type ParamScore = corecvcp.ParamScore

// FOSCOpticsDend is the density-based semi-supervised clustering method
// (parameter: MinPts).
type FOSCOpticsDend = corecvcp.FOSCOpticsDend

// MPCKMeans is metric pairwise constrained k-means (parameter: k).
type MPCKMeans = corecvcp.MPCKMeans

// COPKMeans is hard-constrained k-means (Wagstaff et al. 2001; parameter:
// k) — the additional method the paper's future work calls for.
type COPKMeans = corecvcp.COPKMeans

// Candidate pairs an algorithm with its parameter range — one entry of a
// Grid.
type Candidate = corecvcp.Candidate

// AlgorithmSelection is the outcome of a legacy cross-method selection; new
// code reads Result instead.
type AlgorithmSelection = corecvcp.AlgorithmSelection

// DefaultMinPtsRange is the MinPts candidate range the paper uses for
// FOSC-OPTICSDend: {3, 6, 9, 12, 15, 18, 21, 24}.
var DefaultMinPtsRange = corecvcp.DefaultMinPtsRange

// KRange returns the candidate range {lo, ..., hi} for the number of
// clusters. The paper uses 2..M with M a reasonable upper bound.
func KRange(lo, hi int) []int { return corecvcp.KRange(lo, hi) }

// NewDataset validates x (and y, if non-nil) and wraps them in a Dataset.
func NewDataset(name string, x [][]float64, y []int) (*Dataset, error) {
	return dataset.New(name, x, y)
}

// LoadCSV reads a dataset from a CSV file; when hasLabel is true the last
// column is the integer class label.
func LoadCSV(name, path string, hasLabel bool) (*Dataset, error) {
	return dataset.LoadCSV(name, path, hasLabel)
}

// ReadCSV parses a dataset from CSV.
func ReadCSV(name string, r io.Reader, hasLabel bool) (*Dataset, error) {
	return dataset.ReadCSV(name, r, hasLabel)
}

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints { return constraints.NewSet() }

// ConstraintsFromLabels derives all pairwise constraints among the given
// labeled objects: must-link for same-label pairs, cannot-link otherwise.
func ConstraintsFromLabels(indices []int, y []int) *Constraints {
	return constraints.FromLabels(indices, y)
}

// TransitiveClosure extends a constraint set to its transitive closure,
// reporting an error for inconsistent inputs.
func TransitiveClosure(s *Constraints) (*Constraints, error) {
	return constraints.Closure(s)
}

// SelectWithLabels runs CVCP in Scenario I: supervision is a set of labeled
// objects (indices into ds; labels are read from ds.Y).
//
// Deprecated: use Select with Supervision: Labels(labeledIdx); this
// compatibility shim returns bit-identical results.
func SelectWithLabels(alg Algorithm, ds *Dataset, labeledIdx []int, params []int, opt Options) (*Selection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectWithLabels(alg, ds, labeledIdx, params, opt)
}

// SelectWithConstraints runs CVCP in Scenario II: supervision is a set of
// pairwise constraints.
//
// Deprecated: use Select with Supervision: ConstraintSet(cons); this
// compatibility shim returns bit-identical results.
func SelectWithConstraints(alg Algorithm, ds *Dataset, cons *Constraints, params []int, opt Options) (*Selection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectWithConstraints(alg, ds, cons, params, opt)
}

// ValidityIndex is a relative clustering validity criterion usable as an
// unsupervised model-selection baseline.
type ValidityIndex = corecvcp.ValidityIndex

// ValidityIndices returns Silhouette, Davies–Bouldin, Calinski–Harabasz and
// Dunn — the classical criteria from the comparative study the paper cites.
func ValidityIndices() []ValidityIndex { return corecvcp.ValidityIndices() }

// SelectByValidityIndex picks the parameter whose full-supervision
// clustering optimizes the given relative validity criterion.
//
// Deprecated: use Select with Scorer: Validity{Index: vi}; this
// compatibility shim returns bit-identical results.
func SelectByValidityIndex(alg Algorithm, ds *Dataset, full *Constraints, params []int, vi ValidityIndex, opt Options) (*Selection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectByValidityIndex(alg, ds, full, params, vi, opt)
}

// SelectBySilhouette is the classical unsupervised model-selection baseline:
// pick the parameter whose full-supervision clustering maximizes the
// Silhouette coefficient.
//
// Deprecated: use Select with Scorer: Validity over the silhouette index
// from ValidityIndices(); this compatibility shim returns bit-identical
// results.
func SelectBySilhouette(alg Algorithm, ds *Dataset, full *Constraints, params []int, opt Options) (*Selection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectBySilhouette(alg, ds, full, params, opt)
}

// SelectAlgorithmWithLabels runs CVCP across several candidate algorithms
// on the same Scenario I supervision and returns the best method+parameter
// combination.
//
// Deprecated: use Select with a multi-candidate Grid; this compatibility
// shim returns bit-identical results.
func SelectAlgorithmWithLabels(cands []Candidate, ds *Dataset, labeledIdx []int, opt Options) (*AlgorithmSelection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectAlgorithmWithLabels(cands, ds, labeledIdx, opt)
}

// SelectAlgorithmWithConstraints is SelectAlgorithmWithLabels for
// Scenario II supervision.
//
// Deprecated: use Select with a multi-candidate Grid; this compatibility
// shim returns bit-identical results.
func SelectAlgorithmWithConstraints(cands []Candidate, ds *Dataset, cons *Constraints, opt Options) (*AlgorithmSelection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.SelectAlgorithmWithConstraints(cands, ds, cons, opt)
}

// BootstrapWithLabels scores parameters by bootstrap resampling instead of
// cross-validation — the alternative partition-based evaluation mentioned
// in the paper's Section 3.1.
//
// Deprecated: use Select with Scorer: Bootstrap{Rounds: rounds}; this
// compatibility shim returns bit-identical results.
func BootstrapWithLabels(alg Algorithm, ds *Dataset, labeledIdx []int, params []int, rounds int, opt Options) (*Selection, error) {
	//lint:ignore SA1019 compatibility shim delegating to the deprecated core wrapper
	return corecvcp.BootstrapWithLabels(alg, ds, labeledIdx, params, rounds, opt)
}

// ConstraintF scores a labeling as a classifier over the given constraints —
// the paper's internal quality measure (average per-class F-measure).
func ConstraintF(labels []int, cons *Constraints) float64 {
	return eval.ConstraintF(labels, cons)
}

// OverallF computes the Overall F-Measure between a labeling and the ground
// truth over the evaluation objects (all objects when evalIdx is nil).
func OverallF(labels, truth []int, evalIdx []int) float64 {
	return eval.OverallF(labels, truth, evalIdx)
}

// Silhouette computes the mean Silhouette coefficient of a labeling.
func Silhouette(x [][]float64, labels []int) float64 {
	return eval.Silhouette(x, labels)
}

// NewRand returns a deterministic random source for use with the sampling
// helpers on Dataset.
func NewRand(seed int64) *rand.Rand { return stats.NewRand(seed) }

// ConstraintPool builds the paper's candidate constraint pool: objFrac of
// the objects of each class, all pairwise constraints among them.
func ConstraintPool(r *rand.Rand, y []int, objFrac float64) *Constraints {
	return constraints.Pool(r, y, objFrac)
}

// SampleConstraints draws a uniform subset containing frac of the
// constraints in s.
func SampleConstraints(r *rand.Rand, s *Constraints, frac float64) *Constraints {
	return constraints.Sample(r, s, frac)
}
