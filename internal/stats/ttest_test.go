package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference quantiles of the Student-t distribution: P(T <= q) = p.
// Values from standard t tables.
func TestStudentTCDFKnownQuantiles(t *testing.T) {
	cases := []struct {
		df, q, p float64
	}{
		{1, 1.000, 0.75},
		{1, 6.314, 0.95},
		{2, 2.920, 0.95},
		{5, 2.015, 0.95},
		{10, 1.812, 0.95},
		{10, 2.228, 0.975},
		{30, 1.697, 0.95},
		{30, 2.042, 0.975},
		{100, 1.984, 0.975},
	}
	for _, c := range cases {
		got := StudentTCDF(c.q, c.df)
		if math.Abs(got-c.p) > 2e-3 {
			t.Errorf("StudentTCDF(%v, df=%v) = %v, want %v", c.q, c.df, got, c.p)
		}
	}
}

func TestStudentTSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 10, 50} {
		for _, q := range []float64{0.1, 0.7, 1.5, 3} {
			left := StudentTCDF(-q, df)
			right := 1 - StudentTCDF(q, df)
			if math.Abs(left-right) > 1e-9 {
				t.Errorf("symmetry violated at q=%v df=%v: %v vs %v", q, df, left, right)
			}
		}
	}
	if got := StudentTCDF(0, 7); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CDF(0) = %v, want 0.5", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	x := 0.3
	want := x * x * (3 - 2*x)
	if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
		t.Errorf("I_.3(2,2) = %v, want %v", got, want)
	}
	if RegIncBeta(3, 4, 0) != 0 || RegIncBeta(3, 4, 1) != 1 {
		t.Error("boundary values")
	}
}

// Property: RegIncBeta is within [0,1] and non-decreasing in x.
func TestRegIncBetaMonotone(t *testing.T) {
	f := func(ai, bi uint8, x1, x2 float64) bool {
		a := float64(ai%20)/2 + 0.5
		b := float64(bi%20)/2 + 0.5
		x1 = math.Abs(math.Mod(x1, 1))
		x2 = math.Abs(math.Mod(x2, 1))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1 := RegIncBeta(a, b, x1)
		v2 := RegIncBeta(a, b, x2)
		return v1 >= -1e-12 && v2 <= 1+1e-12 && v1 <= v2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairedTTestSignificant(t *testing.T) {
	a := []float64{2.1, 2.0, 2.2, 2.1, 2.3, 2.2, 2.0, 2.1}
	b := []float64{1.0, 1.1, 0.9, 1.0, 1.2, 1.0, 1.1, 0.9}
	res, err := PairedTTest(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.MeanDiff <= 0 {
		t.Errorf("expected a significant positive difference, got %+v", res)
	}
	if res.DF != 7 {
		t.Errorf("DF = %d, want 7", res.DF)
	}
}

func TestPairedTTestNotSignificant(t *testing.T) {
	a := []float64{1.0, 2.0, 3.0, 4.0}
	b := []float64{1.1, 1.9, 3.2, 3.8}
	res, err := PairedTTest(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Errorf("expected no significance, got %+v", res)
	}
}

func TestPairedTTestKnownStatistic(t *testing.T) {
	// Differences: 1,1,1,3 -> mean 1.5, sd 1, t = 1.5/(1/2) = 3, df=3,
	// two-sided p ≈ 0.0577.
	a := []float64{2, 3, 4, 8}
	b := []float64{1, 2, 3, 5}
	res, err := PairedTTest(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.T-3) > 1e-9 {
		t.Errorf("T = %v, want 3", res.T)
	}
	if math.Abs(res.P-0.0577) > 2e-3 {
		t.Errorf("P = %v, want ~0.0577", res.P)
	}
	if res.Significant {
		t.Error("p=0.058 must not be significant at 0.05")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{2}, 0.05); err == nil {
		t.Error("expected error for n<2")
	}
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}, 0.05); err == nil {
		t.Error("expected error for length mismatch")
	}
	// Identical samples: zero variance, zero mean difference.
	res, err := PairedTTest([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant || res.P != 1 {
		t.Errorf("identical samples: %+v", res)
	}
	// Constant shift: zero variance, nonzero difference.
	res, err = PairedTTest([]float64{2, 3, 4}, []float64{1, 2, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant || res.P != 0 {
		t.Errorf("constant shift: %+v", res)
	}
}

// Property: the p-value is within [0,1] and symmetric under swapping the
// sample order.
func TestPairedTTestProperties(t *testing.T) {
	f := func(pairs [6][2]float64) bool {
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i, p := range pairs {
			// Keep inputs in a range where differences cannot overflow.
			a[i] = math.Mod(p[0], 1e6)
			b[i] = math.Mod(p[1], 1e6)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		r1, err1 := PairedTTest(a, b, 0.05)
		r2, err2 := PairedTTest(b, a, 0.05)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		return r1.P >= 0 && r1.P <= 1 && math.Abs(r1.P-r2.P) < 1e-9 &&
			math.Abs(r1.MeanDiff+r2.MeanDiff) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
