package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/singleton edge cases")
	}
}

func TestMedianQuantile(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q.25 = %v, want 2", got)
	}
}

func TestSummary(t *testing.T) {
	s := Summary([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 || s.Mean != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive corr = %v", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative corr = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series corr = %v, want 0", got)
	}
	if got := Pearson(x, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched lengths corr = %v, want 0", got)
	}
}

// Property: Pearson is bounded in [-1, 1] and invariant to positive affine
// transformations of either argument.
func TestPearsonProperties(t *testing.T) {
	f := func(x, y [6]float64) bool {
		// Keep inputs in a range where sums of squares cannot overflow.
		for i := range x {
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		r := Pearson(x[:], y[:])
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		shifted := make([]float64, 6)
		for i, v := range x {
			shifted[i] = 3*v + 7
		}
		r2 := Pearson(shifted, y[:])
		return math.Abs(r-r2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(xs [8]float64, a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va := Quantile(xs[:], qa)
		vb := Quantile(xs[:], qb)
		lo := Quantile(xs[:], 0)
		hi := Quantile(xs[:], 1)
		return va <= vb+1e-9 && va >= lo-1e-9 && vb <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SplitSeed(42, i)
		if s < 0 {
			t.Fatalf("SplitSeed(42,%d) = %d is negative", i, s)
		}
		if seen[s] {
			t.Fatalf("SplitSeed collision at i=%d", i)
		}
		seen[s] = true
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(1)
	got := SampleWithoutReplacement(r, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", got)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	SampleWithoutReplacement(r, 3, 4)
}

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(7).Int63()
	b := NewRand(7).Int63()
	if a != b {
		t.Error("NewRand not deterministic")
	}
}
