// Package stats implements the statistical machinery used by the CVCP
// experiments: descriptive statistics, Pearson correlation, a paired
// Student's t-test (with a hand-written t-distribution CDF via the
// regularized incomplete beta function), and five-number summaries used to
// reproduce the paper's boxplot figures.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := sortedCopy(xs)
	return quantileSorted(s, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quantileSorted(sortedCopy(xs), q)
}

func sortedCopy(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FiveNum is the five-number summary used to render boxplots: minimum, first
// quartile, median, third quartile and maximum, plus the mean for reference.
type FiveNum struct {
	Min, Q1, Median, Q3, Max, Mean float64
	N                              int
}

// Summary computes the five-number summary of xs.
func Summary(xs []float64) FiveNum {
	if len(xs) == 0 {
		return FiveNum{}
	}
	s := sortedCopy(xs)
	return FiveNum{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// Pearson returns the Pearson product-moment correlation coefficient between
// xs and ys. It returns 0 when either series is constant or the lengths
// differ or are < 2; callers in the experiment harness treat that as
// "no correlation measurable", matching how a flat clustering-score curve
// behaves in the paper's plots.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
