package stats

import (
	"errors"
	"math"
)

// TTestResult reports the outcome of a paired two-sided Student's t-test.
type TTestResult struct {
	T           float64 // t statistic
	DF          int     // degrees of freedom (n-1)
	P           float64 // two-sided p-value
	MeanDiff    float64 // mean of (a[i]-b[i])
	Significant bool    // P < alpha used in the call
}

// ErrTTest is returned when a t-test cannot be computed (fewer than two
// pairs, mismatched lengths, or zero variance with zero mean difference).
var ErrTTest = errors.New("stats: t-test undefined for input")

// PairedTTest runs a two-sided paired t-test on the samples a and b at
// significance level alpha (the paper uses alpha = 0.05).
//
// If the differences have zero variance, the test degenerates: a zero mean
// difference yields p=1, a nonzero one yields p=0 (the samples differ by a
// deterministic constant). This matches how the paper's "very small variance"
// cases produce significance.
func PairedTTest(a, b []float64, alpha float64) (TTestResult, error) {
	if len(a) != len(b) || len(a) < 2 {
		return TTestResult{}, ErrTTest
	}
	n := len(a)
	d := make([]float64, n)
	for i := range a {
		d[i] = a[i] - b[i]
	}
	md := Mean(d)
	sd := StdDev(d)
	df := n - 1
	if sd == 0 {
		if md == 0 {
			return TTestResult{T: 0, DF: df, P: 1, MeanDiff: 0, Significant: false}, nil
		}
		return TTestResult{T: math.Inf(sign(md)), DF: df, P: 0, MeanDiff: md, Significant: alpha > 0}, nil
	}
	t := md / (sd / math.Sqrt(float64(n)))
	p := 2 * StudentTSurvival(math.Abs(t), float64(df))
	return TTestResult{T: t, DF: df, P: p, MeanDiff: md, Significant: p < alpha}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// StudentTSurvival returns P(T > t) for a Student's t distribution with df
// degrees of freedom, for t >= 0.
func StudentTSurvival(t, df float64) float64 {
	if t < 0 {
		return 1 - StudentTSurvival(-t, df)
	}
	// P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2  (regularized incomplete beta)
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// StudentTCDF returns P(T <= t) for a Student's t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	return 1 - StudentTSurvival(t, df)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion from Numerical Recipes (betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
