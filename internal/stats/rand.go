package stats

import "math/rand"

// NewRand returns a deterministic *rand.Rand for the given seed. Every
// stochastic component in this repository takes an explicit seed (or *rand.Rand)
// so that experiments are reproducible bit-for-bit.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives a sub-seed for stream i from a master seed, using the
// SplitMix64 finalizer so nearby (seed, i) pairs yield decorrelated streams.
func SplitSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

// Perm returns a deterministic pseudo-random permutation of n elements.
func Perm(r *rand.Rand, n int) []int {
	return r.Perm(n)
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	p := r.Perm(n)
	out := make([]int, k)
	copy(out, p[:k])
	return out
}
