package cvcp

import (
	"sync"

	"cvcp/internal/cluster/optics"
	"cvcp/internal/dataset"
)

// The OPTICS ordering (and hence the dendrogram) depends only on the data
// and MinPts — not on the constraints. Inside one CVCP run every fold and
// the final clustering would recompute the same O(n²) ordering, so a small
// process-wide cache keyed by dataset identity and MinPts removes that
// redundancy. Only a few recent datasets are retained: experiment trials
// create datasets in sequence and never revisit old ones.
const cacheDatasets = 8

var opticsCache = struct {
	sync.Mutex
	order []*dataset.Dataset
	byDS  map[*dataset.Dataset]map[int]*optics.Result
}{byDS: map[*dataset.Dataset]map[int]*optics.Result{}}

func opticsRun(ds *dataset.Dataset, minPts int) (*optics.Result, error) {
	opticsCache.Lock()
	if m, ok := opticsCache.byDS[ds]; ok {
		if res, ok := m[minPts]; ok {
			opticsCache.Unlock()
			return res, nil
		}
	}
	opticsCache.Unlock()

	res, err := optics.Run(ds.X, minPts)
	if err != nil {
		return nil, err
	}

	opticsCache.Lock()
	defer opticsCache.Unlock()
	m, ok := opticsCache.byDS[ds]
	if !ok {
		m = map[int]*optics.Result{}
		opticsCache.byDS[ds] = m
		opticsCache.order = append(opticsCache.order, ds)
		if len(opticsCache.order) > cacheDatasets {
			evict := opticsCache.order[0]
			opticsCache.order = opticsCache.order[1:]
			delete(opticsCache.byDS, evict)
		}
	}
	m[minPts] = res
	return res, nil
}
