package cvcp

import (
	"fmt"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/stats"
)

// blobsDataset builds k well-separated 2-d blobs of size m.
func blobsDataset(seed int64, k, m int, gap float64) *dataset.Dataset {
	r := stats.NewRand(seed)
	var x [][]float64
	var y []int
	for c := 0; c < k; c++ {
		cx := gap * float64(c%3)
		cy := gap * float64(c/3)
		for i := 0; i < m; i++ {
			x = append(x, []float64{cx + r.NormFloat64(), cy + r.NormFloat64()})
			y = append(y, c)
		}
	}
	ds := dataset.MustNew(fmt.Sprintf("blobs-%d", k), x, y)
	return ds
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestSelectWithLabelsRecoversK(t *testing.T) {
	ds := blobsDataset(1, 3, 20, 15)
	r := stats.NewRand(2)
	labeled := ds.SampleLabels(r, 0.25)
	sel, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4, 5, 6}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Param != 3 {
		t.Errorf("selected k=%d, want 3 (scores %v)", sel.Best.Param, sel.ScoreCurve())
	}
	if len(sel.FinalLabels) != ds.N() {
		t.Errorf("final labels length %d", len(sel.FinalLabels))
	}
}

func TestSelectWithConstraintsRecoversK(t *testing.T) {
	ds := blobsDataset(4, 4, 15, 15)
	r := stats.NewRand(5)
	pool := constraints.Pool(r, ds.Y, 0.3)
	cons := constraints.Sample(r, pool, 0.5)
	sel, err := SelectWithConstraints(MPCKMeans{}, ds, cons, []int{2, 3, 4, 5, 6}, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Param != 4 {
		t.Errorf("selected k=%d, want 4 (scores %v)", sel.Best.Param, sel.ScoreCurve())
	}
}

func TestSelectFOSCWithLabels(t *testing.T) {
	ds := blobsDataset(7, 3, 25, 18)
	r := stats.NewRand(8)
	labeled := ds.SampleLabels(r, 0.2)
	sel, err := SelectWithLabels(FOSCOpticsDend{}, ds, labeled, []int{3, 6, 9, 12}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Score < 0.8 {
		t.Errorf("best FOSC score %v on easy blobs", sel.Best.Score)
	}
}

func TestSelectErrors(t *testing.T) {
	ds := blobsDataset(1, 2, 10, 10)
	idx := allIdx(ds.N())
	if _, err := SelectWithLabels(nil, ds, idx, []int{2}, Options{}); err == nil {
		t.Error("nil algorithm")
	}
	if _, err := SelectWithLabels(MPCKMeans{}, nil, idx, []int{2}, Options{}); err == nil {
		t.Error("nil dataset")
	}
	if _, err := SelectWithLabels(MPCKMeans{}, ds, idx, nil, Options{}); err == nil {
		t.Error("empty parameter range")
	}
	if _, err := SelectWithLabels(MPCKMeans{}, ds, idx[:2], []int{2}, Options{}); err == nil {
		t.Error("too few labeled objects")
	}
	unlabeled := dataset.MustNew("u", ds.X, nil)
	if _, err := SelectWithLabels(MPCKMeans{}, unlabeled, idx, []int{2}, Options{}); err == nil {
		t.Error("unlabeled dataset in Scenario I")
	}
	if _, err := SelectWithConstraints(MPCKMeans{}, ds, constraints.NewSet(), []int{2}, Options{}); err == nil {
		t.Error("empty constraint set in Scenario II")
	}
	bad := constraints.NewSet()
	bad.Add(0, 1, true)
	bad.Add(0, 1, false)
	if _, err := SelectWithConstraints(MPCKMeans{}, ds, bad, []int{2}, Options{}); err == nil {
		t.Error("inconsistent constraints")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ds := blobsDataset(10, 3, 15, 12)
	r := stats.NewRand(11)
	labeled := ds.SampleLabels(r, 0.3)
	params := []int{2, 3, 4, 5}
	serial, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, Options{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, Options{Seed: 12, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Scores {
		if serial.Scores[i].Score != parallel.Scores[i].Score {
			t.Errorf("param %d: serial %v, parallel %v",
				params[i], serial.Scores[i].Score, parallel.Scores[i].Score)
		}
	}
	if serial.Best.Param != parallel.Best.Param {
		t.Error("parallel selection differs")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	ds := blobsDataset(13, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(14), 0.3)
	a, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4}, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4}, Options{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Param != b.Best.Param || a.Best.Score != b.Best.Score {
		t.Error("selection not deterministic")
	}
}

func TestSelectBySilhouette(t *testing.T) {
	ds := blobsDataset(16, 3, 20, 15)
	sel, err := SelectBySilhouette(MPCKMeans{}, ds, nil, []int{2, 3, 4, 5}, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Param != 3 {
		t.Errorf("silhouette selected k=%d on 3 clean blobs, want 3", sel.Best.Param)
	}
}

func TestSortScores(t *testing.T) {
	in := []ParamScore{{Param: 3, Score: 0.5}, {Param: 2, Score: 0.9}, {Param: 5, Score: 0.9}}
	out := SortScores(in)
	if out[0].Param != 2 || out[1].Param != 5 || out[2].Param != 3 {
		t.Errorf("SortScores = %v", out)
	}
	if in[0].Param != 3 {
		t.Error("SortScores mutated input")
	}
}

// Scenario II on label-derived constraints should behave like Scenario I:
// both must select the planted parameter on easy data.
func TestScenarioIIReducesToScenarioI(t *testing.T) {
	ds := blobsDataset(18, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(19), 0.25)
	cons := constraints.FromLabels(labeled, ds.Y)
	s1, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4, 5}, Options{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SelectWithConstraints(MPCKMeans{}, ds, cons, []int{2, 3, 4, 5}, Options{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Best.Param != 3 || s2.Best.Param != 3 {
		t.Errorf("scenario I selected %d, scenario II selected %d, want 3",
			s1.Best.Param, s2.Best.Param)
	}
}

func TestFOSCOpticsDendNoiseLabels(t *testing.T) {
	// A far-away pair smaller than MinClusterSize must come out as noise
	// (-1), demonstrating the density-based noise semantics end to end.
	x := [][]float64{{0}, {1}, {2}, {3}, {4}, {100}, {101}}
	y := []int{0, 0, 0, 0, 0, 1, 1}
	ds := dataset.MustNew("noise", x, y)
	cons := constraints.FromLabels([]int{0, 1, 2}, y)
	labels, err := FOSCOpticsDend{MinClusterSize: 3}.Cluster(ds, cons, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if labels[5] != -1 || labels[6] != -1 {
		t.Errorf("far pair should be noise: %v", labels)
	}
}
