package cvcp

import (
	"context"
	"fmt"

	"cvcp/internal/cluster/copkmeans"
	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// This file implements the extensions the paper's conclusion names as
// future work: additional semi-supervised clustering methods under CVCP
// (COP-KMeans) and extending the framework to compare and select between
// alternative clustering methods, not just parameters of one method.

// COPKMeans adapts hard-constrained COP-KMeans (Wagstaff et al., ICML 2001)
// to the Algorithm interface. The parameter under selection is k. Infeasible
// (k, constraints) combinations yield a failed clustering rather than an
// error: every object becomes noise, which scores near zero and steers the
// selection away — mirroring how a practitioner treats a configuration the
// algorithm cannot satisfy.
type COPKMeans struct {
	// MaxIter bounds the Lloyd iterations; 0 means the package default.
	MaxIter int
}

// Name implements Algorithm.
func (COPKMeans) Name() string { return "COP-KMeans" }

// Cluster implements Algorithm.
func (c COPKMeans) Cluster(ds *dataset.Dataset, train *constraints.Set, k int, seed int64) ([]int, error) {
	res, err := copkmeans.Run(ds.X, train, copkmeans.Config{K: k, Seed: seed, MaxIter: c.MaxIter})
	if err != nil {
		if isInfeasible(err) {
			labels := make([]int, ds.N())
			for i := range labels {
				labels[i] = -1
			}
			return labels, nil
		}
		return nil, err
	}
	return res.Labels, nil
}

func isInfeasible(err error) bool {
	for e := err; e != nil; {
		if e == copkmeans.ErrInfeasible {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// Candidate pairs an algorithm with its parameter range for cross-method
// selection.
type Candidate struct {
	Algorithm Algorithm
	Params    []int
}

// AlgorithmSelection reports the winner of a cross-method selection along
// with each candidate's own selection result.
type AlgorithmSelection struct {
	Winner    *Selection
	PerMethod []*Selection
}

// SelectAlgorithmWithLabels extends CVCP across clustering paradigms (the
// paper's final future-work item): every candidate algorithm runs its own
// CVCP parameter selection on the same supervision, and the algorithm whose
// best parameter achieves the highest cross-validated constraint F-measure
// wins. All candidates share the same seed, hence the same folds, so the
// comparison is paired.
func SelectAlgorithmWithLabels(cands []Candidate, ds *dataset.Dataset, labeledIdx []int, opt Options) (*AlgorithmSelection, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("cvcp: no candidate algorithms")
	}
	out := &AlgorithmSelection{}
	for _, cand := range cands {
		sel, err := SelectWithLabels(cand.Algorithm, ds, labeledIdx, cand.Params, opt)
		if err != nil {
			return nil, fmt.Errorf("cvcp: candidate %s: %w", cand.Algorithm.Name(), err)
		}
		out.PerMethod = append(out.PerMethod, sel)
		if out.Winner == nil || sel.Best.Score > out.Winner.Best.Score {
			out.Winner = sel
		}
	}
	return out, nil
}

// SelectAlgorithmWithConstraints is SelectAlgorithmWithLabels for
// Scenario II supervision.
func SelectAlgorithmWithConstraints(cands []Candidate, ds *dataset.Dataset, cons *constraints.Set, opt Options) (*AlgorithmSelection, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("cvcp: no candidate algorithms")
	}
	out := &AlgorithmSelection{}
	for _, cand := range cands {
		sel, err := SelectWithConstraints(cand.Algorithm, ds, cons, cand.Params, opt)
		if err != nil {
			return nil, fmt.Errorf("cvcp: candidate %s: %w", cand.Algorithm.Name(), err)
		}
		out.PerMethod = append(out.PerMethod, sel)
		if out.Winner == nil || sel.Best.Score > out.Winner.Best.Score {
			out.Winner = sel
		}
	}
	return out, nil
}

// ValidityIndex is a relative clustering validity criterion used as an
// unsupervised model-selection baseline. Better reports whether larger
// values are better (Calinski–Harabasz, Dunn, Silhouette) or smaller ones
// (Davies–Bouldin).
type ValidityIndex struct {
	Name   string
	Score  func(x [][]float64, labels []int) float64
	Better func(a, b float64) bool
}

// ValidityIndices returns the classical criteria from the comparative study
// the paper cites (Vendramin et al. 2010): Silhouette (the paper's own
// baseline), Davies–Bouldin, Calinski–Harabasz and Dunn.
func ValidityIndices() []ValidityIndex {
	return []ValidityIndex{
		{Name: "silhouette", Score: eval.Silhouette, Better: func(a, b float64) bool { return a > b }},
		{Name: "davies-bouldin", Score: eval.DaviesBouldin, Better: func(a, b float64) bool { return a < b }},
		{Name: "calinski-harabasz", Score: eval.CalinskiHarabasz, Better: func(a, b float64) bool { return a > b }},
		{Name: "dunn", Score: eval.Dunn, Better: func(a, b float64) bool { return a > b }},
	}
}

// SelectByValidityIndex generalizes SelectBySilhouette to any relative
// validity criterion: every candidate parameter clusters the data with the
// full supervision and the criterion picks the winner.
func SelectByValidityIndex(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, vi ValidityIndex, opt Options) (*Selection, error) {
	sels, err := SelectByValidityIndices(alg, ds, full, params, []ValidityIndex{vi}, opt)
	if err != nil {
		return nil, err
	}
	return sels[0], nil
}

// SelectByValidityIndices evaluates several relative validity criteria over
// one shared parameter sweep: each candidate parameter clusters the data
// exactly once (the sweep dispatches through the selection engine), and
// every criterion picks its winner from the shared partitions. The
// clustering cost is the dominant term, so comparing n criteria costs the
// same as comparing one.
func SelectByValidityIndices(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, vis []ValidityIndex, opt Options) ([]*Selection, error) {
	if err := checkArgs(alg, ds, params); err != nil {
		return nil, err
	}
	if len(vis) == 0 {
		return nil, fmt.Errorf("cvcp: no validity indices")
	}
	for _, vi := range vis {
		if vi.Score == nil || vi.Better == nil {
			return nil, fmt.Errorf("cvcp: validity index %q incomplete", vi.Name)
		}
	}
	if full == nil {
		full = constraints.NewSet()
	}
	labelsPer := make([][]int, len(params))
	err := runner.Grid(opt.engineOptions(), len(params), 1,
		func(_ context.Context, pi, _ int) error {
			labels, err := alg.Cluster(ds, full, params[pi], stats.SplitSeed(opt.Seed, pi+1))
			if err != nil {
				return fmt.Errorf("cvcp: %s with parameter %d: %w", alg.Name(), params[pi], err)
			}
			labelsPer[pi] = labels
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]*Selection, len(vis))
	for vii, vi := range vis {
		scores := make([]ParamScore, len(params))
		bi := 0
		for pi, p := range params {
			scores[pi] = ParamScore{Param: p, Score: vi.Score(ds.X, labelsPer[pi])}
			if pi > 0 && vi.Better(scores[pi].Score, scores[bi].Score) {
				bi = pi
			}
		}
		out[vii] = &Selection{
			Algorithm:   alg.Name() + "+" + vi.Name,
			Best:        scores[bi],
			Scores:      scores,
			FinalLabels: labelsPer[bi],
		}
	}
	return out, nil
}

// BootstrapWithLabels scores one parameter by bootstrap resampling instead
// of cross-validation — the alternative partition-based evaluation the
// paper's Section 3.1 mentions ("the same reasoning would apply to other
// partition-based evaluation procedures such as bootstrapping"). Each round
// draws labeled objects with replacement as the training side; the
// out-of-bag labeled objects form the test side, with constraints derived
// independently on each side exactly as in Scenario I.
func BootstrapWithLabels(alg Algorithm, ds *dataset.Dataset, labeledIdx []int, params []int, rounds int, opt Options) (*Selection, error) {
	if err := checkArgs(alg, ds, params); err != nil {
		return nil, err
	}
	if !ds.Labeled() {
		return nil, fmt.Errorf("cvcp: bootstrap requires a labeled dataset")
	}
	if rounds < 1 {
		rounds = 10
	}
	if len(labeledIdx) < 4 {
		return nil, fmt.Errorf("cvcp: need at least 4 labeled objects, got %d", len(labeledIdx))
	}
	r := stats.NewRand(opt.Seed)
	folds := make([]cvFold, 0, rounds)
	for len(folds) < rounds {
		inBag := map[int]bool{}
		bag := make([]int, 0, len(labeledIdx))
		for i := 0; i < len(labeledIdx); i++ {
			o := labeledIdx[r.Intn(len(labeledIdx))]
			if !inBag[o] {
				inBag[o] = true
				bag = append(bag, o)
			}
		}
		var oob []int
		for _, o := range labeledIdx {
			if !inBag[o] {
				oob = append(oob, o)
			}
		}
		if len(bag) < 2 || len(oob) < 2 {
			continue // resample: degenerate bootstrap draw
		}
		folds = append(folds, cvFold{
			train: constraints.FromLabels(bag, ds.Y),
			test:  constraints.FromLabels(oob, ds.Y),
		})
	}
	full := constraints.FromLabels(labeledIdx, ds.Y)
	return run(alg, ds, params, opt, folds, full)
}
