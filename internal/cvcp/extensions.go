package cvcp

import (
	"fmt"

	"cvcp/internal/cluster/copkmeans"
	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
)

// This file implements the extensions the paper's conclusion names as
// future work: additional semi-supervised clustering methods under CVCP
// (COP-KMeans) and extending the framework to compare and select between
// alternative clustering methods — multi-candidate Grids under Select —
// plus the legacy cross-method and validity-index entry points, now thin
// deprecated wrappers over the unified core.

// COPKMeans adapts hard-constrained COP-KMeans (Wagstaff et al., ICML 2001)
// to the Algorithm interface. The parameter under selection is k. Infeasible
// (k, constraints) combinations yield a failed clustering rather than an
// error: every object becomes noise, which scores near zero and steers the
// selection away — mirroring how a practitioner treats a configuration the
// algorithm cannot satisfy.
type COPKMeans struct {
	// MaxIter bounds the Lloyd iterations; 0 means the package default.
	MaxIter int
}

// Name implements Algorithm.
func (COPKMeans) Name() string { return "COP-KMeans" }

// Cluster implements Algorithm.
func (c COPKMeans) Cluster(ds *dataset.Dataset, train *constraints.Set, k int, seed int64) ([]int, error) {
	res, err := copkmeans.Run(ds.X, train, copkmeans.Config{K: k, Seed: seed, MaxIter: c.MaxIter})
	if err != nil {
		if isInfeasible(err) {
			labels := make([]int, ds.N())
			for i := range labels {
				labels[i] = -1
			}
			return labels, nil
		}
		return nil, err
	}
	return res.Labels, nil
}

func isInfeasible(err error) bool {
	for e := err; e != nil; {
		if e == copkmeans.ErrInfeasible {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// AlgorithmSelection reports the winner of a cross-method selection along
// with each candidate's own selection result. It is the legacy form of
// Result.
type AlgorithmSelection struct {
	Winner    *Selection
	PerMethod []*Selection
}

// SelectAlgorithmWithLabels extends CVCP across clustering paradigms (the
// paper's final future-work item) on Scenario I supervision: the algorithm
// whose best parameter achieves the highest cross-validated constraint
// F-measure wins. All candidates share the same seed, hence the same folds,
// so the comparison is paired — and since the whole grid runs as one
// engine dispatch, they also share one worker pool and one run cache.
//
// Deprecated: use Select with a multi-candidate Grid; this wrapper remains
// for compatibility and returns bit-identical results.
func SelectAlgorithmWithLabels(cands []Candidate, ds *dataset.Dataset, labeledIdx []int, opt Options) (*AlgorithmSelection, error) {
	return selectAlgorithms(cands, ds, Labels(labeledIdx), opt)
}

// SelectAlgorithmWithConstraints is SelectAlgorithmWithLabels for
// Scenario II supervision.
//
// Deprecated: use Select with a multi-candidate Grid; this wrapper remains
// for compatibility and returns bit-identical results.
func SelectAlgorithmWithConstraints(cands []Candidate, ds *dataset.Dataset, cons *constraints.Set, opt Options) (*AlgorithmSelection, error) {
	return selectAlgorithms(cands, ds, ConstraintSet(cons), opt)
}

func selectAlgorithms(cands []Candidate, ds *dataset.Dataset, sup Supervision, opt Options) (*AlgorithmSelection, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("cvcp: no candidate algorithms")
	}
	res, err := Select(opt.Context, Spec{Dataset: ds, Grid: Grid(cands), Supervision: sup, Options: opt})
	if err != nil {
		return nil, err
	}
	return &AlgorithmSelection{Winner: res.Winner, PerMethod: res.PerCandidate}, nil
}

// ValidityIndex is a relative clustering validity criterion used as an
// unsupervised model-selection baseline. Better reports whether larger
// values are better (Calinski–Harabasz, Dunn, Silhouette) or smaller ones
// (Davies–Bouldin).
type ValidityIndex struct {
	Name   string
	Score  func(x [][]float64, labels []int) float64
	Better func(a, b float64) bool
}

func silhouetteIndex() ValidityIndex {
	return ValidityIndex{
		Name:   "silhouette",
		Score:  eval.Silhouette,
		Better: func(a, b float64) bool { return a > b },
	}
}

// ValidityIndices returns the classical criteria from the comparative study
// the paper cites (Vendramin et al. 2010): Silhouette (the paper's own
// baseline), Davies–Bouldin, Calinski–Harabasz and Dunn.
func ValidityIndices() []ValidityIndex {
	return []ValidityIndex{
		silhouetteIndex(),
		{Name: "davies-bouldin", Score: eval.DaviesBouldin, Better: func(a, b float64) bool { return a < b }},
		{Name: "calinski-harabasz", Score: eval.CalinskiHarabasz, Better: func(a, b float64) bool { return a > b }},
		{Name: "dunn", Score: eval.Dunn, Better: func(a, b float64) bool { return a > b }},
	}
}

// SelectByValidityIndex picks the parameter whose full-supervision
// clustering optimizes the given relative validity criterion.
//
// Deprecated: use Select with Scorer: Validity{Index: vi}; this wrapper
// remains for compatibility and returns bit-identical results.
func SelectByValidityIndex(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, vi ValidityIndex, opt Options) (*Selection, error) {
	sels, err := SelectByValidityIndices(alg, ds, full, params, []ValidityIndex{vi}, opt)
	if err != nil {
		return nil, err
	}
	return sels[0], nil
}

// SelectByValidityIndices evaluates several relative validity criteria over
// one shared parameter sweep: each candidate parameter clusters the data
// exactly once (the sweep dispatches through the selection engine), and
// every criterion picks its winner from the shared partitions. The
// clustering cost is the dominant term, so comparing n criteria costs the
// same as comparing one. For a single criterion, prefer Select with
// Scorer: Validity{Index: vi}.
func SelectByValidityIndices(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, vis []ValidityIndex, opt Options) ([]*Selection, error) {
	spec := Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: alg, Params: params}},
		Supervision: ConstraintSet(full),
		Options:     opt,
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(vis) == 0 {
		return nil, fmt.Errorf("cvcp: no validity indices")
	}
	sup, err := spec.Supervision.Full(ds)
	if err != nil {
		return nil, err
	}
	per, err := validityScore(ds, spec.Grid, sup, vis, spec.Options)
	if err != nil {
		return nil, err
	}
	return per[0], nil
}

// BootstrapWithLabels scores parameters by bootstrap resampling instead of
// cross-validation — the alternative partition-based evaluation the paper's
// Section 3.1 mentions ("the same reasoning would apply to other
// partition-based evaluation procedures such as bootstrapping").
//
// Deprecated: use Select with Scorer: Bootstrap{Rounds: rounds}; this
// wrapper remains for compatibility and returns bit-identical results.
func BootstrapWithLabels(alg Algorithm, ds *dataset.Dataset, labeledIdx []int, params []int, rounds int, opt Options) (*Selection, error) {
	return selectOne(Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: alg, Params: params}},
		Supervision: Labels(labeledIdx),
		Scorer:      Bootstrap{Rounds: rounds},
		Options:     opt,
	})
}
