package cvcp

import (
	"context"
	"fmt"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/runner"
)

// PartitionScorer is the subset of scorers whose workload is a
// (candidate, parameter, fold) grid of independent cells —
// CrossValidation and Bootstrap. Folds materializes the evaluation
// folds deterministically from (supervision, options), which is what
// makes the grid distributable: every node reconstructs identical folds
// from the spec alone, so a cell computes bit-identically anywhere.
// Validity is not a PartitionScorer (its sweep partitions double as the
// final clusterings, a cross-cell dependency), so validity jobs stay
// single-node.
type PartitionScorer interface {
	Scorer
	Folds(ds *dataset.Dataset, sup Supervision, opt Options) ([]Fold, *constraints.Set, error)
}

// CellPlan is a selection's cell grid, planned but not executed: the
// deterministic folds plus everything needed to compute any contiguous
// cell subrange (ScoreRange) or merge a complete set of cell scores
// into the final Result (Finalize). Cells linearize candidate-major —
// ci outermost, then parameter, then fold — matching cellTasks' task
// order, so cell index c of a plan is task index c of the single-node
// engine run.
//
// The contract underpinning distributed execution: for any partition of
// [0, NumCells()) into ranges, computing each range with ScoreRange (on
// any node, at any worker count) and passing the concatenated scores to
// Finalize yields a Result bit-identical to Select on the same Spec.
type CellPlan struct {
	ds     *dataset.Dataset
	grid   Grid
	folds  []Fold
	full   *constraints.Set
	opt    Options
	scorer Scorer
	cells  int
}

// PlanCells validates the spec and materializes its fold plan. It fails
// when the spec's scorer is not partition-based; callers fall back to
// single-node Select.
func PlanCells(spec Spec) (*CellPlan, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	scorer := spec.Scorer
	if scorer == nil {
		scorer = CrossValidation{}
	}
	ps, ok := scorer.(PartitionScorer)
	if !ok {
		return nil, fmt.Errorf("cvcp: scorer %s is not partition-based; its grid cannot be sharded", scorer.Name())
	}
	folds, full, err := ps.Folds(spec.Dataset, spec.Supervision, spec.Options)
	if err != nil {
		return nil, err
	}
	cells := 0
	for _, cand := range spec.Grid {
		cells += len(cand.Params) * len(folds)
	}
	return &CellPlan{
		ds:     spec.Dataset,
		grid:   spec.Grid,
		folds:  folds,
		full:   full,
		opt:    spec.Options,
		scorer: scorer,
		cells:  cells,
	}, nil
}

// NumCells returns the total cell count of the grid.
func (p *CellPlan) NumCells() int { return p.cells }

// ScoreRange computes the cells in [lo, hi) and returns their scores in
// cell order. workers and limiter are the executing node's own
// machine-local budget — they affect scheduling only, never the scores,
// which derive purely from grid position.
func (p *CellPlan) ScoreRange(ctx context.Context, lo, hi int, workers int, limiter *runner.Limiter) ([]float64, error) {
	scores, _, err := p.ScoreRangeCounted(ctx, lo, hi, workers, limiter)
	return scores, err
}

// CellCounts reports how a scored cell range was obtained: Computed cells
// ran their clustering this call (dirty), Reused cells came out of the
// cell cache. Computed+Reused equals the range size.
type CellCounts struct {
	Computed int `json:"computed"`
	Reused   int `json:"reused"`
}

// ScoreRangeCounted is ScoreRange plus the range's computed/reused cell
// counts — the per-shard accounting distributed workers report back so
// re-selection jobs can assert they scheduled strictly fewer cells. When
// the plan's Options carry a CellStats, the counts are accumulated there
// too.
func (p *CellPlan) ScoreRangeCounted(ctx context.Context, lo, hi int, workers int, limiter *runner.Limiter) ([]float64, CellCounts, error) {
	if lo < 0 || hi > p.cells || lo > hi {
		return nil, CellCounts{}, fmt.Errorf("cvcp: cell range [%d, %d) outside grid of %d cells", lo, hi, p.cells)
	}
	counts := &CellStats{}
	scores := newScoreGrid(p.grid, len(p.folds))
	tasks := cellTasks(p.ds, p.grid, p.folds, p.opt, scores, counts)
	ropt := runner.Options{Workers: workers, Context: ctx, Limiter: limiter}
	if err := runner.RunRange(ropt, tasks, lo, hi); err != nil {
		return nil, CellCounts{}, err
	}
	if p.opt.CellStats != nil {
		p.opt.CellStats.add(counts.Computed(), counts.Reused())
	}
	out := make([]float64, 0, hi-lo)
	c := 0
	for ci, cand := range p.grid {
		for pi := range cand.Params {
			for fi := range p.folds {
				if c >= lo && c < hi {
					out = append(out, scores[ci][pi].FoldScores[fi])
				}
				c++
			}
		}
	}
	return out, CellCounts{Computed: int(counts.Computed()), Reused: int(counts.Reused())}, nil
}

// Finalize merges a complete set of per-cell scores — cellScores[c] is
// cell c's score, typically concatenated from ScoreRange calls — into
// the final Result: the single-node reduction (per-parameter fold
// means, first-best parameter scan), the per-candidate refits with the
// full supervision, and the scorer's winner comparison, all via the
// same helpers Select's path uses. workers and limiter bound the refit
// clusterings on this node.
func (p *CellPlan) Finalize(ctx context.Context, cellScores []float64, workers int, limiter *runner.Limiter) (*Result, error) {
	if len(cellScores) != p.cells {
		return nil, fmt.Errorf("cvcp: %d cell scores for a grid of %d cells", len(cellScores), p.cells)
	}
	scores := newScoreGrid(p.grid, len(p.folds))
	c := 0
	for ci, cand := range p.grid {
		for pi := range cand.Params {
			for fi := range p.folds {
				scores[ci][pi].FoldScores[fi] = cellScores[c]
				c++
			}
		}
	}
	sels := reduceScores(p.grid, scores)
	opt := p.opt
	opt.Context = ctx
	opt.Workers = workers
	opt.Limiter = limiter
	opt.Progress = nil
	if err := refitFinals(p.ds, p.grid, p.full, opt, sels); err != nil {
		return nil, err
	}
	res := &Result{PerCandidate: sels}
	for _, sel := range sels {
		if res.Winner == nil || p.scorer.Better(sel.Best.Score, res.Winner.Best.Score) {
			res.Winner = sel
		}
	}
	return res, nil
}
