package cvcp

import (
	"context"
	"testing"

	"cvcp/internal/dataset"
	"cvcp/internal/runner"
)

// memCellStore is a map-backed CellStore for exercising the cache path
// without a real persistence layer.
type memCellStore struct {
	m    map[string]uint64
	puts int
}

func newMemCellStore() *memCellStore { return &memCellStore{m: map[string]uint64{}} }

func (s *memCellStore) GetCell(key string) (uint64, bool, error) {
	bits, ok := s.m[key]
	return bits, ok, nil
}

func (s *memCellStore) PutCell(key string, bits uint64) error {
	s.puts++
	s.m[key] = bits
	return nil
}

// growingBlobs builds a labeled blob dataset as a Versioned resource with
// the rows appended in batches, and returns it alongside the batch sizes.
func growingBlobs(t *testing.T, seed int64, k, m int) *dataset.Versioned {
	t.Helper()
	base := blobsDataset(seed, k, m, 15)
	v := dataset.NewVersioned("grow", true)
	if _, err := v.Append(dataset.RowBatch{Rows: base.X, Labels: base.Y}); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStableLabelsFolds(t *testing.T) {
	ds := blobsDataset(51, 3, 20, 15)
	sup := StableLabels(0.4)
	folds, refit, err := sup.CVFolds(ds, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds, want 5", len(folds))
	}
	total := 0
	for f, fold := range folds {
		if fold.Data == nil {
			t.Fatalf("fold %d has no sub-dataset", f)
		}
		if fold.CacheKey == "" {
			t.Fatalf("fold %d has no cache key", f)
		}
		// The fold's sub-dataset is exactly the rows with StableFold == f.
		want := 0
		for i := 0; i < ds.N(); i++ {
			if dataset.StableFold(i, 5) == f {
				want++
			}
		}
		if fold.Data.N() != want {
			t.Fatalf("fold %d has %d rows, want %d", f, fold.Data.N(), want)
		}
		total += fold.Data.N()
		if fold.Train.Len() == 0 || fold.Test.Len() == 0 {
			t.Fatalf("fold %d train/test empty: %d/%d", f, fold.Train.Len(), fold.Test.Len())
		}
	}
	if total != ds.N() {
		t.Fatalf("folds cover %d rows, want %d", total, ds.N())
	}
	if refit == nil || refit.Len() == 0 {
		t.Fatal("empty refit supervision")
	}

	// Same inputs reproduce the same cache keys; a different seed does not.
	again, _, err := sup.CVFolds(ds, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := sup.CVFolds(ds, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	for f := range folds {
		if folds[f].CacheKey != again[f].CacheKey {
			t.Fatalf("fold %d cache key not deterministic", f)
		}
		if folds[f].CacheKey == other[f].CacheKey {
			t.Fatalf("fold %d cache key ignores the seed", f)
		}
	}
}

func TestStableLabelsRejects(t *testing.T) {
	ds := blobsDataset(52, 3, 20, 15)
	unlabeled := dataset.MustNew("u", ds.X, nil)
	cases := []struct {
		name string
		ds   *dataset.Dataset
		frac float64
		n    int
	}{
		{"unlabeled", unlabeled, 0.4, 5},
		{"zero frac", ds, 0, 5},
		{"frac above one", ds, 1.5, 5},
		{"one fold", ds, 0.4, 1},
		{"too many folds", ds, 0.4, ds.N()},
	}
	for _, tc := range cases {
		if _, _, err := StableLabels(tc.frac).CVFolds(tc.ds, tc.n, 7); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if _, err := StableLabels(0.4).Full(ds); err == nil {
		t.Error("Full: no error")
	}
	if _, _, err := StableLabels(0.4).BootstrapFolds(ds, 10, 7); err == nil {
		t.Error("BootstrapFolds: no error")
	}
}

// TestStableLabelsCacheBitIdentity is the cache-correctness contract: a
// selection with a cold cache, the same selection with the warm cache, and
// an uncached selection must agree bit-for-bit — at worker counts 1 and 8 —
// and the warm run must compute zero cells.
func TestStableLabelsCacheBitIdentity(t *testing.T) {
	ds := blobsDataset(53, 3, 20, 15)
	spec := Spec{
		Dataset: ds,
		Grid: Grid{
			{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9}},
			{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}},
		},
		Supervision: StableLabels(0.5),
		Options:     Options{Seed: 54, NFolds: 4},
	}

	plain, err := Select(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	cells := 0
	for _, cand := range spec.Grid {
		cells += len(cand.Params) * 4
	}
	cs := newMemCellStore()
	for _, workers := range []int{1, 8} {
		cold := spec
		cold.Options.Workers = workers
		stats := &CellStats{}
		cold.Options.CellCache = runner.NewScoreCache(cs, 1024)
		cold.Options.CellStats = stats
		got, err := Select(context.Background(), cold)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range plain.PerCandidate {
			equalSelection(t, plain.PerCandidate[ci], got.PerCandidate[ci], "cached vs plain")
		}
		if workers == 1 {
			// First run: every cell computed, none reused.
			if stats.Computed() != int64(cells) || stats.Reused() != 0 {
				t.Fatalf("cold run: computed=%d reused=%d, want %d/0", stats.Computed(), stats.Reused(), cells)
			}
		} else {
			// The persistent tier is warm from the workers=1 run (each run
			// gets a fresh in-memory tier): everything reuses.
			if stats.Computed() != 0 || stats.Reused() != int64(cells) {
				t.Fatalf("warm run: computed=%d reused=%d, want 0/%d", stats.Computed(), stats.Reused(), cells)
			}
		}
	}
	if cs.puts != cells {
		t.Fatalf("%d cache writes, want %d", cs.puts, cells)
	}
}

// TestStableLabelsIncrementalReuse is the tentpole contract at the engine
// layer: after appending rows to a versioned dataset, re-selecting with the
// warm cell cache is bit-identical to a from-scratch selection on the full
// data while recomputing only the dirty folds' cells.
func TestStableLabelsIncrementalReuse(t *testing.T) {
	v := growingBlobs(t, 55, 3, 20)
	v1, err := v.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}

	grid := Grid{{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}}}
	const nFolds = 5
	cs := newMemCellStore()
	run := func(ds *dataset.Dataset, stats *CellStats) *Result {
		t.Helper()
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        grid,
			Supervision: StableLabels(0.5),
			Options: Options{
				Seed: 56, NFolds: nFolds, Workers: 4,
				CellCache: runner.NewScoreCache(cs, 1024),
				CellStats: stats,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	run(v1, &CellStats{}) // warm the cache at version 1

	// Append two rows: they land in folds 0 and 1 (indices 60, 61), so
	// exactly 2 of the 5 folds are dirty.
	extra := blobsDataset(57, 3, 1, 15)
	if _, err := v.Append(dataset.RowBatch{Rows: extra.X[:2], Labels: extra.Y[:2]}); err != nil {
		t.Fatal(err)
	}
	v2, err := v.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}

	warm := &CellStats{}
	incr := run(v2, warm)

	scratch, err := Select(context.Background(), Spec{
		Dataset:     v2,
		Grid:        grid,
		Supervision: StableLabels(0.5),
		Options:     Options{Seed: 56, NFolds: nFolds, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range scratch.PerCandidate {
		equalSelection(t, scratch.PerCandidate[ci], incr.PerCandidate[ci], "incremental vs scratch")
	}

	cells := int64(3 * nFolds)
	wantDirty := int64(3 * 2) // 3 params × 2 dirty folds
	if warm.Computed() != wantDirty || warm.Reused() != cells-wantDirty {
		t.Fatalf("incremental run: computed=%d reused=%d, want %d/%d",
			warm.Computed(), warm.Reused(), wantDirty, cells-wantDirty)
	}
}

// TestScoreRangeCounted checks the sharded accounting: counts sum to the
// range size and reflect cache reuse.
func TestScoreRangeCounted(t *testing.T) {
	ds := blobsDataset(58, 3, 20, 15)
	spec := Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2, 3}}},
		Supervision: StableLabels(0.5),
		Options: Options{
			Seed: 59, NFolds: 4,
			CellCache: runner.NewScoreCache(newMemCellStore(), 1024),
		},
	}
	plan, err := PlanCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.NumCells()
	_, counts, err := plan.ScoreRangeCounted(context.Background(), 0, n, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Computed != n || counts.Reused != 0 {
		t.Fatalf("cold: %+v, want computed=%d", counts, n)
	}
	// A fresh plan over the same spec hits the shared persistent tier.
	plan2, err := PlanCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, counts, err = plan2.ScoreRangeCounted(context.Background(), 0, n, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Computed != 0 || counts.Reused != n {
		t.Fatalf("warm: %+v, want reused=%d", counts, n)
	}
}
