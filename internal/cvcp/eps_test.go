package cvcp

import (
	"math"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/stats"
)

// TestEpsInfSelectionBitIdenticalToDense is the equivalence guarantee
// behind the finite-ε job option: a FOSC selection through the ε-range
// OPTICS driver with ε = ∞ must be bit-identical — selected MinPts, fold
// scores, final labels — to the dense-matrix path, because an infinite
// radius makes every neighborhood complete and the driver visits objects
// in the same deterministic order.
func TestEpsInfSelectionBitIdenticalToDense(t *testing.T) {
	ds := blobsDataset(97, 3, 18, 14)
	r := stats.NewRand(98)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6, 9, 12}

	dense := selectFOSC(t, FOSCOpticsDend{}, ds, cons, params)
	inf := selectFOSC(t, FOSCOpticsDend{Eps: math.Inf(1)}, ds, cons, params)
	equalSelection(t, dense, inf, "eps=+Inf vs dense matrix")
}

// TestEpsLargeFiniteSelectionBitIdenticalToDense: any finite ε no smaller
// than the dataset's diameter is equivalent to ε = ∞ — every neighborhood
// is still complete — so the selection stays bit-identical to dense. This
// is the property the server's eps job option leans on: a client choosing
// a generous radius loses nothing but the memory savings.
func TestEpsLargeFiniteSelectionBitIdenticalToDense(t *testing.T) {
	ds := blobsDataset(99, 3, 18, 14)
	r := stats.NewRand(100)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6, 9, 12}

	// Blob centers sit within tens of units; 1e6 dwarfs the diameter.
	dense := selectFOSC(t, FOSCOpticsDend{}, ds, cons, params)
	wide := selectFOSC(t, FOSCOpticsDend{Eps: 1e6}, ds, cons, params)
	equalSelection(t, dense, wide, "large finite eps vs dense matrix")
}

// TestEpsWinsOverMatrix32: when both are set (callers validate against
// it, but the library must still be deterministic), the ε-range driver
// runs and the float32 matrix flag is ignored.
func TestEpsWinsOverMatrix32(t *testing.T) {
	ds := blobsDataset(101, 3, 12, 14)
	r := stats.NewRand(102)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6}

	plain := selectFOSC(t, FOSCOpticsDend{Eps: math.Inf(1)}, ds, cons, params)
	both := selectFOSC(t, FOSCOpticsDend{Eps: math.Inf(1), Matrix32: true}, ds, cons, params)
	equalSelection(t, plain, both, "eps with matrix32 set vs eps alone")
}
