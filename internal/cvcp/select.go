package cvcp

import (
	"context"
	"fmt"

	"cvcp/internal/dataset"
)

// Candidate pairs an algorithm with its candidate parameter range — one
// column of the selection grid.
type Candidate struct {
	Algorithm Algorithm
	Params    []int
}

// Grid is the candidate set of one selection: every (algorithm, parameter)
// combination it spans is scored, and the per-algorithm winners compete for
// the overall selection. A single-entry Grid is ordinary parameter
// selection; multiple entries extend the framework across clustering
// paradigms (the paper's final future-work item).
type Grid []Candidate

// Spec is a complete, declarative description of one model selection: what
// to cluster (Dataset), which configurations compete (Grid), which partial
// ground truth drives the choice (Supervision) and how candidates are
// scored (Scorer). New scenarios compose existing pieces instead of adding
// entry points.
type Spec struct {
	// Dataset is the data under selection.
	Dataset *dataset.Dataset
	// Grid holds the candidate (algorithm, parameter-range) pairs.
	Grid Grid
	// Supervision is the partial ground truth: Labels (Scenario I) or
	// ConstraintSet (Scenario II).
	Supervision Supervision
	// Scorer is the scoring strategy; nil means CrossValidation{}, the
	// paper's CVCP criterion.
	Scorer Scorer
	// Options carries the run parameters (folds, seed, workers, progress,
	// limiter). Its Context field is superseded by the ctx argument of
	// Select when that is non-nil.
	Options Options
}

// Result is the outcome of a unified selection: one Selection per grid
// candidate plus the overall winner under the scorer's comparison.
type Result struct {
	// Winner points at the best entry of PerCandidate.
	Winner *Selection
	// PerCandidate holds every candidate's selection, in Grid order.
	PerCandidate []*Selection
}

// Select is the single entry point of the framework: it scores every
// candidate of spec.Grid against spec.Supervision with spec.Scorer and
// returns the per-candidate selections plus the overall winner.
//
// The entire workload — every (candidate, parameter, fold) cell — is
// dispatched through the execution engine as one run: one worker pool, one
// shared Limiter and one run cache serve all candidates, and every cell's
// seed derives from its grid position, so results are bit-identical for
// every worker count and identical to scoring each candidate alone.
//
// ctx cancels the selection mid-grid; when non-nil it supersedes
// spec.Options.Context. The legacy entry points (SelectWithLabels,
// SelectWithConstraints, SelectAlgorithmWith*, BootstrapWithLabels,
// SelectByValidityIndex, SelectBySilhouette) are thin deprecated wrappers
// over this function.
func Select(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	opt := spec.Options
	if ctx != nil {
		opt.Context = ctx
	}
	scorer := spec.Scorer
	if scorer == nil {
		scorer = CrossValidation{}
	}
	sels, err := scorer.Score(spec.Dataset, spec.Grid, spec.Supervision, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{PerCandidate: sels}
	for _, sel := range sels {
		if res.Winner == nil || scorer.Better(sel.Best.Score, res.Winner.Best.Score) {
			res.Winner = sel
		}
	}
	return res, nil
}

// validate rejects malformed specs with the same errors the legacy entry
// points raised.
func (s Spec) validate() error {
	if s.Dataset == nil || s.Dataset.N() == 0 {
		return fmt.Errorf("cvcp: empty dataset")
	}
	if len(s.Grid) == 0 {
		return fmt.Errorf("cvcp: no candidate algorithms")
	}
	for _, cand := range s.Grid {
		if cand.Algorithm == nil {
			return fmt.Errorf("cvcp: nil algorithm")
		}
		if len(cand.Params) == 0 {
			return fmt.Errorf("cvcp: empty parameter range")
		}
	}
	if s.Supervision == nil {
		return fmt.Errorf("cvcp: nil supervision")
	}
	return nil
}
