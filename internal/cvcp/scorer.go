package cvcp

import (
	"context"
	"fmt"
	"strings"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Scorer is the strategy that turns a candidate grid plus supervision into
// scored selections — the axis along which evaluation procedures plug into
// the framework. Three implementations ship: CrossValidation (the paper's
// CVCP criterion), Bootstrap (the resampling alternative §3.1 mentions) and
// Validity (the classical unsupervised baselines of §4.3).
//
// A Scorer must dispatch its entire (candidate, parameter, evaluation-unit)
// workload through a single engine run per phase, so every candidate shares
// one worker pool, one Limiter and one run cache, and must derive every
// random seed from grid position — never from scheduling order — so results
// are bit-identical for any worker count.
type Scorer interface {
	// Name identifies the strategy in errors and reports.
	Name() string
	// Better reports whether best-score a beats best-score b when
	// comparing candidates (larger-is-better for constraint F-measure,
	// index-specific for validity criteria).
	Better(a, b float64) bool
	// Score evaluates every candidate of the grid against the supervision
	// and returns one complete Selection per candidate, in grid order.
	Score(ds *dataset.Dataset, grid Grid, sup Supervision, opt Options) ([]*Selection, error)
}

// ScorerByName maps a scoring-strategy name onto its implementation: ""
// or "cv" is CrossValidation, "bootstrap" is Bootstrap with the given
// round count, and any validity index name from ValidityIndices()
// (silhouette, davies-bouldin, calinski-harabasz, dunn) is Validity over
// that index. Every name-based surface (the cvcp CLI's -scorer flag, the
// cvcpd job spec) resolves through this one mapping, so the accepted
// vocabulary cannot drift between surfaces.
func ScorerByName(name string, rounds int) (Scorer, error) {
	switch name {
	case "", "cv":
		return CrossValidation{}, nil
	case "bootstrap":
		return Bootstrap{Rounds: rounds}, nil
	}
	for _, vi := range ValidityIndices() {
		if vi.Name == name {
			return Validity{Index: vi}, nil
		}
	}
	return nil, fmt.Errorf("cvcp: unknown scorer %q (have %s)", name, strings.Join(ScorerNames(), ", "))
}

// ScorerNames returns every name ScorerByName accepts.
func ScorerNames() []string {
	out := []string{"cv", "bootstrap"}
	for _, vi := range ValidityIndices() {
		out = append(out, vi.Name)
	}
	return out
}

// CrossValidation scores candidates by n-fold cross-validation — the
// paper's CVCP criterion: the partition produced from each fold's training
// supervision is treated as a binary classifier over the fold's test
// constraints and scored with the average per-class F-measure. The fold
// count comes from Options.NFolds (0 means 10, adapted downward for small
// supervision).
type CrossValidation struct{}

// Name implements Scorer.
func (CrossValidation) Name() string { return "cross-validation" }

// Better implements Scorer: larger constraint F-measure wins.
func (CrossValidation) Better(a, b float64) bool { return a > b }

// Folds implements PartitionScorer: n-fold splits of the supervision,
// deterministic from (supervision, fold count, seed).
func (CrossValidation) Folds(ds *dataset.Dataset, sup Supervision, opt Options) ([]Fold, *constraints.Set, error) {
	return sup.CVFolds(ds, opt.nFolds(), opt.Seed)
}

// Score implements Scorer.
func (cv CrossValidation) Score(ds *dataset.Dataset, grid Grid, sup Supervision, opt Options) ([]*Selection, error) {
	folds, full, err := cv.Folds(ds, sup, opt)
	if err != nil {
		return nil, err
	}
	return partitionScore(ds, grid, folds, full, opt)
}

// Bootstrap scores candidates by bootstrap resampling instead of
// cross-validation — the alternative partition-based evaluation the paper's
// Section 3.1 mentions. Each round draws supervision objects with
// replacement as the training side; the out-of-bag objects form the test
// side. Only label supervision can be resampled.
type Bootstrap struct {
	// Rounds is the number of bootstrap rounds; 0 means 10.
	Rounds int
}

// Name implements Scorer.
func (Bootstrap) Name() string { return "bootstrap" }

// Better implements Scorer: larger constraint F-measure wins.
func (Bootstrap) Better(a, b float64) bool { return a > b }

func (b Bootstrap) rounds() int {
	if b.Rounds < 1 {
		return 10
	}
	return b.Rounds
}

// Folds implements PartitionScorer: bootstrap resamples of the
// supervision, deterministic from (supervision, round count, seed).
func (b Bootstrap) Folds(ds *dataset.Dataset, sup Supervision, opt Options) ([]Fold, *constraints.Set, error) {
	return sup.BootstrapFolds(ds, b.rounds(), opt.Seed)
}

// Score implements Scorer.
func (b Bootstrap) Score(ds *dataset.Dataset, grid Grid, sup Supervision, opt Options) ([]*Selection, error) {
	folds, full, err := b.Folds(ds, sup, opt)
	if err != nil {
		return nil, err
	}
	return partitionScore(ds, grid, folds, full, opt)
}

// Validity scores candidates by a relative clustering validity index — the
// classical unsupervised model-selection baseline (§4.3): every candidate
// parameter clusters the data once with the full supervision and the index
// picks the winner from the resulting partitions. There is no refit: the
// winning sweep partition is the final clustering.
type Validity struct {
	Index ValidityIndex
}

// Name implements Scorer.
func (v Validity) Name() string { return "validity:" + v.Index.Name }

// Better implements Scorer, deferring to the index's own direction.
func (v Validity) Better(a, b float64) bool {
	if v.Index.Better == nil {
		return false
	}
	return v.Index.Better(a, b)
}

// Score implements Scorer.
func (v Validity) Score(ds *dataset.Dataset, grid Grid, sup Supervision, opt Options) ([]*Selection, error) {
	full, err := sup.Full(ds)
	if err != nil {
		return nil, err
	}
	per, err := validityScore(ds, grid, full, []ValidityIndex{v.Index}, opt)
	if err != nil {
		return nil, err
	}
	out := make([]*Selection, len(per))
	for ci := range per {
		out[ci] = per[ci][0]
	}
	return out, nil
}

// partitionScore is the shared machinery of the partition-based scorers
// (cross-validation, bootstrap): it schedules the full candidate × parameter
// × fold grid through the execution engine as ONE run — a single worker
// pool, a single Limiter acquisition stream and a single run cache serve
// every candidate — then aggregates per-candidate scores and refits each
// candidate's winner with the full supervision.
//
// Determinism: each cell's seed derives from its within-candidate grid
// position (stats.SplitSeed(opt.Seed, pi*len(folds)+fi+1)), exactly the
// derivation the per-candidate legacy entry points used, so a multi-candidate
// run is bit-identical to running each candidate alone.
func partitionScore(ds *dataset.Dataset, grid Grid, folds []Fold, full *constraints.Set, opt Options) ([]*Selection, error) {
	scores := newScoreGrid(grid, len(folds))
	tasks := cellTasks(ds, grid, folds, opt, scores, opt.CellStats)
	if err := runner.Run(opt.engineOptions(), tasks); err != nil {
		return nil, err
	}
	out := reduceScores(grid, scores)
	if err := refitFinals(ds, grid, full, opt, out); err != nil {
		return nil, err
	}
	return out, nil
}

// newScoreGrid allocates the per-candidate score matrix the cell tasks
// write into: scores[ci][pi].FoldScores[fi] is one cell's output slot.
func newScoreGrid(grid Grid, nFolds int) [][]ParamScore {
	scores := make([][]ParamScore, len(grid))
	for ci, cand := range grid {
		scores[ci] = make([]ParamScore, len(cand.Params))
		for pi, p := range cand.Params {
			scores[ci][pi] = ParamScore{Param: p, FoldScores: make([]float64, nFolds)}
		}
	}
	return scores
}

// cellTasks builds one engine task per (candidate, parameter, fold) cell
// in canonical cell order — ci outermost, then pi, then fi — the
// linearization the distributed layer's shard ranges index into. Each
// cell's seed derives from its within-candidate grid position
// (stats.SplitSeed(seed, pi*len(folds)+fi+1)), exactly the derivation
// the per-candidate legacy entry points used, so any contiguous subrange
// computes bit-identically to those cells of the full grid.
//
// A fold carrying its own sub-dataset (Fold.Data, stable supervisions) is
// clustered on that sub-dataset; when it also carries a CacheKey and
// opt.CellCache is set, the cell's score goes through the content-addressed
// cell cache — a cache hit returns the identical bits the computation
// would have produced. counts, when non-nil, tallies computed vs reused
// cells.
func cellTasks(ds *dataset.Dataset, grid Grid, folds []Fold, opt Options, scores [][]ParamScore, counts *CellStats) []runner.Task {
	tasks := make([]runner.Task, 0)
	for ci, cand := range grid {
		for pi := range cand.Params {
			for fi := range folds {
				ci, pi, fi := ci, pi, fi
				tasks = append(tasks, func(context.Context) error {
					cand := grid[ci]
					fold := folds[fi]
					cellSeed := stats.SplitSeed(opt.Seed, pi*len(folds)+fi+1)
					data := ds
					if fold.Data != nil {
						data = fold.Data
					}
					compute := func() (float64, error) {
						labels, err := cand.Algorithm.Cluster(data, fold.Train, cand.Params[pi], cellSeed)
						if err != nil {
							return 0, fmt.Errorf("cvcp: %s with parameter %d: %w", cand.Algorithm.Name(), cand.Params[pi], err)
						}
						return eval.ConstraintF(labels, fold.Test), nil
					}
					var (
						score  float64
						reused bool
						err    error
					)
					if opt.CellCache != nil && fold.CacheKey != "" {
						key := cellKey(fold.CacheKey, algoCacheID(cand.Algorithm), cand.Params[pi], cellSeed)
						score, reused, err = opt.CellCache.Do(key, compute)
					} else {
						score, err = compute()
					}
					if err != nil {
						return err
					}
					if counts != nil {
						counts.note(reused)
					}
					scores[ci][pi].FoldScores[fi] = score
					return nil
				})
			}
		}
	}
	return tasks
}

// reduceScores folds per-cell scores into per-candidate selections: each
// parameter's score is the mean over folds, and the best parameter is
// the first strictly-greater scan in parameter order — the single-node
// reduction every distributed merge must reproduce exactly.
func reduceScores(grid Grid, scores [][]ParamScore) []*Selection {
	out := make([]*Selection, len(grid))
	for ci, cand := range grid {
		for pi := range scores[ci] {
			scores[ci][pi].Score = stats.Mean(scores[ci][pi].FoldScores)
		}
		best := scores[ci][0]
		for _, ps := range scores[ci][1:] {
			if ps.Score > best.Score {
				best = ps
			}
		}
		out[ci] = &Selection{Algorithm: cand.Algorithm.Name(), Best: best, Scores: scores[ci]}
	}
	return out
}

// refitFinals computes each candidate's final clustering with the full
// supervision. The final clusterings dispatch through the engine too —
// one task per candidate, still under the shared Limiter and context —
// with the same seed derivation the legacy single-candidate path used.
// Progress reporting covers the scoring grid only, so the callback never
// sees a second, smaller (done, total) sequence after the grid completed.
func refitFinals(ds *dataset.Dataset, grid Grid, full *constraints.Set, opt Options, out []*Selection) error {
	fopt := opt.engineOptions()
	fopt.OnProgress = nil
	finals := make([]runner.Task, len(grid))
	for ci := range grid {
		ci := ci
		finals[ci] = func(context.Context) error {
			labels, err := grid[ci].Algorithm.Cluster(ds, full, out[ci].Best.Param, stats.SplitSeed(opt.Seed, 0))
			if err != nil {
				return err
			}
			out[ci].FinalLabels = labels
			return nil
		}
	}
	if err := runner.Run(fopt, finals); err != nil {
		if opt.Context != nil && opt.Context.Err() != nil {
			return opt.Context.Err()
		}
		return fmt.Errorf("cvcp: final clustering: %w", err)
	}
	return nil
}

// validityScore runs one full-supervision parameter sweep per candidate —
// all candidates through a single engine run — and scores the shared
// partitions with every given index. It returns one Selection per
// (candidate, index); the clustering cost is the dominant term, so scoring
// n indices costs the same as scoring one.
func validityScore(ds *dataset.Dataset, grid Grid, full *constraints.Set, vis []ValidityIndex, opt Options) ([][]*Selection, error) {
	for _, vi := range vis {
		if vi.Score == nil || vi.Better == nil {
			return nil, fmt.Errorf("cvcp: validity index %q incomplete", vi.Name)
		}
	}
	labelsPer := make([][][]int, len(grid))
	tasks := make([]runner.Task, 0)
	for ci, cand := range grid {
		labelsPer[ci] = make([][]int, len(cand.Params))
		for pi := range cand.Params {
			ci, pi := ci, pi
			tasks = append(tasks, func(context.Context) error {
				cand := grid[ci]
				labels, err := cand.Algorithm.Cluster(ds, full, cand.Params[pi], stats.SplitSeed(opt.Seed, pi+1))
				if err != nil {
					return fmt.Errorf("cvcp: %s with parameter %d: %w", cand.Algorithm.Name(), cand.Params[pi], err)
				}
				labelsPer[ci][pi] = labels
				return nil
			})
		}
	}
	if err := runner.Run(opt.engineOptions(), tasks); err != nil {
		return nil, err
	}
	out := make([][]*Selection, len(grid))
	for ci, cand := range grid {
		out[ci] = make([]*Selection, len(vis))
		for vii, vi := range vis {
			scores := make([]ParamScore, len(cand.Params))
			bi := 0
			for pi, p := range cand.Params {
				scores[pi] = ParamScore{Param: p, Score: vi.Score(ds.X, labelsPer[ci][pi])}
				if pi > 0 && vi.Better(scores[pi].Score, scores[bi].Score) {
					bi = pi
				}
			}
			out[ci][vii] = &Selection{
				Algorithm:   cand.Algorithm.Name() + "+" + vi.Name,
				Best:        scores[bi],
				Scores:      scores,
				FinalLabels: labelsPer[ci][bi],
			}
		}
	}
	return out, nil
}
