package cvcp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
)

// StableLabels is Scenario I supervision with stable-under-append fold
// geometry — the supervision mode of versioned datasets. Where Labels
// shuffles the labeled objects into folds (so one appended row reshuffles
// everything), StableLabels assigns EVERY row to a fold by its row index
// (dataset.StableFold) and evaluates each cell on the fold's own
// sub-dataset:
//
//   - fold membership never changes for existing rows, so appending B rows
//     dirties at most min(B, folds) folds;
//   - a cell clusters only its fold's rows, with supervision rows selected
//     and split into train/test constraint sets by a deterministic hash of
//     (seed, fold-local position) — making the cell's score a pure
//     function of (fold row content, frac, seed, candidate, parameter),
//     which is what lets the content-addressed cell cache reuse it
//     bit-identically across dataset versions.
//
// The refit (final clustering) always runs on the full dataset with the
// union of every fold's supervision rows, so the selected parameter is
// applied exactly as in the classic mode. frac is the fraction of each
// fold's rows used as supervision, as in Labels.
//
// StableLabels supports only partition scorers that use cross-validation
// folds; Full and BootstrapFolds return errors.
func StableLabels(frac float64) Supervision { return stableLabelSupervision{frac: frac} }

type stableLabelSupervision struct{ frac float64 }

func (stableLabelSupervision) Kind() string { return "stable-labels" }

func (stableLabelSupervision) Full(*dataset.Dataset) (*constraints.Set, error) {
	return nil, fmt.Errorf("cvcp: stable-labels supervision requires the cross-validation scorer")
}

func (stableLabelSupervision) BootstrapFolds(*dataset.Dataset, int, int64) ([]Fold, *constraints.Set, error) {
	return nil, nil, fmt.Errorf("cvcp: stable-labels supervision cannot be bootstrap-resampled (resamples are not stable under append)")
}

// minStableFoldRows is the smallest usable stable fold: at least four
// supervision rows are forced per fold, so two land on each of the train
// and test sides (the minimum from which a constraint can be derived).
const minStableFoldRows = 4

func (s stableLabelSupervision) CVFolds(ds *dataset.Dataset, n int, seed int64) ([]Fold, *constraints.Set, error) {
	if !ds.Labeled() {
		return nil, nil, fmt.Errorf("cvcp: Scenario I requires a labeled dataset")
	}
	if s.frac <= 0 || s.frac > 1 || math.IsNaN(s.frac) {
		return nil, nil, fmt.Errorf("cvcp: stable-labels fraction %v outside (0, 1]", s.frac)
	}
	if n < 2 {
		return nil, nil, fmt.Errorf("cvcp: stable folds require at least 2 folds, got %d", n)
	}
	if ds.N() < minStableFoldRows*n {
		return nil, nil, fmt.Errorf("cvcp: %d rows cannot fill %d stable folds of at least %d rows", ds.N(), n, minStableFoldRows)
	}
	fracBits := math.Float64bits(s.frac)
	folds := make([]Fold, n)
	var refitIdx []int
	for f := 0; f < n; f++ {
		gidx := make([]int, 0, ds.N()/n+1)
		for i := f; i < ds.N(); i += n {
			gidx = append(gidx, i)
		}
		x := make([][]float64, len(gidx))
		y := make([]int, len(gidx))
		for j, gi := range gidx {
			x[j] = ds.X[gi] // rows are never mutated; sharing them is safe
			y[j] = ds.Y[gi]
		}
		sub := &dataset.Dataset{Name: fmt.Sprintf("%s#fold%d", ds.Name, f), X: x, Y: y}

		selected := make([]int, 0, int(s.frac*float64(len(gidx)))+1)
		for j := range gidx {
			if stableSelect(seed, j, s.frac) {
				selected = append(selected, j)
			}
		}
		if len(selected) < minStableFoldRows {
			// Deterministic fallback for sparse draws: the fold's first
			// rows. Still a pure function of (seed, frac, fold size).
			selected = selected[:0]
			for j := 0; j < minStableFoldRows; j++ {
				selected = append(selected, j)
			}
		}
		var trainIdx, testIdx []int
		for p, j := range selected {
			if p%2 == 0 {
				trainIdx = append(trainIdx, j)
			} else {
				testIdx = append(testIdx, j)
			}
		}
		folds[f] = Fold{
			Train:    constraints.FromLabels(trainIdx, y),
			Test:     constraints.FromLabels(testIdx, y),
			Data:     sub,
			CacheKey: stableFoldKey(ds, gidx, fracBits, seed),
		}
		for _, j := range selected {
			refitIdx = append(refitIdx, gidx[j])
		}
	}
	// refitIdx is built fold-major; FromLabels derives pairwise constraints
	// from set membership, so ordering does not matter — but sort anyway so
	// the refit set is canonical.
	sort.Ints(refitIdx)
	return folds, constraints.FromLabels(refitIdx, ds.Y), nil
}

// stableSelect reports whether the fold-local row j is a supervision row:
// a per-row hash of (seed, j) compared against frac. Each row's selection
// is independent of every other row, so growing a fold never changes the
// selection of its existing rows.
func stableSelect(seed int64, j int, frac float64) bool {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(j)))
	sum := sha256.Sum256(buf[:])
	u := binary.LittleEndian.Uint64(sum[:8])
	return float64(u>>11)/(1<<53) < frac
}

// stableFoldKey content-addresses one stable fold: the digest of its rows'
// content (bit patterns plus labels) and the supervision parameters that
// shape its train/test split. Together with the candidate, parameter and
// cell seed (see cellKey) it covers every input of a cell's score.
func stableFoldKey(ds *dataset.Dataset, gidx []int, fracBits uint64, seed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "stable-labels\x00%s\x00%x\x00%d", dataset.HashRows(ds.X, ds.Y, gidx), fracBits, seed)
	return hex.EncodeToString(h.Sum(nil))
}

// cellKey content-addresses one cell of the selection grid: the fold's
// content key plus the candidate's cache identity, the parameter and the
// cell's derived seed. Hex, so it never collides with the store's record
// ID separators.
func cellKey(foldKey, algo string, param int, cellSeed int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d", foldKey, algo, param, cellSeed)
	return hex.EncodeToString(h.Sum(nil))
}

// algoCacheID is the cache identity of a candidate algorithm: its name
// plus its configuration ("%+v" of the value), so configurations that
// change scores — float32 matrices, ε-range drivers, iteration caps —
// never share cache entries.
func algoCacheID(a Algorithm) string { return fmt.Sprintf("%s|%+v", a.Name(), a) }
