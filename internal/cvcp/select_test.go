package cvcp

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

func TestSelectValidation(t *testing.T) {
	ds := blobsDataset(110, 2, 10, 10)
	idx := allIdx(ds.N())
	ctx := context.Background()
	cases := []struct {
		name string
		spec Spec
	}{
		{"nil dataset", Spec{Grid: Grid{{Algorithm: MPCKMeans{}, Params: []int{2}}}, Supervision: Labels(idx)}},
		{"empty grid", Spec{Dataset: ds, Supervision: Labels(idx)}},
		{"nil algorithm", Spec{Dataset: ds, Grid: Grid{{Params: []int{2}}}, Supervision: Labels(idx)}},
		{"empty params", Spec{Dataset: ds, Grid: Grid{{Algorithm: MPCKMeans{}}}, Supervision: Labels(idx)}},
		{"nil supervision", Spec{Dataset: ds, Grid: Grid{{Algorithm: MPCKMeans{}, Params: []int{2}}}}},
		{"bootstrap on constraints", Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2}}},
			Supervision: ConstraintSet(constraints.FromLabels(idx, ds.Y)),
			Scorer:      Bootstrap{},
		}},
		{"incomplete validity index", Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2}}},
			Supervision: ConstraintSet(nil),
			Scorer:      Validity{Index: ValidityIndex{Name: "broken"}},
		}},
	}
	for _, c := range cases {
		if _, err := Select(ctx, c.spec); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// A cancelled ctx argument must abort the selection even when
// Options.Context is unset — the ctx parameter supersedes the field.
func TestSelectContextArgument(t *testing.T) {
	ds := blobsDataset(111, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(112), 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Select(ctx, Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}}},
		Supervision: Labels(labeled),
		Options:     Options{Seed: 113, Workers: 4},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A multi-candidate cross-method selection must run as ONE engine dispatch:
// with a Limiter of capacity 1 shared by nothing else, the peak number of
// concurrently executing clustering tasks stays 1 across all candidates,
// and — the actual point of sharing — a single Limiter acquisition stream
// serves the whole grid rather than one stream per candidate selection.
func TestCrossMethodSharesOneLimiter(t *testing.T) {
	ds := blobsDataset(114, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(115), 0.3)

	var mu sync.Mutex
	var running, peak int
	probe := probeAlgorithm{
		inner: MPCKMeans{},
		before: func() {
			mu.Lock()
			running++
			if running > peak {
				peak = running
			}
			mu.Unlock()
		},
		after: func() {
			mu.Lock()
			running--
			mu.Unlock()
		},
	}
	_, err := Select(context.Background(), Spec{
		Dataset: ds,
		Grid: Grid{
			{Algorithm: probe, Params: []int{2, 3}},
			{Algorithm: probe, Params: []int{3, 4}},
		},
		Supervision: Labels(labeled),
		Options:     Options{Seed: 116, NFolds: 3, Workers: 8, Limiter: runner.NewLimiter(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 1 {
		t.Errorf("peak concurrent clustering tasks = %d with a 1-slot Limiter, want 1", peak)
	}
}

// probeAlgorithm wraps an Algorithm with entry/exit hooks for concurrency
// assertions.
type probeAlgorithm struct {
	inner         Algorithm
	before, after func()
}

func (p probeAlgorithm) Name() string { return p.inner.Name() }

func (p probeAlgorithm) Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error) {
	p.before()
	defer p.after()
	return p.inner.Cluster(ds, train, param, seed)
}

// Progress must span the whole cross-method grid: one monotone (done,
// total) sequence whose total is the full cell count over every candidate,
// not a restart per candidate.
func TestCrossMethodProgressSpansGrid(t *testing.T) {
	ds := blobsDataset(117, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(118), 0.3)
	var mu sync.Mutex
	var last, calls, total int
	opt := Options{Seed: 119, NFolds: 3, Workers: 4, Progress: func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		if done <= last {
			t.Errorf("progress went backwards: %d after %d", done, last)
		}
		last = done
		calls++
		total = tot
	}}
	_, err := Select(context.Background(), Spec{
		Dataset: ds,
		Grid: Grid{
			{Algorithm: MPCKMeans{}, Params: []int{2, 3}},
			{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9}},
		},
		Supervision: Labels(labeled),
		Options:     opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := (2 + 3) * 3 // (params across candidates) × folds
	if total != want || last != want || calls != want {
		t.Errorf("progress: last=%d calls=%d total=%d, want all %d", last, calls, total, want)
	}
}

// The Validity scorer must pick winners per its index's own direction —
// Davies–Bouldin is smaller-is-better, so the cross-candidate winner is the
// minimum, not the maximum.
func TestValidityScorerWinnerDirection(t *testing.T) {
	ds := blobsDataset(120, 3, 20, 15)
	var db ValidityIndex
	for _, vi := range ValidityIndices() {
		if vi.Name == "davies-bouldin" {
			db = vi
		}
	}
	res, err := Select(context.Background(), Spec{
		Dataset: ds,
		Grid: Grid{
			{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}},
			{Algorithm: COPKMeans{}, Params: []int{2, 3, 4}},
		},
		Supervision: ConstraintSet(nil),
		Scorer:      Validity{Index: db},
		Options:     Options{Seed: 121},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range res.PerCandidate {
		if sel.Best.Score < res.Winner.Best.Score {
			t.Errorf("winner has Davies–Bouldin %v but candidate %s scored %v (smaller is better)",
				res.Winner.Best.Score, sel.Algorithm, sel.Best.Score)
		}
	}
}
