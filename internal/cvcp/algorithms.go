package cvcp

import (
	"cvcp/internal/cluster/fosc"
	"cvcp/internal/cluster/hierarchy"
	"cvcp/internal/cluster/mpckmeans"
	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
)

// DefaultMinPtsRange is the MinPts candidate range the paper uses for
// FOSC-OPTICSDend: {3, 6, 9, 12, 15, 18, 21, 24}. It is the single source
// of truth for every surface (root package, CLIs, the selection server), so
// they cannot drift apart.
var DefaultMinPtsRange = []int{3, 6, 9, 12, 15, 18, 21, 24}

// KRange returns the candidate range {lo, ..., hi} for the number of
// clusters. The paper uses 2..M with M a reasonable upper bound.
func KRange(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		out = append(out, k)
	}
	return out
}

// FOSCOpticsDend is the density-based semi-supervised clustering method of
// the paper's evaluation: an OPTICS reachability dendrogram from which FOSC
// extracts the constraint-optimal flat clustering. The parameter under
// selection is OPTICS's MinPts; it is also used as FOSC's minimum cluster
// size, the convention of the original FOSC-OPTICSDend experiments.
type FOSCOpticsDend struct {
	// MinClusterSize overrides the minimum selectable cluster size; 0 means
	// "use the MinPts parameter".
	MinClusterSize int
	// Matrix32 stores the shared pairwise-distance matrix as float32,
	// halving its resident memory. Distances are computed in float64 and
	// rounded once, so each entry carries at most 2⁻²⁴ relative error;
	// selections on well-separated data are unaffected, but reachability
	// ties can legitimately resolve differently when distances differ by
	// less than one float32 ULP (see docs/performance.md).
	Matrix32 bool
	// Eps, when positive, caps OPTICS's neighborhood radius: the ordering
	// is computed by the VP-tree ε-range driver (optics.RunWithEps),
	// which never materializes the pairwise-distance matrix — range
	// queries compute distances on demand. 0 means the dense ε=∞ path
	// over the shared matrix. Eps = +Inf is accepted and bit-identical
	// to the dense path (the driver's documented guarantee); combining a
	// positive Eps with Matrix32 is rejected by the callers that
	// validate specs (the driver has no float32-matrix mode) and here
	// Eps simply wins.
	Eps float64
}

// Name implements Algorithm.
func (FOSCOpticsDend) Name() string { return "FOSC-OPTICSDend" }

// Cluster implements Algorithm. The OPTICS ordering depends only on the
// data and MinPts — not on the constraints — so it is obtained through the
// shared run cache (runcache.go): all folds of one MinPts and the final
// clustering share a single ordering computed on the dataset's shared
// pairwise-distance matrix, even when the engine schedules them
// concurrently.
func (f FOSCOpticsDend) Cluster(ds *dataset.Dataset, train *constraints.Set, minPts int, seed int64) ([]int, error) {
	res, err := opticsDendrogram(ds, minPts, f.Matrix32, f.Eps)
	if err != nil {
		return nil, err
	}
	mcs := f.MinClusterSize
	if mcs == 0 {
		mcs = minPts
	}
	ext, err := fosc.Extract(res, train, fosc.Config{MinClusterSize: mcs})
	if err != nil {
		return nil, err
	}
	return ext.Labels, nil
}

func opticsDendrogram(ds *dataset.Dataset, minPts int, f32 bool, eps float64) (*hierarchy.Dendrogram, error) {
	ord, err := opticsRun(ds, minPts, f32, eps)
	if err != nil {
		return nil, err
	}
	return hierarchy.FromReachability(ord)
}

// MPCKMeans adapts the MPCK-Means implementation to the Algorithm
// interface. The parameter under selection is the number of clusters k.
type MPCKMeans struct {
	// Weight is the constraint-violation weight w; 0 means 1.
	Weight float64
	// DisableMetric turns off metric learning (plain PCK-Means), an
	// ablation; the default (false) is full MPCK-Means.
	DisableMetric bool
	// MaxIter bounds the EM iterations; 0 means the package default.
	MaxIter int
}

// Name implements Algorithm.
func (m MPCKMeans) Name() string { return "MPCKmeans" }

// Cluster implements Algorithm.
func (m MPCKMeans) Cluster(ds *dataset.Dataset, train *constraints.Set, k int, seed int64) ([]int, error) {
	res, err := mpckmeans.Run(ds.X, train, mpckmeans.Config{
		K:           k,
		Seed:        seed,
		Weight:      m.Weight,
		LearnMetric: !m.DisableMetric,
		MaxIter:     m.MaxIter,
	})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}
