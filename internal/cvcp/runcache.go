package cvcp

import (
	"cvcp/internal/cluster/optics"
	"cvcp/internal/dataset"
	"cvcp/internal/linalg"
	"cvcp/internal/runner"
)

// The selection engine's grid tasks share expensive intermediates that
// depend only on the dataset (and possibly one parameter), never on the
// fold's constraints:
//
//   - the pairwise-distance matrix, reused by every OPTICS run over the
//     dataset regardless of MinPts;
//   - the OPTICS ordering per (dataset, MinPts), reused by every fold of
//     that parameter and by the final clustering.
//
// runner.Cache provides the sharing: it is single-flight, so when the
// engine schedules all folds of one MinPts concurrently, exactly one task
// computes the ordering and the rest block on it instead of duplicating the
// O(n²) work. The cache is process-wide and keyed by dataset identity
// (pointer), retaining only a few recent datasets: experiment trials create
// datasets in sequence and never revisit old ones.
const cacheDatasets = 8

var runCache = runner.NewCache(cacheDatasets)

type distMatrixKey struct{ f32 bool }

type opticsKey struct {
	minPts int
	f32    bool
	eps    float64 // 0 = dense ε=∞ path; > 0 (incl. +Inf) = VP-tree ε-range driver
}

// The matrix builders are package variables so the equivalence tests can
// swap in linalg.NewDistMatrixNaive (the scalar reference builder) and
// prove that whole selections — not just matrix entries — are bit-identical
// between the blocked quad-kernel path and the pre-optimization naive path.
var (
	buildDistMatrix   = linalg.NewDistMatrixCondensed
	buildDistMatrix32 = linalg.NewDistMatrixCondensed32
)

// distMatrix returns the dataset's pairwise-distance matrix, computing it
// at most once per cached (dataset, precision). The condensed (triangular)
// layout halves the resident memory per cached dataset; its entries are
// bit-identical to the square layout's, so OPTICS runs are unaffected.
// With f32 the condensed entries are additionally rounded to float32 —
// half the memory again, at a documented 2⁻²⁴ relative error per entry
// (see docs/performance.md) — and cached separately from the float64
// matrix so mixed-precision grids never cross-contaminate.
func distMatrix(ds *dataset.Dataset, f32 bool) *linalg.DistMatrix {
	v, _ := runCache.Do(ds, distMatrixKey{f32}, func() (any, error) {
		if f32 {
			return buildDistMatrix32(ds.X), nil
		}
		return buildDistMatrix(ds.X), nil
	})
	return v.(*linalg.DistMatrix)
}

// opticsRun returns the dataset's OPTICS ordering for (minPts, precision,
// eps), computing it at most once per cached dataset. eps = 0 runs the
// dense path on the shared distance matrix of the requested precision;
// a positive eps routes through the VP-tree ε-range driver, which
// computes distances on demand and never touches (or populates) the
// cached matrix — a finite-ε grid column costs no O(n²) memory.
func opticsRun(ds *dataset.Dataset, minPts int, f32 bool, eps float64) (*optics.Result, error) {
	v, err := runCache.Do(ds, opticsKey{minPts, f32, eps}, func() (any, error) {
		if eps > 0 {
			return optics.RunWithEps(ds.X, minPts, eps)
		}
		return optics.RunWithMatrix(distMatrix(ds, f32), minPts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*optics.Result), nil
}
