package cvcp

import (
	"cvcp/internal/cluster/optics"
	"cvcp/internal/dataset"
	"cvcp/internal/linalg"
	"cvcp/internal/runner"
)

// The selection engine's grid tasks share expensive intermediates that
// depend only on the dataset (and possibly one parameter), never on the
// fold's constraints:
//
//   - the pairwise-distance matrix, reused by every OPTICS run over the
//     dataset regardless of MinPts;
//   - the OPTICS ordering per (dataset, MinPts), reused by every fold of
//     that parameter and by the final clustering.
//
// runner.Cache provides the sharing: it is single-flight, so when the
// engine schedules all folds of one MinPts concurrently, exactly one task
// computes the ordering and the rest block on it instead of duplicating the
// O(n²) work. The cache is process-wide and keyed by dataset identity
// (pointer), retaining only a few recent datasets: experiment trials create
// datasets in sequence and never revisit old ones.
const cacheDatasets = 8

var runCache = runner.NewCache(cacheDatasets)

type distMatrixKey struct{}

type opticsKey struct{ minPts int }

// distMatrix returns the dataset's pairwise-distance matrix, computing it
// at most once per cached dataset. The condensed (triangular) layout halves
// the resident memory per cached dataset; its entries are bit-identical to
// the square layout's, so OPTICS runs are unaffected.
func distMatrix(ds *dataset.Dataset) *linalg.DistMatrix {
	v, _ := runCache.Do(ds, distMatrixKey{}, func() (any, error) {
		return linalg.NewDistMatrixCondensed(ds.X), nil
	})
	return v.(*linalg.DistMatrix)
}

// opticsRun returns the dataset's OPTICS ordering for minPts, computing it
// (on the shared distance matrix) at most once per cached dataset.
func opticsRun(ds *dataset.Dataset, minPts int) (*optics.Result, error) {
	v, err := runCache.Do(ds, opticsKey{minPts}, func() (any, error) {
		return optics.RunWithMatrix(distMatrix(ds), minPts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*optics.Result), nil
}
