package cvcp

import (
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/datagen"
	"cvcp/internal/eval"
	"cvcp/internal/stats"
)

// TestLeakedConstraintsScoreHigher demonstrates the paper's Section 3.1
// warning quantitatively. Under a naive cross-validation that partitions raw
// constraint *edges* into folds, some test constraints are derivable from
// the training constraints via the transitive closure (Figure 2 of the
// paper) — they were implicitly available during clustering. The clustering
// therefore satisfies them more often than genuinely independent test
// constraints, and an evaluation that keeps them underestimates the true
// classification error.
//
// The test runs the naive split many times, partitions each test fold into
// its leaked part (⊆ closure(train)) and its fresh part, and compares the
// satisfaction rates of the two parts under a clustering trained on the
// training constraints.
func TestLeakedConstraintsScoreHigher(t *testing.T) {
	ds := datagen.ALOI(17, 1)[0]
	alg := FOSCOpticsDend{}

	var leakedSum, freshSum float64
	var leakedN, freshN int
	for trial := 0; trial < 12; trial++ {
		r := stats.NewRand(int64(trial) * 131)
		given := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.12), 0.6)
		nfolds, err := constraints.NaiveSplitConstraints(stats.NewRand(int64(trial)), given, 4)
		if err != nil {
			t.Fatal(err)
		}
		for fi, f := range nfolds {
			trainClosed, err := constraints.Closure(f.Train)
			if err != nil {
				continue // inconsistent naive training side; skip
			}
			leaked := constraints.NewSet()
			fresh := constraints.NewSet()
			for _, c := range f.Test.Constraints() {
				derivable := (c.MustLink && trainClosed.HasMustLink(c.A, c.B)) ||
					(!c.MustLink && trainClosed.HasCannotLink(c.A, c.B))
				if derivable {
					leaked.AddConstraint(c)
				} else {
					fresh.AddConstraint(c)
				}
			}
			if leaked.Len() == 0 || fresh.Len() == 0 {
				continue
			}
			labels, err := alg.Cluster(ds, trainClosed, 6, int64(fi))
			if err != nil {
				t.Fatal(err)
			}
			leakedSum += eval.SatisfactionRate(labels, leaked) * float64(leaked.Len())
			freshSum += eval.SatisfactionRate(labels, fresh) * float64(fresh.Len())
			leakedN += leaked.Len()
			freshN += fresh.Len()
		}
	}
	if leakedN == 0 || freshN == 0 {
		t.Fatal("no leaked/fresh constraints observed; the scenario is degenerate")
	}
	leakedRate := leakedSum / float64(leakedN)
	freshRate := freshSum / float64(freshN)
	t.Logf("satisfaction of leaked test constraints %.4f (n=%d) vs fresh %.4f (n=%d)",
		leakedRate, leakedN, freshRate, freshN)
	if leakedRate < freshRate-0.01 {
		t.Errorf("leaked constraints scored %.4f, below fresh %.4f — the leakage bias must be non-negative",
			leakedRate, freshRate)
	}
}
