// Package cvcp implements the paper's contribution: CVCP ("Cross-Validation
// for finding Clustering Parameters"), a model-selection framework for
// semi-supervised clustering (Section 3 of the paper).
//
// The framework is one composable pipeline behind a single entry point,
// Select(ctx, Spec): a Spec names the dataset, a Grid of (algorithm,
// parameter-range) candidates, a Supervision (labeled objects — Scenario I —
// or pairwise constraints — Scenario II) and a Scorer strategy
// (cross-validation — the paper's CVCP criterion —, bootstrap resampling,
// or a relative validity index). The scorer evaluates every candidate cell
// through the execution engine as one run, picks each candidate's best
// parameter, refits with all supervision, and the overall winner is the
// cross-candidate best. The historical per-scenario entry points survive as
// thin deprecated wrappers over Select.
package cvcp

import (
	"context"
	"runtime"
	"sort"
	"sync/atomic"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/runner"
)

// Algorithm is a semi-supervised clustering algorithm with a single integer
// parameter under selection (the number of clusters k for partitional
// methods, MinPts for density-based methods).
//
// Cluster must cluster the whole dataset using only the supervision in
// train, and return one cluster label per object; label -1 marks noise.
// Implementations must be deterministic given (ds, train, param, seed).
type Algorithm interface {
	Name() string
	Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error)
}

// Options configures a selection run.
type Options struct {
	// NFolds is the number of cross-validation folds. 0 means 10 (the
	// paper's typical n). When the supervision involves too few objects to
	// give every fold at least two, the fold count is automatically lowered
	// (never below 2).
	NFolds int
	// Seed drives fold construction and the per-cell algorithm seeds.
	Seed int64
	// Workers bounds how many grid tasks the selection engine runs
	// concurrently. 0 means serial; negative means one worker per CPU.
	// Every task's seed derives from its grid position, so the result is
	// bit-identical for every worker count.
	Workers int
	// Context cancels a selection mid-grid; the selection then returns the
	// context's error. Nil means context.Background(). The ctx argument of
	// Select supersedes this field when non-nil.
	Context context.Context
	// Progress, when non-nil, observes grid completion: it is called after
	// each finished grid task with (done, total). Calls are serialized.
	Progress func(done, total int)
	// Limiter, when non-nil, draws every grid task's execution slot from a
	// budget shared with other selections: the total number of tasks
	// executing across all selections holding the same Limiter never
	// exceeds its capacity. Multi-tenant callers (e.g. a selection server)
	// use this to bound machine load globally instead of per selection.
	Limiter *runner.Limiter
	// CellCache, when non-nil, memoizes partition-scorer cell scores
	// across runs through the two-tier content-addressed cache. Only
	// cells of folds carrying a CacheKey (stable supervisions such as
	// StableLabels) participate. Like Workers and Limiter this is
	// machine-local configuration: a cached score is bit-identical to the
	// computation it replaced, so the cache never affects results.
	CellCache *runner.ScoreCache
	// CellStats, when non-nil, accumulates how many grid cells this run
	// computed versus reused from the cell cache — observability only
	// (the re-selection dirty/reused counters).
	CellStats *CellStats
}

// CellStats counts a selection's cell-grid work: cells whose score was
// computed this run (dirty) versus reused from the cell cache. Safe for
// concurrent use; a caller shares one across the runs it wants summed.
type CellStats struct {
	computed atomic.Int64
	reused   atomic.Int64
}

func (s *CellStats) note(reused bool) {
	if reused {
		s.reused.Add(1)
	} else {
		s.computed.Add(1)
	}
}

func (s *CellStats) add(computed, reused int64) {
	s.computed.Add(computed)
	s.reused.Add(reused)
}

// Add accumulates externally counted cells — e.g. a distributed
// coordinator summing its workers' per-shard computed/reused splits into
// the owning job's stats.
func (s *CellStats) Add(computed, reused int64) { s.add(computed, reused) }

// Computed returns how many cells were computed (dirty).
func (s *CellStats) Computed() int64 { return s.computed.Load() }

// Reused returns how many cells were served from the cell cache.
func (s *CellStats) Reused() int64 { return s.reused.Load() }

func (o Options) nFolds() int {
	if o.NFolds <= 0 {
		return 10
	}
	return o.NFolds
}

// workers resolves the Options to an effective worker count.
func (o Options) workers() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// engineOptions builds the runner configuration for this selection.
func (o Options) engineOptions() runner.Options {
	return runner.Options{Workers: o.workers(), Context: o.Context, OnProgress: o.Progress, Limiter: o.Limiter}
}

// ParamScore is the cross-validated quality of one candidate parameter.
type ParamScore struct {
	Param      int
	Score      float64   // mean of FoldScores — the paper's CVCP criterion
	FoldScores []float64 // average constraint F-measure per test fold
}

// Selection is the outcome of scoring one grid candidate.
type Selection struct {
	Algorithm string
	Best      ParamScore
	// Scores holds every candidate parameter's result, in the order the
	// parameters were given.
	Scores []ParamScore
	// FinalLabels is the clustering of the full dataset with the selected
	// parameter using all available supervision (step 4 of the framework).
	FinalLabels []int
}

// ScoreCurve returns the candidates' mean scores in candidate order —
// the "CVCP internal classification scores" curve of Figures 5–8.
func (s *Selection) ScoreCurve() []float64 {
	out := make([]float64, len(s.Scores))
	for i, ps := range s.Scores {
		out[i] = ps.Score
	}
	return out
}

// SelectWithLabels runs CVCP in Scenario I (§3.1.1): the supervision is the
// set of labeled objects labeledIdx (their labels are read from ds.Y).
//
// Deprecated: use Select with Spec{Grid: Grid{{alg, params}},
// Supervision: Labels(labeledIdx)}; this wrapper remains for compatibility
// and returns bit-identical results.
func SelectWithLabels(alg Algorithm, ds *dataset.Dataset, labeledIdx []int, params []int, opt Options) (*Selection, error) {
	return selectOne(Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: alg, Params: params}},
		Supervision: Labels(labeledIdx),
		Options:     opt,
	})
}

// SelectWithConstraints runs CVCP in Scenario II (§3.1.2): the supervision
// is a set of pairwise constraints.
//
// Deprecated: use Select with Spec{Grid: Grid{{alg, params}},
// Supervision: ConstraintSet(cons)}; this wrapper remains for compatibility
// and returns bit-identical results.
func SelectWithConstraints(alg Algorithm, ds *dataset.Dataset, cons *constraints.Set, params []int, opt Options) (*Selection, error) {
	return selectOne(Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: alg, Params: params}},
		Supervision: ConstraintSet(cons),
		Options:     opt,
	})
}

// SelectBySilhouette is the classical unsupervised model-selection baseline
// the paper compares against for MPCKmeans (§4.3).
//
// Deprecated: use Select with Scorer: Validity{Index: silhouette}; this
// wrapper remains for compatibility and returns bit-identical results.
func SelectBySilhouette(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, opt Options) (*Selection, error) {
	return SelectByValidityIndex(alg, ds, full, params, silhouetteIndex(), opt)
}

// selectOne runs a single-candidate Spec and unwraps the lone selection.
func selectOne(spec Spec) (*Selection, error) {
	res, err := Select(spec.Options.Context, spec)
	if err != nil {
		return nil, err
	}
	return res.PerCandidate[0], nil
}

// SortScores returns a copy of scores ordered by decreasing Score (ties by
// increasing parameter), useful for reporting.
func SortScores(scores []ParamScore) []ParamScore {
	out := append([]ParamScore(nil), scores...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Param < out[j].Param
	})
	return out
}
