// Package cvcp implements the paper's contribution: CVCP ("Cross-Validation
// for finding Clustering Parameters"), a model-selection framework for
// semi-supervised clustering (Section 3 of the paper).
//
// Given a semi-supervised clustering algorithm with one open parameter, a
// dataset, and partial supervision — labeled objects (Scenario I) or pairwise
// constraints (Scenario II) — CVCP scores every candidate parameter value by
// n-fold cross-validation: the partition produced from the training-side
// supervision is treated as a binary classifier over the test fold's
// constraints (must-link = class 1, cannot-link = class 0) and scored with
// the average per-class F-measure. The parameter with the best average score
// wins, and the final clustering is produced with all supervision.
package cvcp

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Algorithm is a semi-supervised clustering algorithm with a single integer
// parameter under selection (the number of clusters k for partitional
// methods, MinPts for density-based methods).
//
// Cluster must cluster the whole dataset using only the supervision in
// train, and return one cluster label per object; label -1 marks noise.
// Implementations must be deterministic given (ds, train, param, seed).
type Algorithm interface {
	Name() string
	Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error)
}

// Options configures a CVCP run.
type Options struct {
	// NFolds is the number of cross-validation folds. 0 means 10 (the
	// paper's typical n). When the supervision involves too few objects to
	// give every fold at least two, the fold count is automatically lowered
	// (never below 2).
	NFolds int
	// Seed drives fold construction and the per-fold algorithm seeds.
	Seed int64
	// Workers bounds how many fold×parameter tasks the selection engine
	// runs concurrently. 0 means serial unless Parallel is set; negative
	// means one worker per CPU. Every task's seed derives from its grid
	// position, so the result is bit-identical for every worker count.
	Workers int
	// Context cancels a selection mid-grid; the selection then returns the
	// context's error. Nil means context.Background().
	Context context.Context
	// Progress, when non-nil, observes grid completion: it is called after
	// each finished fold×parameter task with (done, total). Calls are
	// serialized.
	Progress func(done, total int)
	// Limiter, when non-nil, draws every fold×parameter task's execution
	// slot from a budget shared with other selections: the total number of
	// tasks executing across all selections holding the same Limiter never
	// exceeds its capacity. Multi-tenant callers (e.g. a selection server)
	// use this to bound machine load globally instead of per selection.
	Limiter *runner.Limiter
	// Parallel evaluates the grid with one worker per CPU.
	//
	// Deprecated: set Workers instead; Parallel is kept so existing
	// callers keep their concurrency and is ignored when Workers is set.
	Parallel bool
}

func (o Options) nFolds() int {
	if o.NFolds <= 0 {
		return 10
	}
	return o.NFolds
}

// workers resolves the Options to an effective worker count.
func (o Options) workers() int {
	switch {
	case o.Workers > 0:
		return o.Workers
	case o.Workers < 0 || o.Parallel:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// engineOptions builds the runner configuration for this selection.
func (o Options) engineOptions() runner.Options {
	return runner.Options{Workers: o.workers(), Context: o.Context, OnProgress: o.Progress, Limiter: o.Limiter}
}

// ParamScore is the cross-validated quality of one candidate parameter.
type ParamScore struct {
	Param      int
	Score      float64   // mean of FoldScores — the paper's CVCP criterion
	FoldScores []float64 // average constraint F-measure per test fold
}

// Selection is the outcome of a CVCP model-selection run.
type Selection struct {
	Algorithm string
	Best      ParamScore
	// Scores holds every candidate's result, in the order the candidates
	// were given.
	Scores []ParamScore
	// FinalLabels is the clustering of the full dataset with the selected
	// parameter using all available supervision (step 4 of the framework).
	FinalLabels []int
}

// ScoreCurve returns the candidates' mean scores in candidate order —
// the "CVCP internal classification scores" curve of Figures 5–8.
func (s *Selection) ScoreCurve() []float64 {
	out := make([]float64, len(s.Scores))
	for i, ps := range s.Scores {
		out[i] = ps.Score
	}
	return out
}

// SelectWithLabels runs CVCP in Scenario I (§3.1.1): the supervision is the
// set of labeled objects labeledIdx (their labels are read from ds.Y). The
// labeled objects are partitioned into folds; constraints are derived
// independently inside the training side and the test side of each fold.
func SelectWithLabels(alg Algorithm, ds *dataset.Dataset, labeledIdx []int, params []int, opt Options) (*Selection, error) {
	if err := checkArgs(alg, ds, params); err != nil {
		return nil, err
	}
	if !ds.Labeled() {
		return nil, fmt.Errorf("cvcp: Scenario I requires a labeled dataset")
	}
	if len(labeledIdx) < 4 {
		return nil, fmt.Errorf("cvcp: need at least 4 labeled objects, got %d", len(labeledIdx))
	}
	n := constraints.AdaptFolds(opt.nFolds(), len(labeledIdx))
	r := stats.NewRand(opt.Seed)
	folds, err := constraints.SplitLabels(r, labeledIdx, n)
	if err != nil {
		return nil, err
	}
	fs := make([]cvFold, len(folds))
	for i, f := range folds {
		fs[i] = cvFold{
			train: constraints.FromLabels(f.TrainIdx, ds.Y),
			test:  constraints.FromLabels(f.TestIdx, ds.Y),
		}
	}
	full := constraints.FromLabels(labeledIdx, ds.Y)
	return run(alg, ds, params, opt, fs, full)
}

// SelectWithConstraints runs CVCP in Scenario II (§3.1.2): the supervision
// is a set of pairwise constraints. The constraint graph is transitively
// closed, the involved objects are partitioned into folds, and constraints
// crossing the train/test boundary are removed, guaranteeing test
// independence.
func SelectWithConstraints(alg Algorithm, ds *dataset.Dataset, cons *constraints.Set, params []int, opt Options) (*Selection, error) {
	if err := checkArgs(alg, ds, params); err != nil {
		return nil, err
	}
	if cons == nil || cons.Len() == 0 {
		return nil, fmt.Errorf("cvcp: Scenario II requires a non-empty constraint set")
	}
	closed, err := constraints.Closure(cons)
	if err != nil {
		return nil, err
	}
	n := constraints.AdaptFolds(opt.nFolds(), len(closed.Involved()))
	r := stats.NewRand(opt.Seed)
	cfolds, err := constraints.SplitConstraints(r, cons, n)
	if err != nil {
		return nil, err
	}
	fs := make([]cvFold, len(cfolds))
	for i, f := range cfolds {
		fs[i] = cvFold{train: f.Train, test: f.Test}
	}
	return run(alg, ds, params, opt, fs, closed)
}

func checkArgs(alg Algorithm, ds *dataset.Dataset, params []int) error {
	if alg == nil {
		return fmt.Errorf("cvcp: nil algorithm")
	}
	if ds == nil || ds.N() == 0 {
		return fmt.Errorf("cvcp: empty dataset")
	}
	if len(params) == 0 {
		return fmt.Errorf("cvcp: empty parameter range")
	}
	return nil
}

// cvFold is one train/test split of supervision, already in constraint form.
type cvFold struct{ train, test *constraints.Set }

// run scores every candidate parameter by cross-validation, dispatching the
// full fold×parameter grid through the execution engine: each (parameter,
// fold) pair is one independent task whose seed derives from its grid
// position, so the scores — and hence the selection — are bit-identical for
// any worker count, including fully serial.
func run(alg Algorithm, ds *dataset.Dataset, params []int, opt Options,
	folds []cvFold, full *constraints.Set) (*Selection, error) {

	scores := make([]ParamScore, len(params))
	for pi, p := range params {
		scores[pi] = ParamScore{Param: p, FoldScores: make([]float64, len(folds))}
	}
	err := runner.Grid(opt.engineOptions(), len(params), len(folds),
		func(_ context.Context, pi, fi int) error {
			seed := stats.SplitSeed(opt.Seed, pi*len(folds)+fi+1)
			labels, err := alg.Cluster(ds, folds[fi].train, params[pi], seed)
			if err != nil {
				return fmt.Errorf("cvcp: %s with parameter %d: %w", alg.Name(), params[pi], err)
			}
			scores[pi].FoldScores[fi] = eval.ConstraintF(labels, folds[fi].test)
			return nil
		})
	if err != nil {
		return nil, err
	}
	for pi := range scores {
		scores[pi].Score = stats.Mean(scores[pi].FoldScores)
	}

	best := scores[0]
	for _, ps := range scores[1:] {
		if ps.Score > best.Score {
			best = ps
		}
	}
	// The final clustering dispatches through the engine too, as a
	// single-task run: it draws a slot from a shared Limiter (so a
	// multi-selection server stays within its global budget during this
	// phase) and observes cancellation like any grid task.
	var finalLabels []int
	err = runner.Run(runner.Options{Workers: 1, Context: opt.Context, Limiter: opt.Limiter},
		[]runner.Task{func(context.Context) error {
			var cerr error
			finalLabels, cerr = alg.Cluster(ds, full, best.Param, stats.SplitSeed(opt.Seed, 0))
			return cerr
		}})
	if err != nil {
		if opt.Context != nil && opt.Context.Err() != nil {
			return nil, opt.Context.Err()
		}
		return nil, fmt.Errorf("cvcp: final clustering: %w", err)
	}
	return &Selection{
		Algorithm:   alg.Name(),
		Best:        best,
		Scores:      scores,
		FinalLabels: finalLabels,
	}, nil
}

// SelectBySilhouette is the classical unsupervised model-selection baseline
// the paper compares against for MPCKmeans (§4.3): every candidate parameter
// clusters the data with the full supervision, the Silhouette coefficient of
// each partition is computed, and the best-scoring parameter wins. It is
// SelectByValidityIndex with the Silhouette criterion, so the parameter
// sweep dispatches through the selection engine.
func SelectBySilhouette(alg Algorithm, ds *dataset.Dataset, full *constraints.Set, params []int, opt Options) (*Selection, error) {
	return SelectByValidityIndex(alg, ds, full, params, ValidityIndex{
		Name:   "silhouette",
		Score:  eval.Silhouette,
		Better: func(a, b float64) bool { return a > b },
	}, opt)
}

// SortScores returns a copy of scores ordered by decreasing Score (ties by
// increasing parameter), useful for reporting.
func SortScores(scores []ParamScore) []ParamScore {
	out := append([]ParamScore(nil), scores...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Param < out[j].Param
	})
	return out
}
