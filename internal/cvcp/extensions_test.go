package cvcp

import (
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/datagen"
	"cvcp/internal/stats"
)

func TestCOPKMeansUnderCVCP(t *testing.T) {
	ds := blobsDataset(21, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(22), 0.25)
	sel, err := SelectWithLabels(COPKMeans{}, ds, labeled, []int{2, 3, 4, 5}, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Param != 3 {
		t.Errorf("COP-KMeans selected k=%d, want 3 (scores %v)", sel.Best.Param, sel.ScoreCurve())
	}
}

// An infeasible parameter (fewer clusters than mutually cannot-linked
// groups) must score poorly rather than abort the sweep.
func TestCOPKMeansInfeasibleParamScoresLow(t *testing.T) {
	ds := blobsDataset(24, 4, 15, 15)
	labeled := ds.SampleLabels(stats.NewRand(25), 0.3)
	sel, err := SelectWithLabels(COPKMeans{}, ds, labeled, []int{2, 3, 4, 5, 6}, Options{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	// k=2 and k=3 cannot host 4 mutually cannot-linked classes; the
	// selection must avoid them.
	if sel.Best.Param < 4 {
		t.Errorf("selected infeasible k=%d (scores %v)", sel.Best.Param, sel.ScoreCurve())
	}
}

func TestSelectAlgorithmWithLabels(t *testing.T) {
	// Zyeast-like elongated classes: the density-based candidate should
	// win the cross-paradigm selection.
	ds := datagen.Zyeast(31)
	labeled := ds.SampleLabels(stats.NewRand(32), 0.2)
	cands := []Candidate{
		{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9, 12}},
		{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4, 5, 6}},
	}
	res, err := SelectAlgorithmWithLabels(cands, ds, labeled, Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMethod) != 2 || res.Winner == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	for _, sel := range res.PerMethod {
		if sel.Best.Score > res.Winner.Best.Score {
			t.Error("winner is not the best-scoring candidate")
		}
	}
	if _, err := SelectAlgorithmWithLabels(nil, ds, labeled, Options{}); err == nil {
		t.Error("expected error for empty candidate list")
	}
}

func TestSelectAlgorithmWithConstraints(t *testing.T) {
	ds := blobsDataset(41, 3, 20, 15)
	r := stats.NewRand(42)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.25), 0.6)
	cands := []Candidate{
		{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4, 5}},
		{Algorithm: COPKMeans{}, Params: []int{2, 3, 4, 5}},
	}
	res, err := SelectAlgorithmWithConstraints(cands, ds, cons, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.Best.Score < 0.8 {
		t.Errorf("winner score %v on easy blobs", res.Winner.Best.Score)
	}
}

func TestBootstrapWithLabels(t *testing.T) {
	ds := blobsDataset(51, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(52), 0.25)
	sel, err := BootstrapWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4, 5}, 8, Options{Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Param != 3 {
		t.Errorf("bootstrap selected k=%d, want 3 (scores %v)", sel.Best.Param, sel.ScoreCurve())
	}
	if len(sel.Best.FoldScores) != 8 {
		t.Errorf("got %d bootstrap rounds, want 8", len(sel.Best.FoldScores))
	}
	if _, err := BootstrapWithLabels(MPCKMeans{}, ds, labeled[:2], []int{2}, 4, Options{}); err == nil {
		t.Error("expected error for too few labeled objects")
	}
}

func TestSelectByValidityIndex(t *testing.T) {
	ds := blobsDataset(71, 3, 20, 15)
	for _, vi := range ValidityIndices() {
		sel, err := SelectByValidityIndex(MPCKMeans{}, ds, nil, []int{2, 3, 4, 5}, vi, Options{Seed: 72})
		if err != nil {
			t.Fatalf("%s: %v", vi.Name, err)
		}
		if sel.Best.Param != 3 {
			t.Errorf("%s selected k=%d on 3 clean blobs, want 3", vi.Name, sel.Best.Param)
		}
	}
	if _, err := SelectByValidityIndex(MPCKMeans{}, ds, nil, []int{2}, ValidityIndex{Name: "broken"}, Options{}); err == nil {
		t.Error("expected error for incomplete validity index")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	ds := blobsDataset(61, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(62), 0.3)
	a, err := BootstrapWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4}, 5, Options{Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4}, 5, Options{Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Param != b.Best.Param || a.Best.Score != b.Best.Score {
		t.Error("bootstrap not deterministic")
	}
}
