package cvcp

import (
	"fmt"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/stats"
)

// Fold is one train/test split of supervision, already in constraint form.
// Scorers cluster with Train and score the partition against Test; the two
// sides are constructed leak-free (no Test constraint is derivable from
// Train via the transitive closure).
type Fold struct {
	Train, Test *constraints.Set
	// Data, when non-nil, is the fold's own sub-dataset: the fold's cells
	// cluster Data — with Train and Test in Data-local indices — instead
	// of the full dataset. Stable supervisions (StableLabels) set it,
	// making each cell's score a pure function of its fold's rows.
	Data *dataset.Dataset
	// CacheKey, when non-empty, content-addresses this fold for the cell
	// cache: a digest of the fold's row content and supervision
	// parameters. Cells of folds without a CacheKey are never cached.
	CacheKey string
}

// Supervision is the partial ground truth driving a selection — the paper's
// two scenarios are the two implementations: Labels (Scenario I, §3.1.1)
// and ConstraintSet (Scenario II, §3.1.2). A Supervision knows how to turn
// itself into the evaluation splits each Scorer needs, so scorers and
// scenarios compose freely.
type Supervision interface {
	// Kind names the scenario for error messages ("labels", "constraints").
	Kind() string
	// Full returns the complete supervision as a constraint set, exactly as
	// given — the training input for scorers that do not partition
	// (validity indices).
	Full(ds *dataset.Dataset) (*constraints.Set, error)
	// CVFolds partitions the supervision into at most n leak-free
	// cross-validation folds (the count adapts downward for small
	// supervision, never below 2) and returns the refit supervision used
	// for the final clustering — the transitive closure for constraints,
	// all pairwise constraints among the labeled objects for labels.
	CVFolds(ds *dataset.Dataset, n int, seed int64) ([]Fold, *constraints.Set, error)
	// BootstrapFolds draws rounds bootstrap train / out-of-bag test splits
	// plus the refit supervision. Supervisions that cannot be resampled
	// return an error.
	BootstrapFolds(ds *dataset.Dataset, rounds int, seed int64) ([]Fold, *constraints.Set, error)
}

// Labels is Scenario I supervision (§3.1.1): the objects at the given
// indices are labeled, their labels read from the dataset's Y column.
// Constraints are derived independently inside the training side and the
// test side of each fold, which keeps the cross-validation leak-free.
func Labels(idx []int) Supervision { return labelSupervision{idx: idx} }

type labelSupervision struct{ idx []int }

func (labelSupervision) Kind() string { return "labels" }

func (l labelSupervision) check(ds *dataset.Dataset) error {
	if !ds.Labeled() {
		return fmt.Errorf("cvcp: Scenario I requires a labeled dataset")
	}
	if len(l.idx) < 4 {
		return fmt.Errorf("cvcp: need at least 4 labeled objects, got %d", len(l.idx))
	}
	return nil
}

func (l labelSupervision) Full(ds *dataset.Dataset) (*constraints.Set, error) {
	if !ds.Labeled() {
		return nil, fmt.Errorf("cvcp: Scenario I requires a labeled dataset")
	}
	return constraints.FromLabels(l.idx, ds.Y), nil
}

func (l labelSupervision) CVFolds(ds *dataset.Dataset, n int, seed int64) ([]Fold, *constraints.Set, error) {
	if err := l.check(ds); err != nil {
		return nil, nil, err
	}
	n = constraints.AdaptFolds(n, len(l.idx))
	folds, err := constraints.SplitLabels(stats.NewRand(seed), l.idx, n)
	if err != nil {
		return nil, nil, err
	}
	fs := make([]Fold, len(folds))
	for i, f := range folds {
		fs[i] = Fold{
			Train: constraints.FromLabels(f.TrainIdx, ds.Y),
			Test:  constraints.FromLabels(f.TestIdx, ds.Y),
		}
	}
	return fs, constraints.FromLabels(l.idx, ds.Y), nil
}

func (l labelSupervision) BootstrapFolds(ds *dataset.Dataset, rounds int, seed int64) ([]Fold, *constraints.Set, error) {
	if !ds.Labeled() {
		return nil, nil, fmt.Errorf("cvcp: bootstrap requires a labeled dataset")
	}
	if len(l.idx) < 4 {
		return nil, nil, fmt.Errorf("cvcp: need at least 4 labeled objects, got %d", len(l.idx))
	}
	r := stats.NewRand(seed)
	folds := make([]Fold, 0, rounds)
	for len(folds) < rounds {
		inBag := map[int]bool{}
		bag := make([]int, 0, len(l.idx))
		for i := 0; i < len(l.idx); i++ {
			o := l.idx[r.Intn(len(l.idx))]
			if !inBag[o] {
				inBag[o] = true
				bag = append(bag, o)
			}
		}
		var oob []int
		for _, o := range l.idx {
			if !inBag[o] {
				oob = append(oob, o)
			}
		}
		if len(bag) < 2 || len(oob) < 2 {
			continue // resample: degenerate bootstrap draw
		}
		folds = append(folds, Fold{
			Train: constraints.FromLabels(bag, ds.Y),
			Test:  constraints.FromLabels(oob, ds.Y),
		})
	}
	return folds, constraints.FromLabels(l.idx, ds.Y), nil
}

// ConstraintSet is Scenario II supervision (§3.1.2): a set of pairwise
// must-link / cannot-link constraints. For cross-validation the constraint
// graph is transitively closed, the involved objects are partitioned into
// folds, and constraints crossing the train/test boundary are removed,
// guaranteeing test independence. A nil set is treated as empty (usable
// only with scorers that need no supervision, such as validity indices).
func ConstraintSet(cons *constraints.Set) Supervision {
	return constraintSupervision{cons: cons}
}

type constraintSupervision struct{ cons *constraints.Set }

func (constraintSupervision) Kind() string { return "constraints" }

func (c constraintSupervision) set() *constraints.Set {
	if c.cons == nil {
		return constraints.NewSet()
	}
	return c.cons
}

func (c constraintSupervision) Full(*dataset.Dataset) (*constraints.Set, error) {
	return c.set(), nil
}

func (c constraintSupervision) CVFolds(ds *dataset.Dataset, n int, seed int64) ([]Fold, *constraints.Set, error) {
	cons := c.set()
	if cons.Len() == 0 {
		return nil, nil, fmt.Errorf("cvcp: Scenario II requires a non-empty constraint set")
	}
	closed, err := constraints.Closure(cons)
	if err != nil {
		return nil, nil, err
	}
	n = constraints.AdaptFolds(n, len(closed.Involved()))
	cfolds, err := constraints.SplitConstraints(stats.NewRand(seed), cons, n)
	if err != nil {
		return nil, nil, err
	}
	fs := make([]Fold, len(cfolds))
	for i, f := range cfolds {
		fs[i] = Fold{Train: f.Train, Test: f.Test}
	}
	return fs, closed, nil
}

func (c constraintSupervision) BootstrapFolds(*dataset.Dataset, int, int64) ([]Fold, *constraints.Set, error) {
	return nil, nil, fmt.Errorf("cvcp: bootstrap scoring requires label supervision")
}
