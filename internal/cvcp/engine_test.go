package cvcp

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/stats"
)

// equalSelection asserts two selections agree bit-for-bit on everything the
// engine computes: parameters, per-fold scores, aggregate scores, the chosen
// parameter, and the final labeling.
func equalSelection(t *testing.T, a, b *Selection, what string) {
	t.Helper()
	if a.Algorithm != b.Algorithm {
		t.Errorf("%s: algorithm %q vs %q", what, a.Algorithm, b.Algorithm)
	}
	if a.Best.Param != b.Best.Param || a.Best.Score != b.Best.Score {
		t.Errorf("%s: best (%d, %v) vs (%d, %v)", what, a.Best.Param, a.Best.Score, b.Best.Param, b.Best.Score)
	}
	if !reflect.DeepEqual(a.Scores, b.Scores) {
		t.Errorf("%s: scores differ:\n%v\n%v", what, a.Scores, b.Scores)
	}
	if !reflect.DeepEqual(a.FinalLabels, b.FinalLabels) {
		t.Errorf("%s: final labels differ", what)
	}
}

// TestWorkersGolden is the determinism golden test: for both algorithms and
// both scenarios, a serial run and an 8-worker run of the fold×parameter
// engine must produce identical selections — same candidate scores to the
// last bit, same winner, same final labeling.
func TestWorkersGolden(t *testing.T) {
	ds := blobsDataset(21, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(22), 0.3)
	cons := constraints.FromLabels(labeled, ds.Y)

	algs := []struct {
		name   string
		alg    Algorithm
		params []int
	}{
		{"fosc", FOSCOpticsDend{}, []int{3, 6, 9, 12}},
		{"mpck", MPCKMeans{}, []int{2, 3, 4, 5}},
	}
	for _, a := range algs {
		t.Run(a.name+"/labels", func(t *testing.T) {
			one, err := SelectWithLabels(a.alg, ds, labeled, a.params, Options{Seed: 23, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			eight, err := SelectWithLabels(a.alg, ds, labeled, a.params, Options{Seed: 23, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			equalSelection(t, one, eight, "workers 1 vs 8")
		})
		t.Run(a.name+"/constraints", func(t *testing.T) {
			one, err := SelectWithConstraints(a.alg, ds, cons, a.params, Options{Seed: 23, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			eight, err := SelectWithConstraints(a.alg, ds, cons, a.params, Options{Seed: 23, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			equalSelection(t, one, eight, "workers 1 vs 8")
		})
	}
}

// The engine must also be invariant to odd worker counts that do not divide
// the grid.
func TestWorkerCountInvariance(t *testing.T) {
	ds := blobsDataset(24, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(25), 0.3)
	params := []int{2, 3, 4, 5, 6}
	base, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, Options{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Seed: 26, Workers: 3},
		{Seed: 26, Workers: 7},
		{Seed: 26, Workers: 64},
		{Seed: 26, Workers: -1},
	} {
		got, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, opt)
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, base, got, fmt.Sprintf("workers=%d", opt.Workers))
	}
}

func TestSelectCancellation(t *testing.T) {
	ds := blobsDataset(27, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(28), 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4},
		Options{Seed: 29, Workers: 4, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSelectCancelledMidGrid(t *testing.T) {
	ds := blobsDataset(30, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(31), 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from the progress callback: the selection must abandon the
	// remaining grid and report the cancellation.
	opt := Options{Seed: 32, Workers: 2, Context: ctx, Progress: func(done, total int) {
		if done == 2 {
			cancel()
		}
	}}
	if _, err := SelectWithLabels(MPCKMeans{}, ds, labeled, []int{2, 3, 4, 5, 6, 7}, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSelectProgress(t *testing.T) {
	ds := blobsDataset(33, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(34), 0.3)
	params := []int{2, 3, 4}
	var mu sync.Mutex
	var last, calls, total int
	opt := Options{Seed: 35, NFolds: 3, Workers: 4, Progress: func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		last = done
		calls++
		total = tot
	}}
	if _, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, opt); err != nil {
		t.Fatal(err)
	}
	if want := len(params) * 3; total != want || last != want || calls != want {
		t.Errorf("progress: last=%d calls=%d total=%d, want all %d", last, calls, total, want)
	}
}

// TestRunCacheHammer drives the shared OPTICS/distance caches from many
// goroutines at once (run under -race in CI): every caller must observe the
// same memoized ordering and matrix for a given (dataset, MinPts).
func TestRunCacheHammer(t *testing.T) {
	runCache.Flush()
	ds := blobsDataset(36, 3, 15, 12)
	minPts := []int{3, 6, 9, 12}
	var wg sync.WaitGroup
	results := make([]map[int]any, 16)
	matrices := make([]any, 16)
	for g := range results {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := map[int]any{}
			for i := 0; i < 50; i++ {
				mp := minPts[i%len(minPts)]
				res, err := opticsRun(ds, mp, false, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if prev, ok := got[mp]; ok && prev != res {
					t.Errorf("goroutine %d: two distinct orderings for MinPts=%d", g, mp)
					return
				}
				got[mp] = res
			}
			matrices[g] = distMatrix(ds, false)
			results[g] = got
		}()
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		if matrices[g] != matrices[0] {
			t.Errorf("goroutine %d observed a different distance matrix", g)
		}
		for mp, res := range results[g] {
			if res != results[0][mp] {
				t.Errorf("goroutine %d observed a different ordering for MinPts=%d", g, mp)
			}
		}
	}
}

// Concurrent full selections over distinct datasets must not interfere
// through the shared cache (run under -race in CI).
func TestConcurrentSelectionsAcrossDatasets(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds := blobsDataset(int64(40+i), 3, 15, 12)
			labeled := ds.SampleLabels(stats.NewRand(int64(50+i)), 0.3)
			sel, err := SelectWithLabels(FOSCOpticsDend{}, ds, labeled, []int{3, 6, 9},
				Options{Seed: int64(60 + i), Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			if len(sel.FinalLabels) != ds.N() {
				t.Errorf("dataset %d: %d final labels, want %d", i, len(sel.FinalLabels), ds.N())
			}
		}()
	}
	wg.Wait()
}
