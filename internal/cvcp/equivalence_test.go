package cvcp

import (
	"context"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/stats"
)

// Golden API-equivalence tests: every legacy entry point must return a
// Selection bit-identical to its Select(ctx, Spec) equivalent — same
// per-fold scores to the last bit, same winner, same final labeling — at
// Workers=1 and Workers=8. This pins the wrapper→Spec mapping (supervision,
// scorer, grid, seeds) so the compatibility shims can never drift from the
// unified core.

// equivalenceWorkers are the worker counts every equivalence case runs at.
var equivalenceWorkers = []int{1, 8}

func TestSelectWithLabelsEquivalence(t *testing.T) {
	ds := blobsDataset(81, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(82), 0.3)
	params := []int{2, 3, 4, 5}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 83, NFolds: 4, Workers: w}
		legacy, err := SelectWithLabels(MPCKMeans{}, ds, labeled, params, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: MPCKMeans{}, Params: params}},
			Supervision: Labels(labeled),
			Scorer:      CrossValidation{},
			Options:     opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, legacy, res.PerCandidate[0], "SelectWithLabels vs Spec")
		equalSelection(t, legacy, res.Winner, "SelectWithLabels vs Spec winner")
	}
}

func TestSelectWithConstraintsEquivalence(t *testing.T) {
	ds := blobsDataset(84, 4, 15, 15)
	r := stats.NewRand(85)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6, 9}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 86, NFolds: 4, Workers: w}
		legacy, err := SelectWithConstraints(FOSCOpticsDend{}, ds, cons, params, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: FOSCOpticsDend{}, Params: params}},
			Supervision: ConstraintSet(cons),
			Options:     opt, // nil Scorer defaults to CrossValidation
		})
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, legacy, res.PerCandidate[0], "SelectWithConstraints vs Spec")
	}
}

func TestBootstrapWithLabelsEquivalence(t *testing.T) {
	ds := blobsDataset(87, 3, 18, 14)
	labeled := ds.SampleLabels(stats.NewRand(88), 0.3)
	params := []int{2, 3, 4}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 89, Workers: w}
		legacy, err := BootstrapWithLabels(MPCKMeans{}, ds, labeled, params, 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: MPCKMeans{}, Params: params}},
			Supervision: Labels(labeled),
			Scorer:      Bootstrap{Rounds: 6},
			Options:     opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, legacy, res.PerCandidate[0], "BootstrapWithLabels vs Spec")
	}
}

func TestSelectByValidityIndexEquivalence(t *testing.T) {
	ds := blobsDataset(90, 3, 20, 15)
	params := []int{2, 3, 4, 5}
	for _, vi := range ValidityIndices() {
		for _, w := range equivalenceWorkers {
			opt := Options{Seed: 91, Workers: w}
			legacy, err := SelectByValidityIndex(MPCKMeans{}, ds, nil, params, vi, opt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Select(context.Background(), Spec{
				Dataset:     ds,
				Grid:        Grid{{Algorithm: MPCKMeans{}, Params: params}},
				Supervision: ConstraintSet(nil),
				Scorer:      Validity{Index: vi},
				Options:     opt,
			})
			if err != nil {
				t.Fatal(err)
			}
			equalSelection(t, legacy, res.PerCandidate[0], "SelectByValidityIndex("+vi.Name+") vs Spec")
		}
	}
}

func TestSelectBySilhouetteEquivalence(t *testing.T) {
	ds := blobsDataset(92, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(93), 0.3)
	full := constraints.FromLabels(labeled, ds.Y)
	params := []int{2, 3, 4, 5}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 94, Workers: w}
		legacy, err := SelectBySilhouette(MPCKMeans{}, ds, full, params, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid{{Algorithm: MPCKMeans{}, Params: params}},
			Supervision: ConstraintSet(full),
			Scorer:      Validity{Index: silhouetteIndex()},
			Options:     opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, legacy, res.PerCandidate[0], "SelectBySilhouette vs Spec")
	}
}

func TestSelectAlgorithmWithLabelsEquivalence(t *testing.T) {
	ds := blobsDataset(95, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(96), 0.3)
	cands := []Candidate{
		{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9}},
		{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}},
		{Algorithm: COPKMeans{}, Params: []int{2, 3, 4}},
	}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 97, NFolds: 4, Workers: w}
		legacy, err := SelectAlgorithmWithLabels(cands, ds, labeled, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid(cands),
			Supervision: Labels(labeled),
			Options:     opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerCandidate) != len(legacy.PerMethod) {
			t.Fatalf("%d candidates vs %d", len(res.PerCandidate), len(legacy.PerMethod))
		}
		for i := range cands {
			equalSelection(t, legacy.PerMethod[i], res.PerCandidate[i], "SelectAlgorithmWithLabels candidate "+cands[i].Algorithm.Name())
		}
		equalSelection(t, legacy.Winner, res.Winner, "SelectAlgorithmWithLabels winner")
	}
}

func TestSelectAlgorithmWithConstraintsEquivalence(t *testing.T) {
	ds := blobsDataset(98, 3, 20, 15)
	r := stats.NewRand(99)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.25), 0.6)
	cands := []Candidate{
		{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}},
		{Algorithm: COPKMeans{}, Params: []int{2, 3, 4}},
	}
	for _, w := range equivalenceWorkers {
		opt := Options{Seed: 100, NFolds: 4, Workers: w}
		legacy, err := SelectAlgorithmWithConstraints(cands, ds, cons, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Select(context.Background(), Spec{
			Dataset:     ds,
			Grid:        Grid(cands),
			Supervision: ConstraintSet(cons),
			Options:     opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range cands {
			equalSelection(t, legacy.PerMethod[i], res.PerCandidate[i], "SelectAlgorithmWithConstraints candidate "+cands[i].Algorithm.Name())
		}
		equalSelection(t, legacy.Winner, res.Winner, "SelectAlgorithmWithConstraints winner")
	}
}

// The unified grid must be invariant to running candidates together or
// alone: a multi-candidate Select is bit-identical to one Select per
// candidate (the property that lets the engine share one worker pool, one
// Limiter and one run cache across a cross-method selection).
func TestMultiCandidateMatchesPerCandidate(t *testing.T) {
	ds := blobsDataset(101, 3, 18, 14)
	labeled := ds.SampleLabels(stats.NewRand(102), 0.3)
	cands := Grid{
		{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9}},
		{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4, 5}},
	}
	opt := Options{Seed: 103, NFolds: 3, Workers: 8}
	joint, err := Select(context.Background(), Spec{Dataset: ds, Grid: cands, Supervision: Labels(labeled), Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	for i, cand := range cands {
		alone, err := Select(context.Background(), Spec{Dataset: ds, Grid: Grid{cand}, Supervision: Labels(labeled), Options: opt})
		if err != nil {
			t.Fatal(err)
		}
		equalSelection(t, alone.PerCandidate[0], joint.PerCandidate[i], "joint vs alone "+cand.Algorithm.Name())
	}
}
