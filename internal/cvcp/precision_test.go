package cvcp

import (
	"context"
	"math"
	"reflect"
	"testing"

	"cvcp/internal/cluster/optics"
	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
	"cvcp/internal/linalg"
	"cvcp/internal/stats"
)

// selectFOSC runs one constraint-supervised FOSC-OPTICSDend selection with
// the given algorithm configuration and a flushed run cache.
func selectFOSC(t *testing.T, alg Algorithm, ds *dataset.Dataset, cons *constraints.Set, params []int) *Selection {
	t.Helper()
	runCache.Flush()
	res, err := Select(context.Background(), Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: alg, Params: params}},
		Supervision: ConstraintSet(cons),
		Options:     Options{Seed: 97, NFolds: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Winner
}

// TestSelectionBitIdenticalBlockedVsNaive is the whole-pipeline golden test
// behind the kernel optimization: a full FOSC-OPTICSDend selection run on
// the blocked quad-kernel distance matrix must be bit-identical — same
// selected MinPts, same fold scores to the last bit, same final labels —
// to the same selection run on the naive scalar builder (the pre-
// optimization reference path). This holds because every Dist4 lane
// accumulates in the exact element order of the scalar Dist loop.
func TestSelectionBitIdenticalBlockedVsNaive(t *testing.T) {
	ds := blobsDataset(93, 3, 18, 14)
	r := stats.NewRand(94)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6, 9, 12}

	blocked := selectFOSC(t, FOSCOpticsDend{}, ds, cons, params)

	orig := buildDistMatrix
	buildDistMatrix = linalg.NewDistMatrixNaive
	defer func() {
		buildDistMatrix = orig
		runCache.Flush()
	}()
	naive := selectFOSC(t, FOSCOpticsDend{}, ds, cons, params)

	equalSelection(t, naive, blocked, "blocked quad-kernel vs naive scalar builder")
}

// TestFloat32SelectionAgreesOnSeparatedData is the end-to-end agreement
// test for the float32 matrix mode: on data whose distance margins dwarf
// the 2⁻²⁴ relative rounding error, the OPTICS orderings and the selected
// MinPts must agree exactly between the float64 and float32 paths.
func TestFloat32SelectionAgreesOnSeparatedData(t *testing.T) {
	ds := blobsDataset(95, 3, 18, 14)
	r := stats.NewRand(96)
	cons := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.3), 0.5)
	params := []int{3, 6, 9, 12}

	f64 := selectFOSC(t, FOSCOpticsDend{}, ds, cons, params)
	f32 := selectFOSC(t, FOSCOpticsDend{Matrix32: true}, ds, cons, params)

	if f64.Best.Param != f32.Best.Param {
		t.Errorf("selected MinPts diverged: float64 %d, float32 %d", f64.Best.Param, f32.Best.Param)
	}
	if !reflect.DeepEqual(f64.FinalLabels, f32.FinalLabels) {
		t.Errorf("final labels diverged between precisions")
	}
	// Scores are ratios of constraint-satisfaction counts: when every fold
	// clustering agrees, they agree bit for bit.
	if !reflect.DeepEqual(f64.Scores, f32.Scores) {
		t.Errorf("scores diverged:\nfloat64 %v\nfloat32 %v", f64.Scores, f32.Scores)
	}

	// The orderings themselves must agree too, for every candidate MinPts.
	runCache.Flush()
	for _, mp := range params {
		a, err := opticsRun(ds, mp, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := opticsRun(ds, mp, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Order, b.Order) {
			t.Errorf("MinPts=%d: OPTICS ordering diverged between precisions", mp)
		}
	}
}

// TestFloat32DivergenceOnSubUlpTies pins down when the float32 mode
// legitimately diverges: two distances that differ in float64 by less than
// one float32 ULP round to the same float32 value, so a reachability
// comparison the float64 path decides by magnitude becomes a tie the
// float32 path decides by index. Here d(0,2) = 1−2⁻³⁰ < d(0,1) = 1 in
// float64, but both round to exactly 1.0 in float32.
func TestFloat32DivergenceOnSubUlpTies(t *testing.T) {
	delta := math.Ldexp(1, -30) // well below one float32 ULP at 1.0 (2⁻²⁴)
	x := [][]float64{{0}, {1}, {1 - delta}}

	d01 := x[1][0] - x[0][0]
	d02 := x[2][0] - x[0][0]
	if d01 == d02 {
		t.Fatal("setup: distances must differ in float64")
	}
	if float32(d01) != float32(d02) {
		t.Fatal("setup: distances must round to the same float32")
	}

	f64, err := optics.RunWithMatrix(linalg.NewDistMatrixCondensed(x), 2)
	if err != nil {
		t.Fatal(err)
	}
	f32, err := optics.RunWithMatrix(linalg.NewDistMatrixCondensed32(x), 2)
	if err != nil {
		t.Fatal(err)
	}
	// float64: object 2 is strictly closer to 0, so it is reached first.
	if want := []int{0, 2, 1}; !reflect.DeepEqual(f64.Order, want) {
		t.Fatalf("float64 ordering = %v, want %v", f64.Order, want)
	}
	// float32: the keys tie at exactly 1.0 and the deterministic index
	// tie-break reaches object 1 first — a legitimate, documented
	// divergence, not a bug.
	if want := []int{0, 1, 2}; !reflect.DeepEqual(f32.Order, want) {
		t.Fatalf("float32 ordering = %v, want %v", f32.Order, want)
	}
}
