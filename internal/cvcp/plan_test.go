package cvcp

import (
	"context"
	"strings"
	"testing"

	"cvcp/internal/stats"
)

// TestCellPlanMatchesSelect is the distributed-determinism contract at the
// planning layer: for several shardings of the cell grid — including
// out-of-order range execution and differing per-range worker counts —
// computing each range with ScoreRange and merging the concatenated scores
// with Finalize must reproduce Select's Result bit-for-bit.
func TestCellPlanMatchesSelect(t *testing.T) {
	ds := blobsDataset(41, 3, 20, 15)
	labeled := ds.SampleLabels(stats.NewRand(42), 0.3)
	spec := Spec{
		Dataset: ds,
		Grid: Grid{
			{Algorithm: FOSCOpticsDend{}, Params: []int{3, 6, 9}},
			{Algorithm: MPCKMeans{}, Params: []int{2, 3, 4}},
		},
		Supervision: Labels(labeled),
		Options:     Options{Seed: 43, Workers: 2},
	}
	want, err := Select(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := PlanCells(spec)
	if err != nil {
		t.Fatal(err)
	}
	n := plan.NumCells()
	if folds := 0; true {
		for _, ps := range want.PerCandidate[0].Scores {
			folds = len(ps.FoldScores)
			break
		}
		if wantCells := 6 * folds; n != wantCells {
			t.Fatalf("NumCells() = %d, want %d", n, wantCells)
		}
	}

	for _, per := range []int{1, 4, n, n + 7} {
		var ranges [][2]int
		for lo := 0; lo < n; lo += per {
			hi := lo + per
			if hi > n {
				hi = n
			}
			ranges = append(ranges, [2]int{lo, hi})
		}
		// Execute the ranges back-to-front with varying worker counts:
		// neither order nor local parallelism may leak into the scores.
		cellScores := make([]float64, n)
		for i := len(ranges) - 1; i >= 0; i-- {
			lo, hi := ranges[i][0], ranges[i][1]
			part, err := plan.ScoreRange(context.Background(), lo, hi, 1+i%3, nil)
			if err != nil {
				t.Fatalf("ScoreRange(%d, %d): %v", lo, hi, err)
			}
			if len(part) != hi-lo {
				t.Fatalf("ScoreRange(%d, %d) returned %d scores", lo, hi, len(part))
			}
			copy(cellScores[lo:hi], part)
		}
		got, err := plan.Finalize(context.Background(), cellScores, 2, nil)
		if err != nil {
			t.Fatalf("Finalize (per=%d): %v", per, err)
		}
		if len(got.PerCandidate) != len(want.PerCandidate) {
			t.Fatalf("per=%d: %d candidates, want %d", per, len(got.PerCandidate), len(want.PerCandidate))
		}
		for ci := range want.PerCandidate {
			equalSelection(t, want.PerCandidate[ci], got.PerCandidate[ci], "sharded vs Select")
		}
		equalSelection(t, want.Winner, got.Winner, "winner")
	}
}

func TestPlanCellsRejectsValidityScorer(t *testing.T) {
	ds := blobsDataset(44, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(45), 0.3)
	spec := Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2, 3}}},
		Supervision: Labels(labeled),
		Scorer:      Validity{Index: silhouetteIndex()},
	}
	if _, err := PlanCells(spec); err == nil || !strings.Contains(err.Error(), "not partition-based") {
		t.Fatalf("PlanCells with validity scorer: err = %v, want not-partition-based", err)
	}
}

func TestCellPlanRangeAndMergeErrors(t *testing.T) {
	ds := blobsDataset(46, 3, 15, 12)
	labeled := ds.SampleLabels(stats.NewRand(47), 0.3)
	plan, err := PlanCells(Spec{
		Dataset:     ds,
		Grid:        Grid{{Algorithm: MPCKMeans{}, Params: []int{2, 3}}},
		Supervision: Labels(labeled),
		Options:     Options{Seed: 48},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := plan.NumCells()
	for _, r := range [][2]int{{-1, 1}, {0, n + 1}, {2, 1}} {
		if _, err := plan.ScoreRange(context.Background(), r[0], r[1], 1, nil); err == nil {
			t.Errorf("ScoreRange(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
	if _, err := plan.Finalize(context.Background(), make([]float64, n-1), 1, nil); err == nil {
		t.Error("Finalize accepted a short score vector")
	}
}
