package experiments

import (
	"context"
	"fmt"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// method identifies which of the paper's two semi-supervised clustering
// methods a trial exercises.
type method int

const (
	methodFOSC method = iota
	methodMPCK
)

func (m method) String() string {
	if m == methodFOSC {
		return "FOSC-OPTICSDend"
	}
	return "MPCKmeans"
}

func (m method) algorithm() corecvcp.Algorithm {
	if m == methodFOSC {
		return corecvcp.FOSCOpticsDend{}
	}
	return corecvcp.MPCKMeans{}
}

func (m method) params(ds *dataset.Dataset) []int {
	if m == methodFOSC {
		return MinPtsRange
	}
	return kRange(ds)
}

// scenario identifies the supervision form.
type scenario int

const (
	scenarioLabels scenario = iota
	scenarioConstraints
)

func (s scenario) String() string {
	if s == scenarioLabels {
		return "label scenario"
	}
	return "constraint scenario"
}

// trialResult is the outcome of one independent experiment on one dataset:
// the internal CVCP score curve, the external Overall F-Measure curve over
// the same parameters, their correlation, and the external quality achieved
// by each model-selection strategy.
type trialResult struct {
	Params   []int
	Internal []float64 // CVCP cross-validated constraint F per parameter
	External []float64 // Overall F-Measure per parameter (full supervision)
	Corr     float64   // Pearson correlation of the two curves
	Best     int       // parameter CVCP selected
	CVCP     float64   // external quality at the CVCP-selected parameter
	Expected float64   // mean external quality over the range (random guess)
	Sil      float64   // external quality at the Silhouette-selected parameter
	SilBest  int       // parameter Silhouette selected
}

// runTrial executes one experiment: draw supervision, run CVCP, cluster with
// every candidate parameter under full supervision, and evaluate externally
// on the objects not involved in the supervision (Section 4.1).
func runTrial(cfg Config, ds *dataset.Dataset, m method, sc scenario, frac float64, seed int64) (trialResult, error) {
	r := stats.NewRand(seed)
	alg := m.algorithm()
	params := m.params(ds)

	var full *constraints.Set
	var involved []int
	var sup corecvcp.Supervision

	opt := corecvcp.Options{NFolds: cfg.NFolds, Seed: stats.SplitSeed(seed, 1), Workers: cfg.workers(), Progress: cfg.Progress}
	switch sc {
	case scenarioLabels:
		labeled := ds.SampleLabels(r, frac)
		full = constraints.FromLabels(labeled, ds.Y)
		involved = labeled
		sup = corecvcp.Labels(labeled)
	default:
		pool := constraints.Pool(r, ds.Y, PoolObjectFraction)
		given := constraints.Sample(r, pool, frac)
		closed, err := constraints.Closure(given)
		if err != nil {
			return trialResult{}, err
		}
		full = closed
		involved = given.Involved()
		sup = corecvcp.ConstraintSet(given)
	}
	selRes, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        corecvcp.Grid{{Algorithm: alg, Params: params}},
		Supervision: sup,
		Options:     opt,
	})
	if err != nil {
		return trialResult{}, err
	}
	sel := selRes.PerCandidate[0]

	evalIdx := complement(ds.N(), involved)
	res := trialResult{
		Params:   params,
		Internal: sel.ScoreCurve(),
		External: make([]float64, len(params)),
		Best:     sel.Best.Param,
	}
	// The external evaluation sweep — one full-supervision clustering per
	// candidate parameter — is independent across parameters, so it
	// dispatches through the same engine as the selection grid. Each task
	// writes only its own slots and seeds derive from the parameter index,
	// keeping the sweep bit-identical for every worker count.
	sil := make([]float64, len(params))
	err = runner.Grid(runner.Options{Workers: cfg.workers(), OnProgress: cfg.Progress}, len(params), 1,
		func(_ context.Context, pi, _ int) error {
			labels, err := alg.Cluster(ds, full, params[pi], stats.SplitSeed(seed, 100+pi))
			if err != nil {
				return fmt.Errorf("experiments: %s param %d: %w", m, params[pi], err)
			}
			res.External[pi] = eval.OverallF(labels, ds.Y, evalIdx)
			if m == methodMPCK {
				sil[pi] = eval.Silhouette(ds.X, labels)
			}
			return nil
		})
	if err != nil {
		return trialResult{}, err
	}
	res.Corr = stats.Pearson(res.Internal, res.External)
	res.Expected = stats.Mean(res.External)
	res.CVCP = res.External[indexOf(params, sel.Best.Param)]
	if m == methodMPCK {
		bi := 0
		for i := range sil {
			if sil[i] > sil[bi] {
				bi = i
			}
		}
		res.Sil = res.External[bi]
		res.SilBest = params[bi]
	}
	return res, nil
}

func indexOf(params []int, p int) int {
	for i, v := range params {
		if v == p {
			return i
		}
	}
	panic(fmt.Sprintf("experiments: parameter %d not in range %v", p, params))
}

// complement returns 0..n-1 minus the sorted index list drop.
func complement(n int, drop []int) []int {
	in := make([]bool, n)
	for _, i := range drop {
		in[i] = true
	}
	out := make([]int, 0, n-len(drop))
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// trialSeed derives a deterministic seed for (dataset index, trial index).
func (c Config) trialSeed(dsIndex, trial int) int64 {
	return stats.SplitSeed(c.Seed, dsIndex*100003+trial)
}
