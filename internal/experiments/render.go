package experiments

import (
	"fmt"
	"io"
	"strings"

	"cvcp/internal/stats"
)

// table is a minimal fixed-width text table renderer used by all experiment
// outputs, so the harness prints rows directly comparable to the paper's.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f3(v float64) string { return fmt.Sprintf("%.4f", v) }

// renderBoxplot prints an ASCII five-number boxplot row scaled to [lo, hi].
func renderBoxplot(w io.Writer, label string, s stats.FiveNum, lo, hi float64) {
	const width = 60
	scale := func(v float64) int {
		if hi <= lo {
			return 0
		}
		p := (v - lo) / (hi - lo)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return int(p * (width - 1))
	}
	row := []byte(strings.Repeat(" ", width))
	for i := scale(s.Min); i <= scale(s.Max); i++ {
		row[i] = '-'
	}
	for i := scale(s.Q1); i <= scale(s.Q3); i++ {
		row[i] = '='
	}
	row[scale(s.Median)] = '|'
	fmt.Fprintf(w, "%-10s %s  med=%.3f q1=%.3f q3=%.3f\n", label, string(row), s.Median, s.Q1, s.Q3)
}

// curveRows prints a two-series curve (internal vs external) as aligned
// columns, one row per parameter.
func curveRows(w io.Writer, params []int, internal, external []float64) {
	t := &table{header: []string{"param", "CVCP internal score", "clustering score (Overall F)"}}
	for i, p := range params {
		t.addRow(fmt.Sprintf("%d", p), f3(internal[i]), f3(external[i]))
	}
	t.render(w)
}
