package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one of the paper's tables or figures.
type Runner struct {
	Name        string // experiment id, e.g. "table5" or "fig9"
	Description string // what the paper reports there
	Run         func(Config) error
}

// Registry returns every experiment in paper order. Names match the paper's
// numbering: fig5–fig12 and table1–table16.
func Registry() []Runner {
	var rs []Runner
	add := func(name, desc string, run func(Config) error) {
		rs = append(rs, Runner{Name: name, Description: desc, Run: run})
	}

	add("fig5", "FOSC-OPTICSDend (label scenario): internal vs external curves, representative ALOI set",
		func(c Config) error { return curveFigure(c, c.Out, methodFOSC, scenarioLabels) })
	add("fig6", "MPCKmeans (label scenario): internal vs external curves, representative ALOI set",
		func(c Config) error { return curveFigure(c, c.Out, methodMPCK, scenarioLabels) })
	add("fig7", "FOSC-OPTICSDend (constraint scenario): internal vs external curves, representative ALOI set",
		func(c Config) error { return curveFigure(c, c.Out, methodFOSC, scenarioConstraints) })
	add("fig8", "MPCKmeans (constraint scenario): internal vs external curves, representative ALOI set",
		func(c Config) error { return curveFigure(c, c.Out, methodMPCK, scenarioConstraints) })

	add("table1", "FOSC-OPTICSDend (label scenario): correlation of internal scores with Overall F-Measure",
		func(c Config) error { return correlationTable(c, c.Out, methodFOSC, scenarioLabels) })
	add("table2", "MPCKmeans (label scenario): correlation of internal scores with Overall F-Measure",
		func(c Config) error { return correlationTable(c, c.Out, methodMPCK, scenarioLabels) })
	add("table3", "FOSC-OPTICSDend (constraint scenario): correlation of internal scores with Overall F-Measure",
		func(c Config) error { return correlationTable(c, c.Out, methodFOSC, scenarioConstraints) })
	add("table4", "MPCKmeans (constraint scenario): correlation of internal scores with Overall F-Measure",
		func(c Config) error { return correlationTable(c, c.Out, methodMPCK, scenarioConstraints) })

	add("fig9", "FOSC-OPTICSDend (label scenario): ALOI quality boxplots, CVCP vs Expected",
		func(c Config) error { return boxplotFigure(c, c.Out, methodFOSC, scenarioLabels) })
	add("fig10", "MPCKmeans (label scenario): ALOI quality boxplots, CVCP vs Expected vs Silhouette",
		func(c Config) error { return boxplotFigure(c, c.Out, methodMPCK, scenarioLabels) })
	add("fig11", "FOSC-OPTICSDend (constraint scenario): ALOI quality boxplots, CVCP vs Expected",
		func(c Config) error { return boxplotFigure(c, c.Out, methodFOSC, scenarioConstraints) })
	add("fig12", "MPCKmeans (constraint scenario): ALOI quality boxplots, CVCP vs Expected vs Silhouette",
		func(c Config) error { return boxplotFigure(c, c.Out, methodMPCK, scenarioConstraints) })

	perf := []struct {
		name string
		m    method
		sc   scenario
		frac float64
	}{
		{"table5", methodFOSC, scenarioLabels, 0.05},
		{"table6", methodFOSC, scenarioLabels, 0.10},
		{"table7", methodFOSC, scenarioLabels, 0.20},
		{"table8", methodMPCK, scenarioLabels, 0.05},
		{"table9", methodMPCK, scenarioLabels, 0.10},
		{"table10", methodMPCK, scenarioLabels, 0.20},
		{"table11", methodFOSC, scenarioConstraints, 0.10},
		{"table12", methodFOSC, scenarioConstraints, 0.20},
		{"table13", methodFOSC, scenarioConstraints, 0.50},
		{"table14", methodMPCK, scenarioConstraints, 0.10},
		{"table15", methodMPCK, scenarioConstraints, 0.20},
		{"table16", methodMPCK, scenarioConstraints, 0.50},
	}
	for _, p := range perf {
		p := p
		add(p.name,
			fmt.Sprintf("%s (%s): average performance with %.0f%% supervision", p.m, p.sc, p.frac*100),
			func(c Config) error { return performanceTable(c, c.Out, p.m, p.sc, p.frac) })
	}

	add("ablation-leakage", "ablation (paper §3.1): satisfaction of leaked vs independent test constraints under a naive edge-split CV",
		func(c Config) error { return leakageAblation(c, c.Out) })
	add("ablation-validity", "ablation: CVCP vs Davies-Bouldin/Calinski-Harabasz/Dunn/Silhouette selection, MPCKmeans on ALOI",
		func(c Config) error { return validityAblation(c, c.Out) })
	return rs
}

// Lookup returns the named runner, or an error listing valid names.
func Lookup(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	var names []string
	for _, r := range Registry() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q; valid: %v", name, names)
}
