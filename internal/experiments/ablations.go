package experiments

import (
	"context"
	"fmt"
	"io"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/eval"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Ablation experiments beyond the paper's tables: they make the paper's
// methodological claims (§3.1) and this reproduction's design choices
// measurable from the command line. Registered as "ablation-leakage" and
// "ablation-validity".

// leakageAblation quantifies the §3.1 warning: under a naive edge-split
// cross-validation, test constraints that are derivable from the training
// folds via the transitive closure are satisfied far more often than
// genuinely independent ones, so keeping them underestimates the
// classification error. For each dataset it reports the satisfaction rate
// of leaked vs. fresh test constraints under FOSC-OPTICSDend.
func leakageAblation(cfg Config, w io.Writer) error {
	t := &table{header: []string{"Data set", "leaked rate", "fresh rate", "bias", "#leaked", "#fresh"}}
	datasets := append(cfg.aloi()[:1], cfg.uci()...)
	// Per-fold contribution to the satisfaction-rate accumulators; each
	// engine task fills exactly one slot, and the slots are reduced in fold
	// order afterwards so the totals are bit-identical to a serial loop.
	type foldLeakage struct {
		leakedSum, freshSum float64
		leakedN, freshN     int
	}
	for di, ds := range datasets {
		var leakedSum, freshSum float64
		var leakedN, freshN int
		for trial := 0; trial < cfg.Trials; trial++ {
			r := stats.NewRand(cfg.trialSeed(9000+di, trial))
			given := constraints.Sample(r, constraints.Pool(r, ds.Y, 0.12), 0.6)
			folds, err := constraints.NaiveSplitConstraints(stats.NewRand(cfg.trialSeed(9100+di, trial)), given, 4)
			if err != nil {
				return err
			}
			per := make([]foldLeakage, len(folds))
			err = runner.Grid(runner.Options{Workers: cfg.workers()}, len(folds), 1,
				func(_ context.Context, fi, _ int) error {
					f := folds[fi]
					trainClosed, err := constraints.Closure(f.Train)
					if err != nil {
						return nil // inconsistent naive training side
					}
					leaked := constraints.NewSet()
					fresh := constraints.NewSet()
					for _, c := range f.Test.Constraints() {
						derivable := (c.MustLink && trainClosed.HasMustLink(c.A, c.B)) ||
							(!c.MustLink && trainClosed.HasCannotLink(c.A, c.B))
						if derivable {
							leaked.AddConstraint(c)
						} else {
							fresh.AddConstraint(c)
						}
					}
					if leaked.Len() == 0 || fresh.Len() == 0 {
						return nil
					}
					labels, err := corecvcp.FOSCOpticsDend{}.Cluster(ds, trainClosed, 6, int64(fi))
					if err != nil {
						return err
					}
					per[fi] = foldLeakage{
						leakedSum: eval.SatisfactionRate(labels, leaked) * float64(leaked.Len()),
						freshSum:  eval.SatisfactionRate(labels, fresh) * float64(fresh.Len()),
						leakedN:   leaked.Len(),
						freshN:    fresh.Len(),
					}
					return nil
				})
			if err != nil {
				return err
			}
			for _, s := range per {
				leakedSum += s.leakedSum
				freshSum += s.freshSum
				leakedN += s.leakedN
				freshN += s.freshN
			}
		}
		if leakedN == 0 || freshN == 0 {
			t.addRow(titleCase([]string{ds.Name})[0], "-", "-", "-", "0", "0")
			continue
		}
		lr := leakedSum / float64(leakedN)
		fr := freshSum / float64(freshN)
		t.addRow(titleCase([]string{ds.Name})[0], f3(lr), f3(fr), f3(lr-fr),
			fmt.Sprintf("%d", leakedN), fmt.Sprintf("%d", freshN))
	}
	fmt.Fprintln(w, "Leakage ablation (paper §3.1) — satisfaction of leaked vs independent test constraints under a naive edge-split CV")
	t.render(w)
	fmt.Fprintln(w, "A positive bias means the naive protocol overestimates constraint accuracy; the closure-based fold construction removes it by design.")
	return nil
}

// validityAblation extends the paper's Silhouette baseline (Tables 8–10) to
// the other classical relative validity criteria: for MPCKmeans on the ALOI
// collection it compares the external quality achieved by CVCP against
// selection by Silhouette, Davies–Bouldin, Calinski–Harabasz and Dunn.
func validityAblation(cfg Config, w io.Writer) error {
	indices := corecvcp.ValidityIndices()
	header := []string{"Selector", "Mean", "Std"}
	t := &table{header: header}
	sets := cfg.aloi()

	collectVals := map[string][]float64{}
	for si, ds := range sets {
		for trial := 0; trial < cfg.ALOITrials; trial++ {
			seed := cfg.trialSeed(9500+si, trial)
			r := stats.NewRand(seed)
			labeled := ds.SampleLabels(r, 0.10)
			full := constraints.FromLabels(labeled, ds.Y)
			evalIdx := complement(ds.N(), labeled)
			params := kRange(ds)
			opt := corecvcp.Options{NFolds: cfg.NFolds, Seed: stats.SplitSeed(seed, 1), Workers: cfg.workers()}

			// Both selections dispatch their parameter sweeps through the
			// engine internally; the four validity indices additionally
			// share one sweep, so each parameter clusters exactly once.
			selRes, err := corecvcp.Select(context.Background(), corecvcp.Spec{
				Dataset:     ds,
				Grid:        corecvcp.Grid{{Algorithm: corecvcp.MPCKMeans{}, Params: params}},
				Supervision: corecvcp.Labels(labeled),
				Options:     opt,
			})
			if err != nil {
				return err
			}
			sel := selRes.PerCandidate[0]
			labels, err := corecvcp.MPCKMeans{}.Cluster(ds, full, sel.Best.Param, stats.SplitSeed(seed, 2))
			if err != nil {
				return err
			}
			collectVals["CVCP"] = append(collectVals["CVCP"], eval.OverallF(labels, ds.Y, evalIdx))

			vsels, err := corecvcp.SelectByValidityIndices(corecvcp.MPCKMeans{}, ds, full, params, indices, opt)
			if err != nil {
				return err
			}
			for vii, vi := range indices {
				collectVals[vi.Name] = append(collectVals[vi.Name],
					eval.OverallF(vsels[vii].FinalLabels, ds.Y, evalIdx))
			}
		}
	}
	order := []string{"CVCP"}
	for _, vi := range indices {
		order = append(order, vi.Name)
	}
	for _, name := range order {
		vals := collectVals[name]
		t.addRow(name, f3(stats.Mean(vals)), f3(stats.StdDev(vals)))
	}
	fmt.Fprintln(w, "Validity-index ablation — MPCKmeans on the ALOI collection, 10% labels: CVCP vs classical relative validity criteria (Vendramin et al. 2010)")
	t.render(w)
	return nil
}
