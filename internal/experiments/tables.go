package experiments

import (
	"fmt"
	"io"

	"cvcp/internal/dataset"
	"cvcp/internal/stats"
)

// collect runs cfg-many independent trials of (method, scenario, fraction)
// on one dataset. dsIndex decorrelates the seed streams of different
// datasets.
func collect(cfg Config, ds *dataset.Dataset, dsIndex int, m method, sc scenario, frac float64, trials int) ([]trialResult, error) {
	out := make([]trialResult, 0, trials)
	for t := 0; t < trials; t++ {
		res, err := runTrial(cfg, ds, m, sc, frac, cfg.trialSeed(dsIndex, t))
		if err != nil {
			return nil, fmt.Errorf("%s on %s, trial %d: %w", m, ds.Name, t, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// aloiResults runs the configured trials on every set of the ALOI
// collection and returns the per-set trial results.
func aloiResults(cfg Config, m method, sc scenario, frac float64) ([][]trialResult, error) {
	sets := cfg.aloi()
	out := make([][]trialResult, len(sets))
	for si, ds := range sets {
		res, err := collect(cfg, ds, 1000+si, m, sc, frac, cfg.ALOITrials)
		if err != nil {
			return nil, err
		}
		out[si] = res
	}
	return out, nil
}

// pick applies f to every trial result and returns the values.
func pick(rs []trialResult, f func(trialResult) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

func flatten(per [][]trialResult) []trialResult {
	var out []trialResult
	for _, rs := range per {
		out = append(out, rs...)
	}
	return out
}

// correlationTable regenerates Tables 1–4: the mean Pearson correlation of
// the internal CVCP score curve with the external Overall F-Measure curve,
// per dataset (columns) and supervision fraction (rows).
func correlationTable(cfg Config, w io.Writer, m method, sc scenario) error {
	fracs := LabelFractions
	if sc == scenarioConstraints {
		fracs = PoolFractions
	}
	t := &table{header: append([]string{"Percent"}, append([]string{"ALOI"}, titleCase(uciNames)...)...)}
	uci := cfg.uci()
	for _, frac := range fracs {
		row := []string{fmt.Sprintf("%.0f", frac*100)}
		aloi, err := aloiResults(cfg, m, sc, frac)
		if err != nil {
			return err
		}
		row = append(row, f3(stats.Mean(pick(flatten(aloi), func(r trialResult) float64 { return r.Corr }))))
		for di, ds := range uci {
			rs, err := collect(cfg, ds, di, m, sc, frac, cfg.Trials)
			if err != nil {
				return err
			}
			row = append(row, f3(stats.Mean(pick(rs, func(r trialResult) float64 { return r.Corr }))))
		}
		t.addRow(row...)
	}
	fmt.Fprintf(w, "%s (%s) — correlation of internal scores with Overall F-Measure\n", m, sc)
	t.render(w)
	return nil
}

// performanceTable regenerates Tables 5–16: mean and standard deviation of
// the external quality achieved by CVCP, the expected quality of a random
// guess from the range, and (for MPCKmeans) the Silhouette baseline, with
// paired t-tests at α=0.05.
func performanceTable(cfg Config, w io.Writer, m method, sc scenario, frac float64) error {
	withSil := m == methodMPCK
	header := []string{"Data sets", "CVCP Mean", "Exp Mean"}
	if withSil {
		header = append(header, "Silh Mean")
	}
	header = append(header, "CVCP std", "Exp std")
	if withSil {
		header = append(header, "Silh std")
	}
	header = append(header, "signif")
	t := &table{header: header}

	addRow := func(name string, rs []trialResult) {
		cvcpV := pick(rs, func(r trialResult) float64 { return r.CVCP })
		expV := pick(rs, func(r trialResult) float64 { return r.Expected })
		silV := pick(rs, func(r trialResult) float64 { return r.Sil })
		row := []string{name, f3(stats.Mean(cvcpV)), f3(stats.Mean(expV))}
		if withSil {
			row = append(row, f3(stats.Mean(silV)))
		}
		row = append(row, f3(stats.StdDev(cvcpV)), f3(stats.StdDev(expV)))
		if withSil {
			row = append(row, f3(stats.StdDev(silV)))
		}
		row = append(row, significance(cvcpV, expV, silV, withSil))
		t.addRow(row...)
	}

	aloi, err := aloiResults(cfg, m, sc, frac)
	if err != nil {
		return err
	}
	// The paper t-tests each ALOI set separately over its trials and
	// reports how many sets are significant; with one trial per set the
	// collection itself provides the pairs.
	flat := flatten(aloi)
	addRow("ALOI", flat)

	for di, ds := range cfg.uci() {
		rs, err := collect(cfg, ds, di, m, sc, frac, cfg.Trials)
		if err != nil {
			return err
		}
		addRow(titleCase([]string{ds.Name})[0], rs)
	}

	unit := "labeled data"
	if sc == scenarioConstraints {
		unit = "constraints from the constraint pool"
	}
	fmt.Fprintf(w, "%s (%s) — average performance using %.0f percent of %s as input\n",
		m, sc, frac*100, unit)
	t.render(w)

	if cfg.ALOITrials >= 2 {
		sig := 0
		for _, rs := range aloi {
			res, err := stats.PairedTTest(
				pick(rs, func(r trialResult) float64 { return r.CVCP }),
				pick(rs, func(r trialResult) float64 { return r.Expected }), 0.05)
			if err == nil && res.Significant {
				sig++
			}
		}
		fmt.Fprintf(w, "%d/%d ALOI sets significant (CVCP vs Expected, paired t-test, α=0.05)\n", sig, len(aloi))
	}
	return nil
}

// significance reports which strategy wins and whether the paired t-test of
// CVCP against the strongest competitor is significant at α=0.05: "*" marks
// a significant CVCP win, "(-)" a significant CVCP loss, "ns" no
// significance.
func significance(cvcpV, expV, silV []float64, withSil bool) string {
	comp := expV
	if withSil && stats.Mean(silV) > stats.Mean(expV) {
		comp = silV
	}
	res, err := stats.PairedTTest(cvcpV, comp, 0.05)
	if err != nil || !res.Significant {
		return "ns"
	}
	if res.MeanDiff > 0 {
		return "*"
	}
	return "(-)"
}

func titleCase(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if n == "" {
			continue
		}
		out[i] = string(n[0]-'a'+'A') + n[1:]
	}
	return out
}
