package experiments

import (
	"fmt"
	"io"

	"cvcp/internal/stats"
)

// curveFigure regenerates Figures 5–8: the CVCP internal classification
// score and the clustering Overall F-Measure as functions of the parameter,
// on one representative ALOI data set, with their correlation coefficient.
// The paper uses 10% labeled objects (Figs. 5–6) or 10% of the constraint
// pool (Figs. 7–8), and shows a set where the correlation is clearly
// visible (its exemplars report r = 0.94–0.99); accordingly this runner
// samples a handful of (set, trial) combinations and prints the one whose
// curves correlate best.
func curveFigure(cfg Config, w io.Writer, m method, sc scenario) error {
	sets := cfg.aloi()
	if len(sets) > 4 {
		sets = sets[:4]
	}
	var best trialResult
	var bestName string
	first := true
	for si, ds := range sets {
		for trial := 0; trial < 3; trial++ {
			res, err := runTrial(cfg, ds, m, sc, 0.10, cfg.trialSeed(1000+si, trial))
			if err != nil {
				return err
			}
			if first || res.Corr > best.Corr {
				best = res
				bestName = ds.Name
				first = false
			}
		}
	}
	fmt.Fprintf(w, "%s (%s) — representative ALOI data set %q\n", m, sc, bestName)
	curveRows(w, best.Params, best.Internal, best.External)
	fmt.Fprintf(w, "correlation coefficient = %.4f\n", best.Corr)
	return nil
}

// boxplotFigure regenerates Figures 9–12: the distribution over the ALOI
// collection of the external quality achieved by CVCP (CVCP-x), the expected
// quality (Exp-x) and, for MPCKmeans, the Silhouette selection (Sil-x), for
// each supervision fraction x.
func boxplotFigure(cfg Config, w io.Writer, m method, sc scenario) error {
	fracs := LabelFractions
	unit := "labeled points"
	if sc == scenarioConstraints {
		fracs = PoolFractions
		unit = "constraints from the pool"
	}
	fmt.Fprintf(w, "%s (%s) — quality distribution over the ALOI collection (percent of %s)\n", m, sc, unit)

	type series struct {
		label string
		sum   stats.FiveNum
	}
	var all []series
	lo, hi := 1.0, 0.0
	for _, frac := range fracs {
		rs, err := aloiResults(cfg, m, sc, frac)
		if err != nil {
			return err
		}
		flat := flatten(rs)
		pct := int(frac * 100)
		add := func(label string, vals []float64) {
			s := stats.Summary(vals)
			all = append(all, series{label: label, sum: s})
			if s.Min < lo {
				lo = s.Min
			}
			if s.Max > hi {
				hi = s.Max
			}
		}
		add(fmt.Sprintf("CVCP-%d", pct), pick(flat, func(r trialResult) float64 { return r.CVCP }))
		add(fmt.Sprintf("Exp-%d", pct), pick(flat, func(r trialResult) float64 { return r.Expected }))
		if m == methodMPCK {
			add(fmt.Sprintf("Sil-%d", pct), pick(flat, func(r trialResult) float64 { return r.Sil }))
		}
	}
	for _, s := range all {
		renderBoxplot(w, s.label, s.sum, lo, hi)
	}
	return nil
}
