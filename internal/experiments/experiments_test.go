package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny(buf *bytes.Buffer) Config {
	return Config{
		Trials:     2,
		ALOISets:   2,
		ALOITrials: 1,
		NFolds:     3,
		Seed:       77,
		Out:        buf,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := map[string]bool{}
	for _, n := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		want[n] = true
	}
	for i := 1; i <= 16; i++ {
		want["table"+itoa(i)] = true
	}
	want["ablation-leakage"] = true
	want["ablation-validity"] = true
	got := Registry()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for _, r := range got {
		if !want[r.Name] {
			t.Errorf("unexpected experiment %q", r.Name)
		}
		if r.Description == "" || r.Run == nil {
			t.Errorf("experiment %q incomplete", r.Name)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("table5"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("table99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunTrialShape(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	ds := cfg.aloi()[0]
	res, err := runTrial(cfg, ds, methodFOSC, scenarioLabels, 0.10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Params) != len(MinPtsRange) ||
		len(res.Internal) != len(res.Params) || len(res.External) != len(res.Params) {
		t.Fatalf("curve lengths: %d params, %d internal, %d external",
			len(res.Params), len(res.Internal), len(res.External))
	}
	for i := range res.Params {
		if res.Internal[i] < 0 || res.Internal[i] > 1 || res.External[i] < 0 || res.External[i] > 1 {
			t.Errorf("out-of-range scores at %d: %v / %v", i, res.Internal[i], res.External[i])
		}
	}
	if res.Corr < -1 || res.Corr > 1 {
		t.Errorf("correlation %v", res.Corr)
	}
	found := false
	for _, p := range res.Params {
		if p == res.Best {
			found = true
		}
	}
	if !found {
		t.Errorf("selected parameter %d not in range", res.Best)
	}
}

func TestRunTrialDeterministic(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	ds := cfg.uci()[0]
	a, err := runTrial(cfg, ds, methodMPCK, scenarioConstraints, 0.20, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runTrial(cfg, ds, methodMPCK, scenarioConstraints, 0.20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best != b.Best || a.CVCP != b.CVCP || a.Corr != b.Corr {
		t.Error("trials not deterministic for equal seeds")
	}
}

func TestCurveFigureOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	if err := curveFigure(cfg, &buf, methodFOSC, scenarioLabels); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "correlation coefficient") {
		t.Errorf("missing correlation line:\n%s", out)
	}
	if !strings.Contains(out, "param") {
		t.Errorf("missing curve header:\n%s", out)
	}
}

func TestCorrelationTableOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	if err := correlationTable(cfg, &buf, methodFOSC, scenarioLabels); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"ALOI", "Iris", "Wine", "Ionosphere", "Ecoli", "Zyeast"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %s:\n%s", col, out)
		}
	}
	// Three fraction rows.
	if got := strings.Count(out, "\n"); got < 5 {
		t.Errorf("table too short:\n%s", out)
	}
}

func TestPerformanceTableOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	if err := performanceTable(cfg, &buf, methodMPCK, scenarioConstraints, 0.10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Silh Mean") {
		t.Errorf("MPCK table must include the Silhouette column:\n%s", out)
	}
	if !strings.Contains(out, "Zyeast") {
		t.Errorf("missing dataset row:\n%s", out)
	}
}

func TestBoxplotFigureOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	if err := boxplotFigure(cfg, &buf, methodFOSC, scenarioLabels); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, lbl := range []string{"CVCP-5", "Exp-5", "CVCP-10", "Exp-10", "CVCP-20", "Exp-20"} {
		if !strings.Contains(out, lbl) {
			t.Errorf("missing boxplot %s:\n%s", lbl, out)
		}
	}
}

func TestComplement(t *testing.T) {
	got := complement(5, []int{1, 3})
	want := []int{0, 2, 4}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("complement = %v", got)
	}
}

func TestKRange(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	for _, ds := range cfg.uci() {
		ks := kRange(ds)
		if ks[0] != 2 {
			t.Errorf("%s: range starts at %d", ds.Name, ks[0])
		}
		last := ks[len(ks)-1]
		if last < ds.NumClasses() {
			t.Errorf("%s: range tops out below the class count (%d < %d)",
				ds.Name, last, ds.NumClasses())
		}
		if last > 12 {
			t.Errorf("%s: range too large (%d)", ds.Name, last)
		}
	}
}
