// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment has a registered name ("table1"
// … "table16", "fig5" … "fig12"); cmd/experiments runs them and prints the
// same rows/series the paper reports.
//
// The paper's full protocol uses 50 independent trials per configuration and
// the 100-set ALOI collection; both are configurable here because the full
// protocol is CPU-days of work. The shape of the results (who wins, by
// roughly what factor, where the breakdowns happen) is stable well below
// full scale; EXPERIMENTS.md records the settings used for the recorded
// numbers.
package experiments

import (
	"fmt"
	"io"
	"runtime"

	"cvcp/internal/datagen"
	"cvcp/internal/dataset"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	Trials     int   // independent experiments per dataset/fraction; paper: 50
	ALOISets   int   // ALOI collection size; paper: 100
	ALOITrials int   // trials per ALOI set (the collection already averages); paper effectively 1 per set per trial batch
	NFolds     int   // cross-validation folds; paper: typically 10
	Seed       int64 // master seed
	// Workers bounds the fold×parameter tasks each trial's selection
	// engine runs concurrently. 0 means one worker per CPU; 1 forces
	// serial execution. Results are bit-identical for every value.
	Workers int
	// Progress, when non-nil, observes engine grid completion across every
	// trial: it is called after each finished task with (done, total) for
	// the grid currently executing (counts reset per grid). It must not
	// derive results — cmd/experiments wires -progress to a stderr ticker.
	Progress func(done, total int)
	Out      io.Writer
}

// workers resolves Workers to an effective worker count.
func (c Config) workers() int {
	if c.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Default returns the configuration used for the recorded EXPERIMENTS.md
// numbers: reduced trial counts that preserve the paper's comparisons.
func Default(out io.Writer) Config {
	return Config{
		Trials:     10,
		ALOISets:   20,
		ALOITrials: 1,
		NFolds:     5,
		Seed:       20140324, // EDBT 2014 opened March 24
		Out:        out,
	}
}

// Paper returns the full paper-scale configuration (50 trials, 100 ALOI
// sets, 10 folds). Expect long runtimes.
func Paper(out io.Writer) Config {
	return Config{
		Trials:     50,
		ALOISets:   100,
		ALOITrials: 1,
		NFolds:     10,
		Seed:       20140324,
		Out:        out,
	}
}

func (c Config) validate() error {
	if c.Trials < 1 || c.ALOISets < 1 || c.NFolds < 2 {
		return fmt.Errorf("experiments: invalid config %+v", c)
	}
	return nil
}

// aloi returns the ALOI surrogate collection for this configuration.
func (c Config) aloi() []*dataset.Dataset {
	return datagen.ALOI(c.Seed, c.ALOISets)
}

// uciNames is the order in which the paper's tables list the single
// datasets after ALOI.
var uciNames = []string{"iris", "wine", "ionosphere", "ecoli", "zyeast"}

// uci returns the five single-dataset surrogates.
func (c Config) uci() []*dataset.Dataset {
	return datagen.UCISuite(c.Seed)
}

// LabelFractions are the paper's label-scenario supervision amounts.
var LabelFractions = []float64{0.05, 0.10, 0.20}

// PoolFractions are the paper's constraint-scenario pool subset sizes.
var PoolFractions = []float64{0.10, 0.20, 0.50}

// PoolObjectFraction is the fraction of each class's objects used to build
// the constraint pool (paper §4.1).
const PoolObjectFraction = 0.10

// MinPtsRange is the paper's FOSC-OPTICSDend candidate range.
var MinPtsRange = []int{3, 6, 9, 12, 15, 18, 21, 24}

// kRange returns the paper's MPCKmeans candidate range 2..M for a dataset:
// a small, reasonable upper bound for the number of clusters (the paper
// "conservatively restricted the ranges to be small").
func kRange(ds *dataset.Dataset) []int {
	m := ds.NumClasses() + 4
	if m < 9 {
		m = 9
	}
	if m > 12 {
		m = 12
	}
	out := make([]int, 0, m-1)
	for k := 2; k <= m; k++ {
		out = append(out, k)
	}
	return out
}
