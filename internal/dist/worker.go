package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cvcp/internal/cvcp"
	"cvcp/internal/runner"
	"cvcp/internal/store"
)

const defaultLeaseTTL = 10 * time.Second

// Worker leases shards from the shared store and computes them. Run
// loops until its context is done; a topology runs one Worker per
// worker process (cvcpd -role=worker).
type Worker struct {
	// Store is the shared store of the topology.
	Store Store
	// ID names this worker in leases and partials. It must be unique in
	// the topology (cvcpd derives it from hostname and PID).
	ID string
	// Resolve reconstructs a job's cell plan from its grid record — the
	// seam that keeps this package ignorant of the spec format. It must
	// be deterministic: every worker resolving the same grid record must
	// produce plans that score every cell bit-identically (the server's
	// resolver decodes its job-spec JSON and dataset CSV, both of which
	// round-trip exactly).
	Resolve func(job GridJob, dataset json.RawMessage) (*cvcp.CellPlan, error)
	// Workers bounds this worker's own engine parallelism per shard;
	// 0 means GOMAXPROCS. Purely local: it never affects scores.
	Workers int
	// Limiter, when non-nil, bounds this machine's total concurrent
	// cells across shards and any co-resident single-node jobs.
	Limiter *runner.Limiter
	// LeaseTTL is how long a lease lives without renewal; 0 means 10s.
	// The heartbeat renews at a third of this, so a worker must be
	// unresponsive for a full TTL before its shard is reclaimed.
	LeaseTTL time.Duration
	// Poll is the scan interval while no shard is available; 0 means
	// 100ms.
	Poll time.Duration

	mu    sync.Mutex
	plans map[string]*cvcp.CellPlan // resolved plans by job ID
}

func (w *Worker) leaseTTL() time.Duration {
	if w.LeaseTTL > 0 {
		return w.LeaseTTL
	}
	return defaultLeaseTTL
}

func (w *Worker) pollEvery() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return defaultPoll
}

// Run scans for acquirable shards and computes them until ctx is done,
// which is the only way it returns (with ctx's error). Transient store
// and compute failures never stop the loop — failed shards are reported
// through their partial records, and a closed store only surfaces if it
// stays closed.
func (w *Worker) Run(ctx context.Context) error {
	for {
		worked, err := w.scanOnce(ctx)
		if err != nil && errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return ctx.Err()
		}
		if worked {
			// Something was computed; rescan immediately — more shards
			// of the same job are likely waiting.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.pollEvery()):
		}
	}
}

// scanOnce pages through the shard records once, acquiring and computing
// every shard it can. It reports whether any shard was computed.
func (w *Worker) scanOnce(ctx context.Context) (bool, error) {
	worked := false
	cursor := shardPrefix
	for {
		if ctx.Err() != nil {
			return worked, ctx.Err()
		}
		recs, next, err := w.Store.List(cursor, 64)
		if err != nil {
			return worked, err
		}
		for _, rec := range recs {
			if !strings.HasPrefix(rec.ID, shardPrefix) {
				return worked, nil
			}
			if rec.Status == ShardDone {
				continue
			}
			st, epoch, ok := w.tryAcquire(rec.ID)
			if !ok {
				continue
			}
			w.process(ctx, st, epoch)
			worked = true
		}
		if next == "" {
			return worked, nil
		}
		cursor = next
	}
}

// tryAcquire attempts the lease CAS on one shard record: pending shards
// and expired leases are taken (epoch bumped); live leases and done
// shards are left alone. It returns the acquired state and lease epoch.
func (w *Worker) tryAcquire(id string) (ShardState, int, bool) {
	var got ShardState
	acquired := false
	_, err := w.Store.Update(id, func(cur store.Record, ok bool) (store.Record, bool, error) {
		acquired = false
		if !ok || cur.Status == ShardDone {
			return cur, false, nil
		}
		st, err := decodeShardState(cur)
		if err != nil {
			return cur, false, nil // foreign or corrupt record: not ours to touch
		}
		//cvcplint:ignore nondeterm lease-expiry check: wall-clock drives the lease protocol only, never a score or seed
		if cur.Status == ShardLeased && st.ExpiresUnixMilli > time.Now().UnixMilli() {
			return cur, false, nil
		}
		st.Owner = w.ID
		st.Epoch++
		//cvcplint:ignore nondeterm lease TTL stamp: wall-clock drives the lease protocol only, never a score or seed
		st.ExpiresUnixMilli = time.Now().Add(w.leaseTTL()).UnixMilli()
		rec, err := shardRecord(st, ShardLeased)
		if err != nil {
			return cur, false, err
		}
		got, acquired = st, true
		return rec, true, nil
	})
	if err != nil || !acquired {
		return ShardState{}, 0, false
	}
	if got.Epoch == 1 {
		mShardLeases.Inc()
	} else {
		mShardReclaims.Inc()
	}
	return got, got.Epoch, true
}

// process computes one acquired shard: resolve the plan, heartbeat the
// lease, score the cell range, write the partial and mark the shard
// done. A lost lease (reclaimed, or the job's records deleted by
// cancellation) aborts the computation without writing anything; the
// done-transition is epoch-guarded, so a stale worker can never clobber
// a reclaimer's result.
func (w *Worker) process(ctx context.Context, st ShardState, epoch int) {
	plan, err := w.plan(st.Job)
	if err != nil {
		w.finish(st, epoch, nil, 0, err)
		return
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(cctx, cancel, st, epoch)
	}()

	scores, counts, err := plan.ScoreRangeCounted(cctx, st.Lo, st.Hi, w.Workers, w.Limiter)
	aborted := cctx.Err() != nil // read before our own cancel below taints it
	cancel()
	<-hbDone
	if aborted && (err == nil || errors.Is(err, context.Canceled)) {
		// Lost lease or shutting down: whoever reclaims recomputes the
		// same bits; write nothing.
		return
	}
	w.finish(st, epoch, scores, counts.Reused, err)
}

// plan returns the job's resolved cell plan, resolving and caching it on
// first use. Plans are cached per job so a worker computing many shards
// of one job materializes folds once; the cache is invalidated when the
// job's grid record disappears (see gc).
func (w *Worker) plan(jobID string) (*cvcp.CellPlan, error) {
	w.mu.Lock()
	if p, ok := w.plans[jobID]; ok {
		w.mu.Unlock()
		return p, nil
	}
	w.mu.Unlock()

	rec, ok, err := w.Store.Get(GridID(jobID))
	if err != nil {
		return nil, fmt.Errorf("dist: reading grid record of %s: %w", jobID, err)
	}
	if !ok {
		return nil, fmt.Errorf("dist: job %s has no grid record", jobID)
	}
	job, err := decodeGridJob(rec)
	if err != nil {
		return nil, err
	}
	if w.Resolve == nil {
		return nil, fmt.Errorf("dist: worker %s has no resolver", w.ID)
	}
	p, err := w.Resolve(job, rec.Dataset)
	if err != nil {
		return nil, fmt.Errorf("dist: resolving job %s: %w", jobID, err)
	}
	if p.NumCells() != job.Cells {
		return nil, fmt.Errorf("dist: job %s plans %d cells, grid record says %d", jobID, p.NumCells(), job.Cells)
	}
	w.mu.Lock()
	if w.plans == nil {
		w.plans = make(map[string]*cvcp.CellPlan)
	}
	w.plans[jobID] = p
	n := len(w.plans)
	w.mu.Unlock()
	if n > 4 {
		w.gc()
	}
	return p, nil
}

// gc drops cached plans whose grid record is gone (finished or
// cancelled jobs). Plans hold the full dataset, so the cache is kept
// small.
func (w *Worker) gc() {
	w.mu.Lock()
	ids := make([]string, 0, len(w.plans))
	for id := range w.plans {
		ids = append(ids, id)
	}
	w.mu.Unlock()
	// Sorted so the store probes happen in the same order on every run
	// and every node — the shared store sees a deterministic read
	// sequence regardless of Go's map iteration order.
	sort.Strings(ids)
	for _, id := range ids {
		if _, ok, err := w.Store.Get(GridID(id)); err == nil && !ok {
			w.mu.Lock()
			delete(w.plans, id)
			w.mu.Unlock()
		}
	}
}

// heartbeat renews the lease at a third of its TTL until ctx is done.
// Losing the lease — the record vanished (cancellation) or another
// worker holds it (reclaim after expiry) — cancels the computation.
func (w *Worker) heartbeat(ctx context.Context, cancel context.CancelFunc, st ShardState, epoch int) {
	ticker := time.NewTicker(w.leaseTTL() / 3)
	defer ticker.Stop()
	id := ShardID(st.Job, st.Index)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		lost := false
		_, err := w.Store.Update(id, func(cur store.Record, ok bool) (store.Record, bool, error) {
			if !ok {
				lost = true
				return cur, false, nil
			}
			s, err := decodeShardState(cur)
			if err != nil || s.Owner != w.ID || s.Epoch != epoch || cur.Status != ShardLeased {
				lost = true
				return cur, false, nil
			}
			//cvcplint:ignore nondeterm lease renewal stamp: wall-clock drives the lease protocol only, never a score or seed
			s.ExpiresUnixMilli = time.Now().Add(w.leaseTTL()).UnixMilli()
			rec, err := shardRecord(s, ShardLeased)
			if err != nil {
				return cur, false, err
			}
			return rec, true, nil
		})
		if lost {
			cancel()
			return
		}
		if err == nil {
			mHeartbeatRenewals.Inc()
		}
		// Transient store trouble: keep trying until the TTL decides.
	}
}

// finish writes the shard's partial (scores or deterministic error) and
// marks the shard done, both guarded by still holding the lease at the
// epoch the shard was acquired with.
func (w *Worker) finish(st ShardState, epoch int, scores []float64, reused int, cerr error) {
	p := Partial{Job: st.Job, Index: st.Index, Lo: st.Lo, Hi: st.Hi, Worker: w.ID}
	if cerr != nil {
		p.Error = cerr.Error()
	} else {
		p.ScoreBits = encodeScores(scores)
		p.Reused = reused
	}
	prec, err := partRecord(p)
	if err != nil {
		return
	}
	if err := w.Store.Put(prec); err != nil {
		return // lease will expire; a reclaimer recomputes
	}
	id := ShardID(st.Job, st.Index)
	_, _ = w.Store.Update(id, func(cur store.Record, ok bool) (store.Record, bool, error) {
		if !ok || cur.Status != ShardLeased {
			return cur, false, nil
		}
		s, err := decodeShardState(cur)
		if err != nil || s.Owner != w.ID || s.Epoch != epoch {
			return cur, false, nil
		}
		s.ExpiresUnixMilli = 0
		rec, err := shardRecord(s, ShardDone)
		if err != nil {
			return cur, false, err
		}
		return rec, true, nil
	})
}
