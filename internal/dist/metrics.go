package dist

import "cvcp/internal/metrics"

// Distributed-layer metric families (see internal/metrics): shard lease
// turnover as seen by this process's workers. First-time acquisitions
// and reclaims are split so a reclaim spike (worker churn, missed
// heartbeats) is visible independently of normal throughput.
var (
	mShardLeases = metrics.NewCounter("cvcpd_shard_leases_total",
		"Shards leased for the first time by a worker in this process.")
	mShardReclaims = metrics.NewCounter("cvcpd_shard_reclaims_total",
		"Expired shard leases taken over by a worker in this process.")
	mHeartbeatRenewals = metrics.NewCounter("cvcpd_heartbeat_renewals_total",
		"Successful shard lease renewals by workers in this process.")
)
