package dist

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cvcp/internal/cvcp"
	"cvcp/internal/store"
	"cvcp/internal/store/storetest"
)

var errInjected = errors.New("storetest: injected failure")

// TestCoordinatorGridPutFailure: a store refusing the grid record must
// fail RunJob immediately with the store's error — and still clean up.
func TestCoordinatorGridPutFailure(t *testing.T) {
	job, _ := testGridJob(t, testJobSpec{Seed: 71})
	mem := store.NewMemory()
	defer mem.Close()
	faulty := storetest.Wrap(mem)
	faulty.FailCalls(storetest.OpPut, errInjected, 1) // the grid record is the first Put

	coord := &Coordinator{Store: faulty, ShardCells: 4, Poll: 3 * time.Millisecond}
	_, err := coord.RunJob(context.Background(), job, nil, nil)
	if !errors.Is(err, errInjected) {
		t.Fatalf("RunJob error = %v, want the injected store failure", err)
	}
	if !strings.Contains(err.Error(), "publishing grid record") {
		t.Errorf("err = %v, want the grid-record context", err)
	}
	requireNoDistRecords(t, mem, job.ID)
}

// TestCoordinatorShardReadFailure: a store error while watching shards
// must abort RunJob with the read error and tear the job's records down,
// so workers stop finding its shards.
func TestCoordinatorShardReadFailure(t *testing.T) {
	job, _ := testGridJob(t, testJobSpec{Seed: 72})
	mem := store.NewMemory()
	defer mem.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	startWorker(ctx, &wg, mem, "w0") // workers see the healthy store

	faulty := storetest.Wrap(mem)
	faulty.FailCalls(storetest.OpGet, errInjected, 1) // first watch read
	coord := &Coordinator{Store: faulty, ShardCells: 4, Poll: 3 * time.Millisecond}
	_, err := coord.RunJob(ctx, job, nil, nil)
	if !errors.Is(err, errInjected) {
		t.Fatalf("RunJob error = %v, want the injected store failure", err)
	}
	if !strings.Contains(err.Error(), "reading shard") {
		t.Errorf("err = %v, want the shard-read context", err)
	}
	requireNoDistRecords(t, mem, job.ID)
	cancel()
	wg.Wait()
}

// TestWorkerPartialPutFailureReclaimed: a worker that computes a shard
// but cannot write its partial must not mark the shard done; the lease
// expires, the shard is re-leased at a higher epoch and recomputed, and
// the job still finishes bit-identical to single-node. This is the
// crash-equivalence claim for the write path: losing a result write is
// indistinguishable from losing the worker.
func TestWorkerPartialPutFailureReclaimed(t *testing.T) {
	ts := testJobSpec{Seed: 73}
	want, err := cvcp.Select(context.Background(), testSelectionSpec(ts))
	if err != nil {
		t.Fatal(err)
	}
	job, plan := testGridJob(t, ts)

	mem := store.NewMemory()
	defer mem.Close()
	faulty := storetest.Wrap(mem)
	// A worker's only Puts are partials: losing the first one simulates
	// the write failing after the compute succeeded.
	faulty.FailCalls(storetest.OpPut, errInjected, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	reclaimsBefore := mShardReclaims.Value()
	startWorker(ctx, &wg, faulty, "w0")

	coord := &Coordinator{Store: mem, ShardCells: 4, Poll: 3 * time.Millisecond}
	scores, err := coord.RunJob(ctx, job, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Finalize(context.Background(), scores, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, want, got, "post-put-failure vs single-node")

	if n := faulty.Calls(storetest.OpPut); n < 2 {
		t.Fatalf("worker issued %d partial Put(s); the injected failure was never retried", n)
	}
	// The lost shard had to be leased again at a higher epoch before its
	// recompute — visible as a reclaim in the worker's own accounting.
	if d := mShardReclaims.Value() - reclaimsBefore; d < 1 {
		t.Errorf("no shard lease was reclaimed after the lost partial (reclaim delta %d)", d)
	}
	requireNoDistRecords(t, mem, job.ID)
	cancel()
	wg.Wait()
}
