package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cvcp/internal/constraints"
	"cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/stats"
	"cvcp/internal/store"
)

// The test topology's job spec is a tiny JSON document ({"seed": N,
// "fail": bool}); testSelectionSpec expands it deterministically into a
// full cvcp.Spec, playing the role the server's spec decoding plays in
// production: any process expanding the same bytes gets the same grid,
// folds and seeds.
type testJobSpec struct {
	Seed int64 `json:"seed"`
	Fail bool  `json:"fail"`
}

func testBlobs(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	var x [][]float64
	var y []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 15; i++ {
			x = append(x, []float64{15*float64(c) + r.NormFloat64(), r.NormFloat64()})
			y = append(y, c)
		}
	}
	return dataset.MustNew("blobs", x, y)
}

// failAlg fails deterministically for one parameter and otherwise
// delegates to MPCKMeans.
type failAlg struct{ bad int }

func (f failAlg) Name() string { return "failing" }

func (f failAlg) Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error) {
	if param == f.bad {
		return nil, fmt.Errorf("synthetic failure for param %d", param)
	}
	return cvcp.MPCKMeans{}.Cluster(ds, train, param, seed)
}

func testSelectionSpec(ts testJobSpec) cvcp.Spec {
	ds := testBlobs(ts.Seed)
	labeled := ds.SampleLabels(stats.NewRand(ts.Seed+1), 0.4)
	var alg cvcp.Algorithm = cvcp.MPCKMeans{}
	if ts.Fail {
		alg = failAlg{bad: 3}
	}
	return cvcp.Spec{
		Dataset:     ds,
		Grid:        cvcp.Grid{{Algorithm: alg, Params: []int{2, 3, 4}}},
		Supervision: cvcp.Labels(labeled),
		Options:     cvcp.Options{Seed: ts.Seed, NFolds: 5},
	}
}

func testResolve(job GridJob, _ json.RawMessage) (*cvcp.CellPlan, error) {
	var ts testJobSpec
	if err := json.Unmarshal(job.Spec, &ts); err != nil {
		return nil, err
	}
	return cvcp.PlanCells(testSelectionSpec(ts))
}

func testGridJob(t *testing.T, ts testJobSpec) (GridJob, *cvcp.CellPlan) {
	t.Helper()
	plan, err := cvcp.PlanCells(testSelectionSpec(ts))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	return GridJob{ID: "job-000000001", Spec: raw, Cells: plan.NumCells()}, plan
}

func startWorker(ctx context.Context, wg *sync.WaitGroup, s Store, id string) {
	w := &Worker{
		Store:    s,
		ID:       id,
		Resolve:  testResolve,
		Workers:  2,
		LeaseTTL: 200 * time.Millisecond,
		Poll:     3 * time.Millisecond,
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(ctx)
	}()
}

// equalResults asserts two selection results agree bit-for-bit: every
// score compared by IEEE-754 bits, every labeling exactly.
func equalResults(t *testing.T, want, got *cvcp.Result, what string) {
	t.Helper()
	if len(want.PerCandidate) != len(got.PerCandidate) {
		t.Fatalf("%s: %d candidates, want %d", what, len(got.PerCandidate), len(want.PerCandidate))
	}
	for ci := range want.PerCandidate {
		a, b := want.PerCandidate[ci], got.PerCandidate[ci]
		if a.Algorithm != b.Algorithm || a.Best.Param != b.Best.Param {
			t.Errorf("%s: candidate %d: (%s, %d) vs (%s, %d)", what, ci, a.Algorithm, a.Best.Param, b.Algorithm, b.Best.Param)
		}
		if math.Float64bits(a.Best.Score) != math.Float64bits(b.Best.Score) {
			t.Errorf("%s: candidate %d best score bits differ", what, ci)
		}
		for pi := range a.Scores {
			if math.Float64bits(a.Scores[pi].Score) != math.Float64bits(b.Scores[pi].Score) {
				t.Errorf("%s: candidate %d param %d score bits differ", what, ci, pi)
			}
			for fi := range a.Scores[pi].FoldScores {
				if math.Float64bits(a.Scores[pi].FoldScores[fi]) != math.Float64bits(b.Scores[pi].FoldScores[fi]) {
					t.Errorf("%s: candidate %d cell (%d, %d) fold-score bits differ", what, ci, pi, fi)
				}
			}
		}
		if !reflect.DeepEqual(a.FinalLabels, b.FinalLabels) {
			t.Errorf("%s: candidate %d final labels differ", what, ci)
		}
	}
	if math.Float64bits(want.Winner.Best.Score) != math.Float64bits(got.Winner.Best.Score) {
		t.Errorf("%s: winner score bits differ", what)
	}
}

func requireNoDistRecords(t *testing.T, s Store, jobID string) {
	t.Helper()
	for _, prefix := range []string{"grid-" + jobID, "shard-" + jobID, "part-" + jobID} {
		ids, err := idsWithPrefix(s, prefix[:len(prefix)])
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) > 0 {
			t.Errorf("%s records left behind: %v", prefix, ids)
		}
	}
}

// TestDistributedMatchesSingleNode is the headline golden test: a
// coordinator plus N workers over a shared store must produce a result
// bit-identical to single-node Select — same fold-score bits, same
// winning parameters, same final labels — for N of 1 and 4, over both
// the in-memory store and the multi-process shared store.
func TestDistributedMatchesSingleNode(t *testing.T) {
	ts := testJobSpec{Seed: 61}
	want, err := cvcp.Select(context.Background(), testSelectionSpec(ts))
	if err != nil {
		t.Fatal(err)
	}
	job, plan := testGridJob(t, ts)

	stores := []struct {
		name string
		open func(t *testing.T) (coord Store, worker func(i int) Store)
	}{
		{"memory", func(t *testing.T) (Store, func(int) Store) {
			m := store.NewMemory()
			t.Cleanup(func() { m.Close() })
			return m, func(int) Store { return m }
		}},
		{"shared", func(t *testing.T) (Store, func(int) Store) {
			dir := t.TempDir()
			cs, err := store.OpenShared(dir)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cs.Close() })
			return cs, func(i int) Store {
				ws, err := store.OpenShared(dir)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { ws.Close() })
				return ws
			}
		}},
	}
	for _, sc := range stores {
		for _, n := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", sc.name, n), func(t *testing.T) {
				cs, workerStore := sc.open(t)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var wg sync.WaitGroup
				for i := 0; i < n; i++ {
					startWorker(ctx, &wg, workerStore(i), fmt.Sprintf("w%d", i))
				}

				var mu sync.Mutex
				var events []ShardEvent
				coord := &Coordinator{Store: cs, ShardCells: 4, Poll: 3 * time.Millisecond}
				scores, err := coord.RunJob(ctx, job, nil, func(ev ShardEvent) {
					mu.Lock()
					events = append(events, ev)
					mu.Unlock()
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := plan.Finalize(context.Background(), scores, 2, nil)
				if err != nil {
					t.Fatal(err)
				}
				equalResults(t, want, got, "distributed vs single-node")

				shards := len(planShards(job.Cells, 4))
				done := 0
				for _, ev := range events {
					if ev.Shards != shards {
						t.Errorf("event reports %d shards, want %d", ev.Shards, shards)
					}
					if ev.Status == ShardDone {
						done++
						if ev.Done < 1 || ev.Done > shards {
							t.Errorf("done event with Done=%d", ev.Done)
						}
					}
				}
				if done != shards {
					t.Errorf("%d done events, want %d", done, shards)
				}
				requireNoDistRecords(t, cs, job.ID)
				cancel()
				wg.Wait()
			})
		}
	}
}

// TestLeaseReclaimAfterWorkerDeath simulates a kill -9: a "worker"
// acquires a shard's lease and vanishes without heartbeating. A live
// worker must wait out the lease TTL, reclaim the shard at a higher
// epoch, recompute it, and the job must still finish bit-identical to
// single-node.
func TestLeaseReclaimAfterWorkerDeath(t *testing.T) {
	ts := testJobSpec{Seed: 62}
	want, err := cvcp.Select(context.Background(), testSelectionSpec(ts))
	if err != nil {
		t.Fatal(err)
	}
	job, plan := testGridJob(t, ts)

	dir := t.TempDir()
	cs, err := store.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type runResult struct {
		scores []float64
		err    error
	}
	resCh := make(chan runResult, 1)
	var mu sync.Mutex
	var events []ShardEvent
	coord := &Coordinator{Store: cs, ShardCells: 4, Poll: 3 * time.Millisecond}
	go func() {
		scores, err := coord.RunJob(ctx, job, nil, func(ev ShardEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
		resCh <- runResult{scores, err}
	}()

	// Wait for shard 0 to be published, then grab its lease as a worker
	// that will never heartbeat or finish — the crashed process.
	deadStore, err := store.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer deadStore.Close()
	dead := &Worker{Store: deadStore, ID: "dead", LeaseTTL: 150 * time.Millisecond}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, ok := dead.tryAcquire(ShardID(job.ID, 0)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never became acquirable")
		}
		time.Sleep(2 * time.Millisecond)
	}

	liveStore, err := store.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer liveStore.Close()
	var wg sync.WaitGroup
	startWorker(ctx, &wg, liveStore, "live")

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	got, err := plan.Finalize(context.Background(), res.scores, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, want, got, "post-reclaim vs single-node")

	// The dead worker's shard must have been completed by the live one.
	mu.Lock()
	defer mu.Unlock()
	reclaimed := false
	for _, ev := range events {
		if ev.Shard == 0 && ev.Status == ShardDone && ev.Worker == "live" {
			reclaimed = true
		}
		if ev.Status == ShardDone && ev.Worker == "dead" {
			t.Errorf("dead worker reported finishing shard %d", ev.Shard)
		}
	}
	if !reclaimed {
		t.Error("shard 0 was not completed by the live worker after the lease expired")
	}
	cancel()
	wg.Wait()
}

// TestCoordinatorCancelCleansUp: cancelling the job's context must abort
// RunJob and leave no distribution records behind, so workers stop
// finding work and their heartbeats abort in-flight shards.
func TestCoordinatorCancelCleansUp(t *testing.T) {
	ts := testJobSpec{Seed: 63}
	job, _ := testGridJob(t, ts)
	m := store.NewMemory()
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	coord := &Coordinator{Store: m, ShardCells: 4, Poll: 3 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, err := coord.RunJob(ctx, job, nil, nil)
		done <- err
	}()
	// Let the shards get published (no workers exist, so nothing
	// completes), then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, _ := m.Get(ShardID(job.ID, 0)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shards never published")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunJob returned %v, want context.Canceled", err)
	}
	requireNoDistRecords(t, m, job.ID)
}

// TestShardFailurePropagates: a deterministic cell failure must surface
// as the job's error, carrying the failing shard's identity, and the
// lowest-indexed failing shard must win when several fail.
func TestShardFailurePropagates(t *testing.T) {
	ts := testJobSpec{Seed: 64, Fail: true}
	job, _ := testGridJob(t, ts)
	m := store.NewMemory()
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	startWorker(ctx, &wg, m, "w0")

	coord := &Coordinator{Store: m, ShardCells: 4, Poll: 3 * time.Millisecond}
	_, err := coord.RunJob(ctx, job, nil, nil)
	if err == nil {
		t.Fatal("RunJob succeeded despite failing cells")
	}
	if !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("err = %v, want the synthetic cell failure", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("err = %v, want shard identity in the message", err)
	}
	requireNoDistRecords(t, m, job.ID)
	cancel()
	wg.Wait()
}

// TestScoreBitsRoundTrip: the IEEE-754 transport must preserve every
// bit pattern, including NaN payloads, infinities and signed zeros.
func TestScoreBitsRoundTrip(t *testing.T) {
	in := []float64{0, math.Copysign(0, -1), 1.5, -3.25e-300, math.Inf(1), math.Inf(-1), math.NaN(), math.Float64frombits(0x7ff8000000000123)}
	out := decodeScores(encodeScores(in))
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
			t.Errorf("score %d: bits %016x -> %016x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
}
