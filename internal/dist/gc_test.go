package dist

import (
	"fmt"
	"sort"
	"testing"

	"cvcp/internal/cvcp"
	"cvcp/internal/store"
	"cvcp/internal/store/storetest"
)

// TestGCProbesStoreInSortedOrder pins the determinism fix cvcplint's
// mapiter analyzer caught: gc collects the cached plan IDs from a map
// and must sort them before probing the store, so the shared store sees
// the same read sequence on every run and every node regardless of
// Go's randomized map iteration order.
func TestGCProbesStoreInSortedOrder(t *testing.T) {
	mem := store.NewMemory()
	faulty := storetest.Wrap(mem)
	var probed []string
	faulty.Hook(storetest.OpGet, func(call int, id string) error {
		probed = append(probed, id)
		return nil
	})

	w := &Worker{Store: faulty, ID: "gc-test", plans: map[string]*cvcp.CellPlan{}}
	var want []string
	// Insertion order is irrelevant — map iteration scrambles it anyway;
	// enough entries that an unsorted walk cannot pass by luck.
	for i := 17; i >= 0; i-- {
		id := fmt.Sprintf("job-%02d", i)
		w.plans[id] = &cvcp.CellPlan{}
		want = append(want, GridID(id))
	}
	sort.Strings(want)

	// No grid records exist, so every plan is stale: gc must probe all
	// of them (and drop all of them) in sorted ID order.
	w.gc()

	if fmt.Sprint(probed) != fmt.Sprint(want) {
		t.Errorf("gc probe order:\n got %v\nwant %v", probed, want)
	}
	if len(w.plans) != 0 {
		t.Errorf("gc left %d stale plans cached, want 0", len(w.plans))
	}
}
