// Package dist distributes one CVCP selection's cell grid across
// processes sharing a single store — the coordinator/worker split of the
// cvcpd job manager.
//
// The unit of distribution is the cell: one (candidate, parameter, fold)
// clustering-and-score, indexed by its canonical position in the grid's
// linearization (see cvcp.CellPlan). Because every cell's seed and fold
// assignment derive from the job spec alone, any process that can decode
// the spec computes any cell bit-identically; distribution is therefore
// pure work division, never a source of nondeterminism.
//
// Roles, over one shared store (store.Shared in production, any
// Store+Updater in tests):
//
//   - The Coordinator plans the grid into contiguous cell-range shards,
//     publishes one grid record (spec + dataset payload) and one pending
//     shard record per range, then polls: it reports lease transitions,
//     collects the partial-score records of finished shards, and when all
//     shards are done returns the assembled per-cell score vector — which
//     the caller merges with cvcp.CellPlan.Finalize, the same reduction
//     the single-node path runs.
//   - Workers scan for shard records that are pending — or leased but
//     expired, the crash-recovery path — and acquire them by
//     compare-and-swap: set themselves as owner, bump the lease epoch,
//     stamp an expiry. A heartbeat renews the lease at a third of its
//     TTL; a worker that loses its lease (expired and reclaimed, or the
//     job was cancelled and its records deleted) aborts the computation
//     and writes nothing. On success the worker writes a partial record
//     with the shard's scores and marks the shard done.
//
// Crash recovery is recomputation: a kill -9'd worker simply stops
// renewing, its shards' leases expire, and any worker re-acquires them
// with a higher epoch and produces the same bits. A restarted
// coordinator deletes the job's stale records and replans from the spec
// — every shard recomputes deterministically, so the selection is
// unchanged. The one benign race — a worker with a stale lease finishing
// after its shard was reclaimed — can at worst overwrite a partial
// record with identical bytes, because partial contents are a pure
// function of the spec and the cell range; the stale worker's
// done-transition is rejected by the epoch check.
//
// Scores travel as IEEE-754 bit patterns ([]uint64), not JSON floats:
// the coordinator reassembles exactly the bits the worker computed, NaN
// payloads included, so the distributed result is bit-identical to the
// single-node one by construction rather than by rounding luck.
package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"cvcp/internal/store"
)

// Store is what distribution requires of the shared store: the job-store
// contract plus the atomic read-modify-write that shard leases are built
// on. store.Shared, store.File and store.Memory all satisfy it.
type Store interface {
	store.Store
	store.Updater
}

// Shard lifecycle states, kept in the shard record's Status field.
const (
	ShardPending = "pending" // unleased: any worker may acquire
	ShardLeased  = "leased"  // owned; reclaimable once the lease expires
	ShardDone    = "done"    // partial record written; terminal
)

// GridJob is the payload of a grid record — everything a worker needs to
// reconstruct the job's cell plan, minus the dataset, which rides in the
// record's Dataset field.
type GridJob struct {
	// ID is the owning job's ID (the manager's "job-..." identifier).
	ID string `json:"id"`
	// Spec is the serialized selection spec, opaque to this package; the
	// worker's resolver decodes it (the server uses its job-spec JSON).
	Spec json.RawMessage `json:"spec"`
	// Cells is the total cell count of the grid — the worker
	// cross-checks it against the plan it resolves, so a spec/plan
	// mismatch fails loudly instead of computing garbage.
	Cells int `json:"cells"`
}

// ShardState is the payload of a shard record: one contiguous cell range
// plus its lease.
type ShardState struct {
	// Job is the owning job's ID.
	Job string `json:"job"`
	// Index is the shard's position in the job's shard sequence.
	Index int `json:"index"`
	// Lo and Hi bound the shard's cell range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Owner is the worker holding the lease; empty while pending.
	Owner string `json:"owner,omitempty"`
	// Epoch counts lease acquisitions. A worker's right to transition
	// its shard is conditioned on the epoch it acquired at, so a worker
	// whose lease was reclaimed cannot overwrite the reclaimer's state.
	Epoch int `json:"epoch,omitempty"`
	// ExpiresUnixMilli is the lease deadline; a shard whose deadline
	// passed may be re-acquired by any worker. Wall-clock milliseconds,
	// so processes on one machine (the supported topology: shared store
	// directory) agree on expiry.
	ExpiresUnixMilli int64 `json:"expires,omitempty"`
}

// Partial is the payload of a partial record: one shard's computed
// scores, or its deterministic failure.
type Partial struct {
	// Job is the owning job's ID.
	Job string `json:"job"`
	// Index is the shard's position in the job's shard sequence.
	Index int `json:"index"`
	// Lo and Hi echo the shard's cell range.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Worker is the worker that computed the shard.
	Worker string `json:"worker"`
	// ScoreBits holds math.Float64bits of each cell score in [Lo, Hi),
	// in cell order — the bit-exact transport that makes the merged
	// result identical to a single-node run.
	ScoreBits []uint64 `json:"score_bits,omitempty"`
	// Reused counts the cells of [Lo, Hi) the worker served from the
	// shared cell cache instead of computing — observability for
	// incremental re-selection (a cached score is bit-identical to the
	// computation it replaced, so Reused never affects ScoreBits).
	Reused int `json:"reused,omitempty"`
	// Error, when non-empty, is the shard's failure message; ScoreBits
	// is empty. Cell errors are deterministic (a function of spec and
	// cell), so every recomputation reports the same failure.
	Error string `json:"error,omitempty"`
}

// Record ID construction. Grid, shard and partial records share the
// job store with the manager's "job-..." records; the manager ignores
// foreign prefixes when restoring, and the coordinator deletes a job's
// distribution records as the job leaves the running state.

// GridID returns the ID of the job's grid record.
func GridID(jobID string) string { return "grid-" + jobID }

// ShardID returns the ID of the job's i'th shard record. The index is
// zero-padded so lexicographic store order equals shard order.
func ShardID(jobID string, i int) string { return fmt.Sprintf("shard-%s-%05d", jobID, i) }

// PartID returns the ID of the job's i'th partial record.
func PartID(jobID string, i int) string { return fmt.Sprintf("part-%s-%05d", jobID, i) }

const shardPrefix = "shard-"

// gridRecord wraps a GridJob and its dataset payload into a store record.
func gridRecord(job GridJob, dataset json.RawMessage) (store.Record, error) {
	spec, err := json.Marshal(job)
	if err != nil {
		return store.Record{}, fmt.Errorf("dist: encoding grid job: %w", err)
	}
	return store.Record{ID: GridID(job.ID), Status: "running", Spec: spec, Dataset: dataset}, nil
}

// decodeGridJob unwraps a grid record.
func decodeGridJob(rec store.Record) (GridJob, error) {
	var job GridJob
	dec := json.NewDecoder(strings.NewReader(string(rec.Spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		return GridJob{}, fmt.Errorf("dist: decoding grid record %s: %w", rec.ID, err)
	}
	return job, nil
}

// shardRecord wraps a ShardState into a store record with the given
// lifecycle status.
func shardRecord(st ShardState, status string) (store.Record, error) {
	spec, err := json.Marshal(st)
	if err != nil {
		return store.Record{}, fmt.Errorf("dist: encoding shard state: %w", err)
	}
	return store.Record{ID: ShardID(st.Job, st.Index), Status: status, Spec: spec}, nil
}

// decodeShardState unwraps a shard record.
func decodeShardState(rec store.Record) (ShardState, error) {
	var st ShardState
	dec := json.NewDecoder(strings.NewReader(string(rec.Spec)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return ShardState{}, fmt.Errorf("dist: decoding shard record %s: %w", rec.ID, err)
	}
	return st, nil
}

// partRecord wraps a Partial into a store record.
func partRecord(p Partial) (store.Record, error) {
	res, err := json.Marshal(p)
	if err != nil {
		return store.Record{}, fmt.Errorf("dist: encoding partial: %w", err)
	}
	return store.Record{ID: PartID(p.Job, p.Index), Status: ShardDone, Result: res}, nil
}

// decodePartial unwraps a partial record.
func decodePartial(rec store.Record) (Partial, error) {
	var p Partial
	dec := json.NewDecoder(strings.NewReader(string(rec.Result)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Partial{}, fmt.Errorf("dist: decoding partial record %s: %w", rec.ID, err)
	}
	return p, nil
}

// encodeScores converts scores to their IEEE-754 bit patterns.
func encodeScores(scores []float64) []uint64 {
	bits := make([]uint64, len(scores))
	for i, s := range scores {
		bits[i] = math.Float64bits(s)
	}
	return bits
}

// decodeScores inverts encodeScores.
func decodeScores(bits []uint64) []float64 {
	scores := make([]float64, len(bits))
	for i, b := range bits {
		scores[i] = math.Float64frombits(b)
	}
	return scores
}
