package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"time"
)

// Default tuning. ShardCells trades scheduling granularity against
// store traffic; maxShards bounds the record count (and the poll scan)
// for very large grids.
const (
	defaultShardCells = 16
	defaultPoll       = 100 * time.Millisecond
	maxShards         = 256
)

// ShardEvent is one observed shard transition, reported by the
// coordinator's poll loop in the order observed. Transitions for a shard
// are monotone (leased may repeat across reclaims; done and failed are
// terminal), and Done lets a listener render shard-level progress
// without tracking state itself.
type ShardEvent struct {
	// Shard is the shard index; Shards the job's total.
	Shard  int
	Shards int
	// Lo and Hi bound the shard's cell range [Lo, Hi).
	Lo int
	Hi int
	// Status is the transition: ShardLeased, ShardDone, or "failed".
	Status string
	// Worker is the owner at the transition.
	Worker string
	// Done counts the job's finished shards as of this event.
	Done int
	// Reused, on done events, counts the shard's cells served from the
	// shared cell cache (the partial's Reused field).
	Reused int
}

// ShardFailed is the ShardEvent status of a shard whose partial carries
// an error.
const ShardFailed = "failed"

// Coordinator plans grids into shards and merges the partials workers
// write back. One coordinator serves one topology; the manager calls
// RunJob once per distributed job.
type Coordinator struct {
	// Store is the shared store of the topology.
	Store Store
	// ShardCells is the target cells per shard; 0 means 16. Grids large
	// enough to exceed 256 shards get proportionally bigger shards.
	ShardCells int
	// Poll is the shard-watch interval; 0 means 100ms.
	Poll time.Duration
}

func (c *Coordinator) shardCells(cells int) int {
	per := c.ShardCells
	if per < 1 {
		per = defaultShardCells
	}
	if min := (cells + maxShards - 1) / maxShards; per < min {
		per = min
	}
	return per
}

func (c *Coordinator) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return defaultPoll
}

// planShards splits [0, cells) into contiguous ranges of per cells (the
// last one possibly shorter).
func planShards(cells, per int) [][2]int {
	var out [][2]int
	for lo := 0; lo < cells; lo += per {
		hi := lo + per
		if hi > cells {
			hi = cells
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// RunJob distributes one job: it publishes the grid and its pending
// shards, waits for workers to compute every shard, and returns the
// assembled per-cell score vector — in cell order, ready for
// cvcp.CellPlan.Finalize. onShard, when non-nil, observes shard
// transitions (from the coordinator's poll cadence, so transient states
// between polls may be skipped).
//
// RunJob starts by deleting any records a previous incarnation of the
// job left behind — the coordinator-restart path: the re-queued job
// replans and every shard recomputes to the same bits. All distribution
// records are deleted again before returning, on success, failure and
// cancellation alike; workers mid-shard at cancellation notice the
// deletion through their heartbeat and abort. When several shards fail,
// the error of the lowest-indexed one is returned, mirroring the
// engine's deterministic error selection.
func (c *Coordinator) RunJob(ctx context.Context, job GridJob, dataset json.RawMessage, onShard func(ShardEvent)) ([]float64, error) {
	if job.ID == "" {
		return nil, fmt.Errorf("dist: grid job without ID")
	}
	if job.Cells < 1 {
		return nil, fmt.Errorf("dist: grid job %s has %d cells", job.ID, job.Cells)
	}
	ranges := planShards(job.Cells, c.shardCells(job.Cells))
	if err := c.cleanup(job.ID); err != nil {
		return nil, err
	}
	defer c.cleanup(job.ID)

	grid, err := gridRecord(job, dataset)
	if err != nil {
		return nil, err
	}
	if err := c.Store.Put(grid); err != nil {
		return nil, fmt.Errorf("dist: publishing grid record: %w", err)
	}
	for i, r := range ranges {
		rec, err := shardRecord(ShardState{Job: job.ID, Index: i, Lo: r[0], Hi: r[1]}, ShardPending)
		if err != nil {
			return nil, err
		}
		if err := c.Store.Put(rec); err != nil {
			return nil, fmt.Errorf("dist: publishing shard %d: %w", i, err)
		}
	}
	return c.watch(ctx, job, ranges, onShard)
}

// watch polls the shard records until every shard is done and its
// partial collected, reporting transitions along the way.
func (c *Coordinator) watch(ctx context.Context, job GridJob, ranges [][2]int, onShard func(ShardEvent)) ([]float64, error) {
	type seen struct {
		status string
		owner  string
		epoch  int
	}
	last := make([]seen, len(ranges))
	parts := make([]*Partial, len(ranges))
	collected := 0

	ticker := time.NewTicker(c.poll())
	defer ticker.Stop()
	for {
		for i := range ranges {
			if parts[i] != nil {
				continue
			}
			rec, ok, err := c.Store.Get(ShardID(job.ID, i))
			if err != nil {
				return nil, fmt.Errorf("dist: reading shard %d: %w", i, err)
			}
			if !ok {
				return nil, fmt.Errorf("dist: shard record %d of job %s vanished", i, job.ID)
			}
			st, err := decodeShardState(rec)
			if err != nil {
				return nil, err
			}
			if rec.Status == ShardDone {
				prec, ok, err := c.Store.Get(PartID(job.ID, i))
				if err != nil {
					return nil, fmt.Errorf("dist: reading partial %d: %w", i, err)
				}
				if !ok {
					continue // done raced ahead of our view of the partial; next poll
				}
				p, err := decodePartial(prec)
				if err != nil {
					return nil, err
				}
				if p.Error == "" && len(p.ScoreBits) != ranges[i][1]-ranges[i][0] {
					return nil, fmt.Errorf("dist: partial %d of job %s has %d scores for range [%d, %d)",
						i, job.ID, len(p.ScoreBits), ranges[i][0], ranges[i][1])
				}
				parts[i] = &p
				collected++
				if onShard != nil {
					status := ShardDone
					if p.Error != "" {
						status = ShardFailed
					}
					onShard(ShardEvent{Shard: i, Shards: len(ranges), Lo: ranges[i][0], Hi: ranges[i][1],
						Status: status, Worker: p.Worker, Done: collected, Reused: p.Reused})
				}
				continue
			}
			now := seen{status: rec.Status, owner: st.Owner, epoch: st.Epoch}
			if now != last[i] {
				last[i] = now
				if rec.Status == ShardLeased && onShard != nil {
					onShard(ShardEvent{Shard: i, Shards: len(ranges), Lo: ranges[i][0], Hi: ranges[i][1],
						Status: ShardLeased, Worker: st.Owner, Done: collected})
				}
			}
		}
		if collected == len(ranges) {
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}

	for _, p := range parts {
		if p.Error != "" {
			return nil, fmt.Errorf("dist: shard %d (cells [%d, %d)) failed on %s: %s",
				p.Index, p.Lo, p.Hi, p.Worker, p.Error)
		}
	}
	scores := make([]float64, 0, job.Cells)
	for _, p := range parts {
		scores = append(scores, decodeScores(p.ScoreBits)...)
	}
	return scores, nil
}

// cleanup deletes the job's grid, shard and partial records. The grid
// record goes first, so a worker scanning mid-cleanup cannot acquire a
// shard whose job is already being torn down and still resolve its grid.
func (c *Coordinator) cleanup(jobID string) error {
	if err := c.Store.Delete(GridID(jobID)); err != nil {
		return fmt.Errorf("dist: deleting grid record: %w", err)
	}
	// A previous incarnation may have used a different shard count;
	// sweep by prefix rather than by the current plan.
	for _, prefix := range []string{"shard-" + jobID + "-", "part-" + jobID + "-"} {
		ids, err := idsWithPrefix(c.Store, prefix)
		if err != nil {
			return err
		}
		for _, id := range ids {
			if err := c.Store.Delete(id); err != nil {
				return fmt.Errorf("dist: deleting %s: %w", id, err)
			}
		}
	}
	return nil
}

// idsWithPrefix pages through the store and returns the IDs sharing the
// prefix, exploiting the store's ascending-ID listing order.
func idsWithPrefix(s Store, prefix string) ([]string, error) {
	var out []string
	cursor := prefix // IDs with the prefix sort strictly after it
	for {
		recs, next, err := s.List(cursor, 64)
		if err != nil {
			return nil, fmt.Errorf("dist: listing %s records: %w", prefix, err)
		}
		for _, rec := range recs {
			if len(rec.ID) < len(prefix) || rec.ID[:len(prefix)] != prefix {
				return out, nil
			}
			out = append(out, rec.ID)
		}
		if next == "" {
			return out, nil
		}
		cursor = next
	}
}
