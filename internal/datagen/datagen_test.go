package datagen

import (
	"testing"

	"cvcp/internal/dataset"
)

// shapes the paper reports for each dataset (Section 4.1).
func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		ds               *dataset.Dataset
		n, dims, classes int
	}{
		{Iris(1), 150, 4, 3},
		{Wine(1), 178, 13, 3},
		{Ionosphere(1), 351, 34, 2},
		{Ecoli(1), 336, 7, 8},
		{Zyeast(1), 205, 20, 4},
	}
	for _, c := range cases {
		if c.ds.N() != c.n || c.ds.Dims() != c.dims || c.ds.NumClasses() != c.classes {
			t.Errorf("%s: got %d×%d with %d classes, want %d×%d with %d",
				c.ds.Name, c.ds.N(), c.ds.Dims(), c.ds.NumClasses(), c.n, c.dims, c.classes)
		}
	}
}

func TestALOIShapes(t *testing.T) {
	sets := ALOI(42, 3)
	if len(sets) != 3 {
		t.Fatalf("got %d sets", len(sets))
	}
	for _, ds := range sets {
		if ds.N() != 125 || ds.Dims() != 144 || ds.NumClasses() != 5 {
			t.Errorf("%s: %d×%d, %d classes", ds.Name, ds.N(), ds.Dims(), ds.NumClasses())
		}
		for c, idx := range ds.ClassIndices() {
			if len(idx) != 25 {
				t.Errorf("%s class %d has %d objects, want 25", ds.Name, c, len(idx))
			}
		}
	}
}

func TestEcoliClassSkew(t *testing.T) {
	ds := Ecoli(5)
	sizes := map[int]int{}
	for _, y := range ds.Y {
		sizes[y]++
	}
	if sizes[0] != 143 || sizes[7] != 2 {
		t.Errorf("class sizes = %v, want the original skew (143 … 2)", sizes)
	}
}

func TestIonosphereClassSizes(t *testing.T) {
	ds := Ionosphere(5)
	sizes := map[int]int{}
	for _, y := range ds.Y {
		sizes[y]++
	}
	if sizes[0] != 225 || sizes[1] != 126 {
		t.Errorf("class sizes = %v, want 225 good / 126 bad", sizes)
	}
}

// Generators must be deterministic in their seed and produce different data
// for different seeds.
func TestDeterminism(t *testing.T) {
	a := Zyeast(9)
	b := Zyeast(9)
	c := Zyeast(10)
	if a.X[0][0] != b.X[0][0] || a.Y[3] != b.Y[3] {
		t.Error("same seed produced different data")
	}
	same := true
	for i := range a.X {
		if a.X[i][0] != c.X[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// Object order must not encode the class (folds would otherwise be
// accidentally stratified): check the first ten labels are not sorted.
func TestShuffled(t *testing.T) {
	for _, ds := range []*dataset.Dataset{Iris(3), Ecoli(3), ALOI(3, 1)[0]} {
		sorted := true
		for i := 1; i < 20; i++ {
			if ds.Y[i] < ds.Y[i-1] {
				sorted = false
				break
			}
		}
		if sorted {
			t.Errorf("%s: labels appear sorted by class", ds.Name)
		}
	}
}

func TestUCISuite(t *testing.T) {
	suite := UCISuite(7)
	if len(suite) != 5 {
		t.Fatalf("suite has %d datasets", len(suite))
	}
	want := []string{"iris", "wine", "ionosphere", "ecoli", "zyeast"}
	for i, ds := range suite {
		if ds.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, ds.Name, want[i])
		}
	}
}
