// Package datagen generates the synthetic stand-ins for the data sets used in
// the paper's evaluation (Section 4.1). The originals — the ALOI k5 image
// collection, five UCI data sets and the Zyeast gene-expression data — are
// not redistributable inside this offline module, so each generator
// reproduces the *shape* that matters for the experiments: number of objects,
// dimensionality, number of classes, class-size skew, and the geometric
// character that determines which clustering paradigm can succeed
// (compact-vs-elongated classes, overlap, noise). DESIGN.md §3 documents each
// substitution.
//
// Every generator takes an explicit seed and is fully deterministic.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"cvcp/internal/dataset"
	"cvcp/internal/stats"
)

// classSpec describes one Gaussian class of a blob mixture.
type classSpec struct {
	n      int       // number of points
	center []float64 // class mean
	scale  []float64 // per-dimension standard deviation
}

// blobs samples a labeled mixture of axis-aligned Gaussian classes.
func blobs(name string, r *rand.Rand, specs []classSpec) *dataset.Dataset {
	var x [][]float64
	var y []int
	for label, s := range specs {
		for i := 0; i < s.n; i++ {
			p := make([]float64, len(s.center))
			for j := range p {
				p[j] = s.center[j] + s.scale[j]*r.NormFloat64()
			}
			x = append(x, p)
			y = append(y, label)
		}
	}
	shuffle(r, x, y)
	return dataset.MustNew(name, x, y)
}

// shuffle applies one permutation to x and y jointly so that object order
// carries no class information (fold splitting must not be accidentally
// stratified).
func shuffle(r *rand.Rand, x [][]float64, y []int) {
	r.Shuffle(len(x), func(i, j int) {
		x[i], x[j] = x[j], x[i]
		y[i], y[j] = y[j], y[i]
	})
}

// randomUnit returns a uniformly random point on the unit sphere in dim
// dimensions.
func randomUnit(r *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	var norm float64
	for {
		norm = 0
		for j := range v {
			v[j] = r.NormFloat64()
			norm += v[j] * v[j]
		}
		if norm > 1e-12 {
			break
		}
	}
	norm = math.Sqrt(norm)
	for j := range v {
		v[j] /= norm
	}
	return v
}

// ALOI returns the surrogate for the paper's "k5" ALOI image collection:
// a slice of sets datasets, each with 5 classes × 25 objects in 144
// dimensions (colour-moment descriptors in the original). Classes are
// Gaussian cores around moderately separated random centers, with two
// ingredients that give image-descriptor data its parameter sensitivity:
// every class has a sparse halo (a fraction of points drawn at ~3× the core
// scale, like off-angle shots of an object), and one designated pair of
// classes sits closer than the rest (visually similar objects). Low MinPts
// then over-chains through halo points while a MinPts near the class size
// dissolves classes, so the MinPts range genuinely needs selecting — the
// regime of the paper's Figures 5 and 9. The paper uses sets = 100.
func ALOI(seed int64, sets int) []*dataset.Dataset {
	out := make([]*dataset.Dataset, sets)
	for s := 0; s < sets; s++ {
		out[s] = aloiSet(stats.SplitSeed(seed, s), fmt.Sprintf("aloi-k5-%03d", s))
	}
	return out
}

// aloiSet generates one ALOI-like dataset. Colour-moment descriptors are
// highly correlated, so the 144 ambient attributes carry a low intrinsic
// dimension; the generator therefore samples the class structure in a
// 6-dimensional latent space — where density estimation genuinely depends
// on MinPts — and embeds it into 144 dimensions through a random linear map
// plus small ambient noise.
func aloiSet(seed int64, name string) *dataset.Dataset {
	r := stats.NewRand(seed)
	const (
		dim     = 144
		latent  = 6
		classes = 5
		perCls  = 25
	)
	// Latent class centers: moderate separation, with class 1 pulled
	// toward class 0 (a visually similar object pair).
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = randomUnit(r, latent)
		sep := (3.3 + 1.3*r.Float64()) * math.Sqrt(latent) / math.Sqrt(2)
		for j := range centers[c] {
			centers[c][j] *= sep
		}
	}
	// The close pair overlaps enough that unsupervised validity indices
	// (Silhouette) prefer merging it, while cannot-link supervision still
	// separates it — the paper's CVCP-vs-Silhouette gap on ALOI.
	mix := 0.30 + 0.12*r.Float64()
	for j := range centers[1] {
		centers[1][j] = mix*centers[1][j] + (1-mix)*centers[0][j]
	}

	z := make([][]float64, 0, classes*perCls)
	var y []int
	for c := 0; c < classes; c++ {
		base := 0.8 + 0.5*r.Float64()
		// The last few points of classes 0 and 1 form a sparse bridge
		// between the close pair: intermediate poses that chain the two
		// classes together under small MinPts.
		bridge := 0
		if c <= 1 {
			bridge = 3
		}
		for i := 0; i < perCls; i++ {
			p := make([]float64, latent)
			if i >= perCls-bridge {
				t := (float64(i-(perCls-bridge)) + 1) / (float64(bridge) + 1)
				if c == 1 {
					t = 1 - t
				}
				for j := range p {
					p[j] = (1-t)*centers[0][j] + t*centers[1][j] + 0.3*base*r.NormFloat64()
				}
			} else {
				mult := 1.0
				if r.Float64() < 0.16 {
					mult = 2.4 // sparse halo point (off-angle shot)
				}
				for j := range p {
					p[j] = centers[c][j] + mult*base*r.NormFloat64()
				}
			}
			z = append(z, p)
			y = append(y, c)
		}
	}

	// Random embedding: each latent axis maps to a unit direction in the
	// ambient space; directions are near-orthogonal at dim=144.
	basis := make([][]float64, latent)
	for j := range basis {
		basis[j] = randomUnit(r, dim)
	}
	x := make([][]float64, len(z))
	for i, p := range z {
		row := make([]float64, dim)
		for j, v := range p {
			for a := 0; a < dim; a++ {
				row[a] += v * basis[j][a]
			}
		}
		for a := 0; a < dim; a++ {
			row[a] += 0.04 * r.NormFloat64()
		}
		x[i] = row
	}
	shuffle(r, x, y)
	return dataset.MustNew(name, x, y)
}

// Iris returns the surrogate for UCI Iris: 150 objects, 4 attributes,
// 3 classes of 50. One class is well separated (setosa); the other two
// overlap (versicolor/virginica), which is why label structure and cluster
// structure disagree for partitional methods at some parameter settings.
func Iris(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	specs := []classSpec{
		{n: 50, center: []float64{-6, -4, 0, 0}, scale: []float64{0.5, 0.5, 0.4, 0.4}},
		{n: 50, center: []float64{0.0, 0.3, 0, 0}, scale: []float64{0.8, 0.8, 0.7, 0.7}},
		{n: 50, center: []float64{0.9, 1.1, 0.6, 0.6}, scale: []float64{0.9, 0.9, 0.8, 0.8}},
	}
	return blobs("iris", r, specs)
}

// Wine returns the surrogate for UCI Wine: 178 objects, 13 attributes,
// 3 ellipsoidal classes (59/71/48) with unequal per-class scales, roughly
// separable after standardization as the real chemical-analysis data is.
func Wine(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	dim := 13
	mkScale := func(sc float64) []float64 {
		scale := make([]float64, dim)
		for j := range scale {
			scale[j] = sc * (0.5 + r.Float64())
		}
		return scale
	}
	// The real Wine data overlaps heavily (the paper's F-measures on Wine
	// are its lowest), and its dominant geometric split does not follow the
	// three cultivars: classes 0 and 2 form one loose super-group far from
	// class 1, so an unsupervised validity index prefers a 2-cluster
	// solution while the labels need 3.
	u := randomUnit(r, dim)
	far := 1.5 * math.Sqrt(float64(dim))
	near := 0.55 * math.Sqrt(float64(dim))
	v := randomUnit(r, dim)
	c0 := make([]float64, dim)
	c1 := make([]float64, dim)
	c2 := make([]float64, dim)
	for j := 0; j < dim; j++ {
		c1[j] = far * u[j]
		c2[j] = near * v[j]
	}
	specs := []classSpec{
		{n: 59, center: c0, scale: mkScale(0.9)},
		{n: 71, center: c1, scale: mkScale(1.2)},
		{n: 48, center: c2, scale: mkScale(0.7)},
	}
	return blobs("wine", r, specs)
}

// Ionosphere returns the surrogate for UCI Ionosphere: 351 objects,
// 34 attributes, 2 classes — 225 "good" returns forming a coherent compact
// class and 126 "bad" returns that are diffuse and multi-modal (three
// scattered sub-modes), as in the radar data where "bad" is a catch-all.
func Ionosphere(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	dim := 34
	good := classSpec{n: 225, center: make([]float64, dim), scale: fill(dim, 0.9)}
	specs := []classSpec{good}
	// Three "bad" sub-modes share label 1; they are diffuse and sit close
	// enough to the "good" class to overlap its fringe, as in the radar
	// data where "bad" returns are a catch-all.
	var x [][]float64
	var y []int
	ds := blobs("ionosphere-good", r, specs)
	x = append(x, ds.X...)
	y = append(y, ds.Y...)
	// Two of the bad sub-modes interpenetrate the good class (radar noise
	// that looks almost like structure); only one is clearly apart.
	seps := []float64{0.55, 0.8, 1.3}
	for m := 0; m < 3; m++ {
		c := randomUnit(r, dim)
		sep := seps[m] * math.Sqrt(float64(dim))
		for j := range c {
			c[j] *= sep
		}
		sub := blobs("ionosphere-bad", r, []classSpec{{n: 42, center: c, scale: fill(dim, 1.1)}})
		x = append(x, sub.X...)
		for range sub.Y {
			y = append(y, 1)
		}
	}
	shuffle(r, x, y)
	return dataset.MustNew("ionosphere", x, y)
}

// Ecoli returns the surrogate for UCI Ecoli: 336 objects, 7 attributes,
// 8 classes with the original highly skewed sizes (143,77,52,35,20,5,2,2).
// Tiny classes make both clustering and constraint sampling hard, which is
// why the paper's Ecoli numbers are its weakest.
func Ecoli(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	dim := 7
	sizes := []int{143, 77, 52, 35, 20, 5, 2, 2}
	specs := make([]classSpec, len(sizes))
	// The eight protein-localization classes form two broad super-groups
	// (inner-membrane-related vs the rest): within a super-group classes
	// overlap, and the super-group split dominates the geometry. Validity
	// indices therefore favour very small k while the labels need k=8.
	pole := randomUnit(r, dim)
	for c, n := range sizes {
		center := randomUnit(r, dim)
		sep := 0.85 * math.Sqrt(float64(dim))
		sign := 1.0
		if c >= 4 {
			sign = -1
		}
		for j := range center {
			center[j] = center[j]*sep + sign*1.1*math.Sqrt(float64(dim))*pole[j]
		}
		specs[c] = classSpec{n: n, center: center, scale: fill(dim, 0.8)}
	}
	return blobs("ecoli", r, specs)
}

// Zyeast returns the surrogate for the Yeast cell-cycle gene-expression data:
// 205 objects (genes), 20 attributes (conditions), 4 classes. Each class is a
// phase-shifted sinusoidal expression profile; a gene is its class profile
// times a random amplitude in [0.6, 2.2] plus noise. Classes are therefore
// elongated rays, not spherical blobs: density-based clustering can follow
// them but k-means cannot, reproducing the paper's strongly negative
// MPCKmeans correlations on Zyeast.
func Zyeast(seed int64) *dataset.Dataset {
	r := stats.NewRand(seed)
	const (
		dim     = 20
		classes = 4
	)
	sizes := []int{67, 55, 45, 38} // sums to 205
	var x [][]float64
	var y []int
	for c := 0; c < classes; c++ {
		// Classes are phase-shifted versions of the same cyclic pattern,
		// with small phase offsets: visually similar expression curves.
		phase := math.Pi / 8 * float64(c)
		profile := make([]float64, dim)
		for t := range profile {
			profile[t] = math.Sin(2*math.Pi*float64(t)/float64(dim) + phase)
		}
		for i := 0; i < sizes[c]; i++ {
			// Wide amplitude range: genes share a pattern but differ wildly
			// in expression magnitude, so each class is a long thin ray and
			// Euclidean distance is dominated by magnitude, not pattern —
			// k-means then cuts radially across classes while density-based
			// clustering follows each ray.
			amp := 0.5 + 4.5*r.Float64()
			g := make([]float64, dim)
			for t := range g {
				g[t] = amp*profile[t] + 0.08*r.NormFloat64()
			}
			x = append(x, g)
			y = append(y, c)
		}
	}
	shuffle(r, x, y)
	return dataset.MustNew("zyeast", x, y)
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// UCISuite returns the five single-dataset surrogates in the order the
// paper's tables list them after ALOI: Iris, Wine, Ionosphere, Ecoli, Zyeast.
func UCISuite(seed int64) []*dataset.Dataset {
	return []*dataset.Dataset{
		Iris(stats.SplitSeed(seed, 1)),
		Wine(stats.SplitSeed(seed, 2)),
		Ionosphere(stats.SplitSeed(seed, 3)),
		Ecoli(stats.SplitSeed(seed, 4)),
		Zyeast(stats.SplitSeed(seed, 5)),
	}
}

// GrowthBatch generates the batch-th append of a growing labeled dataset:
// rows points drawn round-robin from classes axis-aligned Gaussian classes
// in dims dimensions. Each (seed, batch) pair is an independent
// deterministic draw, so a growth sequence is reproducible batch by batch
// and two runs that emit the same batches build bit-identical datasets —
// the property the incremental re-selection path (versioned datasets plus
// the content-addressed cell cache) is tested against. Class c is centered
// at 10·c on every axis with unit scale, far enough apart that the
// clustering structure survives growth.
func GrowthBatch(seed int64, batch, rows, dims, classes int) dataset.RowBatch {
	r := stats.NewRand(seed + int64(batch)*1_000_003)
	b := dataset.RowBatch{Rows: make([][]float64, rows), Labels: make([]int, rows)}
	for i := 0; i < rows; i++ {
		c := i % classes
		p := make([]float64, dims)
		for j := range p {
			p[j] = 10*float64(c) + r.NormFloat64()
		}
		b.Rows[i] = p
		b.Labels[i] = c
	}
	return b
}
