package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validRecord() *Record {
	return &Record{
		Schema:    Schema,
		Timestamp: "2026-08-07T12:00:00Z",
		GitSHA:    "0123abc",
		GoVersion: "go1.24.0",
		Benchmarks: []Benchmark{
			{Name: "DistMatrixBuild/naive", Iterations: 100, NsPerOp: 1.4e6, MBPerSec: 11_000},
			{Name: "DistMatrixBuild/blocked", Iterations: 220, NsPerOp: 6.6e5, MBPerSec: 25_000, SpeedupVsBaseline: 2.2},
		},
		SelectionWallNs: 5e8,
	}
}

func TestValidateAcceptsGoodRecord(t *testing.T) {
	if err := Validate(validRecord()); err != nil {
		t.Fatal(err)
	}
	r := validRecord()
	r.GitSHA = "unknown" // allowed outside a git checkout
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Record)
		want string
	}{
		{"wrong schema", func(r *Record) { r.Schema = 99 }, "schema"},
		{"bad timestamp", func(r *Record) { r.Timestamp = "yesterday" }, "timestamp"},
		{"bad sha", func(r *Record) { r.GitSHA = "HEAD~1" }, "git_sha"},
		{"empty go version", func(r *Record) { r.GoVersion = "" }, "go_version"},
		{"no benchmarks", func(r *Record) { r.Benchmarks = nil }, "no benchmarks"},
		{"empty name", func(r *Record) { r.Benchmarks[0].Name = "" }, "empty name"},
		{"duplicate name", func(r *Record) { r.Benchmarks[1].Name = r.Benchmarks[0].Name }, "duplicate"},
		{"zero iterations", func(r *Record) { r.Benchmarks[0].Iterations = 0 }, "iterations"},
		{"zero ns", func(r *Record) { r.Benchmarks[0].NsPerOp = 0 }, "ns_per_op"},
		{"negative allocs", func(r *Record) { r.Benchmarks[0].AllocsPerOp = -1 }, "memory"},
		{"negative speedup", func(r *Record) { r.Benchmarks[1].SpeedupVsBaseline = -2 }, "derived"},
		{"zero wall time", func(r *Record) { r.SelectionWallNs = 0 }, "selection_wall_ns"},
	}
	for _, c := range cases {
		r := validRecord()
		c.mut(r)
		err := Validate(r)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if recs, err := Load(path); err != nil || recs != nil {
		t.Fatalf("missing file should load as empty ledger, got %v, %v", recs, err)
	}
	first := validRecord()
	if err := Append(path, first); err != nil {
		t.Fatal(err)
	}
	second := validRecord()
	second.GitSHA = "deadbeef"
	if err := Append(path, second); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].GitSHA != "0123abc" || recs[1].GitSHA != "deadbeef" {
		t.Fatalf("append order lost: %v, %v", recs[0].GitSHA, recs[1].GitSHA)
	}
	if recs[1].Benchmarks[1].SpeedupVsBaseline != 2.2 {
		t.Fatalf("speedup did not round-trip: %v", recs[1].Benchmarks[1].SpeedupVsBaseline)
	}
}

func TestAppendRejectsInvalidRecordWithoutTouchingLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := Append(path, validRecord()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := validRecord()
	bad.SelectionWallNs = -1
	if err := Append(path, bad); err == nil {
		t.Fatal("expected validation error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed append modified the ledger")
	}
}

func TestLoadRejectsCorruptLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected parse error")
	}
	// A well-formed array holding an invalid record must also be rejected
	// (this is what the CI schema-validation step exercises).
	if err := os.WriteFile(path, []byte(`[{"schema": 42}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected schema error")
	}
}
