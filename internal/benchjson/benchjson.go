// Package benchjson defines the on-disk format of the repository's
// benchmark ledger (BENCH_v5.json): an append-only JSON array with one
// record per benchmark run, written by cmd/bench and checked in per PR so
// performance history travels with the code. The schema is validated both
// on write (cmd/bench refuses to append an invalid record) and in CI (the
// bench-smoke job validates a fresh -short run plus the committed ledger).
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"
)

// Schema is the current record schema version. Bump it only with a
// migration note in docs/performance.md.
const Schema = 1

// Record is one benchmark run: a set of micro-benchmark results plus the
// end-to-end selection wall time, stamped with the commit it measured.
type Record struct {
	// Schema is the record format version (the package constant Schema).
	Schema int `json:"schema"`
	// Timestamp is the run's start time, RFC 3339 in UTC.
	Timestamp string `json:"timestamp"`
	// GitSHA is the commit the working tree was at, or "unknown" outside
	// a git checkout.
	GitSHA string `json:"git_sha"`
	// GoVersion is runtime.Version() of the harness binary.
	GoVersion string `json:"go_version"`
	// Short marks reduced-size runs (cmd/bench -short, the CI smoke job);
	// short records are for schema liveness, not for cross-PR comparison.
	Short bool `json:"short"`
	// Benchmarks holds the micro-benchmark results.
	Benchmarks []Benchmark `json:"benchmarks"`
	// SelectionWallNs is the wall-clock time of one full CVCP selection
	// (grid × folds on the reference dataset), in nanoseconds.
	SelectionWallNs int64 `json:"selection_wall_ns"`
}

// Benchmark is one micro-benchmark measurement in a Record.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MBPerSec is throughput when the benchmark sets bytes-per-op;
	// 0 otherwise.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	// SpeedupVsBaseline is this benchmark's throughput relative to its
	// named scalar baseline (e.g. blocked builder vs naive builder);
	// 0 when the benchmark has no baseline.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

var shaRE = regexp.MustCompile(`^([0-9a-f]{7,40}|unknown)$`)

// Validate checks one record against the schema: version match, parseable
// UTC timestamp, plausible git SHA, at least one benchmark, and positive
// measurements everywhere.
func Validate(r *Record) error {
	if r.Schema != Schema {
		return fmt.Errorf("benchjson: schema %d, want %d", r.Schema, Schema)
	}
	if _, err := time.Parse(time.RFC3339, r.Timestamp); err != nil {
		return fmt.Errorf("benchjson: bad timestamp %q: %v", r.Timestamp, err)
	}
	if !shaRE.MatchString(r.GitSHA) {
		return fmt.Errorf("benchjson: bad git_sha %q", r.GitSHA)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("benchjson: empty go_version")
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: record has no benchmarks")
	}
	seen := map[string]bool{}
	for i, b := range r.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchjson: benchmark %d has empty name", i)
		}
		if seen[b.Name] {
			return fmt.Errorf("benchjson: duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations <= 0 {
			return fmt.Errorf("benchjson: %s: iterations %d, want > 0", b.Name, b.Iterations)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchjson: %s: ns_per_op %v, want > 0", b.Name, b.NsPerOp)
		}
		if b.BytesPerOp < 0 || b.AllocsPerOp < 0 {
			return fmt.Errorf("benchjson: %s: negative memory stats", b.Name)
		}
		if b.MBPerSec < 0 || b.SpeedupVsBaseline < 0 {
			return fmt.Errorf("benchjson: %s: negative derived stats", b.Name)
		}
	}
	if r.SelectionWallNs <= 0 {
		return fmt.Errorf("benchjson: selection_wall_ns %d, want > 0", r.SelectionWallNs)
	}
	return nil
}

// Load reads a ledger file. A missing file is an empty ledger, not an
// error; a malformed or schema-invalid file is an error.
func Load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	for i := range recs {
		if err := Validate(&recs[i]); err != nil {
			return nil, fmt.Errorf("%s: record %d: %v", path, i, err)
		}
	}
	return recs, nil
}

// Append validates rec, loads the existing ledger at path (validating
// every prior record), appends rec, and rewrites the file atomically
// (temp file + rename), so a crashed run can never truncate history.
func Append(path string, rec *Record) error {
	if err := Validate(rec); err != nil {
		return err
	}
	recs, err := Load(path)
	if err != nil {
		return err
	}
	recs = append(recs, *rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
