// Package kmeans implements Lloyd's algorithm with k-means++ seeding. It is
// the unconstrained baseline clustering method and the building block the
// MPCKmeans implementation extends with constraints and metric learning.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"cvcp/internal/linalg"
)

// Config controls a k-means run.
type Config struct {
	K        int   // number of clusters (required, >= 1)
	MaxIter  int   // maximum Lloyd iterations; 0 means 100
	Seed     int64 // seeding RNG seed
	Restarts int   // independent restarts, best objective kept; 0 means 1
}

// Result is a finished k-means clustering.
type Result struct {
	Labels    []int       // cluster index per object, in [0, K)
	Centers   [][]float64 // final cluster centroids
	Objective float64     // sum of squared distances to assigned centroids
	Iters     int         // Lloyd iterations of the winning restart
}

// Run clusters x into cfg.K clusters. It returns an error when K < 1 or
// K > len(x).
func Run(x [][]float64, cfg Config) (*Result, error) {
	n := len(x)
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d exceeds %d objects", cfg.K, n)
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var best *Result
	for t := 0; t < restarts; t++ {
		res := lloyd(x, SeedPlusPlus(r, x, cfg.K), maxIter)
		if best == nil || res.Objective < best.Objective {
			best = res
		}
	}
	return best, nil
}

// SeedPlusPlus selects k initial centers with the k-means++ D² weighting.
func SeedPlusPlus(r *rand.Rand, x [][]float64, k int) [][]float64 {
	n := len(x)
	centers := make([][]float64, 0, k)
	centers = append(centers, linalg.Clone(x[r.Intn(n)]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = linalg.SqDist(x[i], centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = r.Intn(n) // all points coincide with some center
		} else {
			target := r.Float64() * total
			cum := 0.0
			next = n - 1
			for i, d := range d2 {
				cum += d
				if cum >= target {
					next = i
					break
				}
			}
		}
		c := linalg.Clone(x[next])
		centers = append(centers, c)
		for i := range d2 {
			if d := linalg.SqDist(x[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// lloyd iterates assignment and mean updates until labels stop changing or
// maxIter is reached. Empty clusters are re-seeded with the point farthest
// from its assigned center, a standard repair that keeps exactly K clusters.
func lloyd(x, centers [][]float64, maxIter int) *Result {
	n, k := len(x), len(centers)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, p := range x {
			bi, bd := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := linalg.SqDist(p, ctr); d < bd {
					bi, bd = c, d
				}
			}
			if labels[i] != bi {
				labels[i] = bi
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, p := range x {
			counts[labels[i]]++
			linalg.AXPY(centers[labels[i]], 1, p)
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = linalg.Clone(x[farthestPoint(x, centers, labels)])
				continue
			}
			linalg.Scale(centers[c], 1/float64(counts[c]), centers[c])
		}
	}
	var obj float64
	for i, p := range x {
		obj += linalg.SqDist(p, centers[labels[i]])
	}
	return &Result{Labels: labels, Centers: centers, Objective: obj, Iters: iters}
}

func farthestPoint(x, centers [][]float64, labels []int) int {
	worst, wd := 0, -1.0
	for i, p := range x {
		d := linalg.SqDist(p, centers[labels[i]])
		if d > wd {
			worst, wd = i, d
		}
	}
	return worst
}
