package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"cvcp/internal/stats"
)

// threeBlobs returns 3 well-separated 2-d blobs of size 10 each.
func threeBlobs(seed int64) ([][]float64, []int) {
	r := stats.NewRand(seed)
	centers := [][]float64{{0, 0}, {20, 0}, {10, 20}}
	var x [][]float64
	var y []int
	for c, ctr := range centers {
		for i := 0; i < 10; i++ {
			x = append(x, []float64{ctr[0] + r.NormFloat64(), ctr[1] + r.NormFloat64()})
			y = append(y, c)
		}
	}
	return x, y
}

func TestRunRecoversBlobs(t *testing.T) {
	x, y := threeBlobs(1)
	res, err := Run(x, Config{K: 3, Seed: 5, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	// All points of one true class must share a cluster label.
	for c := 0; c < 3; c++ {
		var label = -1
		for i := range x {
			if y[i] != c {
				continue
			}
			if label == -1 {
				label = res.Labels[i]
			} else if res.Labels[i] != label {
				t.Fatalf("class %d split across clusters", c)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	x, _ := threeBlobs(1)
	if _, err := Run(x, Config{K: 0}); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := Run(x, Config{K: len(x) + 1}); err == nil {
		t.Error("expected error for K>n")
	}
}

func TestRunKEqualsOne(t *testing.T) {
	x, _ := threeBlobs(2)
	res, err := Run(x, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
}

func TestRunKEqualsN(t *testing.T) {
	x := [][]float64{{0}, {10}, {20}, {30}}
	res, err := Run(x, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 4 || res.Objective > 1e-9 {
		t.Errorf("K=n: %d distinct labels, objective %v", len(seen), res.Objective)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	x, _ := threeBlobs(3)
	a, _ := Run(x, Config{K: 3, Seed: 7})
	b, _ := Run(x, Config{K: 3, Seed: 7})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestRestartsNeverWorse(t *testing.T) {
	x, _ := threeBlobs(4)
	one, _ := Run(x, Config{K: 3, Seed: 9, Restarts: 1})
	many, _ := Run(x, Config{K: 3, Seed: 9, Restarts: 5})
	if many.Objective > one.Objective+1e-9 {
		t.Errorf("more restarts worsened the objective: %v > %v", many.Objective, one.Objective)
	}
}

func TestDuplicatePoints(t *testing.T) {
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}}
	res, err := Run(x, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[3] == res.Labels[0] {
		t.Error("distinct point grouped with duplicates despite K=2")
	}
}

func TestSeedPlusPlusCount(t *testing.T) {
	x, _ := threeBlobs(5)
	r := stats.NewRand(1)
	centers := SeedPlusPlus(r, x, 3)
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	// Centers are copies, not aliases into x.
	centers[0][0] = 1e9
	for _, p := range x {
		if p[0] == 1e9 {
			t.Fatal("SeedPlusPlus aliases input data")
		}
	}
}

// Property: the objective equals the recomputed sum of squared distances to
// the assigned centers, and every label is in range.
func TestObjectiveConsistency(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		x, _ := threeBlobs(seed % 1000)
		k := int(kRaw%5) + 1
		res, err := Run(x, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		var obj float64
		for i, p := range x {
			if res.Labels[i] < 0 || res.Labels[i] >= k {
				return false
			}
			c := res.Centers[res.Labels[i]]
			var d float64
			for j := range p {
				v := p[j] - c[j]
				d += v * v
			}
			obj += d
		}
		return math.Abs(obj-res.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
