// Package hierarchy builds cluster dendrograms. Its main entry point turns
// an OPTICS reachability plot into the density dendrogram ("OPTICSDend")
// that FOSC extracts flat clusterings from; it also provides single-linkage
// construction from raw points (used for testing the equivalence: OPTICSDend
// with MinPts = 1 is single linkage) and the tree utilities FOSC needs
// (leaf intervals, LCA queries, deterministic traversal).
package hierarchy

import (
	"fmt"
	"math"
	"sort"

	"cvcp/internal/cluster/optics"
	"cvcp/internal/linalg"
)

// Node is a dendrogram node. Leaves have Left == Right == -1 and Point set
// to an object index; internal nodes merge exactly two children at Height.
type Node struct {
	Left, Right int     // child node ids, -1 for leaves
	Parent      int     // parent node id, -1 for the root
	Height      float64 // merge height (reachability threshold); 0 for leaves
	Point       int     // object index for leaves, -1 for internal nodes
	Size        int     // number of leaves underneath
}

// Dendrogram is a rooted binary tree over n objects with 2n-1 nodes.
// Node ids 0..n-1 are the leaves for objects 0..n-1.
type Dendrogram struct {
	Nodes []Node
	Root  int
	N     int // number of objects (leaves)
}

// FromReachability converts an OPTICS result into a dendrogram: the bar at
// ordering position p (p >= 1) merges, at height Reach[p], the cluster
// containing the objects ordered before p with the cluster containing
// Order[p]. Processing the bars in ascending height order yields the density
// dendrogram equivalent to single linkage on the reachability structure.
// Infinite bars (separate density-connected components) merge last at +Inf.
func FromReachability(res *optics.Result) (*Dendrogram, error) {
	n := len(res.Order)
	if n == 0 {
		return nil, fmt.Errorf("hierarchy: empty ordering")
	}
	type bar struct {
		pos int
		h   float64
	}
	bars := make([]bar, 0, n-1)
	for p := 1; p < n; p++ {
		bars = append(bars, bar{pos: p, h: res.Reach[p]})
	}
	sort.SliceStable(bars, func(i, j int) bool {
		if bars[i].h != bars[j].h {
			return bars[i].h < bars[j].h
		}
		return bars[i].pos < bars[j].pos
	})
	d := newLeaves(n)
	// Union-find over current dendrogram roots.
	find := make([]int, 0, 2*n-1)
	for i := 0; i < n; i++ {
		find = append(find, i)
	}
	var root func(int) int
	root = func(v int) int {
		if find[v] == v {
			return v
		}
		find[v] = root(find[v])
		return find[v]
	}
	for _, b := range bars {
		a := root(res.Order[b.pos-1])
		c := root(res.Order[b.pos])
		if a == c {
			return nil, fmt.Errorf("hierarchy: ordering positions %d and %d already merged", b.pos-1, b.pos)
		}
		id := d.merge(a, c, b.h)
		find = append(find, id)
		find[a] = id
		find[c] = id
	}
	d.Root = root(res.Order[0])
	return d, nil
}

// SingleLinkage builds the single-linkage dendrogram of x under the
// Euclidean distance using a Prim-style O(n²) minimum spanning tree followed
// by sorted edge agglomeration.
func SingleLinkage(x [][]float64) (*Dendrogram, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("hierarchy: empty dataset")
	}
	type edge struct {
		a, b int
		w    float64
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestTo := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	edges := make([]edge, 0, n-1)
	cur := 0
	inTree[0] = true
	for t := 1; t < n; t++ {
		for j := 0; j < n; j++ {
			if inTree[j] {
				continue
			}
			if d := linalg.Dist(x[cur], x[j]); d < best[j] {
				best[j] = d
				bestTo[j] = cur
			}
		}
		next, nd := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < nd {
				next, nd = j, best[j]
			}
		}
		inTree[next] = true
		edges = append(edges, edge{a: bestTo[next], b: next, w: nd})
		cur = next
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	d := newLeaves(n)
	find := make([]int, 0, 2*n-1)
	for i := 0; i < n; i++ {
		find = append(find, i)
	}
	var root func(int) int
	root = func(v int) int {
		if find[v] == v {
			return v
		}
		find[v] = root(find[v])
		return find[v]
	}
	for _, e := range edges {
		a, b := root(e.a), root(e.b)
		id := d.merge(a, b, e.w)
		find = append(find, id)
		find[a] = id
		find[b] = id
	}
	d.Root = root(0)
	return d, nil
}

func newLeaves(n int) *Dendrogram {
	d := &Dendrogram{N: n, Nodes: make([]Node, n, 2*n-1)}
	for i := 0; i < n; i++ {
		d.Nodes[i] = Node{Left: -1, Right: -1, Parent: -1, Point: i, Size: 1}
	}
	return d
}

func (d *Dendrogram) merge(a, b int, h float64) int {
	id := len(d.Nodes)
	d.Nodes = append(d.Nodes, Node{
		Left: a, Right: b, Parent: -1, Height: h, Point: -1,
		Size: d.Nodes[a].Size + d.Nodes[b].Size,
	})
	d.Nodes[a].Parent = id
	d.Nodes[b].Parent = id
	return id
}

// Members returns the sorted object indices under node id.
func (d *Dendrogram) Members(id int) []int {
	var out []int
	stack := []int{id}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := d.Nodes[v]
		if nd.Point >= 0 {
			out = append(out, nd.Point)
			continue
		}
		stack = append(stack, nd.Left, nd.Right)
	}
	sort.Ints(out)
	return out
}

// PostOrder returns the node ids in post-order (children before parents),
// which is the evaluation order FOSC's dynamic program needs.
func (d *Dendrogram) PostOrder() []int {
	out := make([]int, 0, len(d.Nodes))
	type frame struct {
		id      int
		visited bool
	}
	stack := []frame{{id: d.Root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.visited || d.Nodes[f.id].Point >= 0 {
			out = append(out, f.id)
			continue
		}
		stack = append(stack, frame{id: f.id, visited: true})
		stack = append(stack, frame{id: d.Nodes[f.id].Right})
		stack = append(stack, frame{id: d.Nodes[f.id].Left})
	}
	return out
}

// CutAt returns the flat clustering obtained by cutting the dendrogram at
// the given height: objects connected by merges with Height <= h share a
// cluster. Labels are renumbered 0..k-1 in order of first appearance.
func (d *Dendrogram) CutAt(h float64) []int {
	labels := make([]int, d.N)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	var assign func(id, lab int)
	assign = func(id, lab int) {
		nd := d.Nodes[id]
		if nd.Point >= 0 {
			labels[nd.Point] = lab
			return
		}
		assign(nd.Left, lab)
		assign(nd.Right, lab)
	}
	var walk func(id int)
	walk = func(id int) {
		nd := d.Nodes[id]
		if nd.Point >= 0 || nd.Height <= h {
			assign(id, next)
			next++
			return
		}
		walk(nd.Left)
		walk(nd.Right)
	}
	walk(d.Root)
	return labels
}
