package hierarchy

// LCA answers lowest-common-ancestor queries on a dendrogram in O(1) after
// O(n log n) preprocessing, via the Euler tour + sparse-table reduction to
// range-minimum queries. FOSC uses it to find, for every constraint (a, b),
// the dendrogram node at which the two objects first merge.
type LCA struct {
	d      *Dendrogram
	euler  []int // node id per Euler tour position
	depth  []int // depth per Euler tour position
	first  []int // first tour position of each node id
	sparse [][]int32
	log2   []int
}

// NewLCA preprocesses d for constant-time LCA queries.
func NewLCA(d *Dendrogram) *LCA {
	l := &LCA{d: d, first: make([]int, len(d.Nodes))}
	for i := range l.first {
		l.first[i] = -1
	}
	type frame struct {
		id, depth, state int
	}
	stack := []frame{{id: d.Root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := d.Nodes[f.id]
		if l.first[f.id] == -1 {
			l.first[f.id] = len(l.euler)
		}
		l.euler = append(l.euler, f.id)
		l.depth = append(l.depth, f.depth)
		if nd.Point >= 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		switch f.state {
		case 0:
			f.state = 1
			stack = append(stack, frame{id: nd.Left, depth: f.depth + 1})
		case 1:
			f.state = 2
			stack = append(stack, frame{id: nd.Right, depth: f.depth + 1})
		default:
			stack = stack[:len(stack)-1]
		}
	}
	l.buildSparse()
	return l
}

func (l *LCA) buildSparse() {
	m := len(l.euler)
	l.log2 = make([]int, m+1)
	for i := 2; i <= m; i++ {
		l.log2[i] = l.log2[i/2] + 1
	}
	levels := l.log2[m] + 1
	l.sparse = make([][]int32, levels)
	l.sparse[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		l.sparse[0][i] = int32(i)
	}
	for lev := 1; lev < levels; lev++ {
		width := m - (1 << lev) + 1
		l.sparse[lev] = make([]int32, width)
		for i := 0; i < width; i++ {
			a := l.sparse[lev-1][i]
			b := l.sparse[lev-1][i+(1<<(lev-1))]
			if l.depth[a] <= l.depth[b] {
				l.sparse[lev][i] = a
			} else {
				l.sparse[lev][i] = b
			}
		}
	}
}

// Query returns the node id of the lowest common ancestor of objects a and b
// (object indices, i.e. leaf node ids).
func (l *LCA) Query(a, b int) int {
	fa, fb := l.first[a], l.first[b]
	if fa > fb {
		fa, fb = fb, fa
	}
	lev := l.log2[fb-fa+1]
	p := l.sparse[lev][fa]
	q := l.sparse[lev][fb-(1<<lev)+1]
	if l.depth[p] <= l.depth[q] {
		return l.euler[p]
	}
	return l.euler[q]
}

// MergeHeight returns the dendrogram height at which objects a and b first
// share a cluster (0 when a == b).
func (l *LCA) MergeHeight(a, b int) float64 {
	if a == b {
		return 0
	}
	return l.d.Nodes[l.Query(a, b)].Height
}
