package hierarchy

import (
	"math"
	"testing"
	"testing/quick"

	"cvcp/internal/cluster/optics"
	"cvcp/internal/stats"
)

func line(points ...float64) [][]float64 {
	x := make([][]float64, len(points))
	for i, p := range points {
		x[i] = []float64{p}
	}
	return x
}

func TestSingleLinkageHandComputed(t *testing.T) {
	// Points 0, 1, 3, 10: merges at 1 (0-1), 2 (1-3), 7 (3-10).
	d, err := SingleLinkage(line(0, 1, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 7 {
		t.Fatalf("got %d nodes, want 7", len(d.Nodes))
	}
	root := d.Nodes[d.Root]
	if root.Size != 4 {
		t.Errorf("root size = %d", root.Size)
	}
	if math.Abs(root.Height-7) > 1e-12 {
		t.Errorf("root height = %v, want 7", root.Height)
	}
	// Cutting below 7 and above 2 yields {0,1,2} and {3}.
	labels := d.CutAt(3)
	if labels[0] != labels[1] || labels[1] != labels[2] || labels[3] == labels[0] {
		t.Errorf("CutAt(3) = %v", labels)
	}
}

func TestCutAtExtremes(t *testing.T) {
	d, err := SingleLinkage(line(0, 1, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	all := d.CutAt(math.Inf(1))
	for i := 1; i < len(all); i++ {
		if all[i] != all[0] {
			t.Error("cut at +Inf must give one cluster")
		}
	}
	singletons := d.CutAt(0.5)
	seen := map[int]bool{}
	for _, l := range singletons {
		if seen[l] {
			t.Error("cut below the smallest merge must give singletons")
		}
		seen[l] = true
	}
}

func TestFromReachabilityEquivalentToSingleLinkage(t *testing.T) {
	// With MinPts = 1 every core distance is 0, so OPTICS reachability is
	// plain distance and the dendrogram must match single linkage in its
	// merge heights.
	x := line(0, 1, 3, 10, 11, 30)
	res, err := optics.Run(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := FromReachability(res)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := SingleLinkage(x)
	if err != nil {
		t.Fatal(err)
	}
	hr := mergeHeights(dr)
	hs := mergeHeights(sl)
	if len(hr) != len(hs) {
		t.Fatalf("merge counts differ: %d vs %d", len(hr), len(hs))
	}
	for i := range hr {
		if math.Abs(hr[i]-hs[i]) > 1e-9 {
			t.Errorf("merge %d: %v vs %v", i, hr[i], hs[i])
		}
	}
}

func mergeHeights(d *Dendrogram) []float64 {
	var hs []float64
	for _, nd := range d.Nodes {
		if nd.Point < 0 {
			hs = append(hs, nd.Height)
		}
	}
	// Heights were appended in merge order, which is ascending for both
	// constructions; sort anyway for robustness.
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && hs[j] < hs[j-1]; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
	return hs
}

func TestMembersAndPostOrder(t *testing.T) {
	d, err := SingleLinkage(line(0, 1, 3, 10))
	if err != nil {
		t.Fatal(err)
	}
	m := d.Members(d.Root)
	if len(m) != 4 {
		t.Errorf("root members = %v", m)
	}
	post := d.PostOrder()
	if len(post) != len(d.Nodes) {
		t.Fatalf("post-order covers %d of %d nodes", len(post), len(d.Nodes))
	}
	pos := make(map[int]int)
	for i, id := range post {
		pos[id] = i
	}
	for id, nd := range d.Nodes {
		if nd.Point >= 0 {
			continue
		}
		if pos[nd.Left] > pos[id] || pos[nd.Right] > pos[id] {
			t.Errorf("node %d precedes its children in post-order", id)
		}
	}
	if post[len(post)-1] != d.Root {
		t.Error("post-order must end at the root")
	}
}

func TestLCAAgainstNaive(t *testing.T) {
	r := stats.NewRand(3)
	x := make([][]float64, 30)
	for i := range x {
		x[i] = []float64{r.NormFloat64() * 5}
	}
	d, err := SingleLinkage(x)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLCA(d)
	naive := func(a, b int) int {
		anc := map[int]bool{}
		for v := a; v != -1; v = d.Nodes[v].Parent {
			anc[v] = true
		}
		for v := b; v != -1; v = d.Nodes[v].Parent {
			if anc[v] {
				return v
			}
		}
		return -1
	}
	for a := 0; a < len(x); a++ {
		for b := 0; b < len(x); b++ {
			if got, want := l.Query(a, b), naive(a, b); got != want {
				t.Fatalf("LCA(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	if l.MergeHeight(0, 0) != 0 {
		t.Error("MergeHeight(a,a) must be 0")
	}
}

// Property: a dendrogram over n points has 2n-1 nodes, the root covers all
// points, and every internal node's size is the sum of its children's.
func TestDendrogramInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 5 + int(seed%20+20)%20
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{r.NormFloat64(), r.NormFloat64()}
		}
		res, err := optics.Run(x, 3)
		if err != nil {
			return false
		}
		d, err := FromReachability(res)
		if err != nil {
			return false
		}
		if len(d.Nodes) != 2*n-1 || d.Nodes[d.Root].Size != n {
			return false
		}
		for _, nd := range d.Nodes {
			if nd.Point >= 0 {
				if nd.Size != 1 {
					return false
				}
				continue
			}
			if nd.Size != d.Nodes[nd.Left].Size+d.Nodes[nd.Right].Size {
				return false
			}
			// Parent pointers consistent.
			if d.Nodes[nd.Left].Parent == -1 || d.Nodes[nd.Right].Parent == -1 {
				return false
			}
		}
		return d.Nodes[d.Root].Parent == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := SingleLinkage(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := FromReachability(&optics.Result{}); err == nil {
		t.Error("expected error for empty ordering")
	}
}

func TestSinglePoint(t *testing.T) {
	d, err := SingleLinkage(line(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 1 || d.Root != 0 || d.Nodes[0].Size != 1 {
		t.Errorf("single-point dendrogram: %+v", d)
	}
	labels := d.CutAt(1)
	if labels[0] != 0 {
		t.Errorf("labels = %v", labels)
	}
}
