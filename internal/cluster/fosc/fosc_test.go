package fosc

import (
	"testing"
	"testing/quick"

	"cvcp/internal/cluster/hierarchy"
	"cvcp/internal/constraints"
	"cvcp/internal/stats"
)

func line(points ...float64) [][]float64 {
	x := make([][]float64, len(points))
	for i, p := range points {
		x[i] = []float64{p}
	}
	return x
}

func mustDendrogram(t *testing.T, x [][]float64) *hierarchy.Dendrogram {
	t.Helper()
	d, err := hierarchy.SingleLinkage(x)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, nil, Config{}); err == nil {
		t.Error("expected error for nil dendrogram")
	}
	d := mustDendrogram(t, line(0, 1, 10, 11))
	bad := constraints.NewSet()
	bad.Add(0, 1, true)
	bad.Add(0, 1, false)
	if _, err := Extract(d, bad, Config{}); err == nil {
		t.Error("expected error for conflicting constraints")
	}
}

func TestExtractTwoGroups(t *testing.T) {
	d := mustDendrogram(t, line(0, 1, 2, 10, 11, 12))
	cons := constraints.NewSet()
	cons.Add(0, 1, true)
	cons.Add(3, 4, true)
	cons.Add(0, 3, false)
	res, err := Extract(d, cons, Config{MinClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Fatalf("got %d clusters: %v", res.NumClusters, res.Labels)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[0] != res.Labels[2] {
		t.Errorf("left group split: %v", res.Labels)
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[0] == res.Labels[3] {
		t.Errorf("groups not separated: %v", res.Labels)
	}
	if res.Satisfaction != 3 || res.Total != 3 {
		t.Errorf("satisfaction %v/%d", res.Satisfaction, res.Total)
	}
}

// Cannot-link inside a tight group: FOSC must split it or drop points to
// noise rather than violate, when the split costs nothing else.
func TestExtractCannotLinkForcesSplit(t *testing.T) {
	d := mustDendrogram(t, line(0, 1, 2, 3, 20, 21, 22, 23))
	cons := constraints.NewSet()
	cons.Add(0, 3, false) // inside the left group
	cons.Add(4, 5, true)
	res, err := Extract(d, cons, Config{MinClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] >= 0 && res.Labels[0] == res.Labels[3] {
		t.Errorf("cannot-link violated: %v", res.Labels)
	}
	if res.Satisfaction != 2 {
		t.Errorf("satisfaction = %v, want 2", res.Satisfaction)
	}
}

func TestExtractNoConstraintsGivesRootChildren(t *testing.T) {
	d := mustDendrogram(t, line(0, 1, 2, 10, 11, 12))
	res, err := Extract(d, nil, Config{MinClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 2 {
		t.Errorf("no-constraint extraction gave %d clusters", res.NumClusters)
	}
}

func TestMinClusterSizeForcesNoise(t *testing.T) {
	// Two points far from a group of four, minSize 3: the pair must be
	// noise.
	d := mustDendrogram(t, line(0, 1, 2, 3, 100, 101))
	cons := constraints.NewSet()
	cons.Add(0, 1, true)
	res, err := Extract(d, cons, Config{MinClusterSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[4] != -1 || res.Labels[5] != -1 {
		t.Errorf("small far group must be noise: %v", res.Labels)
	}
}

// bruteForce enumerates every admissible selection of dendrogram nodes and
// returns the maximum number of satisfied constraints.
func bruteForce(d *hierarchy.Dendrogram, cons *constraints.Set, cfg Config) float64 {
	minSize := cfg.MinClusterSize
	if minSize <= 0 {
		minSize = 2
	}
	type labeling map[int]int
	nextID := 0
	var enumerate func(id int) []labeling
	enumerate = func(id int) []labeling {
		nd := d.Nodes[id]
		selectable := nd.Size >= minSize && (cfg.AllowRootCluster || id != d.Root)
		if nd.Point >= 0 {
			opts := []labeling{{nd.Point: -1}}
			if minSize <= 1 && selectable {
				nextID++
				opts = append(opts, labeling{nd.Point: nextID})
			}
			return opts
		}
		var opts []labeling
		if nd.Size < minSize {
			all := labeling{}
			for _, o := range d.Members(id) {
				all[o] = -1
			}
			return []labeling{all}
		}
		left := enumerate(nd.Left)
		right := enumerate(nd.Right)
		for _, l := range left {
			for _, r := range right {
				combined := labeling{}
				for k, v := range l {
					combined[k] = v
				}
				for k, v := range r {
					combined[k] = v
				}
				opts = append(opts, combined)
			}
		}
		if selectable {
			nextID++
			all := labeling{}
			for _, o := range d.Members(id) {
				all[o] = nextID
			}
			opts = append(opts, all)
		}
		return opts
	}
	best := -1.0
	for _, lab := range enumerate(d.Root) {
		labels := make([]int, d.N)
		for o, v := range lab {
			labels[o] = v
		}
		if s := countSatisfied(labels, cons); s > best {
			best = s
		}
	}
	return best
}

// Property: the DP's satisfaction equals the brute-force optimum over all
// admissible flat clusterings, for random small instances.
func TestExtractMatchesBruteForce(t *testing.T) {
	f := func(seed int64, consBits uint16, minSizeRaw uint8) bool {
		r := stats.NewRand(seed)
		n := 7
		x := make([][]float64, n)
		for i := range x {
			x[i] = []float64{r.NormFloat64() * 3}
		}
		d, err := hierarchy.SingleLinkage(x)
		if err != nil {
			return false
		}
		cons := constraints.NewSet()
		bit := 0
		for a := 0; a < n && bit < 16; a++ {
			for b := a + 1; b < n && bit < 16; b += 2 {
				if consBits&(1<<uint(bit)) != 0 {
					cons.Add(a, b, (a+b)%2 == 0)
				}
				bit++
			}
		}
		if cons.Validate() != nil {
			return true
		}
		cfg := Config{MinClusterSize: int(minSizeRaw%3) + 1}
		res, err := Extract(d, cons, cfg)
		if err != nil {
			return false
		}
		want := bruteForce(d, cons, cfg)
		if res.Satisfaction != want {
			t.Logf("seed=%d minSize=%d: DP=%v brute=%v labels=%v",
				seed, cfg.MinClusterSize, res.Satisfaction, want, res.Labels)
			return false
		}
		// The reported satisfaction must match a recount over the labels.
		return countSatisfied(res.Labels, cons) == res.Satisfaction
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSelectedNodesAreAntichain(t *testing.T) {
	r := stats.NewRand(11)
	x := make([][]float64, 20)
	for i := range x {
		x[i] = []float64{r.NormFloat64() * 4}
	}
	d, err := hierarchy.SingleLinkage(x)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, 20)
	for i := range idx {
		idx[i] = i
	}
	y := make([]int, 20)
	for i := range y {
		y[i] = i % 3
	}
	cons := constraints.FromLabels(idx[:8], y)
	res, err := Extract(d, cons, Config{MinClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No selected node may be an ancestor of another.
	for _, a := range res.SelectedNodes {
		for _, b := range res.SelectedNodes {
			if a == b {
				continue
			}
			for v := d.Nodes[b].Parent; v != -1; v = d.Nodes[v].Parent {
				if v == a {
					t.Fatalf("node %d is an ancestor of selected node %d", a, b)
				}
			}
		}
	}
	// Labels and NumClusters consistent.
	maxLabel := -1
	for _, l := range res.Labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if maxLabel+1 != res.NumClusters {
		t.Errorf("NumClusters=%d but max label=%d", res.NumClusters, maxLabel)
	}
}
