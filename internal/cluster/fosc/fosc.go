// Package fosc implements the semi-supervised instantiation of FOSC — the
// Framework for Optimal Selection of Clusters from cluster hierarchies
// (Campello, Moulavi, Zimek & Sander, "A framework for semi-supervised and
// unsupervised optimal extraction of clusters from hierarchies", Data Mining
// and Knowledge Discovery 27(3), 2013). Combined with the OPTICS density
// dendrogram from internal/cluster/hierarchy it yields FOSC-OPTICSDend, the
// density-based semi-supervised clustering method the paper evaluates CVCP
// with: the parameter under selection is OPTICS's MinPts.
//
// FOSC selects, among all flat clusterings that can be assembled from
// dendrogram nodes (a set of nodes such that no node is an ancestor of
// another; objects under no selected node are noise), one that maximizes the
// total satisfaction of the given must-link and cannot-link constraints. A
// constraint is satisfied when a must-linked pair shares a selected cluster,
// or a cannot-linked pair does not (noise objects belong to no cluster).
//
// The maximization decomposes over endpoints: each endpoint's contribution
// depends only on the cluster (or noise status) of that endpoint, so a
// bottom-up dynamic program over the dendrogram finds the global optimum in
// O(#nodes + #constraints·log n) using LCA queries to locate, for every
// constraint, the node where its endpoints first merge.
package fosc

import (
	"fmt"

	"cvcp/internal/cluster/hierarchy"
	"cvcp/internal/constraints"
)

// Config controls cluster extraction.
type Config struct {
	// MinClusterSize is the smallest dendrogram node selectable as a
	// cluster; nodes below it can only be noise (unless covered by a
	// selected ancestor). 0 means 2. FOSC-OPTICSDend conventionally sets it
	// to MinPts.
	MinClusterSize int
	// AllowRootCluster permits selecting the dendrogram root (all objects
	// as one cluster). FOSC excludes it by default: the root is "no
	// clustering at all".
	AllowRootCluster bool
}

// Result is an extracted flat clustering.
type Result struct {
	// Labels assigns each object a cluster in [0, NumClusters), or -1 for
	// noise.
	Labels []int
	// NumClusters is the number of selected clusters.
	NumClusters int
	// Satisfaction is the number of constraints satisfied by the solution;
	// Total is the number of constraints given. Satisfaction maximality is
	// the DP's guarantee.
	Satisfaction float64
	Total        int
	// SelectedNodes are the dendrogram node ids chosen as clusters.
	SelectedNodes []int
}

// Extract selects the constraint-optimal flat clustering from the
// dendrogram. cons may be empty, in which case every solution ties and the
// coarsest admissible one (the root's children) is returned.
func Extract(d *hierarchy.Dendrogram, cons *constraints.Set, cfg Config) (*Result, error) {
	if d == nil || len(d.Nodes) == 0 {
		return nil, fmt.Errorf("fosc: empty dendrogram")
	}
	if cons == nil {
		cons = constraints.NewSet()
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	minSize := cfg.MinClusterSize
	if minSize <= 0 {
		minSize = 2
	}

	nNodes := len(d.Nodes)
	mlIn := make([]float64, nNodes)  // ML constraints fully inside the node
	clIn := make([]float64, nNodes)  // CL constraints fully inside the node
	clInc := make([]float64, nNodes) // CL endpoint count inside the node

	ml := cons.MustLinks()
	cl := cons.CannotLinks()
	if len(ml)+len(cl) > 0 {
		lca := hierarchy.NewLCA(d)
		for _, p := range ml {
			mlIn[lca.Query(p.A, p.B)]++
		}
		for _, p := range cl {
			clIn[lca.Query(p.A, p.B)]++
			clInc[p.A]++
			clInc[p.B]++
		}
	}

	post := d.PostOrder()
	// Accumulate subtree sums: children precede parents in post-order.
	for _, id := range post {
		nd := d.Nodes[id]
		if nd.Point >= 0 {
			continue
		}
		mlIn[id] += mlIn[nd.Left] + mlIn[nd.Right]
		clIn[id] += clIn[nd.Left] + clIn[nd.Right]
		clInc[id] += clInc[nd.Left] + clInc[nd.Right]
	}

	// DP over nodes. best[id] is twice the maximal satisfied-constraint
	// count achievable for the objects under id, counting each constraint
	// once per endpoint under id; selected[id] records whether taking id as
	// a cluster achieves it.
	best := make([]float64, nNodes)
	selected := make([]bool, nNodes)
	hasSel := make([]bool, nNodes) // any selection in the subtree
	for _, id := range post {
		nd := d.Nodes[id]
		// value of the subtree when id itself is one flat cluster
		asCluster := 2*mlIn[id] + clInc[id] - 2*clIn[id]
		switch {
		case nd.Point >= 0: // leaf
			if minSize <= 1 && (cfg.AllowRootCluster || id != d.Root) {
				// Singleton clusters allowed: same endpoint view as noise
				// for CL, and ML still violated, so values coincide.
				best[id] = clInc[id]
				selected[id] = true
			} else {
				best[id] = clInc[id] // noise
			}
		case nd.Size < minSize:
			best[id] = clInc[id] // too small: all noise
		default:
			childSum := best[nd.Left] + best[nd.Right]
			// On a strict improvement the constraints decide. On a tie the
			// geometry decides: expand to the parent only when its merge
			// height is comparable to the structure below (within a factor
			// of 2), never across a density gap — otherwise a far-away
			// point would be swallowed into a cluster without evidence.
			maxChildH := childHeight(d, nd.Left)
			if h := childHeight(d, nd.Right); h > maxChildH {
				maxChildH = h
			}
			tieOK := nd.Height <= 2*maxChildH || maxChildH == 0 && !(hasSel[nd.Left] || hasSel[nd.Right])
			take := asCluster > childSum || (asCluster == childSum && tieOK)
			if take && (cfg.AllowRootCluster || id != d.Root) {
				best[id] = asCluster
				selected[id] = true
			} else {
				best[id] = childSum
			}
		}
		hasSel[id] = selected[id] || (nd.Point < 0 && (hasSel[nd.Left] || hasSel[nd.Right]))
	}

	res := &Result{
		Labels: make([]int, d.N),
		Total:  cons.Len(),
	}
	for i := range res.Labels {
		res.Labels[i] = -1
	}
	// Top-down: materialize the highest selected nodes.
	stack := []int{d.Root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := d.Nodes[id]
		if selected[id] {
			lab := res.NumClusters
			res.NumClusters++
			res.SelectedNodes = append(res.SelectedNodes, id)
			for _, o := range d.Members(id) {
				res.Labels[o] = lab
			}
			continue
		}
		if nd.Point >= 0 || nd.Size < minSize {
			continue // noise
		}
		stack = append(stack, nd.Right, nd.Left)
	}
	res.Satisfaction = countSatisfied(res.Labels, cons)
	return res, nil
}

// childHeight returns the merge height of a node, or 0 for leaves.
func childHeight(d *hierarchy.Dendrogram, id int) float64 {
	if d.Nodes[id].Point >= 0 {
		return 0
	}
	return d.Nodes[id].Height
}

// countSatisfied returns the number of constraints satisfied by the labeling
// (noise = -1 belongs to no cluster).
func countSatisfied(labels []int, cons *constraints.Set) float64 {
	var s float64
	for _, p := range cons.MustLinks() {
		if labels[p.A] >= 0 && labels[p.A] == labels[p.B] {
			s++
		}
	}
	for _, p := range cons.CannotLinks() {
		if labels[p.A] < 0 || labels[p.A] != labels[p.B] {
			s++
		}
	}
	return s
}
