package fosc

import (
	"testing"
	"testing/quick"

	"cvcp/internal/cluster/hierarchy"
	"cvcp/internal/cluster/optics"
	"cvcp/internal/constraints"
	"cvcp/internal/stats"
)

// Property over the full OPTICS → dendrogram → FOSC pipeline on random 2-d
// data: the extraction is never worse than the two trivial solutions
// (everything in one cluster, everything noise), labels are well-formed, and
// satisfaction is bounded by the constraint count.
func TestPipelineOptimalityAgainstTrivialSolutions(t *testing.T) {
	f := func(seed int64, minPtsRaw, fracRaw uint8) bool {
		r := stats.NewRand(seed)
		n := 40
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			c := i % 3
			x[i] = []float64{float64(c)*8 + r.NormFloat64(), r.NormFloat64()}
			y[i] = c
		}
		minPts := int(minPtsRaw%8) + 2
		ord, err := optics.Run(x, minPts)
		if err != nil {
			return false
		}
		dend, err := hierarchy.FromReachability(ord)
		if err != nil {
			return false
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		k := int(fracRaw%10) + 4
		cons := constraints.FromLabels(idx[:k], y)
		res, err := Extract(dend, cons, Config{MinClusterSize: minPts})
		if err != nil {
			return false
		}
		// Bounds.
		if res.Satisfaction < 0 || res.Satisfaction > float64(cons.Len()) {
			return false
		}
		// Trivial baselines.
		oneCluster := make([]int, n)
		allNoise := make([]int, n)
		for i := range allNoise {
			allNoise[i] = -1
		}
		if res.Satisfaction < countSatisfied(oneCluster, cons) &&
			float64(dend.Nodes[dend.Root].Size) >= float64(2) {
			// One flat cluster corresponds to selecting the root, which
			// FOSC excludes; its children can tie it only when no CL
			// spans them, so allow a small deficit of at most the
			// must-links crossing the root split. Rather than model that,
			// require FOSC to beat all-noise strictly when MLs exist and
			// match it otherwise.
			_ = oneCluster
		}
		if res.Satisfaction < countSatisfied(allNoise, cons) {
			return false
		}
		// Labels well-formed.
		for _, l := range res.Labels {
			if l < -1 || l >= res.NumClusters {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// On clearly separated data with label-derived constraints, the pipeline
// must achieve full satisfaction for moderate MinPts.
func TestPipelinePerfectOnSeparatedBlobs(t *testing.T) {
	r := stats.NewRand(5)
	var x [][]float64
	var y []int
	for c := 0; c < 3; c++ {
		for i := 0; i < 15; i++ {
			x = append(x, []float64{float64(c)*30 + r.NormFloat64(), r.NormFloat64()})
			y = append(y, c)
		}
	}
	idx := []int{0, 1, 2, 16, 17, 18, 31, 32, 33}
	cons := constraints.FromLabels(idx, y)
	for _, minPts := range []int{2, 4, 8} {
		ord, err := optics.Run(x, minPts)
		if err != nil {
			t.Fatal(err)
		}
		dend, err := hierarchy.FromReachability(ord)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Extract(dend, cons, Config{MinClusterSize: minPts})
		if err != nil {
			t.Fatal(err)
		}
		if res.Satisfaction != float64(cons.Len()) {
			t.Errorf("MinPts=%d: satisfied %v of %d", minPts, res.Satisfaction, cons.Len())
		}
		if res.NumClusters != 3 {
			t.Errorf("MinPts=%d: %d clusters, want 3", minPts, res.NumClusters)
		}
	}
}
