package optics

import (
	"fmt"
	"math"
	"sort"

	"cvcp/internal/linalg"
)

// VPTree is a vantage-point tree over the rows of a dataset, answering
// ε-range queries in sub-linear time for small ε instead of scanning all n
// rows. It is the neighbor index behind RunWithEps, the finite-ε OPTICS
// driver.
//
// Construction is deterministic: each subtree's vantage point is the
// lowest-index row of its subset and the remainder is split at the median
// distance (ties broken by row index), so the same dataset always yields
// the same tree. Queries touch no shared mutable state, so a built tree is
// safe for concurrent use by multiple goroutines.
//
// Range queries report a point exactly when linalg.Dist(q, x[p]) <= eps —
// the same test, on the same computed value, a brute-force scan performs —
// so the result set is identical to brute force. Subtree pruning uses the
// triangle inequality with a small conservative slack (vpPruneTol) that
// absorbs floating-point violations of the inequality; the slack can only
// admit extra node visits, never skip a qualifying point.
type VPTree struct {
	x     [][]float64
	nodes []vpNode
	root  int32
}

type vpNode struct {
	radius float64
	point  int32
	inner  int32 // subtree with d(vantage, ·) <= radius; -1 if empty
	outer  int32 // subtree with d(vantage, ·) >= radius; -1 if empty
}

// Neighbor is one ε-range query result: a row index and its exact distance
// to the query point.
type Neighbor struct {
	Index int
	Dist  float64
}

// NewVPTree builds a vantage-point tree over the rows of x. All rows must
// share one dimensionality (the same contract as Run); x is retained by
// reference and must not be mutated while the tree is in use.
func NewVPTree(x [][]float64) *VPTree {
	t := &VPTree{x: x, root: -1, nodes: make([]vpNode, 0, len(x))}
	if len(x) == 0 {
		return t
	}
	idx := make([]int32, len(x))
	for i := range idx {
		idx[i] = int32(i)
	}
	dist := make([]float64, len(x))
	t.root = t.build(idx, dist)
	return t
}

// build constructs the subtree over idx (which it reorders in place) and
// returns its node index. dist is scratch, indexed by row.
func (t *VPTree) build(idx []int32, dist []float64) int32 {
	if len(idx) == 0 {
		return -1
	}
	// Deterministic vantage: the lowest row index in the subset. idx is
	// always sorted ascending here — initially by construction, and each
	// recursive subset is re-sorted below — so that is idx[0].
	vp := idx[0]
	rest := idx[1:]
	node := int32(len(t.nodes))
	t.nodes = append(t.nodes, vpNode{point: vp, inner: -1, outer: -1})
	if len(rest) == 0 {
		return node
	}
	for _, j := range rest {
		dist[j] = linalg.Dist(t.x[vp], t.x[j])
	}
	// Median split by (distance to vantage, row index): ties cannot make
	// the split ambiguous, so the tree shape is a pure function of x.
	sort.Slice(rest, func(a, b int) bool {
		da, db := dist[rest[a]], dist[rest[b]]
		if da != db {
			return da < db
		}
		return rest[a] < rest[b]
	})
	mid := len(rest) / 2
	radius := dist[rest[mid]]
	inner, outer := rest[:mid], rest[mid:]
	// Restore ascending row order inside each half so the recursive calls
	// pick their lowest-index vantage in O(1).
	sortInt32(inner)
	sortInt32(outer)
	t.nodes[node].radius = radius
	in := t.build(inner, dist)
	out := t.build(outer, dist)
	t.nodes[node].inner = in
	t.nodes[node].outer = out
	return node
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

// vpPruneTol returns the slack added to the triangle-inequality pruning
// bounds. Computed distances can violate the triangle inequality by a few
// ULPs; a relative slack of ~4e-12 (about 2¹⁴ ULPs) on the magnitudes
// involved is far beyond any achievable violation, and its only cost is
// descending into a handful of extra subtrees near the boundary.
func vpPruneTol(dq, radius, eps float64) float64 {
	return 4e-12 * (dq + radius + eps)
}

// RangeInto appends every row p with linalg.Dist(q, x[p]) <= eps to
// dst[:0], sorted by row index, and returns the extended slice. Passing a
// reused buffer keeps steady-state queries allocation-free. The result is
// exactly what a brute-force scan comparing the same computed distances
// against eps produces, in the same canonical order.
func (t *VPTree) RangeInto(dst []Neighbor, q []float64, eps float64) []Neighbor {
	dst = dst[:0]
	if t.root < 0 {
		return dst
	}
	dst = t.rangeNode(dst, t.root, q, eps)
	sortNeighbors(dst)
	return dst
}

// sortNeighbors orders by row index with an in-place heapsort:
// allocation-free (sort.Slice boxes its closure), O(m log m), and indices
// are distinct so no stability concern.
func sortNeighbors(a []Neighbor) {
	for start := len(a)/2 - 1; start >= 0; start-- {
		siftNeighbors(a, start)
	}
	for end := len(a) - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftNeighbors(a[:end], 0)
	}
}

func siftNeighbors(a []Neighbor, root int) {
	for {
		child := 2*root + 1
		if child >= len(a) {
			return
		}
		if child+1 < len(a) && a[child+1].Index > a[child].Index {
			child++
		}
		if a[root].Index >= a[child].Index {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

func (t *VPTree) rangeNode(dst []Neighbor, node int32, q []float64, eps float64) []Neighbor {
	nd := &t.nodes[node]
	dq := linalg.Dist(q, t.x[nd.point])
	if dq <= eps {
		dst = append(dst, Neighbor{Index: int(nd.point), Dist: dq})
	}
	tol := vpPruneTol(dq, nd.radius, eps)
	// Inner holds points with d(vp, ·) <= radius: reachable from q only if
	// dq - eps <= radius (+ slack). Outer symmetric with d >= radius.
	if nd.inner >= 0 && dq <= nd.radius+eps+tol {
		dst = t.rangeNode(dst, nd.inner, q, eps)
	}
	if nd.outer >= 0 && dq >= nd.radius-eps-tol {
		dst = t.rangeNode(dst, nd.outer, q, eps)
	}
	return dst
}

// RunWithEps computes the OPTICS ordering of x with the given MinPts and a
// finite generating distance ε, using a vantage-point tree so each
// neighborhood query prunes distant subtrees instead of scanning all n
// rows. An object's core distance is the distance to its MinPts-th nearest
// neighbor if at least MinPts objects (counting itself) lie within ε, and
// +Inf otherwise; only ε-neighbors are reachability-updated during
// expansion, as in the original OPTICS formulation.
//
// With eps = +Inf every neighborhood is the full dataset and the result is
// bit-identical to Run (the tree visits every node, inclusion uses the
// same computed distances, and neighbors arrive in the same index order).
func RunWithEps(x [][]float64, minPts int, eps float64) (*Result, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("optics: empty dataset")
	}
	if minPts < 1 {
		return nil, fmt.Errorf("optics: MinPts must be >= 1, got %d", minPts)
	}
	if math.IsNaN(eps) || eps < 0 {
		return nil, fmt.Errorf("optics: eps must be >= 0, got %v", eps)
	}
	t := NewVPTree(x)

	core := make([]float64, n)
	var nb []Neighbor
	dbuf := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		nb = t.RangeInto(nb, x[i], eps)
		if len(nb) < minPts {
			core[i] = math.Inf(1)
			continue
		}
		dbuf = dbuf[:0]
		for _, p := range nb {
			dbuf = append(dbuf, p.Dist)
		}
		core[i] = kthSmallest(dbuf, minPts-1)
	}

	processed := make([]bool, n)
	order := make([]int, 0, n)
	reach := make([]float64, 0, n)
	h := newHeap(n)
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		h.push(start, math.Inf(1))
		for h.len() > 0 {
			i, r := h.pop()
			if processed[i] {
				continue
			}
			processed[i] = true
			order = append(order, i)
			reach = append(reach, r)
			if math.IsInf(core[i], 1) {
				continue // not a core object: cannot expand
			}
			nb = t.RangeInto(nb, x[i], eps)
			for _, p := range nb {
				if processed[p.Index] {
					continue
				}
				nr := math.Max(core[i], p.Dist)
				h.pushOrDecrease(p.Index, nr)
			}
		}
	}
	return &Result{Order: order, Reach: reach, Core: core}, nil
}
