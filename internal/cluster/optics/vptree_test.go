package optics

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"cvcp/internal/linalg"
)

func randRows(r *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = r.NormFloat64()
		}
	}
	return x
}

// bruteRange is the reference the tree is tested against: scan every row,
// include exactly when the computed distance is <= eps, in index order.
func bruteRange(x [][]float64, q []float64, eps float64) []Neighbor {
	var out []Neighbor
	for j := range x {
		if d := linalg.Dist(q, x[j]); d <= eps {
			out = append(out, Neighbor{Index: j, Dist: d})
		}
	}
	return out
}

func sameNeighbors(t *testing.T, ctx string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: neighbor %d = %+v, want %+v", ctx, k, got[k], want[k])
		}
	}
}

// The tree must return exactly the brute-force result set — same indices,
// same exact distances, same canonical (index-sorted) order — for every
// query point and radius, including ε = 0, ε exactly on a pairwise
// distance, and ε at or beyond the dataset diameter.
func TestVPTreeRangeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for _, n := range []int{1, 2, 3, 7, 33, 120} {
		for _, d := range []int{2, 8} {
			x := randRows(r, n, d)
			tree := NewVPTree(x)

			// Dataset diameter and a sorted pool of exact pairwise
			// distances for boundary-ε probes.
			var dists []float64
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					dists = append(dists, linalg.Dist(x[i], x[j]))
				}
			}
			sort.Float64s(dists)
			diameter := 0.0
			if len(dists) > 0 {
				diameter = dists[len(dists)-1]
			}

			epsCases := []float64{0, diameter, diameter * 1.5, math.Inf(1)}
			if len(dists) > 0 {
				// ε exactly equal to an existing pairwise distance (the
				// boundary point must be included: d <= eps), and one ULP
				// below it (it must be excluded).
				mid := dists[len(dists)/2]
				epsCases = append(epsCases, mid, math.Nextafter(mid, 0), mid/3)
			}
			var buf []Neighbor
			for _, eps := range epsCases {
				for i := 0; i < n; i++ {
					buf = tree.RangeInto(buf, x[i], eps)
					sameNeighbors(t, "query from row", buf, bruteRange(x, x[i], eps))
				}
				// Off-dataset query points too.
				q := make([]float64, d)
				for k := range q {
					q[k] = r.NormFloat64() * 2
				}
				buf = tree.RangeInto(buf, q, eps)
				sameNeighbors(t, "off-dataset query", buf, bruteRange(x, q, eps))
			}
		}
	}
}

// Duplicate points must all be reported, and an ε = 0 query from a
// duplicated point must return every copy (distance exactly zero).
func TestVPTreeDuplicates(t *testing.T) {
	x := [][]float64{
		{1, 1}, {3, 0}, {1, 1}, {2, 2}, {1, 1}, {3, 0},
	}
	tree := NewVPTree(x)
	got := tree.RangeInto(nil, []float64{1, 1}, 0)
	sameNeighbors(t, "eps=0 on triplicate", got, []Neighbor{
		{Index: 0, Dist: 0}, {Index: 2, Dist: 0}, {Index: 4, Dist: 0},
	})
	got = tree.RangeInto(got, []float64{3, 0}, 0)
	sameNeighbors(t, "eps=0 on duplicate", got, []Neighbor{
		{Index: 1, Dist: 0}, {Index: 5, Dist: 0},
	})
	// All points identical: every query returns the whole set.
	same := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	tree = NewVPTree(same)
	got = tree.RangeInto(got, []float64{5, 5}, 0)
	sameNeighbors(t, "all-identical", got, bruteRange(same, []float64{5, 5}, 0))
}

func TestVPTreeEmpty(t *testing.T) {
	tree := NewVPTree(nil)
	if got := tree.RangeInto(nil, []float64{1}, math.Inf(1)); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
}

// A built tree must be safe for concurrent queries (run under -race):
// GOMAXPROCS goroutines hammer overlapping queries with private buffers
// and every result must still match brute force.
func TestVPTreeConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	x := randRows(r, 200, 4)
	tree := NewVPTree(x)
	want := make([][]Neighbor, len(x))
	for i := range x {
		want[i] = bruteRange(x, x[i], 1.5)
	}
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			var buf []Neighbor
			for iter := 0; iter < 300; iter++ {
				i := rr.Intn(len(x))
				buf = tree.RangeInto(buf, x[i], 1.5)
				if len(buf) != len(want[i]) {
					errc <- fmt.Errorf("query %d: got %d neighbors, want %d", i, len(buf), len(want[i]))
					return
				}
				for k := range buf {
					if buf[k] != want[i][k] {
						errc <- fmt.Errorf("query %d neighbor %d: got %+v want %+v", i, k, buf[k], want[i][k])
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// kthSmallest must select exactly the value sort would place at index k,
// on adversarial shapes: duplicates, all-equal, pre-sorted, reversed, and
// slices containing +Inf.
func TestKthSmallestMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	cases := [][]float64{
		{0},
		{2, 1},
		{1, 1, 1, 1, 1},
		{5, 4, 3, 2, 1, 0},
		{0, 1, 2, 3, 4, 5},
		{3, 1, 3, 1, 3, 1, 3},
		{math.Inf(1), 0, 2, math.Inf(1), 1},
	}
	for trial := 0; trial < 50; trial++ {
		v := make([]float64, 1+r.Intn(64))
		for i := range v {
			v[i] = float64(r.Intn(10)) // many ties
		}
		cases = append(cases, v)
	}
	for ci, c := range cases {
		want := append([]float64(nil), c...)
		sort.Float64s(want)
		for k := range c {
			scratch := append([]float64(nil), c...)
			if got := kthSmallest(scratch, k); got != want[k] {
				t.Fatalf("case %d: kthSmallest(k=%d) = %v, want %v (input %v)", ci, k, got, want[k], c)
			}
		}
	}
}

// With ε = +Inf the tree-backed finite-ε driver must reproduce Run
// bit-for-bit: same ordering, same reachability bytes, same core
// distances.
func TestRunWithEpsInfMatchesRun(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for _, n := range []int{1, 2, 9, 60} {
		x := randRows(r, n, 3)
		for _, minPts := range []int{1, 2, 4, n, n + 3} {
			want, err := Run(x, minPts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunWithEps(x, minPts, math.Inf(1))
			if err != nil {
				t.Fatal(err)
			}
			for p := range want.Order {
				if got.Order[p] != want.Order[p] {
					t.Fatalf("n=%d minPts=%d: Order[%d] = %d, want %d", n, minPts, p, got.Order[p], want.Order[p])
				}
				if math.Float64bits(got.Reach[p]) != math.Float64bits(want.Reach[p]) {
					t.Fatalf("n=%d minPts=%d: Reach[%d] = %v, want %v", n, minPts, p, got.Reach[p], want.Reach[p])
				}
			}
			for i := range want.Core {
				if math.Float64bits(got.Core[i]) != math.Float64bits(want.Core[i]) {
					t.Fatalf("n=%d minPts=%d: Core[%d] = %v, want %v", n, minPts, i, got.Core[i], want.Core[i])
				}
			}
		}
	}
}

// With a finite ε between the intra- and inter-cluster scales, objects in
// different clusters are never ε-reachable: each cluster starts its own
// walk with +Inf reachability, and isolated points are non-core.
func TestRunWithEpsSeparatesClusters(t *testing.T) {
	var x [][]float64
	r := rand.New(rand.NewSource(71))
	for c := 0.0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			x = append(x, []float64{c*100 + r.Float64(), c*100 + r.Float64()})
		}
	}
	res, err := RunWithEps(x, 3, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	infs := 0
	for p, i := range res.Order {
		if math.IsInf(res.Reach[p], 1) {
			infs++
		}
		if math.IsInf(res.Core[i], 1) {
			t.Fatalf("object %d non-core despite 10 cluster-mates within eps", i)
		}
	}
	if infs != 3 {
		t.Fatalf("expected exactly 3 walk starts (one per cluster), got %d", infs)
	}
}

func TestRunWithEpsErrors(t *testing.T) {
	x := [][]float64{{0}, {1}}
	if _, err := RunWithEps(nil, 2, 1); err == nil {
		t.Fatal("empty dataset: expected error")
	}
	if _, err := RunWithEps(x, 0, 1); err == nil {
		t.Fatal("MinPts=0: expected error")
	}
	if _, err := RunWithEps(x, 2, -1); err == nil {
		t.Fatal("negative eps: expected error")
	}
	if _, err := RunWithEps(x, 2, math.NaN()); err == nil {
		t.Fatal("NaN eps: expected error")
	}
}

// Steady-state range queries from a reused buffer must not allocate
// (beyond result growth on first use) — the property that keeps the
// finite-ε expansion loop allocation-free per neighbor scan.
func TestVPTreeRangeIntoReusesBuffer(t *testing.T) {
	x := randRows(rand.New(rand.NewSource(73)), 100, 3)
	tree := NewVPTree(x)
	buf := tree.RangeInto(nil, x[0], math.Inf(1)) // grow to max size once
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 100; i += 13 {
			buf = tree.RangeInto(buf, x[i], 2.0)
		}
	})
	if allocs != 0 {
		t.Fatalf("RangeInto allocates %v per run with a warm buffer, want 0", allocs)
	}
}
