// Package optics implements the OPTICS density-based cluster ordering
// (Ankerst, Breunig, Kriegel & Sander, SIGMOD 1999) with ε = ∞, which is the
// variant the FOSC-OPTICSDend method consumes: the full reachability plot
// parameterized only by MinPts.
package optics

import (
	"fmt"
	"math"

	"cvcp/internal/linalg"
)

// Result is an OPTICS ordering. Order[p] is the index of the p-th object in
// the ordering; Reach[p] is the reachability distance of that object at the
// moment it was reached (math.Inf(1) for the first object of each walk);
// Core[i] is the core distance of object i (indexed by object, not by
// position).
type Result struct {
	Order []int
	Reach []float64
	Core  []float64
}

// Run computes the OPTICS ordering of x with the given MinPts and ε = ∞.
// The core distance of object i is the distance to its MinPts-th nearest
// neighbor counting the object itself (the DBSCAN convention); it is +Inf
// when the dataset has fewer than MinPts objects.
func Run(x [][]float64, minPts int) (*Result, error) {
	rowInto := func(dst []float64, i int) {
		xi := x[i]
		for j := range x {
			dst[j] = linalg.Dist(xi, x[j])
		}
	}
	return run(len(x), minPts, func(i, j int) float64 { return linalg.Dist(x[i], x[j]) }, rowInto)
}

// RunWithMatrix is Run with distance evaluations replaced by lookups into a
// precomputed pairwise matrix. A MinPts sweep over the same data (the CVCP
// candidate grid) shares one matrix instead of recomputing every pairwise
// distance per MinPts value; dm entries come from linalg.Dist, so the
// ordering is bit-identical to Run's (for float32 matrices, bit-identical
// to running on the rounded entries).
func RunWithMatrix(dm *linalg.DistMatrix, minPts int) (*Result, error) {
	return run(dm.N(), minPts, dm.At, func(dst []float64, i int) { dm.RowInto(dst, i) })
}

// run is the dense (ε = ∞) driver. dist answers point lookups during
// expansion; rowInto materializes a full distance row into a reused buffer
// for the core-distance pass — for condensed matrices this is a linear
// two-stride walk (DistMatrix.RowInto) instead of n branchy At calls, and
// it never allocates.
func run(n, minPts int, dist func(i, j int) float64, rowInto func(dst []float64, i int)) (*Result, error) {
	if n == 0 {
		return nil, fmt.Errorf("optics: empty dataset")
	}
	if minPts < 1 {
		return nil, fmt.Errorf("optics: MinPts must be >= 1, got %d", minPts)
	}

	core := coreDistances(n, minPts, rowInto)
	processed := make([]bool, n)
	order := make([]int, 0, n)
	reach := make([]float64, 0, n)

	h := newHeap(n)
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Begin a new walk at the first unprocessed object.
		h.push(start, math.Inf(1))
		for h.len() > 0 {
			i, r := h.pop()
			if processed[i] {
				continue
			}
			processed[i] = true
			order = append(order, i)
			reach = append(reach, r)
			if math.IsInf(core[i], 1) {
				continue // not a core object: cannot expand
			}
			for j := 0; j < n; j++ {
				if processed[j] {
					continue
				}
				nr := math.Max(core[i], dist(i, j))
				h.pushOrDecrease(j, nr)
			}
		}
	}
	return &Result{Order: order, Reach: reach, Core: core}, nil
}

// coreDistances returns, for every object, the distance to its minPts-th
// nearest neighbor (the object itself counts as the first). The minPts-th
// smallest row entry is selected in O(n) with kthSmallest instead of a
// full O(n log n) sort — the order statistic is the same value either way.
func coreDistances(n, minPts int, rowInto func(dst []float64, i int)) []float64 {
	core := make([]float64, n)
	if minPts > n {
		for i := range core {
			core[i] = math.Inf(1)
		}
		return core
	}
	if minPts == 1 {
		return core // distance to itself
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		rowInto(d, i)
		core[i] = kthSmallest(d, minPts-1)
	}
	return core
}

// kthSmallest returns the k-th smallest value of a (0-indexed), reordering
// a in place. Deterministic three-way quickselect with a median-of-three
// pivot: the selected order statistic is exactly the value sort would put
// at index k.
func kthSmallest(a []float64, k int) float64 {
	lo, hi := 0, len(a)
	for hi-lo > 1 {
		pivot := median3(a[lo], a[lo+(hi-lo)/2], a[hi-1])
		// Three-way partition: a[lo:lt] < pivot, a[lt:i] == pivot,
		// a[gt:hi] > pivot.
		lt, gt := lo, hi
		for i := lo; i < gt; {
			switch {
			case a[i] < pivot:
				a[i], a[lt] = a[lt], a[i]
				lt++
				i++
			case a[i] > pivot:
				gt--
				a[i], a[gt] = a[gt], a[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return pivot
		}
	}
	return a[lo]
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// heap is an indexed min-heap over object indices keyed by reachability,
// with decrease-key support. Ties are broken by object index so the ordering
// is deterministic.
type heap struct {
	keys []float64 // key per object; NaN when absent
	pos  []int     // heap position per object; -1 when absent
	heap []int     // object indices
}

func newHeap(n int) *heap {
	h := &heap{keys: make([]float64, n), pos: make([]int, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *heap) len() int { return len(h.heap) }

func (h *heap) less(a, b int) bool {
	ia, ib := h.heap[a], h.heap[b]
	if h.keys[ia] != h.keys[ib] {
		return h.keys[ia] < h.keys[ib]
	}
	return ia < ib
}

func (h *heap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *heap) push(i int, key float64) {
	h.keys[i] = key
	h.pos[i] = len(h.heap)
	h.heap = append(h.heap, i)
	h.up(h.pos[i])
}

// pushOrDecrease inserts i with the given key, or lowers its key if i is
// already queued with a larger one.
func (h *heap) pushOrDecrease(i int, key float64) {
	if h.pos[i] < 0 {
		h.push(i, key)
		return
	}
	if key < h.keys[i] {
		h.keys[i] = key
		h.up(h.pos[i])
	}
}

func (h *heap) pop() (int, float64) {
	top := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top, h.keys[top]
}
