package optics

import (
	"math"
	"testing"
	"testing/quick"

	"cvcp/internal/stats"
)

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, 2); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := Run([][]float64{{1}}, 0); err == nil {
		t.Error("expected error for MinPts=0")
	}
}

func TestOrderingIsPermutation(t *testing.T) {
	x := [][]float64{{0}, {1}, {5}, {6}, {20}}
	res, err := Run(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(x) || len(res.Reach) != len(x) {
		t.Fatalf("lengths %d/%d", len(res.Order), len(res.Reach))
	}
	seen := map[int]bool{}
	for _, i := range res.Order {
		if i < 0 || i >= len(x) || seen[i] {
			t.Fatalf("invalid ordering %v", res.Order)
		}
		seen[i] = true
	}
	if !math.IsInf(res.Reach[0], 1) {
		t.Errorf("first reachability = %v, want +Inf", res.Reach[0])
	}
}

func TestCoreDistances(t *testing.T) {
	// Points on a line: 0, 1, 5.
	x := [][]float64{{0}, {1}, {5}}
	res, err := Run(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	// MinPts=2: core distance = distance to nearest other point.
	want := []float64{1, 1, 4}
	for i, w := range want {
		if math.Abs(res.Core[i]-w) > 1e-12 {
			t.Errorf("Core[%d] = %v, want %v", i, res.Core[i], w)
		}
	}
}

func TestCoreDistanceMinPtsOne(t *testing.T) {
	x := [][]float64{{0}, {3}}
	res, err := Run(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Core {
		if c != 0 {
			t.Errorf("Core[%d] = %v, want 0 (the point itself)", i, c)
		}
	}
}

func TestCoreDistanceMinPtsExceedsN(t *testing.T) {
	x := [][]float64{{0}, {1}}
	res, err := Run(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Core {
		if !math.IsInf(c, 1) {
			t.Errorf("Core[%d] = %v, want +Inf", i, c)
		}
	}
	// No core points: each object starts its own walk with infinite
	// reachability.
	for i, r := range res.Reach {
		if !math.IsInf(r, 1) {
			t.Errorf("Reach[%d] = %v, want +Inf", i, r)
		}
	}
}

// TestClusterGapVisible verifies the defining property of the reachability
// plot: the jump between two well-separated groups is a large bar.
func TestClusterGapVisible(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}, {100}, {100.5}, {101}}
	res, err := Run(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	big := 0
	for p := 1; p < len(res.Reach); p++ {
		if res.Reach[p] > 50 {
			big++
		}
	}
	if big != 1 {
		t.Errorf("expected exactly one large reachability bar, got %d (%v)", big, res.Reach)
	}
}

func TestWalkStartsAtFirstUnprocessed(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	res, err := Run(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order[0] != 0 {
		t.Errorf("ordering starts at %d, want 0", res.Order[0])
	}
}

func TestDeterministic(t *testing.T) {
	r := stats.NewRand(4)
	x := make([][]float64, 40)
	for i := range x {
		x[i] = []float64{r.NormFloat64(), r.NormFloat64()}
	}
	a, _ := Run(x, 4)
	b, _ := Run(x, 4)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] || a.Reach[i] != b.Reach[i] {
			t.Fatal("OPTICS not deterministic")
		}
	}
}

// Property: core distances are non-decreasing in MinPts.
func TestCoreMonotoneInMinPts(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		x := make([][]float64, 20)
		for i := range x {
			x[i] = []float64{r.NormFloat64() * 3, r.NormFloat64() * 3}
		}
		prev := make([]float64, len(x))
		for mp := 1; mp <= 6; mp++ {
			res, err := Run(x, mp)
			if err != nil {
				return false
			}
			for i := range x {
				if res.Core[i] < prev[i]-1e-12 {
					return false
				}
				prev[i] = res.Core[i]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every reachability value after the first is at least the core
// distance of some processed predecessor — in particular it is never below
// the smallest core distance in the data.
func TestReachabilityLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		x := make([][]float64, 25)
		for i := range x {
			x[i] = []float64{r.NormFloat64()}
		}
		res, err := Run(x, 3)
		if err != nil {
			return false
		}
		minCore := math.Inf(1)
		for _, c := range res.Core {
			if c < minCore {
				minCore = c
			}
		}
		for p := 1; p < len(res.Reach); p++ {
			if res.Reach[p] < minCore-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
