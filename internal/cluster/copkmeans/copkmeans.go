// Package copkmeans implements COP-KMeans (Wagstaff, Cardie, Rogers &
// Schrödl, "Constrained K-means Clustering with Background Knowledge", ICML
// 2001) — the classic hard-constraint k-means the paper cites as [38]. The
// paper's future work calls for studying CVCP with further semi-supervised
// clustering methods; COP-KMeans is the natural third method: unlike
// MPCK-Means it never violates a constraint — a point is assigned to the
// nearest centroid whose cluster breaks no must-link or cannot-link, and the
// run fails if no consistent assignment exists.
package copkmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cvcp/internal/cluster/kmeans"
	"cvcp/internal/constraints"
	"cvcp/internal/linalg"
)

// Config controls a COP-KMeans run.
type Config struct {
	K       int   // number of clusters (required)
	MaxIter int   // Lloyd iterations; 0 means 100
	Seed    int64 // seeding RNG
}

// Result is a finished COP-KMeans clustering.
type Result struct {
	Labels    []int
	Centers   [][]float64
	Objective float64
	Iters     int
}

// ErrInfeasible is wrapped by Run when no constraint-consistent assignment
// exists for some object (e.g. more mutually cannot-linked must-link
// components than clusters).
var ErrInfeasible = fmt.Errorf("copkmeans: constraints unsatisfiable")

// Run clusters x into cfg.K clusters without violating any constraint in
// cons. Must-link components are assigned atomically; a cannot-link blocks a
// component from joining a cluster that already contains an antagonist.
func Run(x [][]float64, cons *constraints.Set, cfg Config) (*Result, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("copkmeans: empty dataset")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("copkmeans: K must be >= 1, got %d", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("copkmeans: K=%d exceeds %d objects", cfg.K, n)
	}
	if cons == nil {
		cons = constraints.NewSet()
	}
	closed, err := constraints.Closure(cons)
	if err != nil {
		return nil, err
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 100
	}

	// Group objects into must-link components; unconstrained objects are
	// singletons. Each component moves as a unit.
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	var comps [][]int
	for _, members := range constraints.MustLinkComponents(closed) {
		for _, o := range members {
			compOf[o] = len(comps)
		}
		comps = append(comps, members)
	}
	for i := 0; i < n; i++ {
		if compOf[i] == -1 {
			compOf[i] = len(comps)
			comps = append(comps, []int{i})
		}
	}
	// Component-level cannot-link adjacency.
	clAdj := make([][]int, len(comps))
	seen := map[[2]int]bool{}
	for _, p := range closed.CannotLinks() {
		a, b := compOf[p.A], compOf[p.B]
		if a == b {
			return nil, fmt.Errorf("%w: cannot-link inside a must-link component", ErrInfeasible)
		}
		key := [2]int{min(a, b), max(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		clAdj[a] = append(clAdj[a], b)
		clAdj[b] = append(clAdj[b], a)
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	centers := kmeans.SeedPlusPlus(r, x, cfg.K)
	dim := len(x[0])
	labels := make([]int, n)
	compLabel := make([]int, len(comps))
	iters := 0
	for ; iters < maxIter; iters++ {
		for i := range compLabel {
			compLabel[i] = -1
		}
		// Assign components in order of decreasing size, then by index:
		// big must-link groups claim their clusters first, which makes the
		// greedy feasibility search far more robust (and deterministic).
		order := make([]int, len(comps))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if len(comps[order[a]]) != len(comps[order[b]]) {
				return len(comps[order[a]]) > len(comps[order[b]])
			}
			return order[a] < order[b]
		})
		for _, ci := range order {
			members := comps[ci]
			bestC, bestD := -1, math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if blocked(ci, c, clAdj, compLabel) {
					continue
				}
				var d float64
				for _, o := range members {
					d += linalg.SqDist(x[o], centers[c])
				}
				if d < bestD {
					bestC, bestD = c, d
				}
			}
			if bestC == -1 {
				return nil, fmt.Errorf("%w: no admissible cluster for a component of size %d with K=%d",
					ErrInfeasible, len(members), cfg.K)
			}
			compLabel[ci] = bestC
		}
		changed := false
		for i := 0; i < n; i++ {
			if l := compLabel[compOf[i]]; labels[i] != l {
				labels[i] = l
				changed = true
			}
		}
		// Mean update.
		counts := make([]int, cfg.K)
		for c := range centers {
			for j := 0; j < dim; j++ {
				centers[c][j] = 0
			}
		}
		for i, p := range x {
			counts[labels[i]]++
			linalg.AXPY(centers[labels[i]], 1, p)
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = linalg.Clone(x[r.Intn(n)])
				continue
			}
			linalg.Scale(centers[c], 1/float64(counts[c]), centers[c])
		}
		if !changed && iters > 0 {
			break
		}
	}
	var obj float64
	for i, p := range x {
		obj += linalg.SqDist(p, centers[labels[i]])
	}
	return &Result{Labels: labels, Centers: centers, Objective: obj, Iters: iters}, nil
}

func blocked(ci, cluster int, clAdj [][]int, compLabel []int) bool {
	for _, other := range clAdj[ci] {
		if compLabel[other] == cluster {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
