package copkmeans

import (
	"errors"
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/eval"
	"cvcp/internal/stats"
)

func blobs(seed int64, gap float64) ([][]float64, []int) {
	r := stats.NewRand(seed)
	var x [][]float64
	var y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 12; i++ {
			x = append(x, []float64{gap*float64(c) + r.NormFloat64(), r.NormFloat64()})
			y = append(y, c)
		}
	}
	return x, y
}

func TestErrors(t *testing.T) {
	x, _ := blobs(1, 10)
	if _, err := Run(nil, nil, Config{K: 2}); err == nil {
		t.Error("empty data")
	}
	if _, err := Run(x, nil, Config{K: 0}); err == nil {
		t.Error("K=0")
	}
	if _, err := Run(x, nil, Config{K: 99}); err == nil {
		t.Error("K>n")
	}
}

func TestUnconstrainedRecoversBlobs(t *testing.T) {
	x, y := blobs(2, 12)
	res, err := Run(x, nil, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if of := eval.OverallF(res.Labels, y, nil); of < 0.99 {
		t.Errorf("OverallF = %v", of)
	}
}

// Hard constraints are never violated, including implied ones from the
// transitive closure.
func TestConstraintsNeverViolated(t *testing.T) {
	x, y := blobs(3, 3) // overlapping
	idx := []int{0, 1, 2, 12, 13, 14}
	cons := constraints.FromLabels(idx, y)
	res, err := Run(x, cons, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := constraints.Closure(cons)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range closed.MustLinks() {
		if res.Labels[p.A] != res.Labels[p.B] {
			t.Errorf("must-link (%d,%d) violated", p.A, p.B)
		}
	}
	for _, p := range closed.CannotLinks() {
		if res.Labels[p.A] == res.Labels[p.B] {
			t.Errorf("cannot-link (%d,%d) violated", p.A, p.B)
		}
	}
}

// Three mutually cannot-linked objects cannot fit in two clusters.
func TestInfeasible(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	cons := constraints.NewSet()
	cons.Add(0, 1, false)
	cons.Add(1, 2, false)
	cons.Add(0, 2, false)
	_, err := Run(x, cons, Config{K: 2, Seed: 1})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
	// Conflicting ML/CL is infeasible too.
	bad := constraints.NewSet()
	bad.Add(0, 1, true)
	bad.Add(1, 2, true)
	bad.Add(0, 2, false)
	if _, err := Run(x, bad, Config{K: 2, Seed: 1}); err == nil {
		t.Error("expected error for inconsistent constraints")
	}
	// With K=3 the mutual cannot-links are satisfiable.
	res, err := Run(x, cons, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[1] || res.Labels[1] == res.Labels[2] || res.Labels[0] == res.Labels[2] {
		t.Errorf("cannot-links violated at K=3: %v", res.Labels)
	}
}

func TestMustLinkComponentsMoveTogether(t *testing.T) {
	x, _ := blobs(5, 8)
	cons := constraints.NewSet()
	// Chain the first point of each blob together: they must co-locate
	// even though they are far apart.
	cons.Add(0, 12, true)
	res, err := Run(x, cons, Config{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] != res.Labels[12] {
		t.Error("must-linked pair split")
	}
}

func TestDeterministic(t *testing.T) {
	x, y := blobs(6, 6)
	cons := constraints.FromLabels([]int{0, 3, 12, 15}, y)
	a, _ := Run(x, cons, Config{K: 2, Seed: 11})
	b, _ := Run(x, cons, Config{K: 2, Seed: 11})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("not deterministic")
		}
	}
}
