package mpckmeans

import (
	"testing"

	"cvcp/internal/constraints"
	"cvcp/internal/eval"
	"cvcp/internal/stats"
)

func twoBlobs(seed int64, gap float64) ([][]float64, []int) {
	r := stats.NewRand(seed)
	var x [][]float64
	var y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 15; i++ {
			x = append(x, []float64{gap*float64(c) + r.NormFloat64(), r.NormFloat64()})
			y = append(y, c)
		}
	}
	return x, y
}

func TestRunErrors(t *testing.T) {
	x, _ := twoBlobs(1, 10)
	if _, err := Run(nil, nil, Config{K: 2}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := Run(x, nil, Config{K: 0}); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := Run(x, nil, Config{K: 31}); err == nil {
		t.Error("expected error for K>n")
	}
	bad := constraints.NewSet()
	bad.Add(0, 1, true)
	bad.Add(0, 1, false)
	if _, err := Run(x, bad, Config{K: 2}); err == nil {
		t.Error("expected error for conflicting constraints")
	}
}

func TestUnconstrainedRecoversBlobs(t *testing.T) {
	x, y := twoBlobs(2, 12)
	res, err := Run(x, nil, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if of := eval.OverallF(res.Labels, y, nil); of < 0.99 {
		t.Errorf("unconstrained OverallF = %v", of)
	}
}

// With overlapping blobs, constraints must measurably improve the result.
func TestConstraintsImproveOverlap(t *testing.T) {
	x, y := twoBlobs(5, 2.0) // heavy overlap
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	cons := constraints.FromLabels(idx[:12], y)
	free, err := Run(x, nil, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	guided, err := Run(x, cons, Config{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ofFree := eval.OverallF(free.Labels, y, nil)
	ofGuided := eval.OverallF(guided.Labels, y, nil)
	if ofGuided+0.02 < ofFree {
		t.Errorf("constraints hurt: guided %v vs free %v", ofGuided, ofFree)
	}
	// The supervised objects themselves must respect the must-links.
	violated := 0
	for _, p := range cons.MustLinks() {
		if guided.Labels[p.A] != guided.Labels[p.B] {
			violated++
		}
	}
	if violated > len(cons.MustLinks())/4 {
		t.Errorf("%d/%d must-links violated", violated, len(cons.MustLinks()))
	}
}

func TestMetricsStayPositive(t *testing.T) {
	x, y := twoBlobs(6, 3)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	cons := constraints.FromLabels(idx, y)
	res, err := Run(x, cons, Config{K: 2, Seed: 1, LearnMetric: true})
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range res.Metrics {
		for j, v := range m {
			if v <= 0 {
				t.Errorf("metric[%d][%d] = %v", c, j, v)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	x, y := twoBlobs(7, 5)
	cons := constraints.FromLabels([]int{0, 5, 10, 20}, y)
	a, _ := Run(x, cons, Config{K: 2, Seed: 9, LearnMetric: true})
	b, _ := Run(x, cons, Config{K: 2, Seed: 9, LearnMetric: true})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed, different labels")
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	x, y := twoBlobs(8, 4)
	cons := constraints.FromLabels([]int{0, 1, 15, 16}, y)
	for k := 1; k <= 5; k++ {
		res, err := Run(x, cons, Config{K: k, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range res.Labels {
			if l < 0 || l >= k {
				t.Fatalf("K=%d: label[%d] = %d", k, i, l)
			}
		}
	}
}

// Seeding from must-link neighborhoods: with K neighborhoods given, every
// neighborhood should end up internally coherent on easy data.
func TestNeighborhoodSeeding(t *testing.T) {
	x, y := twoBlobs(9, 12)
	cons := constraints.NewSet()
	// Two must-link chains, one per class.
	chain0 := []int{}
	chain1 := []int{}
	for i := range x {
		if y[i] == 0 && len(chain0) < 4 {
			chain0 = append(chain0, i)
		}
		if y[i] == 1 && len(chain1) < 4 {
			chain1 = append(chain1, i)
		}
	}
	for i := 1; i < 4; i++ {
		cons.Add(chain0[0], chain0[i], true)
		cons.Add(chain1[0], chain1[i], true)
	}
	res, err := Run(x, cons, Config{K: 2, Seed: 3, LearnMetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[chain0[0]] == res.Labels[chain1[0]] {
		t.Error("the two must-link neighborhoods collapsed into one cluster")
	}
}

func TestBaseline(t *testing.T) {
	x, y := twoBlobs(10, 12)
	res, err := Baseline(x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if of := eval.OverallF(res.Labels, y, nil); of < 0.99 {
		t.Errorf("baseline OverallF = %v", of)
	}
	if _, err := Baseline(x, 0, 1); err == nil {
		t.Error("expected error for K=0")
	}
}
