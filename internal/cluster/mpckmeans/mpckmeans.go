// Package mpckmeans implements MPCK-Means — Metric Pairwise Constrained
// K-Means (Bilenko, Basu & Mooney, "Integrating constraints and metric
// learning in semi-supervised clustering", ICML 2004) — the partitional
// semi-supervised clustering method the paper evaluates CVCP with.
//
// The implementation follows the EM formulation of the original with
// per-cluster diagonal metrics:
//
//	J = Σ_i (‖x_i − μ_{l_i}‖²_{A_{l_i}} − log det A_{l_i})
//	  + Σ_{(i,j)∈ML, l_i≠l_j} w · ½(‖x_i−x_j‖²_{A_{l_i}} + ‖x_i−x_j‖²_{A_{l_j}})
//	  + Σ_{(i,j)∈CL, l_i=l_j} w · (D²_{A_{l_i}} − ‖x_i−x_j‖²_{A_{l_i}})
//
// where D_{A} is the metric-scaled data diameter (the maximal separation
// term of the original, computed from the per-dimension data range). Cluster
// initialization uses the neighborhoods induced by the transitive closure of
// the must-link constraints, exactly as in the original: neighborhood
// centroids seed up to K clusters via farthest-first traversal weighted by
// neighborhood size, topped up with k-means++ when fewer than K
// neighborhoods exist.
package mpckmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cvcp/internal/cluster/kmeans"
	"cvcp/internal/constraints"
	"cvcp/internal/linalg"
)

// Config controls an MPCK-Means run.
type Config struct {
	K           int     // number of clusters (required)
	MaxIter     int     // EM iterations; 0 means 50
	Seed        int64   // RNG seed for initialization and assignment order
	Weight      float64 // constraint violation weight w; 0 means 1
	LearnMetric bool    // enable per-cluster diagonal metric learning (the "M" in MPCK)
}

// Result is a finished MPCK-Means clustering.
type Result struct {
	Labels    []int
	Centers   [][]float64
	Metrics   [][]float64 // per-cluster diagonal metric weights
	Objective float64
	Iters     int
}

// Run clusters x into cfg.K clusters guided by the constraint set cons.
// cons may be nil or empty, in which case the algorithm degenerates to
// k-means with metric learning.
func Run(x [][]float64, cons *constraints.Set, cfg Config) (*Result, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("mpckmeans: empty dataset")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("mpckmeans: K must be >= 1, got %d", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("mpckmeans: K=%d exceeds %d objects", cfg.K, n)
	}
	dim := len(x[0])
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	w := cfg.Weight
	if w == 0 {
		w = 1
	}
	if cons == nil {
		cons = constraints.NewSet()
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	m := &model{
		x: x, n: n, dim: dim, k: cfg.K, w: w,
		learnMetric: cfg.LearnMetric,
		ml:          cons.MustLinks(),
		cl:          cons.CannotLinks(),
		mlAdj:       adjacency(cons.MustLinks(), n),
		clAdj:       adjacency(cons.CannotLinks(), n),
		ranges:      dataRanges(x),
	}
	m.centers = m.initCenters(r, cons)
	m.metrics = make([][]float64, cfg.K)
	for c := range m.metrics {
		m.metrics[c] = ones(dim)
	}
	m.labels = make([]int, n)
	for i := range m.labels {
		m.labels[i] = -1
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		changed := m.assign(r)
		m.updateCenters(r)
		if m.learnMetric {
			m.updateMetrics()
		}
		if !changed && iters > 0 {
			break
		}
	}
	return &Result{
		Labels:    m.labels,
		Centers:   m.centers,
		Metrics:   m.metrics,
		Objective: m.objective(),
		Iters:     iters,
	}, nil
}

type model struct {
	x           [][]float64
	n, dim, k   int
	w           float64
	learnMetric bool
	ml, cl      []constraints.Pair
	mlAdj       [][]int
	clAdj       [][]int
	ranges      []float64 // per-dimension data range, for the CL penalty diameter
	centers     [][]float64
	metrics     [][]float64
	labels      []int
}

func adjacency(pairs []constraints.Pair, n int) [][]int {
	adj := make([][]int, n)
	for _, p := range pairs {
		adj[p.A] = append(adj[p.A], p.B)
		adj[p.B] = append(adj[p.B], p.A)
	}
	return adj
}

func dataRanges(x [][]float64) []float64 {
	dim := len(x[0])
	lo := linalg.Clone(x[0])
	hi := linalg.Clone(x[0])
	for _, p := range x {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	rg := make([]float64, dim)
	for j := range rg {
		rg[j] = hi[j] - lo[j]
	}
	return rg
}

func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// initCenters seeds the clusters from must-link neighborhoods (transitive
// closure components), the initialization of Bilenko et al. §3.4.
func (m *model) initCenters(r *rand.Rand, cons *constraints.Set) [][]float64 {
	comps := constraints.MustLinkComponents(cons)
	// Neighborhoods: ML components with >= 1 member; singleton CL-only
	// objects still hint at cluster representatives.
	type hood struct {
		centroid []float64
		size     int
	}
	hoods := make([]hood, 0, len(comps))
	for _, members := range comps {
		hoods = append(hoods, hood{centroid: linalg.MeanInto(nil, m.x, members), size: len(members)})
	}
	sort.SliceStable(hoods, func(i, j int) bool { return hoods[i].size > hoods[j].size })

	centers := make([][]float64, 0, m.k)
	if len(hoods) >= m.k {
		// Weighted farthest-first over neighborhood centroids: start from
		// the largest, greedily add the centroid maximizing (size-weighted)
		// distance to the chosen set.
		chosen := []int{0}
		used := map[int]bool{0: true}
		for len(chosen) < m.k {
			best, bestScore := -1, -1.0
			for h := range hoods {
				if used[h] {
					continue
				}
				minD := math.Inf(1)
				for _, c := range chosen {
					if d := linalg.SqDist(hoods[h].centroid, hoods[c].centroid); d < minD {
						minD = d
					}
				}
				score := minD * float64(hoods[h].size)
				if score > bestScore {
					best, bestScore = h, score
				}
			}
			chosen = append(chosen, best)
			used[best] = true
		}
		for _, h := range chosen {
			centers = append(centers, linalg.Clone(hoods[h].centroid))
		}
		return centers
	}
	for _, h := range hoods {
		centers = append(centers, linalg.Clone(h.centroid))
	}
	// Top up with k-means++ seeding against the existing centers.
	d2 := make([]float64, m.n)
	for i := range d2 {
		d2[i] = math.Inf(1)
		for _, c := range centers {
			if d := linalg.SqDist(m.x[i], c); d < d2[i] {
				d2[i] = d
			}
		}
		if len(centers) == 0 {
			d2[i] = 1
		}
	}
	for len(centers) < m.k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 || math.IsInf(total, 1) {
			next = r.Intn(m.n)
		} else {
			target := r.Float64() * total
			cum := 0.0
			next = m.n - 1
			for i, d := range d2 {
				cum += d
				if cum >= target {
					next = i
					break
				}
			}
		}
		c := linalg.Clone(m.x[next])
		centers = append(centers, c)
		for i := range d2 {
			if d := linalg.SqDist(m.x[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// pointCost is the E-step cost of putting object i into cluster c given the
// current (partial) assignment of the other objects.
func (m *model) pointCost(i, c int) float64 {
	cost := linalg.WeightedSqDist(m.x[i], m.centers[c], m.metrics[c]) - m.logDet(c)
	for _, j := range m.mlAdj[i] {
		lj := m.labels[j]
		if lj >= 0 && lj != c {
			cost += m.w * 0.5 * (linalg.WeightedSqDist(m.x[i], m.x[j], m.metrics[c]) +
				linalg.WeightedSqDist(m.x[i], m.x[j], m.metrics[lj]))
		}
	}
	for _, j := range m.clAdj[i] {
		if m.labels[j] == c {
			pen := m.diameter(c) - linalg.WeightedSqDist(m.x[i], m.x[j], m.metrics[c])
			if pen < 0 {
				pen = 0
			}
			cost += m.w * pen
		}
	}
	return cost
}

func (m *model) logDet(c int) float64 {
	var s float64
	for _, a := range m.metrics[c] {
		s += math.Log(a)
	}
	return s
}

// diameter is the squared metric-scaled data diameter used as the maximal
// separation term of the cannot-link penalty.
func (m *model) diameter(c int) float64 {
	var s float64
	for j, rg := range m.ranges {
		s += m.metrics[c][j] * rg * rg
	}
	return s
}

// assign performs the greedy sequential E-step in random order and reports
// whether any label changed.
func (m *model) assign(r *rand.Rand) bool {
	changed := false
	for _, i := range r.Perm(m.n) {
		best, bestCost := 0, math.Inf(1)
		for c := 0; c < m.k; c++ {
			if cost := m.pointCost(i, c); cost < bestCost {
				best, bestCost = c, cost
			}
		}
		if m.labels[i] != best {
			m.labels[i] = best
			changed = true
		}
	}
	return changed
}

func (m *model) updateCenters(r *rand.Rand) {
	counts := make([]int, m.k)
	for c := range m.centers {
		for j := range m.centers[c] {
			m.centers[c][j] = 0
		}
	}
	for i, p := range m.x {
		counts[m.labels[i]]++
		linalg.AXPY(m.centers[m.labels[i]], 1, p)
	}
	for c := range m.centers {
		if counts[c] == 0 {
			// Re-seed an empty cluster with a random point; rare but
			// possible under heavy cannot-link pressure.
			m.centers[c] = linalg.Clone(m.x[r.Intn(m.n)])
			continue
		}
		linalg.Scale(m.centers[c], 1/float64(counts[c]), m.centers[c])
	}
}

// updateMetrics recomputes the per-cluster diagonal metrics in closed form
// (Bilenko et al. eq. 7, diagonal case), including the constraint-violation
// terms, clamped to keep the metric positive definite.
func (m *model) updateMetrics() {
	const (
		minWeight = 1e-6
		maxWeight = 1e6
	)
	for c := 0; c < m.k; c++ {
		nC := 0
		denom := make([]float64, m.dim)
		for i, p := range m.x {
			if m.labels[i] != c {
				continue
			}
			nC++
			for j := range denom {
				d := p[j] - m.centers[c][j]
				denom[j] += d * d
			}
		}
		if nC == 0 {
			continue
		}
		for _, pr := range m.ml {
			li, lj := m.labels[pr.A], m.labels[pr.B]
			if li == lj || (li != c && lj != c) {
				continue
			}
			for j := range denom {
				d := m.x[pr.A][j] - m.x[pr.B][j]
				denom[j] += m.w * 0.5 * d * d
			}
		}
		for _, pr := range m.cl {
			if m.labels[pr.A] != c || m.labels[pr.B] != c {
				continue
			}
			for j := range denom {
				d := m.x[pr.A][j] - m.x[pr.B][j]
				contrib := m.ranges[j]*m.ranges[j] - d*d
				if contrib > 0 {
					denom[j] += m.w * contrib
				}
			}
		}
		for j := range denom {
			var a float64
			if denom[j] <= 0 {
				a = maxWeight
			} else {
				a = float64(nC) / denom[j]
			}
			if a < minWeight {
				a = minWeight
			}
			if a > maxWeight {
				a = maxWeight
			}
			m.metrics[c][j] = a
		}
	}
}

func (m *model) objective() float64 {
	var J float64
	for i, p := range m.x {
		c := m.labels[i]
		J += linalg.WeightedSqDist(p, m.centers[c], m.metrics[c]) - m.logDet(c)
	}
	for _, pr := range m.ml {
		li, lj := m.labels[pr.A], m.labels[pr.B]
		if li != lj {
			J += m.w * 0.5 * (linalg.WeightedSqDist(m.x[pr.A], m.x[pr.B], m.metrics[li]) +
				linalg.WeightedSqDist(m.x[pr.A], m.x[pr.B], m.metrics[lj]))
		}
	}
	for _, pr := range m.cl {
		if c := m.labels[pr.A]; c == m.labels[pr.B] {
			pen := m.diameter(c) - linalg.WeightedSqDist(m.x[pr.A], m.x[pr.B], m.metrics[c])
			if pen > 0 {
				J += m.w * pen
			}
		}
	}
	return J
}

// Baseline exposes plain k-means through the same result type, for tests and
// for the Silhouette model-selection baseline which clusters without
// supervision.
func Baseline(x [][]float64, k int, seed int64) (*Result, error) {
	res, err := kmeans.Run(x, kmeans.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Centers: res.Centers, Objective: res.Objective, Iters: res.Iters}, nil
}
