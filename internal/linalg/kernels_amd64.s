// SSE2 quad kernels. Layout contract (see Pack4): panel[4*i+k] = b_k[i],
// len(panel) >= 4*len(a). Each XMM register holds one element position of
// two lanes (pairs), so lane accumulation order matches the scalar loops
// exactly — results are bit-identical to Dot/SqDist/Dist per lane.
//
// Register plan (shared by all three kernels):
//   DI  = dst, SI = a base, CX = len(a), DX = panel base
//   AX  = element index i, BX = len(a) rounded down to even (2x unroll)
//   X4  = accumulators for lanes 0,1    X5 = accumulators for lanes 2,3
//   X0/X6 = broadcast a[i], a[i+1]      X1,X2,X7,X8 = panel loads
//   X3  = scratch

#include "textflag.h"

// func sqDist4(dst *[4]float64, a, panel []float64)
TEXT ·sqDist4(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a_base+8(FP), SI
	MOVQ a_len+16(FP), CX
	MOVQ panel_base+32(FP), DX
	XORPS X4, X4
	XORPS X5, X5
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-2, BX

sq_loop2:
	CMPQ AX, BX
	JGE  sq_tail
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVSD 8(SI)(AX*8), X6
	UNPCKLPD X6, X6
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MOVUPD 32(DX)(R8*1), X7
	MOVUPD 48(DX)(R8*1), X8
	MOVAPD X0, X3
	SUBPD  X1, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X0, X3
	SUBPD  X2, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	MOVAPD X6, X3
	SUBPD  X7, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X6, X3
	SUBPD  X8, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	ADDQ $2, AX
	JMP  sq_loop2

sq_tail:
	CMPQ AX, CX
	JGE  sq_done
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MOVAPD X0, X3
	SUBPD  X1, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X0, X3
	SUBPD  X2, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	INCQ AX
	JMP  sq_tail

sq_done:
	MOVUPD X4, (DI)
	MOVUPD X5, 16(DI)
	RET

// func dist4(dst *[4]float64, a, panel []float64)
// Identical accumulation to sqDist4, followed by lane-wise square roots
// (SQRTPD is correctly rounded, matching math.Sqrt bit for bit).
TEXT ·dist4(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a_base+8(FP), SI
	MOVQ a_len+16(FP), CX
	MOVQ panel_base+32(FP), DX
	XORPS X4, X4
	XORPS X5, X5
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-2, BX

d_loop2:
	CMPQ AX, BX
	JGE  d_tail
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVSD 8(SI)(AX*8), X6
	UNPCKLPD X6, X6
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MOVUPD 32(DX)(R8*1), X7
	MOVUPD 48(DX)(R8*1), X8
	MOVAPD X0, X3
	SUBPD  X1, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X0, X3
	SUBPD  X2, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	MOVAPD X6, X3
	SUBPD  X7, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X6, X3
	SUBPD  X8, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	ADDQ $2, AX
	JMP  d_loop2

d_tail:
	CMPQ AX, CX
	JGE  d_done
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MOVAPD X0, X3
	SUBPD  X1, X3
	MULPD  X3, X3
	ADDPD  X3, X4
	MOVAPD X0, X3
	SUBPD  X2, X3
	MULPD  X3, X3
	ADDPD  X3, X5
	INCQ AX
	JMP  d_tail

d_done:
	SQRTPD X4, X4
	SQRTPD X5, X5
	MOVUPD X4, (DI)
	MOVUPD X5, 16(DI)
	RET

// func dot4(dst *[4]float64, a, panel []float64)
TEXT ·dot4(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a_base+8(FP), SI
	MOVQ a_len+16(FP), CX
	MOVQ panel_base+32(FP), DX
	XORPS X4, X4
	XORPS X5, X5
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-2, BX

dot_loop2:
	CMPQ AX, BX
	JGE  dot_tail
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVSD 8(SI)(AX*8), X6
	UNPCKLPD X6, X6
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MOVUPD 32(DX)(R8*1), X7
	MOVUPD 48(DX)(R8*1), X8
	MULPD  X0, X1
	ADDPD  X1, X4
	MULPD  X0, X2
	ADDPD  X2, X5
	MULPD  X6, X7
	ADDPD  X7, X4
	MULPD  X6, X8
	ADDPD  X8, X5
	ADDQ $2, AX
	JMP  dot_loop2

dot_tail:
	CMPQ AX, CX
	JGE  dot_done
	MOVSD (SI)(AX*8), X0
	UNPCKLPD X0, X0
	MOVQ AX, R8
	SHLQ $5, R8
	MOVUPD (DX)(R8*1), X1
	MOVUPD 16(DX)(R8*1), X2
	MULPD  X0, X1
	ADDPD  X1, X4
	MULPD  X0, X2
	ADDPD  X2, X5
	INCQ AX
	JMP  dot_tail

dot_done:
	MOVUPD X4, (DI)
	MOVUPD X5, 16(DI)
	RET
