//go:build !amd64

package linalg

func dot4(dst *[4]float64, a, panel []float64)    { dot4Generic(dst, a, panel) }
func sqDist4(dst *[4]float64, a, panel []float64) { sqDist4Generic(dst, a, panel) }
func dist4(dst *[4]float64, a, panel []float64)   { dist4Generic(dst, a, panel) }
