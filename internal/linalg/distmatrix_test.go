package linalg

import (
	"math/rand"
	"testing"
)

func randomRows(r *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = r.NormFloat64()
		}
	}
	return x
}

// The condensed layout must return bit-identical entries to the square
// layout for every (i, j), including the diagonal and mirrored lookups.
func TestDistMatrixCondensedEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		x := randomRows(r, n, 4)
		sq := NewDistMatrix(x)
		tr := NewDistMatrixCondensed(x)
		if sq.N() != n || tr.N() != n {
			t.Fatalf("n=%d: N() = %d (square), %d (condensed)", n, sq.N(), tr.N())
		}
		if sq.Condensed() || !tr.Condensed() {
			t.Fatalf("n=%d: Condensed() flags wrong", n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if a, b := sq.At(i, j), tr.At(i, j); a != b {
					t.Fatalf("n=%d: At(%d,%d) = %v (square) vs %v (condensed)", n, i, j, a, b)
				}
			}
		}
	}
}

func TestDistMatrixCondensedRow(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	x := randomRows(r, 9, 3)
	sq := NewDistMatrix(x)
	tr := NewDistMatrixCondensed(x)
	for i := 0; i < 9; i++ {
		a, b := sq.Row(i), tr.Row(i)
		if len(a) != len(b) {
			t.Fatalf("Row(%d): length %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("Row(%d)[%d] = %v (square) vs %v (condensed)", i, j, a[j], b[j])
			}
		}
	}
}

func TestDistMatrixCondensedHalvesStorage(t *testing.T) {
	x := randomRows(rand.New(rand.NewSource(3)), 40, 2)
	sq := NewDistMatrix(x)
	tr := NewDistMatrixCondensed(x)
	if got, want := len(tr.d), 40*39/2; got != want {
		t.Fatalf("condensed backing slice has %d entries, want %d", got, want)
	}
	if len(sq.d) != 40*40 {
		t.Fatalf("square backing slice has %d entries, want %d", len(sq.d), 40*40)
	}
}

func TestDistMatrixProperties(t *testing.T) {
	x := randomRows(rand.New(rand.NewSource(5)), 12, 6)
	m := NewDistMatrixCondensed(x)
	for i := 0; i < 12; i++ {
		if m.At(i, i) != 0 {
			t.Fatalf("At(%d,%d) = %v, want 0", i, i, m.At(i, i))
		}
		for j := i + 1; j < 12; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetric: At(%d,%d)=%v At(%d,%d)=%v", i, j, m.At(i, j), j, i, m.At(j, i))
			}
			if m.At(i, j) != Dist(x[i], x[j]) {
				t.Fatalf("At(%d,%d) disagrees with Dist", i, j)
			}
		}
	}
}
