package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// The blocked builders must be bit-identical to the naive scalar reference
// builder at every block size: blocking changes the pair visit order and
// which kernel (quad vs scalar tail) computes an entry, but never the
// value.
func TestBlockedBitIdenticalToNaiveAllBlockSizes(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 9, 16, 33, 70} {
		for _, d := range []int{1, 3, 64} {
			x := randomRows(r, n, d)
			ref := NewDistMatrixNaive(x)
			for _, block := range []int{1, 2, 3, 4, 5, 7, 8, 16, 64, 1024} {
				sq := newDistMatrixBlocked(x, block)
				tr := newDistMatrixCondensedBlocked(x, block)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						want := ref.At(i, j)
						if got := sq.At(i, j); got != want {
							t.Fatalf("n=%d d=%d block=%d: square At(%d,%d) = %v, naive %v",
								n, d, block, i, j, got, want)
						}
						if got := tr.At(i, j); got != want {
							t.Fatalf("n=%d d=%d block=%d: condensed At(%d,%d) = %v, naive %v",
								n, d, block, i, j, got, want)
						}
					}
				}
			}
		}
	}
}

// Default-block public builders must match the naive reference too (the
// property the selection golden tests build on).
func TestDefaultBuildersBitIdenticalToNaive(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	x := randomRows(r, 301, 17) // > 2 blocks, odd sizes, partial tail group
	ref := NewDistMatrixNaive(x)
	sq := NewDistMatrix(x)
	tr := NewDistMatrixCondensed(x)
	for i := 0; i < 301; i++ {
		for j := 0; j < 301; j++ {
			if sq.At(i, j) != ref.At(i, j) || tr.At(i, j) != ref.At(i, j) {
				t.Fatalf("At(%d,%d) differs from naive reference", i, j)
			}
		}
	}
}

func TestRowIntoMatchesRow(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	x := randomRows(r, 23, 5)
	for _, m := range []*DistMatrix{NewDistMatrix(x), NewDistMatrixCondensed(x), NewDistMatrixCondensed32(x)} {
		buf := make([]float64, 23)
		for i := 0; i < 23; i++ {
			got := m.RowInto(buf, i)
			if &got[0] != &buf[0] {
				t.Fatalf("RowInto did not reuse dst")
			}
			want := m.Row(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("condensed=%v f32=%v: RowInto(%d)[%d] = %v, Row %v",
						m.Condensed(), m.Float32(), i, j, got[j], want[j])
				}
				if got[j] != m.At(i, j) {
					t.Fatalf("RowInto(%d)[%d] disagrees with At", i, j)
				}
			}
		}
	}
}

// RowInto is the OPTICS hot-loop variant: it must not allocate on any
// layout (Row on condensed layouts allocates a fresh slice per call —
// the regression this guards against reintroducing).
func TestRowIntoDoesNotAllocate(t *testing.T) {
	x := randomRows(rand.New(rand.NewSource(37)), 64, 8)
	for _, m := range []*DistMatrix{NewDistMatrix(x), NewDistMatrixCondensed(x), NewDistMatrixCondensed32(x)} {
		buf := make([]float64, 64)
		allocs := testing.AllocsPerRun(100, func() {
			for i := 0; i < 64; i += 7 {
				m.RowInto(buf, i)
			}
		})
		if allocs != 0 {
			t.Fatalf("condensed=%v f32=%v: RowInto allocates %v per run, want 0",
				m.Condensed(), m.Float32(), allocs)
		}
	}
}

// The float32 layout stores each float64 distance rounded once to float32:
// At must return exactly float64(float32(d64)) — equivalently, a relative
// error of at most 2⁻²⁴ versus the float64 layout (documented in
// docs/performance.md).
func TestCondensed32Tolerance(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	x := randomRows(r, 57, 11)
	m64 := NewDistMatrixCondensed(x)
	m32 := NewDistMatrixCondensed32(x)
	if !m32.Float32() || !m32.Condensed() {
		t.Fatalf("Float32/Condensed flags wrong: %v %v", m32.Float32(), m32.Condensed())
	}
	if m64.Float32() {
		t.Fatal("float64 layout reports Float32")
	}
	const relBound = 1.0 / (1 << 24) // one float32 ULP
	buf32 := make([]float64, 57)
	for i := 0; i < 57; i++ {
		m32.RowInto(buf32, i)
		for j := 0; j < 57; j++ {
			d64 := m64.At(i, j)
			d32 := m32.At(i, j)
			if d32 != float64(float32(d64)) {
				t.Fatalf("At(%d,%d) = %v, want exactly float64(float32(%v))", i, j, d32, d64)
			}
			if rel := math.Abs(d32-d64) / math.Max(d64, 1e-300); d64 != 0 && rel > relBound {
				t.Fatalf("At(%d,%d): relative error %v exceeds 2^-24", i, j, rel)
			}
			if buf32[j] != d32 {
				t.Fatalf("RowInto(%d)[%d] = %v, At %v", i, j, buf32[j], d32)
			}
		}
	}
}

func TestCondensed32HalvesStorage(t *testing.T) {
	x := randomRows(rand.New(rand.NewSource(47)), 40, 2)
	m := NewDistMatrixCondensed32(x)
	if got, want := len(m.d32), 40*39/2; got != want {
		t.Fatalf("float32 backing slice has %d entries, want %d", got, want)
	}
	if m.d != nil {
		t.Fatal("float32 layout also retains a float64 backing slice")
	}
}

// BenchmarkDistMatrixBuild compares the naive scalar builder against the
// blocked quad-kernel builder on 64-dimensional rows (the acceptance
// benchmark also run by cmd/bench).
func BenchmarkDistMatrixBuild(b *testing.B) {
	x := randomRows(rand.New(rand.NewSource(3)), 256, 64)
	bytes := int64(256 * 255 / 2 * 64 * 8)
	b.Run("naive", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			NewDistMatrixNaive(x)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			NewDistMatrix(x)
		}
	})
	b.Run("blocked-condensed", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			NewDistMatrixCondensed(x)
		}
	})
	b.Run("blocked-condensed32", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			NewDistMatrixCondensed32(x)
		}
	})
}
