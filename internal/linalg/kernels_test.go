package linalg

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// quadWant computes the scalar-reference results for one panel call.
func quadWant(a, b0, b1, b2, b3 []float64, f func(x, y []float64) float64) [4]float64 {
	return [4]float64{f(a, b0), f(a, b1), f(a, b2), f(a, b3)}
}

// The kernels' contract is stronger than the "within 1 ULP" floor the
// benchmark harness documents: because every lane accumulates in the exact
// element order of the scalar loop, results must be BIT-identical to
// Dot/SqDist/Dist. This is what lets the blocked DistMatrix builders (and
// through them, whole selections) stay bit-identical to the naive path.
func TestKernelsBitIdenticalToScalar(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	// Random lengths with every tail residue (0–3 mod 4, and 1–3 absolute)
	// plus zero-length rows.
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31, 64, 65, 66, 67, 100, 127}
	for _, d := range lengths {
		for trial := 0; trial < 20; trial++ {
			mk := func() []float64 {
				v := make([]float64, d)
				for i := range v {
					v[i] = r.NormFloat64() * math.Pow(10, float64(r.Intn(7)-3))
				}
				return v
			}
			a, b0, b1, b2, b3 := mk(), mk(), mk(), mk(), mk()
			panel := make([]float64, 4*d)
			Pack4(panel, b0, b1, b2, b3)

			var got [4]float64
			SqDist4(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, SqDist); got != want {
				t.Fatalf("SqDist4 d=%d: got %v want %v", d, got, want)
			}
			sqDist4Generic(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, SqDist); got != want {
				t.Fatalf("sqDist4Generic d=%d: got %v want %v", d, got, want)
			}
			Dist4(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, Dist); got != want {
				t.Fatalf("Dist4 d=%d: got %v want %v", d, got, want)
			}
			dist4Generic(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, Dist); got != want {
				t.Fatalf("dist4Generic d=%d: got %v want %v", d, got, want)
			}
			Dot4(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, Dot); got != want {
				t.Fatalf("Dot4 d=%d: got %v want %v", d, got, want)
			}
			dot4Generic(&got, a, panel)
			if want := quadWant(a, b0, b1, b2, b3, Dot); got != want {
				t.Fatalf("dot4Generic d=%d: got %v want %v", d, got, want)
			}
		}
	}
}

func TestPack4(t *testing.T) {
	b0 := []float64{1, 5}
	b1 := []float64{2, 6}
	b2 := []float64{3, 7}
	b3 := []float64{4, 8}
	panel := make([]float64, 8)
	Pack4(panel, b0, b1, b2, b3)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if panel[i] != want[i] {
			t.Fatalf("panel[%d] = %v, want %v", i, panel[i], want[i])
		}
	}
}

func TestKernelPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	var dst [4]float64
	a := []float64{1, 2}
	short := []float64{1, 2, 3} // < 4*len(a)
	expectPanic("SqDist4", func() { SqDist4(&dst, a, short) })
	expectPanic("Dist4", func() { Dist4(&dst, a, short) })
	expectPanic("Dot4", func() { Dot4(&dst, a, short) })
	expectPanic("Pack4 short panel", func() { Pack4(short, a, a, a, a) })
	expectPanic("Pack4 mismatched rows", func() {
		Pack4(make([]float64, 8), a, a, a, []float64{1})
	})
}

// fuzzRows decodes a fuzz payload into one query row and four target rows
// of equal length, sanitizing non-finite values (the kernels are only
// specified over finite inputs; NaN payload propagation is not part of the
// contract).
func fuzzRows(data []byte) (a, b0, b1, b2, b3 []float64) {
	const maxD = 67 // covers several whole blocks plus every tail residue
	d := 1 + len(data)/(5*8)
	if d > maxD {
		d = maxD
	}
	rows := make([][]float64, 5)
	for r := range rows {
		rows[r] = make([]float64, d)
		for i := 0; i < d; i++ {
			off := (r*d + i) * 8
			var bits uint64
			if off+8 <= len(data) {
				bits = binary.LittleEndian.Uint64(data[off : off+8])
			} else {
				bits = uint64(off) * 0x9e3779b97f4a7c15
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = float64(bits%2048) - 1024
			}
			// Clamp magnitudes so squared terms stay finite: the scalar
			// reference and the kernels must then agree exactly.
			if math.Abs(v) > 1e150 {
				v = math.Mod(v, 1e150)
			}
			rows[r][i] = v
		}
	}
	return rows[0], rows[1], rows[2], rows[3], rows[4]
}

// FuzzKernelsMatchScalar go-fuzzes the quad kernels against the scalar
// reference on random lengths (including tails of 1–3). The assertion is
// exact bit equality — stricter than the documented 1-ULP requirement —
// because lane accumulation preserves the scalar element order.
func FuzzKernelsMatchScalar(f *testing.F) {
	r := rand.New(rand.NewSource(91))
	for _, n := range []int{1, 2, 3, 5, 40, 330} {
		seed := make([]byte, n*8)
		for i := range seed {
			seed[i] = byte(r.Intn(256))
		}
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b0, b1, b2, b3 := fuzzRows(data)
		panel := make([]float64, 4*len(a))
		Pack4(panel, b0, b1, b2, b3)
		var got [4]float64
		SqDist4(&got, a, panel)
		if want := quadWant(a, b0, b1, b2, b3, SqDist); got != want {
			t.Fatalf("SqDist4 d=%d: got %v want %v", len(a), got, want)
		}
		Dist4(&got, a, panel)
		if want := quadWant(a, b0, b1, b2, b3, Dist); got != want {
			t.Fatalf("Dist4 d=%d: got %v want %v", len(a), got, want)
		}
		Dot4(&got, a, panel)
		if want := quadWant(a, b0, b1, b2, b3, Dot); got != want {
			t.Fatalf("Dot4 d=%d: got %v want %v", len(a), got, want)
		}
	})
}

func benchRows(n, d int) [][]float64 {
	r := rand.New(rand.NewSource(1))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64()
		}
	}
	return rows
}

var benchSink float64

// BenchmarkSqDistKernels compares the scalar reference against the quad
// kernel on 64-dimensional rows (the ALOI dimensionality): per-op work is
// four pairwise squared distances either way.
func BenchmarkSqDistKernels(b *testing.B) {
	rows := benchRows(5, 64)
	panel := make([]float64, 4*64)
	Pack4(panel, rows[1], rows[2], rows[3], rows[4])
	b.Run("scalar4x", func(b *testing.B) {
		b.SetBytes(4 * 64 * 8)
		var s float64
		for i := 0; i < b.N; i++ {
			s += SqDist(rows[0], rows[1])
			s += SqDist(rows[0], rows[2])
			s += SqDist(rows[0], rows[3])
			s += SqDist(rows[0], rows[4])
		}
		benchSink = s
	})
	b.Run("quad", func(b *testing.B) {
		b.SetBytes(4 * 64 * 8)
		var dst [4]float64
		var s float64
		for i := 0; i < b.N; i++ {
			SqDist4(&dst, rows[0], panel)
			s += dst[0] + dst[1] + dst[2] + dst[3]
		}
		benchSink = s
	})
}
