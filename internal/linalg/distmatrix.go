package linalg

// DistMatrix is a precomputed symmetric pairwise Euclidean distance matrix.
// Computing it costs the same O(n²·d) work as one pass of OPTICS
// core-distance computation; every subsequent consumer (each MinPts value of
// an OPTICS sweep, every fold of a cross-validation grid, silhouette-style
// evaluation) replaces its distance evaluations with O(1) lookups. Entries
// are produced by Dist, so consumers observe bit-identical values to
// computing on demand.
//
// Two storage layouts are supported:
//
//   - square: one flat row-major n×n slice. At is a single multiply-add
//     index and Row returns a shared contiguous slice.
//   - condensed: only the strict upper triangle, n·(n-1)/2 entries — half
//     the memory of the square layout. The diagonal is implicit (zero) and
//     At mirrors i>j lookups. This is the layout the per-run selection
//     cache retains, since a resident matrix per cached dataset dominates
//     the cache's footprint.
//
// Both layouts return identical values for every (i, j).
type DistMatrix struct {
	n         int
	d         []float64
	condensed bool
}

// NewDistMatrix computes the pairwise distance matrix of the rows of x in
// the square layout.
func NewDistMatrix(x [][]float64) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		row := m.d[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			v := Dist(x[i], x[j])
			row[j] = v
			m.d[j*n+i] = v
		}
	}
	return m
}

// NewDistMatrixCondensed computes the pairwise distance matrix of the rows
// of x in the condensed (strict upper triangular) layout, storing
// n·(n-1)/2 entries instead of n².
func NewDistMatrixCondensed(x [][]float64) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*(n-1)/2), condensed: true}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.d[k] = Dist(x[i], x[j])
			k++
		}
	}
	return m
}

// N returns the number of objects.
func (m *DistMatrix) N() int { return m.n }

// Condensed reports whether the matrix uses the triangular layout.
func (m *DistMatrix) Condensed() bool { return m.condensed }

// At returns the distance between objects i and j.
func (m *DistMatrix) At(i, j int) float64 {
	if !m.condensed {
		return m.d[i*m.n+j]
	}
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	// Rows 0..i-1 of the strict upper triangle hold (n-1)+(n-2)+...+(n-i)
	// entries; row i starts at that offset and holds columns i+1..n-1.
	return m.d[i*(2*m.n-i-1)/2+(j-i-1)]
}

// Row returns the distances from object i to every object, as a slice of
// length N. For the square layout it is a shared (read-only) view of the
// backing array; for the condensed layout it is materialized into a fresh
// slice.
func (m *DistMatrix) Row(i int) []float64 {
	if !m.condensed {
		return m.d[i*m.n : (i+1)*m.n]
	}
	out := make([]float64, m.n)
	for j := 0; j < m.n; j++ {
		out[j] = m.At(i, j)
	}
	return out
}
