package linalg

// DistMatrix is a precomputed symmetric pairwise Euclidean distance matrix,
// stored as one flat row-major slice. Computing it costs the same O(n²·d)
// work as one pass of OPTICS core-distance computation; every subsequent
// consumer (each MinPts value of an OPTICS sweep, every fold of a
// cross-validation grid, silhouette-style evaluation) replaces its distance
// evaluations with O(1) lookups. Entries are produced by Dist, so consumers
// observe bit-identical values to computing on demand.
type DistMatrix struct {
	n int
	d []float64
}

// NewDistMatrix computes the pairwise distance matrix of the rows of x.
func NewDistMatrix(x [][]float64) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		row := m.d[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			v := Dist(x[i], x[j])
			row[j] = v
			m.d[j*n+i] = v
		}
	}
	return m
}

// N returns the number of objects.
func (m *DistMatrix) N() int { return m.n }

// At returns the distance between objects i and j.
func (m *DistMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }

// Row returns the distances from object i to every object, as a shared
// (read-only) slice of length N.
func (m *DistMatrix) Row(i int) []float64 { return m.d[i*m.n : (i+1)*m.n] }
