package linalg

// DistMatrix is a precomputed symmetric pairwise Euclidean distance matrix.
// Computing it costs the same O(n²·d) work as one pass of OPTICS
// core-distance computation; every subsequent consumer (each MinPts value of
// an OPTICS sweep, every fold of a cross-validation grid, silhouette-style
// evaluation) replaces its distance evaluations with O(1) lookups.
//
// Three storage layouts are supported:
//
//   - square: one flat row-major n×n float64 slice. At is a single
//     multiply-add index and Row returns a shared contiguous slice.
//   - condensed: only the strict upper triangle, n·(n-1)/2 float64
//     entries — half the memory of the square layout. The diagonal is
//     implicit (zero) and At mirrors i>j lookups. This is the layout the
//     per-run selection cache retains, since a resident matrix per cached
//     dataset dominates the cache's footprint.
//   - condensed32: the condensed triangle stored as float32, halving
//     memory again. Entries are computed in float64 and rounded once on
//     store, so At returns float64(float32(d)) — a documented relative
//     error of at most 2⁻²⁴ (one float32 ULP) per entry. See
//     docs/performance.md for the tolerance discussion.
//
// The float64 layouts return identical values for every (i, j), and their
// builders are blocked: pairs are swept in cache-sized tiles of rows with
// the Dist4 quad kernel computing four pairs per call. Because every Dist4
// lane is bit-identical to the scalar Dist (see kernels.go), the blocked
// builders produce exactly the bytes the naive per-pair builder
// (NewDistMatrixNaive) produces, at all block sizes — only faster.
type DistMatrix struct {
	n         int
	d         []float64
	d32       []float32
	condensed bool
}

// distBlock is the default tile width (in rows) of the blocked builders:
// 128 rows of 64-dimensional float64 data are 64 KiB, small enough that a
// tile's rows stay cache-resident across the sweep of row groups.
const distBlock = 128

// NewDistMatrix computes the pairwise distance matrix of the rows of x in
// the square layout, using the blocked quad-kernel sweep. Entries are
// bit-identical to NewDistMatrixNaive's.
func NewDistMatrix(x [][]float64) *DistMatrix {
	return newDistMatrixBlocked(x, distBlock)
}

func newDistMatrixBlocked(x [][]float64, block int) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	buildPairs(x, block,
		func(ig, j int, d *[4]float64) {
			m.d[ig*n+j] = d[0]
			m.d[(ig+1)*n+j] = d[1]
			m.d[(ig+2)*n+j] = d[2]
			m.d[(ig+3)*n+j] = d[3]
			copy(m.d[j*n+ig:j*n+ig+4], d[:])
		},
		func(i, j int, v float64) {
			m.d[i*n+j] = v
			m.d[j*n+i] = v
		})
	return m
}

// NewDistMatrixCondensed computes the pairwise distance matrix of the rows
// of x in the condensed (strict upper triangular) layout, storing
// n·(n-1)/2 entries instead of n², using the blocked quad-kernel sweep.
func NewDistMatrixCondensed(x [][]float64) *DistMatrix {
	return newDistMatrixCondensedBlocked(x, distBlock)
}

func newDistMatrixCondensedBlocked(x [][]float64, block int) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*(n-1)/2), condensed: true}
	buildPairs(x, block,
		func(ig, j int, d *[4]float64) {
			m.d[condIdx(n, ig, j)] = d[0]
			m.d[condIdx(n, ig+1, j)] = d[1]
			m.d[condIdx(n, ig+2, j)] = d[2]
			m.d[condIdx(n, ig+3, j)] = d[3]
		},
		func(i, j int, v float64) {
			m.d[condIdx(n, i, j)] = v
		})
	return m
}

// NewDistMatrixCondensed32 computes the condensed matrix with float32
// storage: half the memory of the condensed float64 layout (a quarter of
// the square layout). Distances are computed in float64 by the same
// kernels and rounded once on store; At returns the rounded value widened
// back to float64.
func NewDistMatrixCondensed32(x [][]float64) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d32: make([]float32, n*(n-1)/2), condensed: true}
	buildPairs(x, distBlock,
		func(ig, j int, d *[4]float64) {
			m.d32[condIdx(n, ig, j)] = float32(d[0])
			m.d32[condIdx(n, ig+1, j)] = float32(d[1])
			m.d32[condIdx(n, ig+2, j)] = float32(d[2])
			m.d32[condIdx(n, ig+3, j)] = float32(d[3])
		},
		func(i, j int, v float64) {
			m.d32[condIdx(n, i, j)] = float32(v)
		})
	return m
}

// NewDistMatrixNaive is the scalar reference builder: one Dist call per
// pair, no blocking, square layout. It is retained as the golden baseline
// the blocked builders are tested (and benchmarked, see cmd/bench) against.
func NewDistMatrixNaive(x [][]float64) *DistMatrix {
	n := len(x)
	m := &DistMatrix{n: n, d: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		row := m.d[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			v := Dist(x[i], x[j])
			row[j] = v
			m.d[j*n+i] = v
		}
	}
	return m
}

// condIdx maps (i, j) with i < j to the condensed (strict upper
// triangular) offset: rows 0..i-1 hold (n-1)+(n-2)+...+(n-i) entries; row
// i starts at that offset and holds columns i+1..n-1.
func condIdx(n, i, j int) int {
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// buildPairs sweeps every pair i < j of rows of x exactly once. Row groups
// of four (the panel of a Dist4 call) are paired against every later row
// j, with j swept in tiles of block rows so a tile's rows stay cache-hot
// across all row groups; emit4 receives the four distances
// (x[ig..ig+3], x[j]). Pairs inside a row group and pairs among the
// trailing n mod 4 rows — too few for a full panel — go through emit1 with
// the scalar Dist. The tiling changes only the visit order, never the
// value: every emitted distance is bit-identical to Dist(x[i], x[j]).
func buildPairs(x [][]float64, block int, emit4 func(ig, j int, d *[4]float64), emit1 func(i, j int, v float64)) {
	n := len(x)
	if block < 1 {
		block = 1
	}
	if n >= 4 {
		panel := make([]float64, 4*len(x[0]))
		var dst [4]float64
		for jb := 0; jb < n; jb += block {
			jEnd := jb + block
			if jEnd > n {
				jEnd = n
			}
			for ig := 0; ig+4 <= n; ig += 4 {
				jStart := ig + 4
				if jStart < jb {
					jStart = jb
				}
				if jStart >= jEnd {
					continue
				}
				Pack4(panel, x[ig], x[ig+1], x[ig+2], x[ig+3])
				for j := jStart; j < jEnd; j++ {
					Dist4(&dst, x[j], panel)
					emit4(ig, j, &dst)
				}
			}
		}
		// Pairs within each full row group (j < ig+4 never reaches the
		// panel loop above).
		for ig := 0; ig+4 <= n; ig += 4 {
			for i := ig; i < ig+4; i++ {
				for j := i + 1; j < ig+4; j++ {
					emit1(i, j, Dist(x[i], x[j]))
				}
			}
		}
	}
	// Pairs among the trailing n mod 4 rows (for n < 4: all pairs).
	for i := n - n%4; i < n; i++ {
		for j := i + 1; j < n; j++ {
			emit1(i, j, Dist(x[i], x[j]))
		}
	}
}

// N returns the number of objects.
func (m *DistMatrix) N() int { return m.n }

// Condensed reports whether the matrix uses a triangular layout.
func (m *DistMatrix) Condensed() bool { return m.condensed }

// Float32 reports whether entries are stored as float32 (condensed32).
func (m *DistMatrix) Float32() bool { return m.d32 != nil }

// At returns the distance between objects i and j.
func (m *DistMatrix) At(i, j int) float64 {
	if !m.condensed {
		return m.d[i*m.n+j]
	}
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	if m.d32 != nil {
		return float64(m.d32[condIdx(m.n, i, j)])
	}
	return m.d[condIdx(m.n, i, j)]
}

// Row returns the distances from object i to every object, as a slice of
// length N. For the square layout it is a shared (read-only) view of the
// backing array; for the condensed layouts it is materialized into a fresh
// slice — hot loops should use RowInto with a reused buffer instead.
func (m *DistMatrix) Row(i int) []float64 {
	if !m.condensed {
		return m.d[i*m.n : (i+1)*m.n]
	}
	return m.RowInto(make([]float64, m.n), i)
}

// RowInto materializes the distances from object i to every object into
// dst, which must have length N, and returns dst. It never allocates: the
// condensed layouts are walked with two linear index strides (the column
// i entries of earlier rows, then the contiguous row i tail) instead of
// per-entry At arithmetic. This is the variant OPTICS uses in its
// core-distance hot loop.
func (m *DistMatrix) RowInto(dst []float64, i int) []float64 {
	dst = ensure(dst, m.n)
	if !m.condensed {
		copy(dst, m.d[i*m.n:(i+1)*m.n])
		return dst
	}
	n := m.n
	// Entries (j, i) for j < i live at condIdx(n, j, i), which advances by
	// n-j-2 as j increments; entries (i, j) for j > i are contiguous.
	k := i - 1
	if m.d32 != nil {
		for j := 0; j < i; j++ {
			dst[j] = float64(m.d32[k])
			k += n - j - 2
		}
		dst[i] = 0
		base := condIdx(n, i, i+1)
		for j := i + 1; j < n; j++ {
			dst[j] = float64(m.d32[base+j-i-1])
		}
		return dst
	}
	for j := 0; j < i; j++ {
		dst[j] = m.d[k]
		k += n - j - 2
	}
	dst[i] = 0
	if i+1 < n {
		copy(dst[i+1:], m.d[condIdx(n, i, i+1):condIdx(n, i, i+1)+n-i-1])
	}
	return dst
}
