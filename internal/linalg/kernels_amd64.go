//go:build amd64

package linalg

// The assembly kernels vectorize across lanes, not within a pair: each of
// the four accumulators lives in one SSE2 lane and follows the exact
// element order of the scalar reference, so results are bit-identical to
// Dot/SqDist/Dist while running lane-parallel subtract/multiply/add. SSE2
// is part of the amd64 baseline, so no CPU feature detection is needed.
// Callers (the exported wrappers in kernels.go) validate panel length;
// the assembly assumes len(panel) >= 4*len(a).

//go:noescape
func dot4(dst *[4]float64, a, panel []float64)

//go:noescape
func sqDist4(dst *[4]float64, a, panel []float64)

//go:noescape
func dist4(dst *[4]float64, a, panel []float64)
