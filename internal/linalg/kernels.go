package linalg

import "math"

// Quad kernels: the building blocks of the blocked DistMatrix builders.
//
// Go's compiler never reassociates floating-point arithmetic, so a single
// pairwise distance is an inherently serial chain of adds — unrolling one
// pair 4-wide would change the summation order (and therefore the bits) to
// buy instruction-level parallelism. These kernels unroll ACROSS pairs
// instead: one call computes a's distance (or dot product) against four
// rows simultaneously, giving the CPU four independent accumulation chains
// while each chain keeps the exact element order of the scalar reference
// (Dot, SqDist, Dist). Every lane of the result is therefore bit-identical
// to the corresponding scalar call — the property the DistMatrix golden
// tests and the selection engine's bit-identical-results bar rely on.
//
// The four rows are consumed in element-interleaved "panel" form
// (panel[4*i+k] = b_k[i], see Pack4): the amd64 implementation then loads
// two pairs per 16-byte SSE2 register and runs lane-parallel
// subtract/multiply/add, halving the per-element FP µop count relative to
// the scalar loop. Packing costs one linear pass, which the builders
// amortize over a whole tile of kernel calls. On non-amd64 platforms the
// pure-Go fallback computes the same four sequential sums.

// Pack4 packs rows b0..b3 into panel in element-interleaved order:
// panel[4*i+k] = b_k[i]. The rows must share one length and panel must
// hold at least 4·len(b0) entries. The packed panel is what Dot4, SqDist4
// and Dist4 consume.
func Pack4(panel, b0, b1, b2, b3 []float64) {
	checkLen(b0, b1)
	checkLen(b0, b2)
	checkLen(b0, b3)
	if len(panel) < 4*len(b0) {
		panic("linalg: Pack4 panel too short")
	}
	for i, v := range b0 {
		panel[4*i] = v
		panel[4*i+1] = b1[i]
		panel[4*i+2] = b2[i]
		panel[4*i+3] = b3[i]
	}
}

// Dot4 computes the four dot products of a with the rows packed in panel:
// dst[k] = Dot(a, b_k). Each result is bit-identical to the scalar Dot.
func Dot4(dst *[4]float64, a, panel []float64) {
	if len(panel) < 4*len(a) {
		panic("linalg: Dot4 panel too short")
	}
	dot4(dst, a, panel)
}

// SqDist4 computes the four squared Euclidean distances from a to the rows
// packed in panel: dst[k] = SqDist(a, b_k). Each result is bit-identical
// to the scalar SqDist.
func SqDist4(dst *[4]float64, a, panel []float64) {
	if len(panel) < 4*len(a) {
		panic("linalg: SqDist4 panel too short")
	}
	sqDist4(dst, a, panel)
}

// Dist4 computes the four Euclidean distances from a to the rows packed in
// panel: dst[k] = Dist(a, b_k). Each result is bit-identical to the scalar
// Dist (IEEE 754 square root is correctly rounded, in SIMD lanes too).
func Dist4(dst *[4]float64, a, panel []float64) {
	if len(panel) < 4*len(a) {
		panic("linalg: Dist4 panel too short")
	}
	dist4(dst, a, panel)
}

// dot4Generic is the portable reference implementation of Dot4: four
// independent accumulators, each following the scalar element order.
func dot4Generic(dst *[4]float64, a, panel []float64) {
	var s0, s1, s2, s3 float64
	for i, v := range a {
		s0 += v * panel[4*i]
		s1 += v * panel[4*i+1]
		s2 += v * panel[4*i+2]
		s3 += v * panel[4*i+3]
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}

// sqDist4Generic is the portable reference implementation of SqDist4.
func sqDist4Generic(dst *[4]float64, a, panel []float64) {
	var s0, s1, s2, s3 float64
	for i, v := range a {
		d0 := v - panel[4*i]
		d1 := v - panel[4*i+1]
		d2 := v - panel[4*i+2]
		d3 := v - panel[4*i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}

// dist4Generic is the portable reference implementation of Dist4.
func dist4Generic(dst *[4]float64, a, panel []float64) {
	sqDist4Generic(dst, a, panel)
	dst[0] = math.Sqrt(dst[0])
	dst[1] = math.Sqrt(dst[1])
	dst[2] = math.Sqrt(dst[2])
	dst[3] = math.Sqrt(dst[3])
}
