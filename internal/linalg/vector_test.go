package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// clamp maps arbitrary float64s (including huge magnitudes and NaN) into a
// range where squared distances cannot overflow.
func clamp(vs []float64) []float64 {
	for i, v := range vs {
		if math.IsNaN(v) {
			vs[i] = 0
			continue
		}
		vs[i] = math.Mod(v, 1e6)
	}
	return vs
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := SqDist(a, b); got != 25 {
		t.Errorf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := Norm(b); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestWeightedSqDist(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 2}
	w := []float64{2, 0.5}
	// 2*1 + 0.5*4 = 4
	if got := WeightedSqDist(a, b, w); got != 4 {
		t.Errorf("WeightedSqDist = %v, want 4", got)
	}
	// Unit weights reduce to the squared Euclidean distance.
	if got := WeightedSqDist(a, b, []float64{1, 1}); got != SqDist(a, b) {
		t.Errorf("unit-weight WeightedSqDist = %v, want %v", got, SqDist(a, b))
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if got := Add(nil, a, b); got[0] != 4 || got[1] != 6 {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(nil, b, a); got[0] != 2 || got[1] != 2 {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(nil, 2, a); got[0] != 2 || got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	dst := []float64{1, 1}
	AXPY(dst, 3, a)
	if dst[0] != 4 || dst[1] != 7 {
		t.Errorf("AXPY = %v", dst)
	}
}

func TestAddAliasing(t *testing.T) {
	a := []float64{1, 2}
	got := Add(a, a, a) // dst aliases both operands
	if got[0] != 2 || got[1] != 4 {
		t.Errorf("aliased Add = %v", got)
	}
}

func TestMean(t *testing.T) {
	x := [][]float64{{0, 0}, {2, 4}}
	m := Mean(x)
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("Mean = %v", m)
	}
}

func TestMeanInto(t *testing.T) {
	x := [][]float64{{0, 0}, {2, 4}, {10, 10}}
	m := MeanInto(nil, x, []int{0, 1})
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("MeanInto = %v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty Mean")
		}
	}()
	Mean(nil)
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
	m := [][]float64{{1}, {2}}
	cm := CloneMatrix(m)
	cm[0][0] = 99
	if m[0][0] != 1 {
		t.Error("CloneMatrix shares storage")
	}
}

// Property: the triangle inequality holds for Dist.
func TestDistTriangleInequality(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		av, bv, cv := clamp(a[:]), clamp(b[:]), clamp(c[:])
		ab := Dist(av, bv)
		bc := Dist(bv, cv)
		ac := Dist(av, cv)
		return ac <= ab+bc+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distances are symmetric and zero on the diagonal.
func TestDistSymmetry(t *testing.T) {
	f := func(a, b [5]float64) bool {
		av, bv := clamp(a[:]), clamp(b[:])
		return almostEq(Dist(av, bv), Dist(bv, av)) && Dist(av, av) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WeightedSqDist with non-negative weights is non-negative.
func TestWeightedSqDistNonNegative(t *testing.T) {
	f := func(a, b, w [4]float64) bool {
		av, bv := clamp(a[:]), clamp(b[:])
		wpos := make([]float64, 4)
		for i, v := range clamp(w[:]) {
			wpos[i] = math.Abs(v)
		}
		return WeightedSqDist(av, bv, wpos) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
