// Package linalg provides the small dense vector and metric operations that
// the clustering algorithms in this repository are built on. All operations
// work on []float64 and are allocation-conscious: functions that need a
// destination accept one, so hot loops (k-means assignment, OPTICS expansion)
// can run without garbage.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// WeightedSqDist returns the squared distance between a and b under the
// diagonal metric w: sum_i w[i]*(a[i]-b[i])^2. This is the diagonal
// Mahalanobis form used by MPCKmeans metric learning.
func WeightedSqDist(a, b, w []float64) float64 {
	checkLen(a, b)
	checkLen(a, w)
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += w[i] * d * d
	}
	return s
}

// Add stores a+b in dst and returns dst. dst may alias a or b.
func Add(dst, a, b []float64) []float64 {
	checkLen(a, b)
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b in dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []float64) []float64 {
	checkLen(a, b)
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a in dst and returns dst. dst may alias a.
func Scale(dst []float64, s float64, a []float64) []float64 {
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY adds s*a to dst in place: dst += s*a.
func AXPY(dst []float64, s float64, a []float64) {
	checkLen(dst, a)
	for i := range a {
		dst[i] += s * a[i]
	}
}

// Mean returns the component-wise mean of the rows of x. It panics if x is
// empty. Rows must share a common length.
func Mean(x [][]float64) []float64 {
	if len(x) == 0 {
		panic("linalg: Mean of empty set")
	}
	m := make([]float64, len(x[0]))
	for _, row := range x {
		AXPY(m, 1, row)
	}
	Scale(m, 1/float64(len(x)), m)
	return m
}

// MeanInto computes the mean of the rows of x indexed by idx into dst.
// It panics if idx is empty.
func MeanInto(dst []float64, x [][]float64, idx []int) []float64 {
	if len(idx) == 0 {
		panic("linalg: MeanInto of empty index set")
	}
	dst = ensure(dst, len(x[idx[0]]))
	for i := range dst {
		dst[i] = 0
	}
	for _, j := range idx {
		AXPY(dst, 1, x[j])
	}
	Scale(dst, 1/float64(len(idx)), dst)
	return dst
}

// Clone returns a deep copy of a.
func Clone(a []float64) []float64 {
	c := make([]float64, len(a))
	copy(c, a)
	return c
}

// CloneMatrix returns a deep copy of the row-slice matrix x.
func CloneMatrix(x [][]float64) [][]float64 {
	c := make([][]float64, len(x))
	for i, row := range x {
		c[i] = Clone(row)
	}
	return c
}

func ensure(dst []float64, n int) []float64 {
	if dst == nil {
		return make([]float64, n)
	}
	if len(dst) != n {
		panic(fmt.Sprintf("linalg: destination length %d, want %d", len(dst), n))
	}
	return dst
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: length mismatch %d vs %d", len(a), len(b)))
	}
}
