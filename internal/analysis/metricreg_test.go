package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestMetricReg drives the metricreg fixture: family registration in
// package-level var blocks and init passes; registration on a request
// or method path — a latent duplicate-name panic — is flagged.
func TestMetricReg(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("metricreg"), "cvcp/internal/server/zfixture", analysis.MetricReg)
}
