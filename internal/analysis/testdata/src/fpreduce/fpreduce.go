// Package fixture exercises the fpreduce analyzer: float reductions
// whose accumulation order the scheduler decides.
package fixture

import "sync"

// sharedAccumulator is the classic racy reduction: worker goroutines
// folding into one float. Even with the mutex the arrival order — and
// with float non-associativity, the result bits — depend on scheduling.
func sharedAccumulator(parts [][]float64) float64 {
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sum float64
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			var local float64
			for _, v := range p {
				local += v
			}
			mu.Lock()
			sum += local // want `float accumulation into captured "sum" inside a goroutine`
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return sum
}

// channelRangeSum receives partials in whatever order senders land.
func channelRangeSum(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want `float accumulation into "sum" while ranging over a channel`
	}
	return sum
}

// channelRecvSum is the unary-receive variant.
func channelRecvSum(ch chan float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += <-ch // want `float accumulation from a channel receive`
	}
	return sum
}

// indexAddressedSlots is the engine's repaired discipline: each task
// writes its own slot, the merge is a deterministic left-to-right scan.
func indexAddressedSlots(parts [][]float64) float64 {
	var wg sync.WaitGroup
	out := make([]float64, len(parts))
	for i, p := range parts {
		wg.Add(1)
		go func(i int, p []float64) {
			defer wg.Done()
			var local float64
			for _, v := range p {
				local += v
			}
			out[i] = local
		}(i, p)
	}
	wg.Wait()
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

// intCounter: integer accumulation is associative; not flagged.
func intCounter(ch chan int) int {
	var n int
	for v := range ch {
		n += v
	}
	return n
}

// suppressed demonstrates the reasoned escape hatch.
func suppressed(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		//cvcplint:ignore fpreduce fixture: diagnostic sum only, never compared bit-for-bit
		sum += v
	}
	return sum
}
