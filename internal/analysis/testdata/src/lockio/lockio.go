// Package fixture exercises the lockio analyzer: store I/O, fsyncs and
// network writes lexically inside mutex critical sections.
package fixture

import (
	"net"
	"os"
	"sync"

	"cvcp/internal/store"
)

type manager struct {
	mu sync.Mutex
	rw sync.RWMutex
	st store.Store
}

// putUnderLock is the PR 3 bug shape: a record persisted while the
// manager mutex serializes every other caller behind disk latency.
func (m *manager) putUnderLock(rec store.Record) {
	m.mu.Lock()
	_ = m.st.Put(rec) // want `store I/O \(store.Put\) inside a mutex critical section`
	m.mu.Unlock()
}

// putUnderDeferredLock is the same bug with the deferred-unlock idiom:
// the lock is held to function end, so everything below is inside.
func (m *manager) putUnderDeferredLock(rec store.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.Put(rec) // want `store I/O \(store.Put\) inside a mutex critical section`
}

// eventsUnderRLock: read locks serialize writers all the same.
func (m *manager) eventsUnderRLock(id string) ([]store.Event, error) {
	m.rw.RLock()
	defer m.rw.RUnlock()
	return m.st.EventsSince(id, 0) // want `store I/O \(store.EventsSince\) inside a mutex critical section`
}

// fsyncUnderLock: the PR 5 hardening class — an fsync on the critical
// path of everything the mutex guards.
func (m *manager) fsyncUnderLock(f *os.File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_ = f.Sync() // want `fsync \(\(\*os.File\).Sync\) inside a mutex critical section`
}

// netWriteUnderLock: a slow peer stalls every other caller.
func (m *manager) netWriteUnderLock(c net.Conn, b []byte) {
	m.mu.Lock()
	_, _ = c.Write(b) // want `network write \(net Write\) inside a mutex critical section`
	m.mu.Unlock()
}

// putOutsideLock is the repaired discipline: reserve under the lock,
// persist outside, publish after.
func (m *manager) putOutsideLock(rec store.Record) {
	m.mu.Lock()
	pending := rec
	m.mu.Unlock()
	_ = m.st.Put(pending)
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
}

func (m *manager) publishLocked() {}

// goroutineEscapesLock: the literal runs on its own goroutine and takes
// its own locks; its body is not inside this critical section.
func (m *manager) goroutineEscapesLock(rec store.Record) {
	m.mu.Lock()
	go func() {
		_ = m.st.Put(rec)
	}()
	m.mu.Unlock()
}

// separateSections: a second lock after the first unlock opens a new
// region; I/O between the two is free.
func (m *manager) separateSections(rec store.Record) {
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
	_ = m.st.Put(rec)
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
}

// suppressed demonstrates the reasoned escape hatch — a dedicated
// mutex whose entire purpose is serializing one write.
func (m *manager) suppressed(rec store.Record) {
	m.mu.Lock()
	//cvcplint:ignore lockio fixture: this mutex exists to serialize exactly this write
	_ = m.st.Put(rec)
	m.mu.Unlock()
}
