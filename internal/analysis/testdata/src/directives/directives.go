// Package fixture exercises directive misuse: a suppression without a
// reason, an unknown analyzer name, and a directive that suppresses
// nothing are all findings themselves. Expectations live in the
// directives unit test (TestDirectiveMisuse), not in want comments —
// misuse diagnostics land on the directive's own line, where a comment
// can't carry a second trailing comment.
package fixture

import "time"

func missingReason() int64 {
	//cvcplint:ignore nondeterm
	return time.Now().UnixNano()
}

func unknownAnalyzer() int64 {
	//cvcplint:ignore nosuchanalyzer some reason
	return 0
}

func unusedDirective() int64 {
	//cvcplint:ignore nondeterm this line is perfectly deterministic
	return 42
}
