// Package fixture exercises the metricreg analyzer: metric family
// registration is an init-time act; at runtime it panics on the second
// registration of a name.
package fixture

import "cvcp/internal/metrics"

// Package-level var block: the blessed shape.
var (
	mGood = metrics.NewCounter("fixture_good_total", "Registered at package init.")
	mVec  = metrics.NewCounterVec("fixture_vec_total", "Registered at package init.", "reason")
)

var mGauge = metrics.NewGauge("fixture_gauge", "Registered at package init.")

// init functions are also init time.
var mHist *metrics.Histogram

func init() {
	mHist = metrics.NewHistogram("fixture_hist", "Registered in init.", metrics.DurationBuckets)
}

// handler registers on the request path: the second call panics.
func handler() *metrics.Counter {
	return metrics.NewCounter("fixture_runtime_total", "Registered per call.") // want `metrics.NewCounter outside a package-level var block or init`
}

type server struct{}

func (server) setup() {
	_ = metrics.NewGauge("fixture_method_gauge", "Registered in a method.") // want `metrics.NewGauge outside a package-level var block or init`
}

// use keeps the lint fixtures honest about the vars above.
func use() {
	mGood.Inc()
	mVec.With("x").Inc()
	mGauge.Set(1)
	mHist.Observe(1)
}

// suppressed demonstrates the reasoned escape hatch: a test-only
// constructor that guarantees single registration by other means.
func suppressed(name string) *metrics.Counter {
	//cvcplint:ignore metricreg fixture: caller guarantees a process-unique name
	return metrics.NewCounter(name, "Suppressed runtime registration.")
}
