// Package fixture proves lockio's store exemption: loaded under a
// cvcp/internal/store path, where serializing the WAL append and fsync
// under the store's own mutex is the documented design. Nothing is
// wanted.
package fixture

import (
	"os"
	"sync"
)

type wal struct {
	mu sync.Mutex
	f  *os.File
}

func (w *wal) append(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(b); err != nil {
		return err
	}
	return w.f.Sync()
}
