// Package fixture exercises the nondeterm analyzer inside a
// deterministic-scope package path: ambient-state reads are banned,
// seeded randomness is fine.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `wall-clock read \(time.Now\)`
	return t.UnixNano()
}

func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want `wall-clock read \(time.Since\)`
}

func env() string {
	return os.Getenv("CVCP_MODE") // want `environment read \(os.Getenv\)`
}

func globalRand() int {
	return rand.Intn(10) // want `unseeded randomness \(rand.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `unseeded randomness \(rand.Shuffle`
}

// seededRand is the blessed pattern: an explicit source from an
// explicit seed, methods on the resulting generator.
func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// timers are event plumbing, not value sources: not flagged.
func timer(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}

// suppressed demonstrates the reasoned escape hatch for observability
// reads that never feed a score or seed.
func suppressed() int64 {
	//cvcplint:ignore nondeterm fixture: timing metric only, never feeds a score or seed
	return time.Now().UnixNano()
}
