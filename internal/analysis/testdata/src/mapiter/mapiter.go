// Package fixture exercises the mapiter analyzer: map-range bodies
// whose effect depends on Go's randomized iteration order.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
)

// daviesBouldinPreFix mirrors the exact PR 4 bug shape: the validity
// indices summed float distances while ranging over the cluster-members
// map, so scores differed in the last ulp from run to run. Reverting
// the sorted-iteration fix in any index must trip the lint gate — this
// is that shape.
func daviesBouldinPreFix(members map[int][]int, dist func(int) float64) float64 {
	var total float64
	for _, idx := range members {
		var s float64
		for _, i := range idx {
			s = s + dist(i)
		}
		total += s // want `float accumulation into "total"`
	}
	return total
}

// daviesBouldinPostFix is the repaired shape: iterate ids sorted, then
// index the map — order is pinned, nothing to flag.
func daviesBouldinPostFix(members map[int][]int, dist func(int) float64) float64 {
	ids := make([]int, 0, len(members))
	for l := range members {
		ids = append(ids, l)
	}
	sort.Ints(ids)
	var total float64
	for _, l := range ids {
		for _, i := range members[l] {
			total += dist(i)
		}
	}
	return total
}

func compoundAssign(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into "sum"`
	}
	return sum
}

func unsortedCollector(m map[string]int) []string {
	var keys []string
	for k := range m { // want `collected from a map range into "keys" are never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sortedCollectorSlices(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func output(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `output emitted inside the loop`
	}
}

func builderOutput(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `output emitted inside the loop`
	}
	return b.String()
}

func seedDerivation(m map[int]int64) int64 {
	var last int64
	for _, seed := range m {
		r := rand.New(rand.NewSource(seed)) // want `seed material derived inside the loop`
		last ^= r.Int63()
	}
	return last
}

// perKeyWrites are order-independent: each iteration touches only its
// own key.
func perKeyWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// intCounting is order-independent.
func intCounting(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// localFloatPerIteration declares its accumulator inside the loop: each
// iteration's value is independent of order.
func localFloatPerIteration(m map[int][]float64) map[int]float64 {
	out := map[int]float64{}
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// suppressed demonstrates the escape hatch: the directive must name the
// analyzer and carry a reason, and then nothing surfaces.
func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//cvcplint:ignore mapiter fixture: demonstrating a reasoned suppression of an order-dependent sum
		sum += v
	}
	return sum
}

// nestedBlockCollector sorts inside the same inner block: clean.
func nestedBlockCollector(cond bool, m map[string]int) []string {
	if cond {
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	return nil
}
