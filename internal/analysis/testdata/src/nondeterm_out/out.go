// Package fixture proves nondeterm's scope: the same ambient reads in
// a server-layer package path are legal (wall-clock is fine outside the
// deterministic core), so this fixture wants nothing.
package fixture

import (
	"os"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano()
}

func env() string {
	return os.Getenv("CVCP_MODE")
}
