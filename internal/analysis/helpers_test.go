package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// loadClean loads the fixture in dir under importPath, applies the
// analyzers, and fails on any diagnostic from them — ignoring the
// fixture's want comments (which describe a different, in-scope run)
// and any directive-bookkeeping diagnostics from the cvcplint
// pseudo-analyzer (a suppression naming an analyzer that stays silent
// out of scope is reported unused, which is correct but not what this
// helper checks).
func loadClean(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(analysistest.ModuleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, d := range analysis.Apply(pkg, analyzers) {
		if names[d.Analyzer] {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
}
