package analysis

import (
	"go/ast"
	"go/types"
)

// NonDeterm forbids ambient-state reads — wall-clock time, the
// process-global math/rand source, environment variables — inside the
// deterministic packages, where every value that feeds a score, a seed
// or a fold split must be a pure function of the job spec. Wall-clock
// is fine in the server and store layers; in the compute core it is a
// reproducibility bug by construction (a restart, a replay or a second
// worker node would see different values).
//
// Seeded randomness stays legal: rand.New(rand.NewSource(seed)) and
// every method on an explicit *rand.Rand pass; only the package-level
// convenience functions, which draw from the shared unseeded source,
// are flagged.
//
// The few legitimate observability sites inside scoped packages (timing
// a limiter wait, stamping a lease TTL) carry //cvcplint:ignore
// directives with their reasons — values that are measured but never
// fed into a score or seed.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "forbids time.Now, unseeded math/rand and os.Getenv in the deterministic packages",
	Run:  runNonDeterm,
}

func runNonDeterm(pass *Pass) {
	if pass.Pkg == nil || !inDeterministicScope(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.Info, call)
			if fn == nil {
				return true
			}
			name := fn.Name()
			switch calleePkgPath(fn) {
			case "time":
				switch name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "wall-clock read (time.%s) in deterministic package %s: results must be pure functions of the spec and seed", name, pass.Pkg.Path())
				}
			case "os":
				switch name {
				case "Getenv", "LookupEnv", "Environ":
					pass.Reportf(call.Pos(), "environment read (os.%s) in deterministic package %s: configuration must arrive through the spec, not ambient state", name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				sig, ok := fn.Type().(*types.Signature)
				if ok && sig.Recv() == nil && !randConstructor(name) {
					pass.Reportf(call.Pos(), "unseeded randomness (rand.%s draws from the process-global source) in deterministic package %s: use rand.New(rand.NewSource(seed))", name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
}

// randConstructor lists the math/rand functions that construct explicit
// sources or generators rather than drawing from the global one.
func randConstructor(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
