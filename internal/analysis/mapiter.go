package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` statements over maps whose bodies do something
// that Go's randomized map iteration order can change: accumulate
// floats (non-associative — the exact last-ulp bug PR 4 found in three
// validity indices), write output, derive seeds, or collect values into
// a slice that is never sorted afterwards. The one blessed shape is the
// collector: a loop that only appends keys/values to a slice which a
// later statement in the same block sorts — that is how sortedIDs-style
// helpers restore determinism, and it passes clean.
//
// The check runs on every package: map-order-dependent output is a
// determinism bug in the numeric core and a flaky-scrape/flaky-API bug
// everywhere else.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration whose body's result depends on the randomized order (float sums, output, seeds, unsorted collection)",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for _, stmt := range list {
				inner := stmt
				if ls, ok := inner.(*ast.LabeledStmt); ok {
					inner = ls.Stmt
				}
				rng, ok := inner.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if t := pass.Info.TypeOf(rng.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, list, stmt, rng)
					}
				}
			}
			return true
		})
	}
}

// checkMapRangeBody reports order-dependent behavior inside one
// map-range loop. list is the statement list directly containing the
// loop (via outer, which may be a wrapping LabeledStmt) — the region
// searched for the collector exemption's later sort call.
func checkMapRangeBody(pass *Pass, list []ast.Stmt, outer ast.Stmt, rng *ast.RangeStmt) {
	var appendTargets []types.Object
	reported := map[string]bool{}
	report := func(pos token.Pos, class, format string, args ...any) {
		if reported[class] {
			return
		}
		reported[class] = true
		pass.Reportf(pos, format, args...)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own blocks are visited by the outer walk
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if obj, pos, ok := floatAccumulation(pass.Info, n, rng); ok {
				report(pos, "float",
					"map iteration order is randomized: float accumulation into %q makes the result depend on it (float addition is non-associative); iterate sorted keys instead", obj.Name())
				return true
			}
			if obj := appendTarget(pass.Info, n, rng); obj != nil {
				appendTargets = append(appendTargets, obj)
			}
		case *ast.CallExpr:
			fn := callee(pass.Info, n)
			switch {
			case emitsOutput(fn):
				report(n.Pos(), "output",
					"map iteration order is randomized: output emitted inside the loop depends on it; iterate sorted keys instead")
			case derivesSeed(fn):
				report(n.Pos(), "seed",
					"map iteration order is randomized: seed material derived inside the loop depends on it; iterate sorted keys instead")
			}
		}
		return true
	})

	// Collector loops are fine only when every collected slice is
	// sorted later in the same block (the sortedIDs shape).
	for _, obj := range appendTargets {
		if !sortedAfter(pass.Info, list, outer, obj) {
			report(rng.Pos(), "append-"+obj.Name(),
				"values collected from a map range into %q are never sorted in this block; sort them (or range over sorted keys) before use", obj.Name())
		}
	}
}

// floatAccumulation reports whether n accumulates a float into a
// variable declared outside the range statement: s += x, s -= x,
// s *= x, s /= x, or s = s <op> x.
func floatAccumulation(info *types.Info, n *ast.AssignStmt, rng *ast.RangeStmt) (types.Object, token.Pos, bool) {
	switch n.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(n.Lhs) != 1 {
			return nil, 0, false
		}
		obj := rootObj(info, n.Lhs[0])
		if obj != nil && isFloat(info.TypeOf(n.Lhs[0])) && !within(obj.Pos(), rng) {
			return obj, n.Pos(), true
		}
	case token.ASSIGN:
		if len(n.Lhs) != len(n.Rhs) {
			return nil, 0, false
		}
		for i, lhs := range n.Lhs {
			obj := rootObj(info, lhs)
			if obj == nil || !isFloat(info.TypeOf(lhs)) || within(obj.Pos(), rng) {
				continue
			}
			if exprMentions(info, n.Rhs[i], obj) {
				return obj, n.Pos(), true
			}
		}
	}
	return nil, 0, false
}

// appendTarget returns the outer-declared slice object when n has the
// shape `s = append(s, ...)`, else nil.
func appendTarget(info *types.Info, n *ast.AssignStmt, rng *ast.RangeStmt) types.Object {
	if (n.Tok != token.ASSIGN && n.Tok != token.DEFINE) || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	obj := rootObj(info, n.Lhs[0])
	if obj == nil || within(obj.Pos(), rng) {
		return nil
	}
	return obj
}

// exprMentions reports whether expr references obj.
func exprMentions(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// emitsOutput reports whether fn writes somewhere a reader can see
// ordering: the fmt print family, or Write*/Encode methods (io.Writer,
// strings.Builder, json.Encoder, ...).
func emitsOutput(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	name := fn.Name()
	if calleePkgPath(fn) == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
	}
	return false
}

// derivesSeed reports whether fn turns its inputs into seed material:
// math/rand sources or anything whose name says Seed.
func derivesSeed(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	pkg := calleePkgPath(fn)
	if (pkg == "math/rand" || pkg == "math/rand/v2") && (fn.Name() == "NewSource" || fn.Name() == "New") {
		return true
	}
	return strings.Contains(strings.ToLower(fn.Name()), "seed")
}

// sortedAfter reports whether a statement after outer in list sorts
// obj: a call into package sort or slices with obj among the
// arguments.
func sortedAfter(info *types.Info, list []ast.Stmt, outer ast.Stmt, obj types.Object) bool {
	after := false
	for _, stmt := range list {
		if stmt == outer {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorted := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg := calleePkgPath(callee(info, call))
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if exprMentions(info, arg, obj) {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}
