package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// DirectivePrefix is the suppression directive marker. A directive has
// the form
//
//	//cvcplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and suppresses the named analyzers' diagnostics on the directive's
// own line (trailing comment) or on the line immediately below it
// (standalone comment above the flagged statement). The reason is
// mandatory — a directive without one, or naming an unknown analyzer,
// or suppressing nothing, is itself reported, so suppressions can never
// silently rot.
const DirectivePrefix = "//cvcplint:ignore"

// DirectiveAnalyzerName attributes directive-misuse diagnostics; it is
// not a suppressible analyzer.
const DirectiveAnalyzerName = "cvcplint"

type directive struct {
	pos    token.Pos
	file   string
	line   int
	names  []string
	reason string
	used   bool
}

// applySuppressions marks diagnostics covered by a valid directive as
// Suppressed (in place) and returns directive-misuse diagnostics to be
// appended: missing reason, unknown analyzer name, or a directive that
// suppressed nothing among the analyzers that actually ran.
func applySuppressions(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	var dirs []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				d := &directive{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				if len(fields) > 0 {
					d.names = strings.Split(fields[0], ",")
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				dirs = append(dirs, d)
			}
		}
	}
	if len(dirs) == 0 {
		return nil
	}

	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	valid := make([]*directive, 0, len(dirs))
	var extra []Diagnostic
	for _, d := range dirs {
		if len(d.names) == 0 || d.names[0] == "" {
			extra = append(extra, misuse(pkg, d.pos, "directive names no analyzer: %s", DirectivePrefix+" <analyzer> <reason>"))
			continue
		}
		if d.reason == "" {
			extra = append(extra, misuse(pkg, d.pos, "suppression of %q has no reason; every directive must say why the contract does not apply", strings.Join(d.names, ",")))
			continue
		}
		valid = append(valid, d)
	}

	for i := range diags {
		dg := &diags[i]
		for _, d := range valid {
			if d.file != dg.Pos.Filename {
				continue
			}
			if dg.Pos.Line != d.line && dg.Pos.Line != d.line+1 {
				continue
			}
			for _, n := range d.names {
				if n == dg.Analyzer {
					dg.Suppressed = true
					d.used = true
				}
			}
		}
	}

	// Names are validated against the full suite (not just the
	// analyzers in this run, which per-analyzer tests narrow to one);
	// the unused check conversely only fires when every named analyzer
	// actually ran, since otherwise the directive may serve an absent
	// one.
	suite := map[string]bool{}
	for _, a := range All() {
		suite[a.Name] = true
	}
	for _, d := range valid {
		ok := true
		for _, n := range d.names {
			if !suite[n] {
				extra = append(extra, misuse(pkg, d.pos, "directive names unknown analyzer %q", n))
				ok = false
			}
		}
		if !ok || d.used || !allKnown(d.names, known) {
			continue
		}
		extra = append(extra, misuse(pkg, d.pos, "unused suppression: no %s diagnostic on this or the next line", strings.Join(d.names, ",")))
	}
	return extra
}

func allKnown(names []string, known map[string]bool) bool {
	for _, n := range names {
		if !known[n] {
			return false
		}
	}
	return true
}

func misuse(pkg *Package, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: DirectiveAnalyzerName,
		Message:  fmt.Sprintf(format, args...),
	}
}
