package analysis_test

import (
	"strings"
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestDirectiveMisuse checks that suppression directives can never
// silently rot: a directive without a reason does not suppress and is
// itself reported, as are directives naming unknown analyzers and
// directives that suppress nothing. Expectations are programmatic
// (rather than fixture want comments) because misuse diagnostics land
// on the directive's own comment line.
func TestDirectiveMisuse(t *testing.T) {
	loader, err := analysis.NewLoader(analysistest.ModuleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir("cvcp/internal/eval/zfixture", analysistest.Fixture("directives"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.Apply(pkg, analysis.All())

	expect := []struct {
		analyzer, substr string
	}{
		// The reason-less directive is reported and does NOT suppress:
		// the time.Now finding it sat above must surface too.
		{"cvcplint", "has no reason"},
		{"nondeterm", "wall-clock read (time.Now)"},
		{"cvcplint", `unknown analyzer "nosuchanalyzer"`},
		{"cvcplint", "unused suppression: no nondeterm diagnostic"},
	}
	for _, want := range expect {
		found := false
		for _, d := range diags {
			if !d.Suppressed && d.Analyzer == want.analyzer && strings.Contains(d.Message, want.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no unsuppressed [%s] diagnostic containing %q; got %d diagnostics:", want.analyzer, want.substr, len(diags))
			for _, d := range diags {
				t.Logf("  %s: [%s] %s (suppressed=%v)", d.Pos, d.Analyzer, d.Message, d.Suppressed)
			}
		}
	}
	if len(diags) != len(expect) {
		t.Errorf("got %d diagnostics, want exactly %d", len(diags), len(expect))
		for _, d := range diags {
			t.Logf("  %s: [%s] %s (suppressed=%v)", d.Pos, d.Analyzer, d.Message, d.Suppressed)
		}
	}
}
