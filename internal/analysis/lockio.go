package analysis

import (
	"go/ast"
	"go/types"
)

// LockIO flags I/O performed while lexically inside a
// mu.Lock()…mu.Unlock() critical section: calls to methods of
// cvcp/internal/store types (Store and EventLog above all), file
// fsyncs, and network writes. This is the PR 3/5 hardening class — the
// manager once persisted records under its mutex, serializing every
// HTTP handler behind disk latency; the repaired discipline (reserve
// state under the lock, do I/O outside, publish after) is what this
// analyzer keeps repaired.
//
// The critical section is tracked lexically within one function body:
// from a Lock()/RLock() call on a sync.Mutex/RWMutex to the matching
// Unlock()/RUnlock() in the same statement list, or to the end of the
// function when the unlock is deferred. Function literals launched with
// `go` inside the section run on their own goroutine and are skipped;
// other nested literals (deferred or called inline) stay in scope.
//
// internal/store itself is exempt: serializing its own WAL appends and
// fsyncs under its own mutex is that package's documented design — the
// contract this analyzer enforces is that *callers* of the store never
// hold their locks across its I/O.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flags store calls, fsyncs and network writes inside mutex critical sections (outside internal/store)",
	Run:  runLockIO,
}

const storePkgPath = "cvcp/internal/store"

func runLockIO(pass *Pass) {
	if pass.Pkg != nil && underAny(pass.Pkg.Path(), []string{storePkgPath}) {
		return
	}
	funcBodies(pass.Files, func(_ *ast.File, body *ast.BlockStmt) {
		checkLockRegions(pass, body, body)
	})
}

// checkLockRegions scans one statement block of body for critical
// sections and recurses into nested blocks. Only the top-level call
// passes body == block; the function end used for deferred unlocks is
// always the enclosing body's.
func checkLockRegions(pass *Pass, body, block *ast.BlockStmt) {
	list := block.List
	for i, stmt := range list {
		recv, locked := lockCall(pass.Info, stmt)
		if !locked {
			// Recurse into compound statements so sections opened in
			// nested blocks (if bodies, loops) are tracked there.
			continue
		}
		// Find the region end: a matching unlock later in this list, or
		// the function end when the very lock is followed by a defer of
		// the unlock (the deferred-unlock idiom), or the block end.
		end := block.End()
		deferred := false
		for j := i + 1; j < len(list); j++ {
			if isDeferredUnlock(pass.Info, list[j], recv) {
				deferred = true
				break
			}
			if isUnlockStmt(pass.Info, list[j], recv) {
				end = list[j].Pos()
				break
			}
		}
		if deferred {
			end = body.End()
		}
		for j := i + 1; j < len(list); j++ {
			if list[j].Pos() >= end {
				break
			}
			flagIOInStmt(pass, list[j])
		}
		if deferred {
			// The lock outlives this block: everything after it in the
			// function body is also under the lock. Lexical scan of the
			// remaining sibling statements of every enclosing block is
			// approximated by the common case — the deferred unlock
			// guards the rest of this block, which in this repo's idiom
			// is the rest of the function.
			continue
		}
	}
	// Recurse into every nested block regardless, so independent
	// sections inside branches are found.
	for _, stmt := range list {
		if _, locked := lockCall(pass.Info, stmt); locked {
			continue
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkLockRegions(pass, body, n)
				return false
			case *ast.FuncLit:
				return false // has its own funcBodies visit
			}
			return true
		})
	}
}

// lockCall reports whether stmt is `<recv>.Lock()` or `<recv>.RLock()`
// on a sync mutex, returning the receiver expression rendering used to
// match the unlock.
func lockCall(info *types.Info, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return mutexMethod(info, es.X, "Lock", "RLock")
}

func isUnlockStmt(info *types.Info, stmt ast.Stmt, recv string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	r, ok := mutexMethod(info, es.X, "Unlock", "RUnlock")
	return ok && r == recv
}

func isDeferredUnlock(info *types.Info, stmt ast.Stmt, recv string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	r, ok := mutexMethod(info, ds.Call, "Unlock", "RUnlock")
	return ok && r == recv
}

// mutexMethod matches expr against `<recv>.<name>()` for the given
// method names on sync.Mutex/RWMutex (directly or promoted through
// embedding), returning the receiver's source rendering.
func mutexMethod(info *types.Info, expr ast.Expr, names ...string) (string, bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return types.ExprString(sel.X), true
		}
	}
	return "", false
}

// flagIOInStmt reports store/fsync/network calls lexically within stmt,
// skipping goroutine bodies (they escape the lock).
func flagIOInStmt(pass *Pass, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if kind, detail := ioCall(pass.Info, n); kind != "" {
				pass.Reportf(n.Pos(), "%s (%s) inside a mutex critical section: reserve state under the lock, perform I/O outside, publish after (the PR 3/5 hardening discipline)", kind, detail)
			}
		}
		return true
	})
}

// ioCall classifies a call as store I/O, fsync or network write.
func ioCall(info *types.Info, call *ast.CallExpr) (kind, detail string) {
	fn := callee(info, call)
	if fn == nil {
		return "", ""
	}
	pkg := calleePkgPath(fn)
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case pkg == storePkgPath && isMethod:
		return "store I/O", "store." + name
	case pkg == "os" && isMethod && name == "Sync":
		return "fsync", "(*os.File).Sync"
	case pkg == "syscall" && (name == "Fsync" || name == "Fdatasync"):
		return "fsync", "syscall." + name
	case (pkg == "net" || pkg == "net/http") && isMethod &&
		(name == "Write" || name == "WriteString" || name == "ReadFrom" || name == "Flush" || name == "FlushError"):
		return "network write", pkg + " " + name
	}
	return "", ""
}
