package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestMapIter drives the mapiter fixture, which includes the exact PR 4
// validity-index bug shape (daviesBouldinPreFix) — reverting that fix
// class must trip the gate — alongside the repaired shapes, the sorted
// collector exemption, and a reasoned suppression.
func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("mapiter"), "cvcp/internal/eval/zfixture", analysis.MapIter)
}

// TestMapIterRunsEverywhere: mapiter is not scope-gated — the same
// fixture under a server-layer path reports the same findings.
func TestMapIterRunsEverywhere(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("mapiter"), "cvcp/internal/server/zfixture", analysis.MapIter)
}
