// Package analysis is cvcplint's analyzer framework: a deliberately
// small, dependency-free mirror of the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) plus the repo-specific
// analyzers that mechanically enforce the determinism and concurrency
// contracts every other package relies on — bit-identical selections at
// any worker count, across restarts, and across distributed nodes.
//
// The framework exists in-repo because the module is intentionally
// dependency-free: the loader (loader.go) type-checks packages from
// source with stdlib go/types, resolving imports through compiler
// export data obtained from `go list -export`, so the whole suite
// builds and runs offline with nothing beyond the Go toolchain.
//
// The five analyzers and their scopes are catalogued in
// docs/static-analysis.md. Findings can be suppressed, one site at a
// time, with a reasoned directive (see suppress.go):
//
//	//cvcplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive with no reason is itself a diagnostic: every suppression
// must say why the contract does not apply at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one check: a name (used in diagnostics and in
// suppression directives), one-line documentation, and a Run function
// invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that produced
// it. Suppressed is set by Apply when a //cvcplint:ignore directive
// covers the diagnostic's line.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, NonDeterm, LockIO, FPReduce, MetricReg}
}

// deterministicScope lists the package path prefixes whose compute
// results feed scores, seeds, fold splits or persisted selections — the
// packages where the bit-identity contract holds and where the
// order/time-sensitive analyzers (nondeterm, fpreduce) apply. The
// listing extends the obvious numeric core with internal/eval (the
// validity indices PR 4 debugged) and internal/constraints (fold
// construction: anything nondeterministic there changes every score
// downstream).
var deterministicScope = []string{
	"cvcp/internal/cvcp",
	"cvcp/internal/cluster",
	"cvcp/internal/linalg",
	"cvcp/internal/stats",
	"cvcp/internal/runner",
	"cvcp/internal/dist",
	"cvcp/internal/eval",
	"cvcp/internal/constraints",
}

// inDeterministicScope reports whether pkgPath is one of (or nested
// under) the deterministic packages.
func inDeterministicScope(pkgPath string) bool {
	return underAny(pkgPath, deterministicScope)
}

func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Apply runs the given analyzers over pkg, resolves suppression
// directives, appends directive-misuse diagnostics, and returns all
// findings sorted by position. Diagnostics covered by a reasoned
// //cvcplint:ignore directive come back with Suppressed set rather than
// dropped, so callers can count or display them.
func Apply(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	// Overlapping lexical regions (nested critical sections, say) can
	// yield the same finding twice; report each site once.
	seen := map[Diagnostic]bool{}
	uniq := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	diags = uniq
	diags = append(diags, applySuppressions(pkg, analyzers, diags)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ---- shared AST/type helpers ----

// callee resolves the *types.Func a call statically invokes (package
// function or method), or nil for builtins, conversions and calls
// through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleePkgPath returns the defining package path of fn, or "" when fn
// is nil or package-less (error.Error and friends).
func calleePkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObj resolves the object an assignable expression ultimately
// refers to: x, x.f and (x) all root at x. Index expressions return nil
// — indexed writes are per-element and the analyzers treat them
// separately.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if o := info.ObjectOf(e); o != nil {
				return o
			}
			return nil
		case *ast.SelectorExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// within reports whether pos lies inside node's extent.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}

// funcBodies walks every function body in the package's files — one
// call per declaration and per function literal (nested literals are
// yielded separately, after their enclosing body). The enclosing
// *ast.File is passed along for position context.
func funcBodies(files []*ast.File, fn func(file *ast.File, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(f, d.Body)
				}
			case *ast.FuncLit:
				fn(f, d.Body)
			}
			return true
		})
	}
}
