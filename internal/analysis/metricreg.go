package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// MetricReg flags internal/metrics family registration — NewCounter,
// NewCounterVec, NewGauge, NewHistogram — anywhere other than a
// package-level var declaration or an init function. The default
// registry panics on duplicate names by design (a collision is a
// programming error no scrape should paper over), which makes runtime
// registration a latent crash: the second request, job or retry that
// reaches the registering code path brings the process down.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc:  "restricts internal/metrics family registration to package-level var blocks and init functions",
	Run:  runMetricReg,
}

const metricsPkgPath = "cvcp/internal/metrics"

func runMetricReg(pass *Pass) {
	for _, f := range pass.Files {
		// Allowed regions: package-level var specs and init bodies.
		var allowed []ast.Node
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					allowed = append(allowed, d)
				}
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == "init" {
					allowed = append(allowed, d)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass.Info, call)
			if fn == nil || calleePkgPath(fn) != metricsPkgPath || !strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			switch fn.Name() {
			case "NewCounter", "NewCounterVec", "NewGauge", "NewHistogram":
			default:
				return true
			}
			for _, region := range allowed {
				if within(call.Pos(), region) {
					return true
				}
			}
			pass.Reportf(call.Pos(), "metrics.%s outside a package-level var block or init: duplicate runtime registration panics the process; declare metric families once, at package init", fn.Name())
			return true
		})
	}
}
