package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestFPReduce drives the fpreduce fixture: goroutine-shared float
// accumulators and channel-receive sums are flagged; index-addressed
// slots with a left-to-right merge, integer counters and locals pass.
func TestFPReduce(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("fpreduce"), "cvcp/internal/linalg/zfixture", analysis.FPReduce)
}

// TestFPReduceOutOfScope: the same fixture under a server-layer path is
// out of the bit-identity contract; the analyzer must stay silent.
func TestFPReduceOutOfScope(t *testing.T) {
	loadClean(t, analysistest.Fixture("fpreduce"), "cvcp/internal/server/zfixture", analysis.FPReduce)
}
