package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestLintRepoWide is the acceptance gate the lint CI job enforces,
// run as a plain unit test: the full analyzer suite over every
// in-module package must report zero unsuppressed diagnostics. New
// code that trips an analyzer either gets fixed or carries a reasoned
// //cvcplint:ignore directive — silence is not an option either way,
// since reason-less and unused directives are themselves findings.
func TestLintRepoWide(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go list -export over the whole module")
	}
	loader, err := analysis.NewLoader(analysistest.ModuleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	suppressed := 0
	for _, path := range loader.Targets() {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range analysis.Apply(pkg, analysis.All()) {
			if d.Suppressed {
				suppressed++
				continue
			}
			t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	t.Logf("repo-wide: %d packages, %d reasoned suppressions", len(loader.Targets()), suppressed)
}
