// Package analysistest runs analyzers over testdata fixture packages
// and checks their diagnostics against expectations embedded in the
// fixtures — the x/tools analysistest contract, reimplemented over the
// in-repo framework.
//
// A fixture directory holds one package of ordinary Go files (loaded
// under a caller-chosen synthetic import path, so scope-sensitive
// analyzers can be tested both in and out of scope). Expectations are
// trailing comments:
//
//	sum += v // want `float accumulation`
//
// Each `want` backquoted argument is a regexp that must match exactly
// one unsuppressed diagnostic reported on that line; unsuppressed
// diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test. Suppressed diagnostics (a
// //cvcplint:ignore directive in the fixture) must NOT carry a want —
// the point of a suppression fixture is that nothing surfaces.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cvcp/internal/analysis"
)

var wantRe = regexp.MustCompile("// want((?: +`[^`]*`)+)")

// Run loads the fixture package in dir under importPath, applies the
// analyzers, and matches diagnostics against the fixture's want
// comments.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(ModuleRoot(t))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, name := range fixtureFiles(t, dir) {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pat := range regexp.MustCompile("`[^`]*`").FindAllString(m[1], -1) {
				re, err := regexp.Compile(strings.Trim(pat, "`"))
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", name, i+1, pat, err)
				}
				wants = append(wants, &want{file: name, line: i + 1, re: re})
			}
		}
	}

	for _, d := range analysis.Apply(pkg, analyzers) {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString("["+d.Analyzer+"] "+d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// ModuleRoot walks up from the working directory to the enclosing
// go.mod directory.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func fixtureFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	return files
}

// Fixture returns the path of a named fixture package under
// testdata/src relative to the calling test's package directory.
func Fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, parts...)...)
}
