package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestNonDeterm loads the fixture under a deterministic-scope path:
// ambient reads are flagged, seeded randomness and timers pass.
func TestNonDeterm(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("nondeterm"), "cvcp/internal/stats/zfixture", analysis.NonDeterm)
}

// TestNonDetermOutOfScope loads a fixture full of wall-clock and env
// reads under a server-layer path; the analyzer must stay silent.
func TestNonDetermOutOfScope(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("nondeterm_out"), "cvcp/internal/server/zfixture", analysis.NonDeterm)
}
