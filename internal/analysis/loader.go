package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path (or the synthetic path a fixture was loaded under)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader uses.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// A Loader loads packages for analysis. Imports are resolved through
// compiler export data produced by a single `go list -deps -export`
// run, so type-checking a target package never re-checks its
// dependency graph and the whole thing works offline: the toolchain
// compiles (or reuses from the build cache) everything the module
// needs and hands back the export file paths.
type Loader struct {
	Fset *token.FileSet

	dir      string               // module root the go list ran in
	pkgs     map[string]listedPkg // by import path, deps included
	targets  []string             // in-module, non-test import paths, sorted
	importer types.Importer
}

// NewLoader runs `go list` under dir (any directory inside the module)
// for the given package patterns (default ./...) and prepares an
// export-data importer covering the patterns and all their
// dependencies.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{
		Fset: token.NewFileSet(),
		dir:  dir,
		pkgs: map[string]listedPkg{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		l.pkgs[p.ImportPath] = p
		if !p.Standard && p.Module != nil {
			l.targets = append(l.targets, p.ImportPath)
		}
	}
	sort.Strings(l.targets)
	l.importer = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := l.pkgs[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(p.Export)
	})
	return l, nil
}

// Targets returns the in-module import paths matched by the loader's
// patterns, sorted.
func (l *Loader) Targets() []string { return l.targets }

// Load parses and type-checks the named in-module package from source.
func (l *Loader) Load(importPath string) (*Package, error) {
	p, ok := l.pkgs[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: package %q not loaded by go list", importPath)
	}
	files := make([]string, len(p.GoFiles))
	for i, f := range p.GoFiles {
		files[i] = filepath.Join(p.Dir, f)
	}
	return l.check(importPath, p.Dir, files)
}

// LoadDir parses and type-checks every non-test .go file in dir as one
// package registered under the synthetic import path importPath. Test
// fixtures under testdata (invisible to go list) load through this;
// their imports resolve against the loader's export data, so fixtures
// may import both the standard library and in-module packages.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(importPath, dir, files)
}

func (l *Loader) check(importPath, dir string, files []string) (*Package, error) {
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset}
	for _, name := range files {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l.importer,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
