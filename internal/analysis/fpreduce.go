package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FPReduce flags float reductions whose accumulation order is decided
// by the scheduler rather than by code: a float accumulated into a
// captured variable from inside a `go` statement's function literal,
// or accumulated from channel receives (multiple senders interleave
// nondeterministically). Float addition is not associative, so either
// shape produces last-ulp differences between runs — the bug class the
// engine avoids by having workers write into index-addressed slots and
// merging left-to-right (see internal/cvcp's CellPlan contract).
//
// Scoped to the deterministic packages; a worker pool summing request
// counters in the server is not a correctness problem.
var FPReduce = &Analyzer{
	Name: "fpreduce",
	Doc:  "flags scheduling-order float reductions (goroutine-shared accumulators, channel-receive sums) in deterministic packages",
	Run:  runFPReduce,
}

func runFPReduce(pass *Pass) {
	if pass.Pkg == nil || !inDeterministicScope(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		// Goroutine-shared accumulators: float compound assignment
		// inside a FuncLit launched by `go`, into a variable declared
		// outside that literal.
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok {
					return true
				}
				if obj, pos, ok := floatAccumulationOutside(pass.Info, as, lit); ok {
					pass.Reportf(pos, "float accumulation into captured %q inside a goroutine: reduction order depends on scheduling, and float addition is non-associative; write per-task results into index-addressed slots and merge left-to-right", obj.Name())
				}
				return true
			})
			return true
		})
		// Channel-receive sums: `for v := range ch { sum += v }` and
		// `sum += <-ch`.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Chan); !ok {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if _, ok := m.(*ast.FuncLit); ok {
						return false
					}
					as, ok := m.(*ast.AssignStmt)
					if !ok {
						return true
					}
					if obj, pos, ok := floatAccumulationOutside(pass.Info, as, n); ok {
						pass.Reportf(pos, "float accumulation into %q while ranging over a channel: receive order across senders is nondeterministic; collect into index-addressed slots and merge left-to-right", obj.Name())
					}
					return true
				})
			case *ast.AssignStmt:
				if !isCompoundFloatAssign(pass.Info, n) {
					return true
				}
				for _, rhs := range n.Rhs {
					if containsChanRecv(rhs) {
						pass.Reportf(n.Pos(), "float accumulation from a channel receive: receive order across senders is nondeterministic; collect into index-addressed slots and merge left-to-right")
					}
				}
			}
			return true
		})
	}
}

// floatAccumulationOutside matches float compound/self assignment whose
// target is declared outside node.
func floatAccumulationOutside(info *types.Info, as *ast.AssignStmt, node ast.Node) (types.Object, token.Pos, bool) {
	obj, pos, ok := floatAccumTarget(info, as)
	if !ok || within(obj.Pos(), node) {
		return nil, 0, false
	}
	return obj, pos, true
}

// floatAccumTarget matches `x += f`, `x -= f`, `x *= f`, `x /= f` and
// `x = x <op> f` for float x, returning x's object.
func floatAccumTarget(info *types.Info, as *ast.AssignStmt) (types.Object, token.Pos, bool) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) != 1 {
			return nil, 0, false
		}
		obj := rootObj(info, as.Lhs[0])
		if obj != nil && isFloat(info.TypeOf(as.Lhs[0])) {
			return obj, as.Pos(), true
		}
	case token.ASSIGN:
		if len(as.Lhs) != len(as.Rhs) {
			return nil, 0, false
		}
		for i, lhs := range as.Lhs {
			obj := rootObj(info, lhs)
			if obj == nil || !isFloat(info.TypeOf(lhs)) {
				continue
			}
			if exprMentions(info, as.Rhs[i], obj) {
				return obj, as.Pos(), true
			}
		}
	}
	return nil, 0, false
}

func isCompoundFloatAssign(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return len(as.Lhs) == 1 && isFloat(info.TypeOf(as.Lhs[0]))
	}
	return false
}

// containsChanRecv reports whether expr contains a unary channel receive.
func containsChanRecv(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}
