package analysis_test

import (
	"testing"

	"cvcp/internal/analysis"
	"cvcp/internal/analysis/analysistest"
)

// TestLockIO drives the lockio fixture: store I/O, fsyncs and network
// writes inside critical sections (including the deferred-unlock idiom)
// are flagged; the reserve/IO-outside/publish discipline, goroutine
// escapes and separate sections pass.
func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("lockio"), "cvcp/internal/server/zfixture", analysis.LockIO)
}

// TestLockIOStoreExempt: the same WAL-append-under-own-mutex shape
// inside internal/store is that package's documented design and must
// not be flagged.
func TestLockIOStoreExempt(t *testing.T) {
	analysistest.Run(t, analysistest.Fixture("lockio_store"), "cvcp/internal/store/zfixture", analysis.LockIO)
}
