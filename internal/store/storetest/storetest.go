// Package storetest wraps a store.Store with scripted fault injection for
// exercising the error paths of store consumers — the server's submit and
// replay flows, the distributed coordinator and workers — without a real
// failing disk. A Faulty store delegates every operation to the wrapped
// store, but first consults per-operation hooks that can return errors,
// inject latency, or observe arguments; it also counts every call so tests
// can assert how consumers retried or backed off.
package storetest

import (
	"sync"
	"sync/atomic"
	"time"

	"cvcp/internal/store"
)

// Op names one Store operation for hooks and counters.
type Op string

const (
	OpPut          Op = "Put"
	OpGet          Op = "Get"
	OpList         Op = "List"
	OpDelete       Op = "Delete"
	OpUpdate       Op = "Update"
	OpAppendEvents Op = "AppendEvents"
	OpEventsSince  Op = "EventsSince"
)

// Ops lists every operation, in a stable order.
var Ops = []Op{OpPut, OpGet, OpList, OpDelete, OpUpdate, OpAppendEvents, OpEventsSince}

// Faulty is a store.Store (and store.Updater, when the wrapped store is
// one) with scripted failures. The zero value is not usable; construct
// with Wrap. All methods are safe for concurrent use, like the stores
// they wrap.
type Faulty struct {
	inner store.Store

	mu     sync.Mutex
	hooks  map[Op]func(call int, id string) error
	delays map[Op]time.Duration
	counts map[Op]*atomic.Int64
}

// Wrap returns a Faulty delegating to inner. With no hooks installed it
// behaves exactly like inner (plus call counting).
func Wrap(inner store.Store) *Faulty {
	f := &Faulty{
		inner:  inner,
		hooks:  map[Op]func(int, string) error{},
		delays: map[Op]time.Duration{},
		counts: map[Op]*atomic.Int64{},
	}
	for _, op := range Ops {
		f.counts[op] = &atomic.Int64{}
	}
	return f
}

// Hook installs fn for op. Before delegating, the operation calls
// fn(call, id) — call is the 1-based invocation number of that op, id the
// record or job ID ("" for List) — and a non-nil return aborts the
// operation with that error, leaving the wrapped store untouched.
// A nil fn clears the hook.
func (f *Faulty) Hook(op Op, fn func(call int, id string) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fn == nil {
		delete(f.hooks, op)
		return
	}
	f.hooks[op] = fn
}

// FailCalls makes the listed 1-based invocations of op fail with err,
// counting from the current call count. Other invocations pass through.
func (f *Faulty) FailCalls(op Op, err error, calls ...int) {
	fail := map[int]bool{}
	for _, c := range calls {
		fail[c] = true
	}
	f.Hook(op, func(call int, id string) error {
		if fail[call] {
			return err
		}
		return nil
	})
}

// SetDelay makes every invocation of op sleep for d before delegating
// (after its hook, so a failing call does not pay the latency). d <= 0
// clears the delay.
func (f *Faulty) SetDelay(op Op, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d <= 0 {
		delete(f.delays, op)
		return
	}
	f.delays[op] = d
}

// Calls reports how many times op has been invoked (including aborted
// invocations).
func (f *Faulty) Calls(op Op) int {
	return int(f.counts[op].Load())
}

// before runs the op's bookkeeping: count, hook, delay. It returns the
// hook's error, if any.
func (f *Faulty) before(op Op, id string) error {
	call := int(f.counts[op].Add(1))
	f.mu.Lock()
	hook := f.hooks[op]
	delay := f.delays[op]
	f.mu.Unlock()
	if hook != nil {
		if err := hook(call, id); err != nil {
			return err
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return nil
}

func (f *Faulty) Put(rec store.Record) error {
	if err := f.before(OpPut, rec.ID); err != nil {
		return err
	}
	return f.inner.Put(rec)
}

func (f *Faulty) Get(id string) (store.Record, bool, error) {
	if err := f.before(OpGet, id); err != nil {
		return store.Record{}, false, err
	}
	return f.inner.Get(id)
}

func (f *Faulty) List(cursor string, limit int) ([]store.Record, string, error) {
	if err := f.before(OpList, ""); err != nil {
		return nil, "", err
	}
	return f.inner.List(cursor, limit)
}

func (f *Faulty) Delete(id string) error {
	if err := f.before(OpDelete, id); err != nil {
		return err
	}
	return f.inner.Delete(id)
}

func (f *Faulty) Len() (int, error) {
	return f.inner.Len()
}

func (f *Faulty) Close() error {
	return f.inner.Close()
}

func (f *Faulty) AppendEvents(id string, events []store.Event) error {
	if err := f.before(OpAppendEvents, id); err != nil {
		return err
	}
	return f.inner.AppendEvents(id, events)
}

func (f *Faulty) EventsSince(id string, afterSeq int) ([]store.Event, error) {
	if err := f.before(OpEventsSince, id); err != nil {
		return nil, err
	}
	return f.inner.EventsSince(id, afterSeq)
}

// Update implements store.Updater when the wrapped store does; it panics
// otherwise, mirroring how consumers type-assert for the capability.
func (f *Faulty) Update(id string, fn func(cur store.Record, ok bool) (store.Record, bool, error)) (store.Record, error) {
	if err := f.before(OpUpdate, id); err != nil {
		return store.Record{}, err
	}
	return f.inner.(store.Updater).Update(id, fn)
}
