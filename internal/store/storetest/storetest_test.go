package storetest

import (
	"errors"
	"testing"
	"time"

	"cvcp/internal/store"
)

var errBoom = errors.New("boom")

func TestPassThroughAndCounting(t *testing.T) {
	f := Wrap(store.NewMemory())
	defer f.Close()

	if err := f.Put(store.Record{ID: "job-1", Status: "queued"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := f.Get("job-1"); err != nil || !ok {
		t.Fatalf("Get = ok %v, err %v", ok, err)
	}
	if recs, _, err := f.List("", 0); err != nil || len(recs) != 1 {
		t.Fatalf("List = %d records, err %v", len(recs), err)
	}
	if err := f.AppendEvents("job-1", []store.Event{{Seq: 1, Data: []byte("{}")}}); err != nil {
		t.Fatal(err)
	}
	if evs, err := f.EventsSince("job-1", 0); err != nil || len(evs) != 1 {
		t.Fatalf("EventsSince = %d events, err %v", len(evs), err)
	}
	if err := f.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	for op, want := range map[Op]int{OpPut: 1, OpGet: 1, OpList: 1, OpAppendEvents: 1, OpEventsSince: 1, OpDelete: 1, OpUpdate: 0} {
		if got := f.Calls(op); got != want {
			t.Errorf("Calls(%s) = %d, want %d", op, got, want)
		}
	}
}

func TestFailCalls(t *testing.T) {
	f := Wrap(store.NewMemory())
	defer f.Close()

	f.FailCalls(OpPut, errBoom, 1, 3)
	rec := store.Record{ID: "job-1", Status: "queued"}
	if err := f.Put(rec); !errors.Is(err, errBoom) {
		t.Fatalf("call 1 error = %v, want boom", err)
	}
	// The aborted call must not have reached the inner store.
	if _, ok, _ := f.Get("job-1"); ok {
		t.Fatal("failed Put still wrote the record")
	}
	if err := f.Put(rec); err != nil {
		t.Fatalf("call 2 error = %v, want nil", err)
	}
	if err := f.Put(rec); !errors.Is(err, errBoom) {
		t.Fatalf("call 3 error = %v, want boom", err)
	}
	f.Hook(OpPut, nil)
	if err := f.Put(rec); err != nil {
		t.Fatalf("after clearing the hook: %v", err)
	}
}

func TestUpdatePassesThrough(t *testing.T) {
	f := Wrap(store.NewMemory())
	defer f.Close()

	if err := f.Put(store.Record{ID: "job-1", Status: "queued"}); err != nil {
		t.Fatal(err)
	}
	rec, err := f.Update("job-1", func(cur store.Record, ok bool) (store.Record, bool, error) {
		if !ok {
			t.Fatal("Update saw no record")
		}
		cur.Status = "running"
		return cur, true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "running" {
		t.Fatalf("Update returned status %q", rec.Status)
	}
	f.FailCalls(OpUpdate, errBoom, 2)
	if _, err := f.Update("job-1", func(cur store.Record, ok bool) (store.Record, bool, error) {
		return cur, false, nil
	}); !errors.Is(err, errBoom) {
		t.Fatalf("Update error = %v, want boom", err)
	}
}

func TestSetDelay(t *testing.T) {
	f := Wrap(store.NewMemory())
	defer f.Close()

	f.SetDelay(OpGet, 30*time.Millisecond)
	start := time.Now()
	if _, _, err := f.Get("nope"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Get returned after %v, want >= 30ms", d)
	}
	f.SetDelay(OpGet, 0)
	start = time.Now()
	if _, _, err := f.Get("nope"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("cleared delay still slept %v", d)
	}
}
