//go:build !unix

package store

import (
	"errors"
	"os"
)

// The Shared store's cross-process mutual exclusion is built on flock,
// which this platform does not provide; OpenShared fails cleanly rather
// than serving a store without its safety guarantees.
var errNoFlock = errors.New("store: shared store requires flock, unavailable on this platform")

func flockEx(*os.File) error { return errNoFlock }

func flockUn(*os.File) error { return errNoFlock }
