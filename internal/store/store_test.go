package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// implementations returns a fresh instance of every Store implementation,
// so the contract tests below run against all of them.
func implementations(t *testing.T) map[string]Store {
	t.Helper()
	file, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "file": file}
}

func rec(n int, status string) Record {
	return Record{
		ID:      fmt.Sprintf("job-%06d", n),
		Status:  status,
		Created: time.Date(2026, 7, 30, 12, 0, n, 0, time.UTC),
		Spec:    json.RawMessage(fmt.Sprintf(`{"seed":%d}`, n)),
	}
}

func TestStoreContract(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			// Empty store.
			if n, err := s.Len(); err != nil || n != 0 {
				t.Fatalf("empty Len = %d, %v", n, err)
			}
			if _, ok, err := s.Get("job-000001"); err != nil || ok {
				t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
			}
			recs, next, err := s.List("", 10)
			if err != nil || len(recs) != 0 || next != "" {
				t.Fatalf("List on empty store: %v, %q, %v", recs, next, err)
			}

			// Insert out of order; listing must come back sorted.
			for _, n := range []int{3, 1, 2, 5, 4} {
				if err := s.Put(rec(n, "queued")); err != nil {
					t.Fatal(err)
				}
			}
			if n, _ := s.Len(); n != 5 {
				t.Fatalf("Len = %d, want 5", n)
			}
			recs, next, err = s.List("", 0)
			if err != nil || next != "" {
				t.Fatalf("full List: next=%q err=%v", next, err)
			}
			for i, r := range recs {
				if want := fmt.Sprintf("job-%06d", i+1); r.ID != want {
					t.Fatalf("List[%d] = %s, want %s", i, r.ID, want)
				}
			}

			// Overwrite updates in place.
			up := rec(2, "done")
			up.Result = json.RawMessage(`{"best_param":6}`)
			if err := s.Put(up); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get("job-000002")
			if err != nil || !ok || got.Status != "done" || string(got.Result) != `{"best_param":6}` {
				t.Fatalf("after overwrite: %+v ok=%v err=%v", got, ok, err)
			}
			if n, _ := s.Len(); n != 5 {
				t.Fatalf("Len after overwrite = %d, want 5", n)
			}

			// Cursor pagination walks every record exactly once, in order.
			var walked []string
			cursor := ""
			for pages := 0; ; pages++ {
				if pages > 5 {
					t.Fatal("pagination never terminated")
				}
				recs, next, err := s.List(cursor, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range recs {
					walked = append(walked, r.ID)
				}
				if next == "" {
					break
				}
				cursor = next
			}
			if len(walked) != 5 {
				t.Fatalf("pagination walked %d records: %v", len(walked), walked)
			}
			for i := 1; i < len(walked); i++ {
				if walked[i] <= walked[i-1] {
					t.Fatalf("pagination out of order: %v", walked)
				}
			}

			// A cursor naming a deleted record still works: records after
			// it are returned.
			if err := s.Delete("job-000003"); err != nil {
				t.Fatal(err)
			}
			recs, _, err = s.List("job-000003", 0)
			if err != nil || len(recs) != 2 || recs[0].ID != "job-000004" {
				t.Fatalf("List after deleted cursor: %+v err=%v", recs, err)
			}
			// Deleting a missing record is a no-op.
			if err := s.Delete("job-009999"); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Len(); n != 4 {
				t.Fatalf("Len after delete = %d, want 4", n)
			}

			// Closed stores refuse everything.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(rec(9, "queued")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after Close = %v, want ErrClosed", err)
			}
			if _, _, err := s.List("", 0); !errors.Is(err, ErrClosed) {
				t.Fatalf("List after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// Mutating a record after Put (or the slices returned by Get/List) must
// not alter stored state.
func TestStoreAliasing(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			r := rec(1, "queued")
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			r.Spec[1] = 'X' // corrupt the caller's copy
			got, _, _ := s.Get(r.ID)
			if string(got.Spec) != `{"seed":1}` {
				t.Fatalf("stored spec aliased caller memory: %s", got.Spec)
			}
			got.Spec[1] = 'Y'
			again, _, _ := s.Get(r.ID)
			if string(again.Spec) != `{"seed":1}` {
				t.Fatalf("Get returned aliased memory: %s", again.Spec)
			}
		})
	}
}

// TestStoreConcurrency hammers a store from many goroutines; meaningful
// under -race.
func TestStoreConcurrency(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < 20; k++ {
						n := g*100 + k
						if err := s.Put(rec(n, "queued")); err != nil {
							t.Error(err)
							return
						}
						s.Get(rec(n, "").ID)
						s.List("", 5)
						if k%3 == 0 {
							s.Delete(rec(n, "").ID)
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestFileStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 3; n++ {
		if err := s.Put(rec(n, "queued")); err != nil {
			t.Fatal(err)
		}
	}
	done := rec(2, "done")
	done.Result = json.RawMessage(`{"best_param":3}`)
	if err := s.Put(done); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-000003"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Len(); n != 2 {
		t.Fatalf("reopened Len = %d, want 2", n)
	}
	got, ok, _ := re.Get("job-000002")
	if !ok || got.Status != "done" || string(got.Result) != `{"best_param":3}` {
		t.Fatalf("reopened record: %+v ok=%v", got, ok)
	}
	if _, ok, _ := re.Get("job-000003"); ok {
		t.Fatal("deleted record resurrected by reopen")
	}
}

// A huge limit (e.g. a client sending MaxInt) must page, not overflow
// into a slice-bounds panic.
func TestStoreHugeLimit(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for n := 1; n <= 3; n++ {
				if err := s.Put(rec(n, "queued")); err != nil {
					t.Fatal(err)
				}
			}
			recs, next, err := s.List("job-000001", int(^uint(0)>>1))
			if err != nil || len(recs) != 2 || next != "" {
				t.Fatalf("MaxInt limit after cursor: %d records, next %q, err %v", len(recs), next, err)
			}
		})
	}
}

// A crash mid-append leaves a torn final WAL line; Open must tolerate it
// and keep every complete entry.
func TestFileStoreTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 2; n++ {
		if err := s.Put(rec(n, "running")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: the process dies without Close, then the last
	// line is torn.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with torn WAL: %v", err)
	}
	if _, ok, _ := re.Get("job-000001"); !ok {
		t.Fatal("complete entry lost")
	}
	if _, ok, _ := re.Get("job-000002"); ok {
		t.Fatal("torn entry half-applied")
	}

	// Open must have trimmed the torn tail: appending new entries and
	// reopening again must work (a torn line left in place would become
	// fatal interior corruption once appended after).
	if err := re.Put(rec(3, "queued")); err != nil {
		t.Fatal(err)
	}
	// Skip Close (it compacts the WAL away); reopen over the live file.
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after post-tear appends: %v", err)
	}
	defer again.Close()
	if _, ok, _ := again.Get("job-000003"); !ok {
		t.Fatal("post-tear append lost")
	}
	re.Close()
}

// A corrupt line with more data after it means real damage: Open must
// refuse rather than silently drop the tail.
func TestFileStoreCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data = append([]byte("{broken\n"), data...)
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt interior WAL line")
	}
}

// Compaction must fold the WAL into the snapshot without changing the
// observable record set.
func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Overwrite a handful of records far more than compactMinWAL times:
	// the log crosses the compaction threshold while few records are
	// resident.
	for i := 0; i < compactMinWAL+50; i++ {
		if err := s.Put(rec(i%5, fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	walLen := s.walLen
	s.mu.Unlock()
	if walLen >= compactMinWAL {
		t.Fatalf("WAL never compacted: %d entries", walLen)
	}
	if n, _ := s.Len(); n != 5 {
		t.Fatalf("Len after compaction = %d, want 5", n)
	}
	// The last write to job-000000 was the largest i with i%5 == 0.
	lastI := (compactMinWAL + 49) / 5 * 5
	got, ok, _ := s.Get("job-000000")
	if !ok || got.Status != fmt.Sprintf("state-%d", lastI) {
		t.Fatalf("latest overwrite lost by compaction: %+v", got)
	}
}
