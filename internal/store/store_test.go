package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// implementations returns a fresh instance of every Store implementation,
// so the contract tests below run against all of them.
func implementations(t *testing.T) map[string]Store {
	t.Helper()
	file, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared, err := OpenShared(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "file": file, "shared": shared}
}

func rec(n int, status string) Record {
	return Record{
		ID:      fmt.Sprintf("job-%06d", n),
		Status:  status,
		Created: time.Date(2026, 7, 30, 12, 0, n, 0, time.UTC),
		Spec:    json.RawMessage(fmt.Sprintf(`{"seed":%d}`, n)),
	}
}

func TestStoreContract(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			// Empty store.
			if n, err := s.Len(); err != nil || n != 0 {
				t.Fatalf("empty Len = %d, %v", n, err)
			}
			if _, ok, err := s.Get("job-000001"); err != nil || ok {
				t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
			}
			recs, next, err := s.List("", 10)
			if err != nil || len(recs) != 0 || next != "" {
				t.Fatalf("List on empty store: %v, %q, %v", recs, next, err)
			}

			// Insert out of order; listing must come back sorted.
			for _, n := range []int{3, 1, 2, 5, 4} {
				if err := s.Put(rec(n, "queued")); err != nil {
					t.Fatal(err)
				}
			}
			if n, _ := s.Len(); n != 5 {
				t.Fatalf("Len = %d, want 5", n)
			}
			recs, next, err = s.List("", 0)
			if err != nil || next != "" {
				t.Fatalf("full List: next=%q err=%v", next, err)
			}
			for i, r := range recs {
				if want := fmt.Sprintf("job-%06d", i+1); r.ID != want {
					t.Fatalf("List[%d] = %s, want %s", i, r.ID, want)
				}
			}

			// Overwrite updates in place.
			up := rec(2, "done")
			up.Result = json.RawMessage(`{"best_param":6}`)
			if err := s.Put(up); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get("job-000002")
			if err != nil || !ok || got.Status != "done" || string(got.Result) != `{"best_param":6}` {
				t.Fatalf("after overwrite: %+v ok=%v err=%v", got, ok, err)
			}
			if n, _ := s.Len(); n != 5 {
				t.Fatalf("Len after overwrite = %d, want 5", n)
			}

			// Cursor pagination walks every record exactly once, in order.
			var walked []string
			cursor := ""
			for pages := 0; ; pages++ {
				if pages > 5 {
					t.Fatal("pagination never terminated")
				}
				recs, next, err := s.List(cursor, 2)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range recs {
					walked = append(walked, r.ID)
				}
				if next == "" {
					break
				}
				cursor = next
			}
			if len(walked) != 5 {
				t.Fatalf("pagination walked %d records: %v", len(walked), walked)
			}
			for i := 1; i < len(walked); i++ {
				if walked[i] <= walked[i-1] {
					t.Fatalf("pagination out of order: %v", walked)
				}
			}

			// A cursor naming a deleted record still works: records after
			// it are returned.
			if err := s.Delete("job-000003"); err != nil {
				t.Fatal(err)
			}
			recs, _, err = s.List("job-000003", 0)
			if err != nil || len(recs) != 2 || recs[0].ID != "job-000004" {
				t.Fatalf("List after deleted cursor: %+v err=%v", recs, err)
			}
			// Deleting a missing record is a no-op.
			if err := s.Delete("job-009999"); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Len(); n != 4 {
				t.Fatalf("Len after delete = %d, want 4", n)
			}

			// Closed stores refuse everything.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(rec(9, "queued")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after Close = %v, want ErrClosed", err)
			}
			if _, _, err := s.List("", 0); !errors.Is(err, ErrClosed) {
				t.Fatalf("List after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// Mutating a record after Put (or the slices returned by Get/List) must
// not alter stored state.
func TestStoreAliasing(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			r := rec(1, "queued")
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			r.Spec[1] = 'X' // corrupt the caller's copy
			got, _, _ := s.Get(r.ID)
			if string(got.Spec) != `{"seed":1}` {
				t.Fatalf("stored spec aliased caller memory: %s", got.Spec)
			}
			got.Spec[1] = 'Y'
			again, _, _ := s.Get(r.ID)
			if string(again.Spec) != `{"seed":1}` {
				t.Fatalf("Get returned aliased memory: %s", again.Spec)
			}
		})
	}
}

// TestStoreConcurrency hammers a store from many goroutines; meaningful
// under -race.
func TestStoreConcurrency(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < 20; k++ {
						n := g*100 + k
						if err := s.Put(rec(n, "queued")); err != nil {
							t.Error(err)
							return
						}
						s.Get(rec(n, "").ID)
						s.List("", 5)
						if k%3 == 0 {
							s.Delete(rec(n, "").ID)
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestFileStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 3; n++ {
		if err := s.Put(rec(n, "queued")); err != nil {
			t.Fatal(err)
		}
	}
	done := rec(2, "done")
	done.Result = json.RawMessage(`{"best_param":3}`)
	if err := s.Put(done); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-000003"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n, _ := re.Len(); n != 2 {
		t.Fatalf("reopened Len = %d, want 2", n)
	}
	got, ok, _ := re.Get("job-000002")
	if !ok || got.Status != "done" || string(got.Result) != `{"best_param":3}` {
		t.Fatalf("reopened record: %+v ok=%v", got, ok)
	}
	if _, ok, _ := re.Get("job-000003"); ok {
		t.Fatal("deleted record resurrected by reopen")
	}
}

// A huge limit (e.g. a client sending MaxInt) must page, not overflow
// into a slice-bounds panic.
func TestStoreHugeLimit(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			for n := 1; n <= 3; n++ {
				if err := s.Put(rec(n, "queued")); err != nil {
					t.Fatal(err)
				}
			}
			recs, next, err := s.List("job-000001", int(^uint(0)>>1))
			if err != nil || len(recs) != 2 || next != "" {
				t.Fatalf("MaxInt limit after cursor: %d records, next %q, err %v", len(recs), next, err)
			}
		})
	}
}

// A crash mid-append leaves a torn final WAL line; Open must tolerate it
// and keep every complete entry.
func TestFileStoreTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 2; n++ {
		if err := s.Put(rec(n, "running")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: the process dies without Close, then the last
	// line is torn.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with torn WAL: %v", err)
	}
	if _, ok, _ := re.Get("job-000001"); !ok {
		t.Fatal("complete entry lost")
	}
	if _, ok, _ := re.Get("job-000002"); ok {
		t.Fatal("torn entry half-applied")
	}

	// Open must have trimmed the torn tail: appending new entries and
	// reopening again must work (a torn line left in place would become
	// fatal interior corruption once appended after).
	if err := re.Put(rec(3, "queued")); err != nil {
		t.Fatal(err)
	}
	// Skip Close (it compacts the WAL away); reopen over the live file.
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after post-tear appends: %v", err)
	}
	defer again.Close()
	if _, ok, _ := again.Get("job-000003"); !ok {
		t.Fatal("post-tear append lost")
	}
	re.Close()
}

// A corrupt line with more data after it means real damage: Open must
// refuse rather than silently drop the tail.
func TestFileStoreCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data = append([]byte("{broken\n"), data...)
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt interior WAL line")
	}
}

// Compaction must fold the WAL into the snapshot without changing the
// observable record set.
func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Overwrite a handful of records far more than compactMinWAL times:
	// the log crosses the compaction threshold while few records are
	// resident.
	for i := 0; i < compactMinWAL+50; i++ {
		if err := s.Put(rec(i%5, fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	walLen := s.walLen
	s.mu.Unlock()
	if walLen >= compactMinWAL {
		t.Fatalf("WAL never compacted: %d entries", walLen)
	}
	if n, _ := s.Len(); n != 5 {
		t.Fatalf("Len after compaction = %d, want 5", n)
	}
	// The last write to job-000000 was the largest i with i%5 == 0.
	lastI := (compactMinWAL + 49) / 5 * 5
	got, ok, _ := s.Get("job-000000")
	if !ok || got.Status != fmt.Sprintf("state-%d", lastI) {
		t.Fatalf("latest overwrite lost by compaction: %+v", got)
	}
}

func ev(seq int) Event {
	return Event{Seq: seq, Data: json.RawMessage(fmt.Sprintf(`{"seq":%d,"type":"progress","done":%d}`, seq, seq))}
}

// The event-log half of the Store contract, against every implementation.
func TestEventLogContract(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			// No log yet: empty scan, no error.
			evs, err := s.EventsSince("job-000001", 0)
			if err != nil || len(evs) != 0 {
				t.Fatalf("EventsSince on empty log: %v, %v", evs, err)
			}
			// Empty append is a no-op.
			if err := s.AppendEvents("job-000001", nil); err != nil {
				t.Fatal(err)
			}

			// Appends accumulate in order, across batches.
			if err := s.AppendEvents("job-000001", []Event{ev(1), ev(2)}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEvents("job-000001", []Event{ev(3)}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEvents("job-000002", []Event{ev(1)}); err != nil {
				t.Fatal(err)
			}
			evs, err = s.EventsSince("job-000001", 0)
			if err != nil || len(evs) != 3 {
				t.Fatalf("full scan: %d events, err %v", len(evs), err)
			}
			for i, e := range evs {
				if e.Seq != i+1 {
					t.Fatalf("event %d has seq %d", i, e.Seq)
				}
			}

			// Scan-since-seq returns strictly later events only.
			evs, _ = s.EventsSince("job-000001", 2)
			if len(evs) != 1 || evs[0].Seq != 3 {
				t.Fatalf("EventsSince(2) = %+v", evs)
			}
			if evs, _ = s.EventsSince("job-000001", 3); len(evs) != 0 {
				t.Fatalf("EventsSince(last) = %+v", evs)
			}

			// Logs are per job.
			if evs, _ = s.EventsSince("job-000002", 0); len(evs) != 1 {
				t.Fatalf("job-000002 log = %+v", evs)
			}

			// Delete of the record drops the event log with it — even when
			// no record was ever put (events precede the first Put during a
			// submission).
			if err := s.Delete("job-000001"); err != nil {
				t.Fatal(err)
			}
			if evs, _ = s.EventsSince("job-000001", 0); len(evs) != 0 {
				t.Fatalf("events survived Delete: %+v", evs)
			}
			if evs, _ = s.EventsSince("job-000002", 0); len(evs) != 1 {
				t.Fatal("Delete leaked into another job's log")
			}

			// Closed stores refuse event operations too.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEvents("job-000002", []Event{ev(2)}); !errors.Is(err, ErrClosed) {
				t.Fatalf("AppendEvents after Close = %v, want ErrClosed", err)
			}
			if _, err := s.EventsSince("job-000002", 0); !errors.Is(err, ErrClosed) {
				t.Fatalf("EventsSince after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// Mutating an event after AppendEvents (or one returned by EventsSince)
// must not alter stored state.
func TestEventLogAliasing(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			in := []Event{ev(1)}
			if err := s.AppendEvents("job-000001", in); err != nil {
				t.Fatal(err)
			}
			in[0].Data[1] = 'X'
			out, err := s.EventsSince("job-000001", 0)
			if err != nil || len(out) != 1 {
				t.Fatalf("EventsSince: %v, %v", out, err)
			}
			if string(out[0].Data) != string(ev(1).Data) {
				t.Fatalf("stored event aliased caller memory: %s", out[0].Data)
			}
			out[0].Data[1] = 'Y'
			again, _ := s.EventsSince("job-000001", 0)
			if string(again[0].Data) != string(ev(1).Data) {
				t.Fatalf("EventsSince returned aliased memory: %s", again[0].Data)
			}
		})
	}
}

// Event appends survive a reopen: the WAL replays them onto the
// snapshot, torn-tail rules included.
func TestFileEventsReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1), ev(2)}); err != nil {
		t.Fatal(err)
	}
	// A record write is the sync barrier after coalesced event appends.
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(3)}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the process dying with the WAL as-is.

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := re.EventsSince("job-000001", 0)
	if err != nil || len(evs) != 3 {
		t.Fatalf("reopened log = %d events, err %v", len(evs), err)
	}
	for i, e := range evs {
		if e.Seq != i+1 || string(e.Data) != string(ev(i+1).Data) {
			t.Fatalf("reopened event %d = %+v", i, e)
		}
	}
	re.Close()

	// And a clean Close compacts the events into the snapshot.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if evs, _ := again.EventsSince("job-000001", 0); len(evs) != 3 {
		t.Fatalf("post-compaction log = %d events", len(evs))
	}
}

// A crash mid-append can tear the final event line; Open must tolerate
// it, keep every complete entry, and keep the log appendable.
func TestFileEventsTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The owning record must exist, or a reopen sweeps the job's log as
	// a submission-window orphan.
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(2)}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with torn event tail: %v", err)
	}
	evs, _ := re.EventsSince("job-000001", 0)
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("after torn tail: %+v", evs)
	}
	// The tail was trimmed: appending and reopening keeps working.
	if err := re.AppendEvents("job-000001", []Event{ev(2)}); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after post-tear appends: %v", err)
	}
	defer again.Close()
	if evs, _ := again.EventsSince("job-000001", 0); len(evs) != 2 {
		t.Fatalf("post-tear append lost: %+v", evs)
	}
	re.Close()
}

// A corrupt line followed only by event entries is the coalesced-fsync
// crash signature: Open recovers by dropping the damaged suffix (event
// durability allows suffix loss) instead of refusing to start.
func TestFileEventsCorruptInteriorLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data = append([]byte("{torn event\n"), data...)
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open refused a corrupt all-events tail: %v", err)
	}
	defer re.Close()
	if evs, _ := re.EventsSince("job-000001", 0); len(evs) != 0 {
		t.Fatalf("events recovered from the dropped region: %+v", evs)
	}
}

// The snapshot carries a format version: current snapshots round-trip
// events, pre-event (v0) snapshots still load, and snapshots from a
// newer format are refused instead of silently dropping state.
func TestFileSnapshotVersioning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "done")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1), ev(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // compacts: events land in the snapshot
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshotName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != snapshotVersion {
		t.Fatalf("snapshot version = %d, want %d", snap.Version, snapshotVersion)
	}
	if len(snap.Events["job-000001"]) != 2 {
		t.Fatalf("snapshot events = %+v", snap.Events)
	}

	// A legacy v0 snapshot (records only, no version field) still loads.
	legacy := []byte(`{"records":[{"id":"job-000009","status":"done","created":"2026-07-30T12:00:00Z"}]}`)
	if err := os.WriteFile(snapPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, walName))
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("v0 snapshot refused: %v", err)
	}
	if _, ok, _ := re.Get("job-000009"); !ok {
		t.Fatal("v0 snapshot record lost")
	}
	re.Close()

	// A snapshot from a future format version is refused.
	future := []byte(`{"version":99,"records":[]}`)
	if err := os.WriteFile(snapPath, future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a snapshot from the future")
	}
}

// Compaction must fold event logs into the snapshot without changing the
// observable event sequences.
func TestFileEventsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendEvents("job-000001", []Event{ev(1), ev(2), ev(3)}); err != nil {
		t.Fatal(err)
	}
	// Overwrite a handful of records until the WAL crosses the
	// compaction threshold.
	for i := 0; i < 8*compactMinWAL; i++ {
		if err := s.Put(rec(i%5, fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	walLen := s.walLen
	s.mu.Unlock()
	if walLen >= compactMinWAL {
		t.Fatalf("WAL never compacted: %d entries", walLen)
	}
	evs, err := s.EventsSince("job-000001", 0)
	if err != nil || len(evs) != 3 {
		t.Fatalf("events after compaction: %d, err %v", len(evs), err)
	}
	if evs, _ := s.EventsSince("job-000001", 1); len(evs) != 2 || evs[0].Seq != 2 {
		t.Fatalf("scan-since after compaction: %+v", evs)
	}
}

// TestEventLogConcurrency hammers appends, scans and deletes from many
// goroutines; meaningful under -race (it also exercises the coalescing
// sync timer against concurrent record writes). Each goroutine owns its
// job (the EventLog contract requires per-job monotone seqs), and all
// goroutines additionally contend on one shared job through an atomic
// sequence counter, so cross-goroutine append/scan interleavings on a
// single key are exercised too.
func TestEventLogConcurrency(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			// The shared job mirrors the server's publish pattern: seq
			// assignment and append serialize under one mutex (the job
			// mutex in production), while different jobs append freely.
			const shared = "job-shared"
			var sharedMu sync.Mutex
			sharedSeq := 0
			appendShared := func() error {
				sharedMu.Lock()
				defer sharedMu.Unlock()
				sharedSeq++
				return s.AppendEvents(shared, []Event{ev(sharedSeq)})
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					id := fmt.Sprintf("job-%06d", g)
					for k := 1; k <= 25; k++ {
						if err := s.AppendEvents(id, []Event{ev(k)}); err != nil {
							t.Error(err)
							return
						}
						if err := appendShared(); err != nil {
							t.Error(err)
							return
						}
						if _, err := s.EventsSince(id, k/2); err != nil {
							t.Error(err)
							return
						}
						if _, err := s.EventsSince(shared, 0); err != nil {
							t.Error(err)
							return
						}
						if k%7 == 0 {
							if err := s.Put(rec(g, "running")); err != nil { // sync barrier interleaved
								t.Error(err)
								return
							}
						}
						if k%11 == 0 && g == 3 {
							if err := s.Delete(id); err != nil {
								t.Error(err)
								return
							}
						}
					}
					if g != 3 { // goroutine 3 deletes its own log mid-run
						if evs, err := s.EventsSince(id, 0); err != nil || len(evs) != 25 {
							t.Errorf("job %s: %d events after hammer (err %v), want 25", id, len(evs), err)
						}
					}
				}(g)
			}
			wg.Wait()
			// The shared job saw 8×25 contract-conforming appends; every
			// one must have landed.
			if evs, err := s.EventsSince(shared, 0); err != nil || len(evs) != 200 {
				t.Fatalf("shared job: %d events after hammer (err %v), want 200", len(evs), err)
			}
		})
	}
}

// Crash damage confined to the coalesced-event tail region — a garbled
// event entry with only event entries after it — recovers as a torn
// tail: records survive, the damaged suffix is dropped, and the store
// opens. The same damage followed by a record entry is fatal.
func TestFileEventsCorruptUnsyncedRegion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(2)}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Garble the first event entry (simulating non-prefix writeback of
	// the unsynced suffix) while the second event entry stays intact.
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("unexpected WAL shape: %d lines", len(lines))
	}
	garbled := append([]byte(nil), lines[0]...)             // the record put
	garbled = append(garbled, []byte("\x00\x00{oops\n")...) // event entry 1, destroyed
	garbled = append(garbled, lines[2]...)                  // event entry 2, intact
	if err := os.WriteFile(wal, garbled, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open refused a corrupt coalesced-event tail: %v", err)
	}
	if _, ok, _ := re.Get("job-000001"); !ok {
		t.Fatal("record lost")
	}
	// The damaged suffix (both event entries) is dropped — within the
	// event-durability contract.
	if evs, _ := re.EventsSince("job-000001", 0); len(evs) != 0 {
		t.Fatalf("events recovered from the dropped region: %+v", evs)
	}
	re.Close()

	// Same garbled line, but a RECORD entry after it: acknowledged
	// durable state would vanish, so Open must refuse.
	fatal := append([]byte(nil), lines[0]...)
	fatal = append(fatal, []byte("\x00\x00{oops\n")...)
	fatal = append(fatal, lines[0]...) // a put entry after the damage
	if err := os.WriteFile(wal, fatal, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, snapshotName))
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted corruption with a record entry after it")
	}
}

// A crash between the snapshot rename and the WAL truncation replays
// "ev" entries that the snapshot already contains; the replay must be
// idempotent (record puts overwrite, event appends must dedup by seq)
// or every event would double.
func TestFileEventsReplayIdempotentAfterCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1), ev(2)}); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	preCompaction, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Compact (Close does), then put the pre-compaction WAL back —
	// exactly the state a crash after the snapshot rename but before
	// the truncation leaves behind.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, preCompaction, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	evs, err := re.EventsSince("job-000001", 0)
	if err != nil || len(evs) != 2 {
		t.Fatalf("replay duplicated events: got %d (%+v), want 2", len(evs), evs)
	}
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Fatalf("event %d has seq %d after replay", i, e.Seq)
		}
	}
	// And appends continue cleanly past the deduped replay.
	if err := re.AppendEvents("job-000001", []Event{ev(3)}); err != nil {
		t.Fatal(err)
	}
	if evs, _ := re.EventsSince("job-000001", 0); len(evs) != 3 {
		t.Fatalf("post-replay append: %+v", evs)
	}
}

// A crash in the submission window — queued event appended, record Put
// never acknowledged — leaves an event log with no owning record. Open
// must sweep it: the job was never visible, and a stale log would dedup
// away the first events of a re-issued ID.
func TestFileOrphanEventLogSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	// The orphan: events for a job whose record never landed.
	if err := s.AppendEvents("job-000002", []Event{ev(1), ev(2)}); err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" before job-000002's record Put.

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if evs, _ := re.EventsSince("job-000002", 0); len(evs) != 0 {
		t.Fatalf("orphan log survived reopen: %+v", evs)
	}
	if evs, _ := re.EventsSince("job-000001", 0); len(evs) != 1 {
		t.Fatalf("owned log swept: %+v", evs)
	}
	// A re-issued ID starts a clean log: its seq-1 event must not be
	// deduped against the stale orphan.
	if err := re.Put(rec(2, "queued")); err != nil {
		t.Fatal(err)
	}
	if err := re.AppendEvents("job-000002", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if evs, _ := re.EventsSince("job-000002", 0); len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("re-issued ID's first event lost: %+v", evs)
	}
	re.Close()
}

// The orphan sweep must be durable: after the swept ID is re-issued, a
// SECOND crash replays the original WAL — if the sweep left the stale
// "ev" entries in place, they would resurrect ahead of the new job's
// events and dedup its first events away.
func TestFileOrphanSweepSurvivesSecondCrash(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The orphan: two events, no record (crash in the submission window).
	orphanData := ev(1)
	orphanData.Data = json.RawMessage(`{"stale":"foreign"}`)
	if err := s.AppendEvents("job-000001", []Event{orphanData, ev(2)}); err != nil {
		t.Fatal(err)
	}
	// Crash #1 (no Close), restart: the sweep runs.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The ID is re-issued: new submission appends its queued event and
	// then its record.
	if err := re.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if err := re.Put(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	// Crash #2 (no Close), restart: the full WAL — stale evs, sweep
	// delete, new evs, record — replays in order.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	evs, err := again.EventsSince("job-000001", 0)
	if err != nil || len(evs) != 1 {
		t.Fatalf("after second crash: %d events (err %v), want exactly the re-issued job's 1", len(evs), err)
	}
	if string(evs[0].Data) == `{"stale":"foreign"}` {
		t.Fatal("stale orphan event resurrected over the re-issued job's history")
	}
}

// Corruption that garbles BOTH an event line and a following record
// line must still refuse: the record's "put" key survives as a raw
// substring even when the line no longer parses, and silently dropping
// an fsynced record is the one unacceptable recovery.
func TestFileCorruptTailWithGarbledRecordRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "done")); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	damaged := []byte("\x00{garbled-event\n")
	// The record line is damaged too — unparseable, but its `"put":` key
	// survives in the raw bytes.
	garbledPut := append([]byte("\x00\x00"), lines[1]...)
	if err := os.WriteFile(wal, append(damaged, garbledPut...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open silently truncated a tail containing a garbled record entry")
	}
}

// Event payloads are fully opaque since the WAL grew CRC frames: the
// byte sequences the v1 damage heuristic keyed on (`"put":`/`"del":`,
// the old ErrEventData constraint) are accepted, survive a reopen, and
// damage near them is still classified correctly from frame structure.
func TestAppendEventsAcceptsOpaquePayload(t *testing.T) {
	payload := json.RawMessage(`{"put":1,"del":"x","msg":"say \"put\": loudly"}`)
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.AppendEvents("job-000001", []Event{{Seq: 1, Data: payload}}); err != nil {
				t.Fatalf("AppendEvents with record-key payload bytes = %v", err)
			}
			evs, err := s.EventsSince("job-000001", 0)
			if err != nil || len(evs) != 1 || string(evs[0].Data) != string(payload) {
				t.Fatalf("payload did not round-trip: %+v, %v", evs, err)
			}
		})
	}

	// Durable round-trip across a reopen, and — the case the v1 heuristic
	// got wrong by construction — crash damage to the event line carrying
	// those bytes recovers as a torn event tail instead of refusing Open.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(rec(1, "running")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{{Seq: 1, Data: payload}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEvents("job-000001", []Event{ev(2)}); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if evs, _ := re.EventsSince("job-000001", 0); len(evs) != 2 || string(evs[0].Data) != string(payload) {
		t.Fatalf("reopened log = %+v", evs)
	}
	// Capture the live WAL before Close compacts it away, then restore it
	// with the snapshot removed — the crash-before-compaction state.
	wal := filepath.Join(dir, walName)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	os.Remove(filepath.Join(dir, snapshotName))

	// Flip one payload byte of the colliding event's line: its frame CRC
	// fails, the intact event entry after it is not a record entry, so the
	// suffix drops and the store opens — even though the damaged line still
	// contains a literal `"put":`.
	i := bytes.Index(data, []byte("loudly"))
	if i < 0 {
		t.Fatal("colliding event line not found in WAL")
	}
	data[i] = 'L'
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("Open refused a damaged event frame carrying record-key bytes: %v", err)
	}
	defer again.Close()
	if _, ok, _ := again.Get("job-000001"); !ok {
		t.Fatal("record lost")
	}
	if evs, _ := again.EventsSince("job-000001", 0); len(evs) != 0 {
		t.Fatalf("events recovered from the dropped region: %+v", evs)
	}
}

// A store written by a pre-framing (v1) build — bare JSON WAL lines —
// opens and replays unchanged, and its first compaction rewrites the
// log framed.
func TestFileStoreReadsV1UnframedWAL(t *testing.T) {
	dir := t.TempDir()
	v1 := `{"put":{"id":"job-000001","status":"queued","created":"2026-07-30T12:00:01Z","spec":{"seed":1}}}
{"ev":{"id":"job-000001","events":[{"seq":1,"data":{"seq":1,"type":"status"}}]}}
{"put":{"id":"job-000002","status":"done","created":"2026-07-30T12:00:02Z"}}
{"del":"job-000002"}
`
	if err := os.WriteFile(filepath.Join(dir, walName), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open refused a v1 unframed WAL: %v", err)
	}
	if _, ok, _ := s.Get("job-000001"); !ok {
		t.Fatal("v1 record lost")
	}
	if _, ok, _ := s.Get("job-000002"); ok {
		t.Fatal("v1 delete not applied")
	}
	if evs, _ := s.EventsSince("job-000001", 0); len(evs) != 1 {
		t.Fatalf("v1 events lost: %+v", evs)
	}
	// New appends are framed, mixing with the v1 prefix.
	if err := s.Put(rec(3, "queued")); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen of mixed v1+framed WAL: %v", err)
	}
	if _, ok, _ := re.Get("job-000003"); !ok {
		t.Fatal("framed append lost in mixed log")
	}
	if err := re.Close(); err != nil { // compacts
		t.Fatal(err)
	}
	// Post-compaction the log is empty and the snapshot carries the state.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if n, _ := again.Len(); n != 2 {
		t.Fatalf("post-compaction Len = %d, want 2", n)
	}
}

// The Updater contract: read-modify-write is atomic against concurrent
// updates, write=false leaves the store untouched, fn errors abort, and
// a missing record is reported through ok.
func TestStoreUpdateContract(t *testing.T) {
	for name, s := range implementations(t) {
		u, ok := s.(Updater)
		if !ok {
			t.Fatalf("%s does not implement Updater", name)
		}
		t.Run(name, func(t *testing.T) {
			defer s.Close()

			// Missing record: fn sees ok=false; write=false stores nothing.
			_, err := u.Update("job-000001", func(cur Record, ok bool) (Record, bool, error) {
				if ok {
					t.Error("fn saw a record in an empty store")
				}
				return Record{}, false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Len(); n != 0 {
				t.Fatal("write=false stored a record")
			}

			// Missing record can be created.
			out, err := u.Update("job-000001", func(cur Record, ok bool) (Record, bool, error) {
				r := rec(1, "pending")
				return r, true, nil
			})
			if err != nil || out.Status != "pending" {
				t.Fatalf("creating Update: %+v, %v", out, err)
			}

			// fn errors abort without writing.
			boom := errors.New("boom")
			if _, err := u.Update("job-000001", func(cur Record, ok bool) (Record, bool, error) {
				cur.Status = "clobbered"
				return cur, true, boom
			}); !errors.Is(err, boom) {
				t.Fatalf("fn error not surfaced: %v", err)
			}
			if got, _, _ := s.Get("job-000001"); got.Status != "pending" {
				t.Fatalf("aborted update wrote: %+v", got)
			}

			// A mismatched ID is rejected.
			if _, err := u.Update("job-000001", func(cur Record, ok bool) (Record, bool, error) {
				cur.ID = "job-000099"
				return cur, true, nil
			}); err == nil {
				t.Fatal("Update accepted a record under a different ID")
			}

			// Concurrent increments: every read-modify-write must observe
			// the previous one — the compare-and-swap shard leases rely on.
			const goroutines, rounds = 8, 25
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < rounds; k++ {
						_, err := u.Update("job-000001", func(cur Record, ok bool) (Record, bool, error) {
							if !ok {
								return cur, false, errors.New("record vanished")
							}
							var spec struct {
								Seed int `json:"seed"`
							}
							if err := json.Unmarshal(cur.Spec, &spec); err != nil {
								return cur, false, err
							}
							spec.Seed++
							data, err := json.Marshal(spec)
							if err != nil {
								return cur, false, err
							}
							cur.Spec = data
							return cur, true, nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			got, _, _ := s.Get("job-000001")
			var spec struct {
				Seed int `json:"seed"`
			}
			if err := json.Unmarshal(got.Spec, &spec); err != nil {
				t.Fatal(err)
			}
			if want := 1 + goroutines*rounds; spec.Seed != want {
				t.Fatalf("lost updates: counter = %d, want %d", spec.Seed, want)
			}
		})
	}
}

// Two Shared handles on one directory see each other's writes — the
// cross-process store contract, exercised in-process (the flock and
// refresh machinery is identical either way).
func TestSharedStoreCrossHandle(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Put(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get("job-000001")
	if err != nil || !ok || got.Status != "queued" {
		t.Fatalf("handle b missed handle a's write: %+v ok=%v err=%v", got, ok, err)
	}
	if err := b.AppendEvents("job-000001", []Event{ev(1)}); err != nil {
		t.Fatal(err)
	}
	if evs, _ := a.EventsSince("job-000001", 0); len(evs) != 1 {
		t.Fatalf("handle a missed handle b's events: %+v", evs)
	}
	if err := b.Delete("job-000001"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get("job-000001"); ok {
		t.Fatal("handle a missed handle b's delete")
	}

	// Cross-handle CAS: concurrent lease-style acquires through separate
	// handles, exactly one winner per round.
	if err := a.Put(rec(2, "pending")); err != nil {
		t.Fatal(err)
	}
	handles := []*Shared{a, b}
	var wins [2]int
	var wg sync.WaitGroup
	for h := range handles {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				_, err := handles[h].Update("job-000002", func(cur Record, ok bool) (Record, bool, error) {
					if !ok || cur.Status != "pending" {
						return cur, false, nil
					}
					cur.Status = fmt.Sprintf("leased-%d", h)
					return cur, true, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				// Release for the next round, but only the winner may.
				handles[h].Update("job-000002", func(cur Record, ok bool) (Record, bool, error) {
					if !ok || cur.Status != fmt.Sprintf("leased-%d", h) {
						return cur, false, nil
					}
					wins[h]++
					cur.Status = "pending"
					return cur, true, nil
				})
			}
		}(h)
	}
	wg.Wait()
	if wins[0]+wins[1] == 0 {
		t.Fatal("no CAS round completed")
	}
}

// A writer killed mid-append leaves an unterminated partial line in the
// shared log; other handles must not consume it, and the next writer
// must terminate it so later entries replay cleanly.
func TestSharedStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Put(rec(1, "queued")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer's torn tail: raw bytes with no newline.
	wal, err := os.OpenFile(filepath.Join(dir, sharedWALName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte(`=deadbeef 99 {"put":{"id":"job-9`)); err != nil {
		t.Fatal(err)
	}
	wal.Close()

	// A fresh handle reads complete entries only.
	b, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, ok, _ := b.Get("job-000001"); !ok {
		t.Fatal("complete entry lost behind torn tail")
	}
	if n, _ := b.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (torn entry must not apply)", n)
	}
	// The next write terminates the garbage; both handles then agree.
	if err := b.Put(rec(2, "queued")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get("job-000002"); !ok {
		t.Fatal("write after torn tail lost")
	}
	if n, _ := a.Len(); n != 2 {
		t.Fatalf("Len after recovery = %d, want 2", n)
	}
	// And a third handle replaying from scratch sees the same state.
	c, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, _ := c.Len(); n != 2 {
		t.Fatalf("fresh replay Len = %d, want 2", n)
	}
}
