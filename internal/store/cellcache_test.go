package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCellCacheRoundTrip(t *testing.T) {
	s := NewMemory()
	c := NewCellCache(s, "ds-000000001")
	if _, ok, err := c.GetCell("deadbeef"); err != nil || ok {
		t.Fatalf("empty cache: ok=%v err=%v", ok, err)
	}
	bits := math.Float64bits(0.625)
	if err := c.PutCell("deadbeef", bits); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.GetCell("deadbeef")
	if err != nil || !ok || got != bits {
		t.Fatalf("get: bits=%x ok=%v err=%v", got, ok, err)
	}
	// Cells of one owner are invisible to another.
	other := NewCellCache(s, "ds-000000002")
	if _, ok, _ := other.GetCell("deadbeef"); ok {
		t.Fatal("cell leaked across owners")
	}
}

func TestParseCellOwner(t *testing.T) {
	id := CellID("ds-000000007", "abc123")
	owner, ok := ParseCellOwner(id)
	if !ok || owner != "ds-000000007" {
		t.Fatalf("owner=%q ok=%v", owner, ok)
	}
	for _, bad := range []string{"job-000000001", "cell-", "cell-x", "ds-000000001"} {
		if _, ok := ParseCellOwner(bad); ok {
			t.Errorf("ParseCellOwner(%q) succeeded", bad)
		}
	}
}

func TestSweepCells(t *testing.T) {
	s := NewMemory()
	a := NewCellCache(s, "ds-000000001")
	b := NewCellCache(s, "ds-000000002")
	for _, k := range []string{"aa", "bb", "cc"} {
		if err := a.PutCell(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.PutCell("dd", 2); err != nil {
		t.Fatal(err)
	}
	n, err := SweepCells(s, "ds-000000001")
	if err != nil || n != 3 {
		t.Fatalf("swept %d err=%v, want 3", n, err)
	}
	if _, ok, _ := a.GetCell("aa"); ok {
		t.Fatal("swept owner still has cells")
	}
	if _, ok, _ := b.GetCell("dd"); !ok {
		t.Fatal("sweep removed another owner's cell")
	}
}

// TestFileOpenSweepsOrphanCells is the crash-recovery half of dataset
// eviction: cell records whose owning dataset record is gone are durably
// deleted at Open, mirroring the orphan event-log sweep.
func TestFileOpenSweepsOrphanCells(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put(Record{ID: "ds-000000001", Status: "dataset"}); err != nil {
		t.Fatal(err)
	}
	owned := NewCellCache(f, "ds-000000001")
	if err := owned.PutCell("aaaa", 7); err != nil {
		t.Fatal(err)
	}
	// An orphan: cells of a dataset whose record was deleted without the
	// cell sweep (the crash window).
	orphan := NewCellCache(f, "ds-000000002")
	if err := orphan.PutCell("bbbb", 8); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := NewCellCache(f2, "ds-000000001").GetCell("aaaa"); !ok {
		t.Fatal("owned cell swept")
	}
	if _, ok, _ := NewCellCache(f2, "ds-000000002").GetCell("bbbb"); ok {
		t.Fatal("orphan cell survived Open")
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}

	// The sweep is durable: a third Open (after the second one's WAL
	// delete entries) still shows no orphan.
	f3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	if _, ok, _ := NewCellCache(f3, "ds-000000002").GetCell("bbbb"); ok {
		t.Fatal("orphan cell resurrected")
	}
}

// TestFileOpenSweepSurvivesSnapshot ensures orphaned cells baked into a
// snapshot (not just the WAL) are swept too.
func TestFileOpenSweepSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewCellCache(f, "ds-000000009").PutCell("cccc", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // Close compacts into the snapshot
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, ok, _ := NewCellCache(f2, "ds-000000009").GetCell("cccc"); ok {
		t.Fatal("orphan cell from snapshot survived")
	}
}
