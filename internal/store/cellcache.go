package store

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Cell records persist content-addressed cell scores through the same
// store (and, for File, the same framed WAL and snapshot machinery) as job
// records. A cell record's ID is "cell-<owner>-<key>": owner is the record
// ID of the dataset the score was derived from — the handle the orphan
// sweep uses — and key is the content-addressed cache key (a hex digest,
// so it never contains '-'). The score travels as its IEEE-754 bit
// pattern, never a formatted float, so a cached score is bit-identical to
// the computation it replaced.

// cellPrefix heads every cell record ID.
const cellPrefix = "cell-"

// CellStatus is the Status of every cell record; it keeps them
// recognizable in mixed listings (job managers skip non-"job-" IDs
// regardless).
const CellStatus = "cell"

// cellPayload is the Result JSON of a cell record.
type cellPayload struct {
	Bits uint64 `json:"bits"`
}

// CellID returns the record ID of the cell with the given owner (a dataset
// record ID, which must not be empty) and content key.
func CellID(owner, key string) string {
	return cellPrefix + owner + "-" + key
}

// ParseCellOwner extracts the owner from a cell record ID. The key part is
// a digest with no '-', so the owner is everything between the prefix and
// the last '-'.
func ParseCellOwner(id string) (owner string, ok bool) {
	rest, ok := strings.CutPrefix(id, cellPrefix)
	if !ok {
		return "", false
	}
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

// CellCache adapts a Store to the runner's CellStore seam for one owning
// dataset: GetCell/PutCell read and write "cell-" records. It is the
// persistent tier of runner.NewScoreCache; distributed workers sharing one
// store therefore share one cell cache.
type CellCache struct {
	store Store
	owner string
}

// NewCellCache returns the cell cache of the given owner (a dataset record
// ID) over s.
func NewCellCache(s Store, owner string) *CellCache {
	return &CellCache{store: s, owner: owner}
}

// Owner returns the owning dataset record ID.
func (c *CellCache) Owner() string { return c.owner }

// GetCell returns the stored score bits for key.
func (c *CellCache) GetCell(key string) (uint64, bool, error) {
	rec, ok, err := c.store.Get(CellID(c.owner, key))
	if err != nil || !ok {
		return 0, false, err
	}
	var p cellPayload
	if err := json.Unmarshal(rec.Result, &p); err != nil {
		// A corrupt cell record is a miss, not a failure: the caller
		// recomputes and overwrites it.
		return 0, false, nil
	}
	return p.Bits, true, nil
}

// PutCell stores the score bits for key.
func (c *CellCache) PutCell(key string, bits uint64) error {
	result, err := json.Marshal(cellPayload{Bits: bits})
	if err != nil {
		return fmt.Errorf("store: encoding cell record: %w", err)
	}
	return c.store.Put(Record{ID: CellID(c.owner, key), Status: CellStatus, Result: result})
}

// SweepCells deletes every cell record of the given owner — the eviction
// path when a dataset is deleted. It returns how many records were
// removed.
func SweepCells(s Store, owner string) (int, error) {
	prefix := cellPrefix + owner + "-"
	removed := 0
	cursor := prefix[:len(prefix)-1] // IDs strictly greater than this
	for {
		recs, next, err := s.List(cursor, 64)
		if err != nil {
			return removed, err
		}
		for _, rec := range recs {
			if !strings.HasPrefix(rec.ID, prefix) {
				if rec.ID > prefix {
					// Past the contiguous prefix range: done.
					return removed, nil
				}
				continue
			}
			if err := s.Delete(rec.ID); err != nil {
				return removed, err
			}
			removed++
		}
		if next == "" {
			return removed, nil
		}
		cursor = next
	}
}
