//go:build unix

package store

import (
	"os"
	"syscall"
)

// flockEx takes an exclusive advisory lock on f, blocking until it is
// granted. flockUn releases it. The lock is per-open-file-description,
// so two handles in one process exclude each other just like two
// processes do.
func flockEx(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

func flockUn(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
