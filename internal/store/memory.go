package store

import (
	"sort"
	"sync"
)

// table is the unsynchronized record index shared by the store
// implementations: a map for lookups plus a sorted ID slice for ordered,
// cursor-based listing. Callers synchronize.
type table struct {
	recs map[string]Record
	ids  []string // sorted ascending
}

func newTable() *table {
	return &table{recs: map[string]Record{}}
}

func (t *table) put(rec Record) {
	if _, ok := t.recs[rec.ID]; !ok {
		i := sort.SearchStrings(t.ids, rec.ID)
		t.ids = append(t.ids, "")
		copy(t.ids[i+1:], t.ids[i:])
		t.ids[i] = rec.ID
	}
	t.recs[rec.ID] = rec
}

func (t *table) delete(id string) {
	if _, ok := t.recs[id]; !ok {
		return
	}
	delete(t.recs, id)
	i := sort.SearchStrings(t.ids, id)
	t.ids = append(t.ids[:i], t.ids[i+1:]...)
}

// list returns up to limit records with ID > cursor plus the next-page
// cursor ("" when exhausted). limit <= 0 means no limit.
func (t *table) list(cursor string, limit int) ([]Record, string) {
	// First index strictly after the cursor.
	start := sort.SearchStrings(t.ids, cursor)
	if start < len(t.ids) && t.ids[start] == cursor {
		start++
	}
	end := len(t.ids)
	if limit > 0 && limit < end-start { // overflow-safe clamp: limit may be MaxInt
		end = start + limit
	}
	out := make([]Record, 0, end-start)
	for _, id := range t.ids[start:end] {
		out = append(out, t.recs[id].cloneForList())
	}
	next := ""
	if end < len(t.ids) && len(out) > 0 {
		next = out[len(out)-1].ID
	}
	return out, next
}

// Memory is the in-memory Store: the record map the job manager kept
// before the store extraction, now behind the Store interface. State is
// lost when the process exits.
type Memory struct {
	mu     sync.Mutex
	tab    *table
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{tab: newTable()}
}

// Put inserts or overwrites rec under rec.ID.
func (m *Memory) Put(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tab.put(rec.Clone())
	return nil
}

// Get returns the record under id and whether it exists.
func (m *Memory) Get(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Record{}, false, ErrClosed
	}
	rec, ok := m.tab.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List pages through the records in ascending ID order.
func (m *Memory) List(cursor string, limit int) ([]Record, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, "", ErrClosed
	}
	recs, next := m.tab.list(cursor, limit)
	return recs, next, nil
}

// Delete removes the record under id, if present.
func (m *Memory) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tab.delete(id)
	return nil
}

// Len reports how many records are resident.
func (m *Memory) Len() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	return len(m.tab.recs), nil
}

// Close marks the store closed; every later operation fails with
// ErrClosed.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
