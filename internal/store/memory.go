package store

import (
	"fmt"
	"sort"
	"sync"
)

// table is the unsynchronized record-and-event index shared by the store
// implementations: a map for record lookups, a sorted ID slice for
// ordered cursor-based listing, and one append-only event slice per job.
// Callers synchronize.
type table struct {
	recs      map[string]Record
	ids       []string // sorted ascending
	events    map[string][]Event
	numEvents int // total events resident, across all jobs
}

func newTable() *table {
	return &table{recs: map[string]Record{}, events: map[string][]Event{}}
}

func (t *table) put(rec Record) {
	if _, ok := t.recs[rec.ID]; !ok {
		i := sort.SearchStrings(t.ids, rec.ID)
		t.ids = append(t.ids, "")
		copy(t.ids[i+1:], t.ids[i:])
		t.ids[i] = rec.ID
	}
	t.recs[rec.ID] = rec
}

func (t *table) delete(id string) {
	t.dropEvents(id)
	if _, ok := t.recs[id]; !ok {
		return
	}
	delete(t.recs, id)
	i := sort.SearchStrings(t.ids, id)
	t.ids = append(t.ids[:i], t.ids[i+1:]...)
}

// appendEvents takes ownership of events (callers clone when the input
// may be retained). Events at or below the job's last resident Seq are
// dropped: appends are monotone per job in live use, so this only
// matters during WAL replay — a crash between the snapshot rename and
// the WAL truncation replays "ev" entries that are already in the
// snapshot, and unlike record puts (which overwrite) a blind append
// would duplicate every event.
func (t *table) appendEvents(id string, events []Event) {
	evs := t.events[id]
	if n := len(evs); n > 0 {
		last := evs[n-1].Seq
		i := 0
		for i < len(events) && events[i].Seq <= last {
			i++
		}
		events = events[i:]
	}
	if len(events) == 0 {
		return
	}
	t.events[id] = append(evs, events...)
	t.numEvents += len(events)
}

// eventsSince returns clones of the events with Seq > after for id.
// Events are appended with increasing Seq, so a binary search finds the
// scan start.
func (t *table) eventsSince(id string, after int) []Event {
	evs := t.events[id]
	i := sort.Search(len(evs), func(k int) bool { return evs[k].Seq > after })
	return cloneEvents(evs[i:])
}

func (t *table) dropEvents(id string) {
	if evs, ok := t.events[id]; ok {
		t.numEvents -= len(evs)
		delete(t.events, id)
	}
}

// list returns up to limit records with ID > cursor plus the next-page
// cursor ("" when exhausted). limit <= 0 means no limit.
func (t *table) list(cursor string, limit int) ([]Record, string) {
	// First index strictly after the cursor.
	start := sort.SearchStrings(t.ids, cursor)
	if start < len(t.ids) && t.ids[start] == cursor {
		start++
	}
	end := len(t.ids)
	if limit > 0 && limit < end-start { // overflow-safe clamp: limit may be MaxInt
		end = start + limit
	}
	out := make([]Record, 0, end-start)
	for _, id := range t.ids[start:end] {
		out = append(out, t.recs[id].cloneForList())
	}
	next := ""
	if end < len(t.ids) && len(out) > 0 {
		next = out[len(out)-1].ID
	}
	return out, next
}

// Memory is the in-memory Store: the record map the job manager kept
// before the store extraction, now behind the Store interface. State is
// lost when the process exits.
type Memory struct {
	mu     sync.Mutex
	tab    *table
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{tab: newTable()}
}

// Put inserts or overwrites rec under rec.ID.
func (m *Memory) Put(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tab.put(rec.Clone())
	return nil
}

// Update applies an atomic read-modify-write to the record under id
// (see Updater).
func (m *Memory) Update(id string, fn func(cur Record, ok bool) (Record, bool, error)) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Record{}, ErrClosed
	}
	cur, ok := m.tab.recs[id]
	if ok {
		cur = cur.Clone()
	}
	out, write, err := fn(cur, ok)
	if err != nil {
		return Record{}, err
	}
	if !write {
		return out, nil
	}
	if out.ID != id {
		return Record{}, fmt.Errorf("store: update of %q returned record %q", id, out.ID)
	}
	m.tab.put(out.Clone())
	return out, nil
}

// Get returns the record under id and whether it exists.
func (m *Memory) Get(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Record{}, false, ErrClosed
	}
	rec, ok := m.tab.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List pages through the records in ascending ID order.
func (m *Memory) List(cursor string, limit int) ([]Record, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, "", ErrClosed
	}
	recs, next := m.tab.list(cursor, limit)
	return recs, next, nil
}

// Delete removes the record under id (and the job's event log), if
// present.
func (m *Memory) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tab.delete(id)
	return nil
}

// AppendEvents appends the batch to the job's event log.
func (m *Memory) AppendEvents(id string, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.tab.appendEvents(id, cloneEvents(events))
	return nil
}

// EventsSince returns the job's events with Seq > afterSeq, in order.
func (m *Memory) EventsSince(id string, afterSeq int) ([]Event, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	return m.tab.eventsSince(id, afterSeq), nil
}

// Len reports how many records are resident.
func (m *Memory) Len() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrClosed
	}
	return len(m.tab.recs), nil
}

// Close marks the store closed; every later operation fails with
// ErrClosed.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
