package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzFrameRoundTrip: every payload — binary, empty, newline-free or not —
// must survive encodeFrame/decodeFrame exactly.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"put":{"id":"job-000001","status":"queued"}}`))
	f.Add([]byte(""))
	f.Add([]byte("=00000000 0 "))
	f.Add([]byte{0, 1, 2, 0xff, 0xfe})
	f.Fuzz(func(t *testing.T, payload []byte) {
		line := encodeFrame(payload)
		if line[len(line)-1] != '\n' {
			t.Fatal("encoded frame does not end in newline")
		}
		got, ok := decodeFrame(line[:len(line)-1])
		if !ok {
			t.Fatalf("round-trip of %q failed to decode", payload)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip of %q returned %q", payload, got)
		}
	})
}

// FuzzFrameDecodeCorrupt: decodeFrame must never panic on arbitrary
// bytes, and anything it does accept must be self-consistent — the
// accepted payload re-encodes to a line that decodes back to it.
func FuzzFrameDecodeCorrupt(f *testing.F) {
	f.Add([]byte("=deadbeef 5 hello"))
	f.Add([]byte("=zzzzzzzz 5 hello"))
	f.Add([]byte("=00000000 99 short"))
	f.Add([]byte("="))
	f.Add([]byte(`{"put":{"id":"job-000001"}}`)) // v1 unframed line
	f.Add(encodeFrame([]byte("valid"))[:8])      // torn mid-header
	f.Fuzz(func(t *testing.T, line []byte) {
		payload, ok := decodeFrame(line)
		if !ok {
			return
		}
		re := encodeFrame(payload)
		got, ok2 := decodeFrame(re[:len(re)-1])
		if !ok2 || !bytes.Equal(got, payload) {
			t.Fatalf("accepted payload %q does not round-trip", payload)
		}
	})
}

// FuzzWALTornTail: a WAL holding two complete entries plus any strict
// prefix of a further framed line — the shape a crash mid-append leaves —
// must open cleanly with exactly the two complete entries, the torn tail
// dropped. Payloads are scrubbed of newlines first: a framed payload
// never contains one (WAL payloads are JSON), and an embedded newline
// would turn the single torn line into interior damage, which Open
// rightly refuses.
func FuzzWALTornTail(f *testing.F) {
	f.Add([]byte(`{"put":{"id":"job-000003","status":"queued"}}`), uint16(10))
	f.Add([]byte(""), uint16(0))
	f.Add([]byte{0xff, 0x00, 0x41}, uint16(3))
	f.Fuzz(func(t *testing.T, payload []byte, cut uint16) {
		payload = bytes.ReplaceAll(payload, []byte("\n"), []byte(" "))

		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec(1, "running")); err != nil {
			t.Fatal(err)
		}
		if err := s.Put(rec(2, "queued")); err != nil {
			t.Fatal(err)
		}
		// Crash: no Close (Close would compact the WAL away); tear a
		// partial frame onto the tail instead.
		frame := encodeFrame(payload)
		k := int(cut) % len(frame) // strict prefix, possibly empty
		wal := filepath.Join(dir, walName)
		wf, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wf.Write(frame[:k]); err != nil {
			t.Fatal(err)
		}
		wf.Close()

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("Open with torn tail (%d of %d frame bytes): %v", k, len(frame), err)
		}
		defer re.Close()
		for n := 1; n <= 2; n++ {
			if _, ok, err := re.Get(rec(n, "").ID); err != nil || !ok {
				t.Fatalf("complete entry %d lost after torn-tail recovery (ok %v, err %v)", n, ok, err)
			}
		}
		if got, err := re.Len(); err != nil || got != 2 {
			t.Fatalf("recovered %d records (err %v), want 2", got, err)
		}
		s.Close()
	})
}
