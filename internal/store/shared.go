package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

const (
	sharedWALName  = "shared.wal.jsonl"
	sharedLockName = "shared.lock"
)

// Shared is the multi-process Store: several processes (a distributed
// coordinator and its workers, see internal/dist) open the same
// directory and observe each other's writes. The design is a single
// append-only log of framed WAL lines (the same walEntry format and
// framing as File) plus an flock-guarded critical section: every
// operation takes the exclusive lock, replays any log suffix appended
// by other processes since its last look ("refresh"), performs its
// read or append, fsyncs, and releases the lock. Because writers sync
// before unlocking, a process that acquires the lock sees every
// acknowledged write that preceded it — the cross-process
// read-your-writes guarantee Update's compare-and-swap relies on.
//
// Crash tolerance: a process killed mid-append leaves an unterminated
// partial line at the log's end. Readers never consume past it, and
// the next writer terminates it with a newline before appending; the
// garbage line then fails its frame CRC and is skipped by every
// replay. Only an unacknowledged write can be lost this way. A process
// crash never strands the lock — the OS releases flock with the file
// descriptor.
//
// Unlike File, Shared does not compact: it is built for the bounded
// coordination state of a running topology (job, shard-lease and
// partial-score records, which the coordinator deletes as jobs
// finish), not for long-lived archives. Deleted state stops occupying
// memory but its log lines remain until the directory is recycled.
type Shared struct {
	dir string

	mu     sync.Mutex
	tab    *table
	wal    *os.File // O_APPEND handle; also used for ReadAt refreshes
	lock   *os.File
	off    int64 // bytes of the log this handle has applied
	closed bool
}

// OpenShared opens (or initializes) a shared store in dir, creating the
// directory if needed. Every process of a topology opens the same dir.
func OpenShared(dir string) (*Shared, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, sharedLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening shared lock: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, sharedWALName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: opening shared WAL: %w", err)
	}
	s := &Shared{dir: dir, tab: newTable(), wal: wal, lock: lock}
	// Initial refresh, so Open surfaces an unreadable or corrupt log
	// immediately rather than on first use.
	if err := flockEx(lock); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("store: locking shared store: %w", err)
	}
	rerr := s.refreshLocked()
	if uerr := flockUn(lock); rerr == nil {
		rerr = uerr
	}
	if rerr != nil {
		s.closeFiles()
		return nil, rerr
	}
	return s, nil
}

func (s *Shared) closeFiles() {
	s.wal.Close()
	s.lock.Close()
}

// withLock runs fn inside the cross-process critical section, after
// refreshing this handle's view of the log.
func (s *Shared) withLock(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := flockEx(s.lock); err != nil {
		return fmt.Errorf("store: locking shared store: %w", err)
	}
	err := s.refreshLocked()
	if err == nil {
		err = fn()
	}
	if uerr := flockUn(s.lock); err == nil && uerr != nil {
		err = fmt.Errorf("store: unlocking shared store: %w", uerr)
	}
	return err
}

// refreshLocked applies every complete log line appended since this
// handle last looked. Lines failing their frame check are skipped (a
// crashed writer's newline-terminated garbage); an unterminated final
// partial line is left unconsumed for a writer to terminate. Callers
// hold mu and the flock.
func (s *Shared) refreshLocked() error {
	st, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("store: stating shared WAL: %w", err)
	}
	size := st.Size()
	if size <= s.off {
		return nil
	}
	data := make([]byte, size-s.off)
	if _, err := s.wal.ReadAt(data, s.off); err != nil {
		return fmt.Errorf("store: reading shared WAL: %w", err)
	}
	consumed := 0
	for {
		nl := bytes.IndexByte(data[consumed:], '\n')
		if nl < 0 {
			break // unterminated tail: not ours to consume
		}
		line := data[consumed : consumed+nl]
		consumed += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e walEntry
		if err := unmarshalWALLine(line, &e); err != nil {
			continue // terminated torn write of a crashed process: never acknowledged
		}
		switch {
		case e.Put != nil:
			s.tab.put(*e.Put)
		case e.Delete != "":
			s.tab.delete(e.Delete)
		case e.Events != nil:
			s.tab.appendEvents(e.Events.ID, e.Events.Events)
		}
	}
	s.off += int64(consumed)
	return nil
}

// appendLocked durably appends one entry and applies it (via a second
// refresh, the single apply path). Callers hold mu and the flock, with
// the refresh already done — so any remaining unconsumed bytes are a
// crashed writer's unterminated tail, which is newline-terminated here
// so it can never fuse with the new entry's line.
func (s *Shared) appendLocked(e walEntry) error {
	st, err := s.wal.Stat()
	if err != nil {
		return fmt.Errorf("store: stating shared WAL: %w", err)
	}
	if st.Size() > s.off {
		if _, err := s.wal.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("store: terminating torn shared WAL tail: %w", err)
		}
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding WAL entry: %w", err)
	}
	if _, err := s.wal.Write(encodeFrame(payload)); err != nil {
		return fmt.Errorf("store: appending shared WAL entry: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: syncing shared WAL: %w", err)
	}
	return s.refreshLocked()
}

// Put inserts or overwrites rec under rec.ID, durably.
func (s *Shared) Put(rec Record) error {
	rec = rec.Clone()
	return s.withLock(func() error {
		return s.appendLocked(walEntry{Put: &rec})
	})
}

// Update applies an atomic read-modify-write to the record under id
// (see Updater). The critical section spans processes, making this the
// topology-wide compare-and-swap.
func (s *Shared) Update(id string, fn func(cur Record, ok bool) (Record, bool, error)) (Record, error) {
	var out Record
	err := s.withLock(func() error {
		cur, ok := s.tab.recs[id]
		if ok {
			cur = cur.Clone()
		}
		res, write, err := fn(cur, ok)
		if err != nil {
			return err
		}
		out = res
		if !write {
			return nil
		}
		if res.ID != id {
			return fmt.Errorf("store: update of %q returned record %q", id, res.ID)
		}
		res = res.Clone()
		return s.appendLocked(walEntry{Put: &res})
	})
	if err != nil {
		return Record{}, err
	}
	return out, nil
}

// Get returns the record under id and whether it exists.
func (s *Shared) Get(id string) (Record, bool, error) {
	var rec Record
	var ok bool
	err := s.withLock(func() error {
		var cur Record
		if cur, ok = s.tab.recs[id]; ok {
			rec = cur.Clone()
		}
		return nil
	})
	return rec, ok, err
}

// List pages through the records in ascending ID order.
func (s *Shared) List(cursor string, limit int) ([]Record, string, error) {
	var recs []Record
	var next string
	err := s.withLock(func() error {
		recs, next = s.tab.list(cursor, limit)
		return nil
	})
	if err != nil {
		return nil, "", err
	}
	return recs, next, nil
}

// Delete removes the record under id (and the job's event log), durably.
func (s *Shared) Delete(id string) error {
	return s.withLock(func() error {
		_, haveRec := s.tab.recs[id]
		_, haveEvs := s.tab.events[id]
		if !haveRec && !haveEvs {
			return nil
		}
		return s.appendLocked(walEntry{Delete: id})
	})
}

// AppendEvents appends the batch to the job's event log, durably.
// Unlike File, appends sync inline: the shared store's writes are
// coordination traffic (coalesced upstream), not the single-node
// progress hot path.
func (s *Shared) AppendEvents(id string, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	evs := cloneEvents(events)
	return s.withLock(func() error {
		return s.appendLocked(walEntry{Events: &walEvents{ID: id, Events: evs}})
	})
}

// EventsSince returns the job's events with Seq > afterSeq, in order.
func (s *Shared) EventsSince(id string, afterSeq int) ([]Event, error) {
	var evs []Event
	err := s.withLock(func() error {
		evs = s.tab.eventsSince(id, afterSeq)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// Len reports how many records are resident.
func (s *Shared) Len() (int, error) {
	n := 0
	err := s.withLock(func() error {
		n = len(s.tab.recs)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Close releases this handle. The shared log is left as-is for the
// other processes of the topology.
func (s *Shared) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.wal.Close()
	if cerr := s.lock.Close(); err == nil {
		err = cerr
	}
	return err
}
