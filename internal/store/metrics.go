package store

import "cvcp/internal/metrics"

// File-store metric families (see internal/metrics): WAL append volume,
// fsync latency — both the inline per-commit syncs and the coalesced
// event-log syncs — and snapshot compactions. Shared across every File
// (and Shared) store in the process.
var (
	mWALAppends = metrics.NewCounter("cvcpd_wal_appends_total",
		"WAL entries appended (records, deletes and event batches).")
	mWALFsync = metrics.NewHistogram("cvcpd_wal_fsync_seconds",
		"WAL fsync latency, inline commit syncs and coalesced event syncs alike.", metrics.DurationBuckets)
	mCompactions = metrics.NewCounter("cvcpd_store_compactions_total",
		"Snapshot compactions performed (WAL rewritten into a snapshot).")
)
