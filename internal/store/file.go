package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

const (
	snapshotName = "jobs.snapshot.json"
	walName      = "jobs.wal.jsonl"

	// compactMinWAL is the write-ahead log length below which the file
	// store never compacts: snapshots cost a full rewrite, so tiny logs
	// are left alone.
	compactMinWAL = 256
)

// walEntry is one line of the write-ahead log: exactly one of Put or
// Delete is set.
type walEntry struct {
	Put    *Record `json:"put,omitempty"`
	Delete string  `json:"del,omitempty"`
}

// snapshot is the on-disk snapshot document.
type snapshot struct {
	Records []Record `json:"records"`
}

// File is the durable Store: every Put/Delete is appended (and fsynced)
// to a JSONL write-ahead log, and the full record set is periodically
// compacted into a snapshot so the log stays short. Opening a directory
// loads the snapshot, replays the log on top of it — tolerating a torn
// final line from a crash mid-append — and serves the merged state.
//
// Durability model: an entry is on disk before the corresponding call
// returns, so a job submitted (or finished) before a crash is replayed
// after it. Compaction is atomic (snapshot written to a temp file and
// renamed); a crash between the rename and the log truncation merely
// replays log entries that are already in the snapshot, which is
// idempotent.
type File struct {
	dir string

	mu      sync.Mutex
	tab     *table
	wal     *os.File
	walLen  int   // entries appended since the last compaction
	walSize int64 // bytes of complete, valid entries in the log file
	closed  bool
}

// Open loads (or initializes) a file store in dir, creating the
// directory if needed.
func Open(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	f := &File{dir: dir, tab: newTable()}
	if err := f.loadSnapshot(); err != nil {
		return nil, err
	}
	replayed, validLen, err := f.replayWAL()
	if err != nil {
		return nil, err
	}
	// Drop any torn tail now, before appending after it would turn the
	// tolerated final line into fatal interior corruption on the next
	// Open.
	path := filepath.Join(dir, walName)
	if st, err := os.Stat(path); err == nil && st.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("store: trimming torn WAL tail: %w", err)
		}
	}
	f.walLen = replayed
	f.walSize = validLen
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	f.wal = wal
	return f, nil
}

func (f *File) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(f.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot %s: %w", snapshotName, err)
	}
	for _, rec := range snap.Records {
		f.tab.put(rec)
	}
	return nil
}

// replayWAL applies the write-ahead log on top of the snapshot. It
// returns the entry count and the byte length of the valid prefix. A
// malformed final line is tolerated (a crash mid-append leaves one) and
// excluded from the valid length so Open can trim it; malformed interior
// lines are an error, since everything after them would silently vanish.
func (f *File) replayWAL() (entries int, validLen int64, err error) {
	data, err := os.ReadFile(filepath.Join(f.dir, walName))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: reading WAL: %w", err)
	}
	off := 0
	for off < len(data) {
		lineEnd := len(data)
		next := len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			lineEnd = off + nl
			next = off + nl + 1
		}
		line := data[off:lineEnd]
		if len(bytes.TrimSpace(line)) == 0 {
			off = next
			continue
		}
		var e walEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if next < len(data) {
				return 0, 0, fmt.Errorf("store: corrupt WAL entry %d: %w", entries+1, err)
			}
			return entries, int64(off), nil // torn final line from a crash: drop it
		}
		switch {
		case e.Put != nil:
			f.tab.put(*e.Put)
		case e.Delete != "":
			f.tab.delete(e.Delete)
		}
		entries++
		off = next
	}
	return entries, int64(off), nil
}

// append writes one WAL entry and syncs it to disk. On failure the log is
// truncated back to its last known-good length: a partial line left in
// place would poison every later append (the next Open would see interior
// corruption and refuse to start).
func (f *File) append(e walEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding WAL entry: %w", err)
	}
	data = append(data, '\n')
	if _, err := f.wal.Write(data); err != nil {
		_ = f.wal.Truncate(f.walSize)
		return fmt.Errorf("store: appending WAL entry: %w", err)
	}
	if err := f.wal.Sync(); err != nil {
		_ = f.wal.Truncate(f.walSize)
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	f.walSize += int64(len(data))
	f.walLen++
	return nil
}

// compactLocked rewrites the snapshot from the resident records and
// truncates the log. Callers hold mu.
func (f *File) compactLocked() error {
	snap := snapshot{Records: make([]Record, 0, len(f.tab.ids))}
	for _, id := range f.tab.ids {
		snap.Records = append(snap.Records, f.tab.recs[id])
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	// The snapshot must be durably on disk BEFORE the log is truncated:
	// write to a temp file, fsync it, rename into place, fsync the
	// directory. Otherwise a crash after the truncation could leave both
	// an unflushed snapshot and an empty log.
	tmp := filepath.Join(f.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync() // make the rename durable; best-effort on filesystems without dir fsync
		d.Close()
	}
	// The snapshot now durably holds everything: restart the log. A crash
	// right here replays pre-truncation entries over an equal snapshot,
	// which is harmless.
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	f.walLen = 0
	f.walSize = 0
	return nil
}

// maybeCompactLocked compacts when the log has grown well past the
// resident record count — the point where replay would mostly apply
// overwritten states.
func (f *File) maybeCompactLocked() error {
	if f.walLen >= compactMinWAL && f.walLen >= 4*len(f.tab.recs) {
		return f.compactLocked()
	}
	return nil
}

// Put inserts or overwrites rec under rec.ID, durably.
func (f *File) Put(rec Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	rec = rec.Clone()
	if err := f.append(walEntry{Put: &rec}); err != nil {
		return err
	}
	f.tab.put(rec)
	// A compaction failure is NOT a Put failure: the record is already
	// durable in the WAL (reporting an error here would make the caller
	// treat a persisted record as unpersisted — a ghost a restart would
	// resurrect). Compaction retries at the next threshold and on Close.
	_ = f.maybeCompactLocked()
	return nil
}

// Get returns the record under id and whether it exists.
func (f *File) Get(id string) (Record, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Record{}, false, ErrClosed
	}
	rec, ok := f.tab.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List pages through the records in ascending ID order.
func (f *File) List(cursor string, limit int) ([]Record, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, "", ErrClosed
	}
	recs, next := f.tab.list(cursor, limit)
	return recs, next, nil
}

// Delete removes the record under id, durably.
func (f *File) Delete(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if _, ok := f.tab.recs[id]; !ok {
		return nil
	}
	if err := f.append(walEntry{Delete: id}); err != nil {
		return err
	}
	f.tab.delete(id)
	_ = f.maybeCompactLocked() // durable already; see Put
	return nil
}

// Len reports how many records are resident.
func (f *File) Len() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	return len(f.tab.recs), nil
}

// Close compacts the store into its snapshot and releases the log file.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.compactLocked()
	if cerr := f.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
