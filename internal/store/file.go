package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	snapshotName = "jobs.snapshot.json"
	walName      = "jobs.wal.jsonl"

	// compactMinWAL is the write-ahead log length below which the file
	// store never compacts: snapshots cost a full rewrite, so tiny logs
	// are left alone.
	compactMinWAL = 256

	// snapshotVersion is the snapshot format this build writes. v0 (no
	// version field) held records only; v1 added per-job event logs.
	// Open refuses snapshots from the future rather than silently
	// dropping state it cannot represent.
	snapshotVersion = 1

	// eventSyncInterval bounds how long an event append may sit in the
	// OS buffer before a coalescing fsync makes it durable. Event
	// appends do not sync inline (the progress hot path must not
	// serialize on disk latency); record writes and Close act as sync
	// barriers in between.
	eventSyncInterval = 100 * time.Millisecond
)

// walEntry is one line of the write-ahead log: exactly one of Put,
// Delete or Events is set.
type walEntry struct {
	Put    *Record    `json:"put,omitempty"`
	Delete string     `json:"del,omitempty"`
	Events *walEvents `json:"ev,omitempty"`
}

// walEvents is one appended event batch of a job's event log.
type walEvents struct {
	ID     string  `json:"id"`
	Events []Event `json:"events"`
}

// snapshot is the on-disk snapshot document.
type snapshot struct {
	Version int                `json:"version,omitempty"`
	Records []Record           `json:"records"`
	Events  map[string][]Event `json:"events,omitempty"`
}

// File is the durable Store: every Put/Delete/AppendEvents is appended
// to a write-ahead log of framed JSON lines (see framing.go), and the full state (records plus event
// logs) is periodically compacted into a snapshot so the log stays
// short. Opening a directory loads the snapshot, replays the log on top
// of it — tolerating a torn final line from a crash mid-append — and
// serves the merged state.
//
// Durability model: a record entry is fsynced before the corresponding
// call returns, so a job submitted (or finished) before a crash is
// replayed after it. Event appends are written immediately but
// fsync-coalesced: the sync happens at the next record write, at the
// next eventSyncInterval tick, or at Close — whichever comes first — so
// a crash can lose only a suffix of recent events, and never events
// older than a record state they preceded. Compaction is atomic
// (snapshot written to a temp file and renamed); a crash between the
// rename and the log truncation merely replays log entries that are
// already in the snapshot, which is idempotent.
type File struct {
	dir string

	// compactMu serializes whole compactions (including Close's final
	// one). It is always acquired BEFORE mu; the heavy phase of a
	// compaction — marshaling and fsyncing the snapshot — runs under
	// compactMu alone, so Put/Delete/AppendEvents proceed meanwhile and
	// event publishers (who hold job mutexes upstream) are never
	// stalled behind a snapshot rewrite.
	compactMu sync.Mutex

	mu        sync.Mutex
	tab       *table
	wal       *os.File
	walLen    int   // entries appended since the last compaction
	walSize   int64 // bytes of complete, valid entries in the log file
	dirty     bool  // written-but-unsynced entries pending in the log
	syncArmed bool  // a coalescing sync timer is scheduled
	closed    bool
}

// Open loads (or initializes) a file store in dir, creating the
// directory if needed.
func Open(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	f := &File{dir: dir, tab: newTable()}
	if err := f.loadSnapshot(); err != nil {
		return nil, err
	}
	replayed, validLen, err := f.replayWAL()
	if err != nil {
		return nil, err
	}
	// Drop any torn tail now, before appending after it would turn the
	// tolerated final line into fatal interior corruption on the next
	// Open.
	path := filepath.Join(dir, walName)
	if st, err := os.Stat(path); err == nil && st.Size() > validLen {
		if err := os.Truncate(path, validLen); err != nil {
			return nil, fmt.Errorf("store: trimming torn WAL tail: %w", err)
		}
	}
	f.walLen = replayed
	f.walSize = validLen
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	f.wal = wal
	// Sweep event logs with no owning record: a crash in the submission
	// window (queued event appended, record Put never acknowledged)
	// leaves one behind, the job was never visible, and nothing else
	// would ever delete it — it would ride every future snapshot, and a
	// re-issued ID would have its first events silently deduped against
	// the stale log. The sweep is made DURABLE by appending a delete
	// entry: an in-memory-only sweep would leave the stale "ev" lines in
	// the WAL, and a second crash after the ID was re-issued would
	// replay them ahead of the new job's events — resurrecting the
	// orphan and deduping the new job's first events away.
	for id := range f.tab.events {
		if _, ok := f.tab.recs[id]; !ok {
			if err := f.append(walEntry{Delete: id}, true); err != nil {
				f.wal.Close()
				return nil, fmt.Errorf("store: sweeping orphan event log %s: %w", id, err)
			}
			f.tab.dropEvents(id)
		}
	}
	// Sweep cell-cache records whose owning dataset record is gone: a
	// crash between a dataset eviction's record delete and its cell sweep
	// (see SweepCells) leaves them behind, and — like orphan event logs —
	// nothing else would ever delete them. Durable for the same reason:
	// an in-memory-only sweep would resurrect the orphans from the WAL on
	// the next Open.
	var orphanCells []string
	for _, id := range f.tab.ids {
		owner, ok := ParseCellOwner(id)
		if !ok {
			continue
		}
		if _, ok := f.tab.recs[owner]; !ok {
			orphanCells = append(orphanCells, id)
		}
	}
	for _, id := range orphanCells {
		if err := f.append(walEntry{Delete: id}, true); err != nil {
			f.wal.Close()
			return nil, fmt.Errorf("store: sweeping orphan cell record %s: %w", id, err)
		}
		f.tab.delete(id)
	}
	return f, nil
}

func (f *File) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(f.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot %s: %w", snapshotName, err)
	}
	if snap.Version > snapshotVersion {
		return fmt.Errorf("store: snapshot %s is format v%d; this build reads up to v%d",
			snapshotName, snap.Version, snapshotVersion)
	}
	for _, rec := range snap.Records {
		f.tab.put(rec)
	}
	for id, evs := range snap.Events {
		f.tab.appendEvents(id, evs)
	}
	return nil
}

// replayWAL applies the write-ahead log on top of the snapshot. It
// returns the entry count and the byte length of the valid prefix. A
// malformed final line is tolerated (a crash mid-append leaves one) and
// excluded from the valid length so Open can trim it. A malformed line
// with entries after it is tolerated only when nothing after it is a
// record entry: event entries are the only unsynced writes (their
// fsyncs coalesce), so a crash can garble any part of the
// since-last-sync suffix — which by construction contains no record
// entries — and losing that suffix is within the event-durability
// contract. A corrupt line with a record entry (put/delete) anywhere
// after it is real damage, and an error: records are fsynced per write,
// so silently dropping one would lose acknowledged state.
func (f *File) replayWAL() (entries int, validLen int64, err error) {
	data, err := os.ReadFile(filepath.Join(f.dir, walName))
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: reading WAL: %w", err)
	}
	off := 0
	for off < len(data) {
		lineEnd := len(data)
		next := len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			lineEnd = off + nl
			next = off + nl + 1
		}
		line := data[off:lineEnd]
		if len(bytes.TrimSpace(line)) == 0 {
			off = next
			continue
		}
		var e walEntry
		if err := unmarshalWALLine(line, &e); err != nil {
			// Scan from the corrupt line itself: a torn final line is
			// always tolerated (Put holds the mutex through its fsync, so
			// a torn record write is unacknowledged), and interior damage
			// is tolerated only when no intact record entry follows it.
			if next < len(data) && recordEntryIn(data[off:]) {
				return 0, 0, fmt.Errorf("store: corrupt WAL entry %d: %w", entries+1, err)
			}
			return entries, int64(off), nil // torn tail (possibly spanning coalesced event appends): drop it
		}
		switch {
		case e.Put != nil:
			f.tab.put(*e.Put)
		case e.Delete != "":
			f.tab.delete(e.Delete)
		case e.Events != nil:
			f.tab.appendEvents(e.Events.ID, e.Events.Events)
		}
		entries++
		off = next
	}
	return entries, int64(off), nil
}

// unmarshalWALLine decodes one WAL line into e. Framed lines (see
// framing.go) are CRC-checked and their payload parsed; unframed lines
// are parsed as bare JSON — the v1 migration path, so logs written by
// pre-framing builds replay unchanged.
func unmarshalWALLine(line []byte, e *walEntry) error {
	if line[0] == frameMark {
		payload, ok := decodeFrame(line)
		if !ok {
			return fmt.Errorf("store: damaged WAL frame")
		}
		return json.Unmarshal(payload, e)
	}
	return json.Unmarshal(line, e)
}

// recordEntryIn reports whether any WAL line in data carries (or might
// carry) a record entry — the check that lets replayWAL treat crash
// damage among coalesced event appends as a recoverable torn tail
// rather than fatal interior corruption. Framed lines are classified
// structurally: an intact frame is a record entry iff its payload
// decodes to a put/delete, and a damaged frame is not one (a torn
// record frame was never acknowledged — Put syncs before returning —
// so under the crash model a damaged frame can only be a coalesced
// event append). Unframed lines (v1 logs, or damage that ate the frame
// mark) keep the conservative v1 heuristic: a raw scan for the
// "put"/"del" keys, which still recognizes them in a line garbled
// beyond parsing and errs toward refusing — the loud failure (Open
// errors) over the silent one (an fsynced record vanishes).
func recordEntryIn(data []byte) bool {
	for len(data) > 0 {
		var line []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			line, data = data[:nl], data[nl+1:]
		} else {
			line, data = data, nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if line[0] == frameMark {
			payload, ok := decodeFrame(line)
			if !ok {
				continue // damaged frame: events-only under the crash model
			}
			var e walEntry
			if json.Unmarshal(payload, &e) == nil && (e.Put != nil || e.Delete != "") {
				return true
			}
			continue
		}
		if bytes.Contains(line, []byte(`"put":`)) || bytes.Contains(line, []byte(`"del":`)) {
			return true
		}
	}
	return false
}

// append writes one WAL entry, syncing it to disk when sync is true and
// scheduling a coalesced sync otherwise. On failure the log is truncated
// back to its last known-good length: a partial line left in place would
// poison every later append (the next Open would see interior
// corruption and refuse to start). A failed inline sync also truncates —
// the entry has not been applied in memory yet, so disk and memory agree
// that it never happened. Coalesced syncs (flushEvents) never truncate:
// their entries were already reported as appended.
func (f *File) append(e walEntry, sync bool) error {
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding WAL entry: %w", err)
	}
	data := encodeFrame(payload)
	if _, err := f.wal.Write(data); err != nil {
		_ = f.wal.Truncate(f.walSize)
		return fmt.Errorf("store: appending WAL entry: %w", err)
	}
	if !sync {
		f.walSize += int64(len(data))
		f.walLen++
		mWALAppends.Inc()
		f.scheduleSyncLocked()
		return nil
	}
	start := time.Now()
	if err := f.wal.Sync(); err != nil {
		_ = f.wal.Truncate(f.walSize)
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	mWALFsync.Observe(time.Since(start).Seconds())
	f.walSize += int64(len(data))
	f.walLen++
	mWALAppends.Inc()
	f.dirty = false // the sync covered every earlier unsynced entry too
	return nil
}

// scheduleSyncLocked marks unsynced bytes pending and arms the
// coalescing timer (at most one outstanding). Callers hold mu.
func (f *File) scheduleSyncLocked() {
	f.dirty = true
	if f.syncArmed {
		return
	}
	f.syncArmed = true
	time.AfterFunc(eventSyncInterval, f.flushEvents)
}

// flushEvents is the coalescing timer body: one fsync covering every
// event appended since the last sync barrier. The fsync itself runs
// OUTSIDE f.mu — os.File.Sync is safe concurrently with Write, and
// holding the store mutex across disk latency would stall every event
// append (and, transitively, the job mutex of each publisher). A write
// landing while the sync is in flight re-marks dirty and re-arms the
// timer, so it is covered by the next flush at the latest.
func (f *File) flushEvents() {
	f.mu.Lock()
	f.syncArmed = false
	if f.closed || !f.dirty {
		f.mu.Unlock()
		return
	}
	f.dirty = false
	wal := f.wal
	f.mu.Unlock()
	start := time.Now()
	if wal.Sync() == nil {
		mWALFsync.Observe(time.Since(start).Seconds())
		return
	}
	// Transient sync failure (EIO and kin): re-mark the bytes unsynced
	// and re-arm the timer, so the coalescing window keeps retrying
	// instead of silently abandoning durability until the next barrier.
	f.mu.Lock()
	if !f.closed {
		f.scheduleSyncLocked()
	}
	f.mu.Unlock()
}

// writeSnapshot durably installs a snapshot document: write to a temp
// file, fsync it, rename into place, fsync the directory. The snapshot
// must be durably on disk BEFORE the log shrinks; otherwise a crash
// could leave both an unflushed snapshot and a truncated log.
func (f *File) writeSnapshot(snap snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(f.dir, snapshotName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync() // make the rename durable; best-effort on filesystems without dir fsync
		d.Close()
	}
	return nil
}

// compactLocked rewrites the snapshot from the resident state and
// truncates the log, synchronously. Callers hold mu (and, by the lock
// order, compactMu). Only Close uses this form — nothing contends at
// shutdown; live compactions go through compact, which keeps mu
// released during the heavy phase.
func (f *File) compactLocked() error {
	if err := f.writeSnapshot(f.buildSnapshotLocked(false)); err != nil {
		return err
	}
	// The snapshot now durably holds everything: restart the log. A crash
	// right here replays pre-truncation entries over an equal snapshot,
	// which is harmless (record puts overwrite; event appends dedup).
	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	f.walLen = 0
	f.walSize = 0
	f.dirty = false // everything unsynced is now in the snapshot
	mCompactions.Inc()
	return nil
}

// buildSnapshotLocked assembles the snapshot document from the resident
// state. clone deep-copies records and events — required when the
// snapshot outlives the mutex (the live compaction path marshals it
// unlocked). Callers hold mu.
func (f *File) buildSnapshotLocked(clone bool) snapshot {
	snap := snapshot{Version: snapshotVersion, Records: make([]Record, 0, len(f.tab.ids))}
	for _, id := range f.tab.ids {
		rec := f.tab.recs[id]
		if clone {
			rec = rec.Clone()
		}
		snap.Records = append(snap.Records, rec)
	}
	if len(f.tab.events) == 0 {
		return snap
	}
	if !clone {
		snap.Events = f.tab.events
		return snap
	}
	snap.Events = make(map[string][]Event, len(f.tab.events))
	for id, evs := range f.tab.events {
		snap.Events[id] = cloneEvents(evs)
	}
	return snap
}

// wantCompactLocked reports whether the log has grown well past the
// resident state (records plus event log entries) — the point where
// replay would mostly apply overwritten or deleted state. Callers
// hold mu.
func (f *File) wantCompactLocked() bool {
	return f.walLen >= compactMinWAL && f.walLen >= 4*(len(f.tab.recs)+f.tab.numEvents)
}

// compact is the live-path compaction: the resident state is CLONED
// under mu, the snapshot is marshaled and fsynced with mu released (so
// concurrent Put/Delete/AppendEvents — and, transitively, the job
// mutexes of event publishers — never stall behind it), and the WAL is
// then cut down to just the entries appended during the heavy phase.
// Crash windows are all replay-safe: until the snapshot rename the old
// snapshot+WAL pair is intact, and after it the (full or suffix) WAL
// replays idempotently over the new snapshot.
func (f *File) compact() error {
	f.compactMu.Lock()
	defer f.compactMu.Unlock()

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if !f.wantCompactLocked() {
		f.mu.Unlock()
		return nil // a racing compaction already ran
	}
	snap := f.buildSnapshotLocked(true)
	coveredSize := f.walSize
	coveredLen := f.walLen
	f.mu.Unlock()

	if err := f.writeSnapshot(snap); err != nil {
		return err
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if err := f.cutWALLocked(coveredSize, coveredLen); err != nil {
		return err
	}
	mCompactions.Inc()
	return nil
}

// cutWALLocked replaces the WAL with just its suffix past coveredSize —
// the entries appended while the snapshot (which covers everything
// before them) was being written. Callers hold mu and compactMu. The
// new log is written aside, fsynced and renamed into place, then the
// append handle is reopened on it; a crash at any point leaves either
// the old full WAL or the new suffix WAL, both of which replay
// correctly over the installed snapshot.
func (f *File) cutWALLocked(coveredSize int64, coveredLen int) error {
	path := filepath.Join(f.dir, walName)
	var suffix []byte
	if f.walSize > coveredSize {
		rf, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("store: reopening WAL for compaction: %w", err)
		}
		suffix = make([]byte, f.walSize-coveredSize)
		_, err = rf.ReadAt(suffix, coveredSize)
		rf.Close()
		if err != nil {
			return fmt.Errorf("store: reading WAL suffix: %w", err)
		}
	}
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compacted WAL: %w", err)
	}
	if len(suffix) > 0 {
		if _, err := tf.Write(suffix); err != nil {
			tf.Close()
			return fmt.Errorf("store: writing compacted WAL: %w", err)
		}
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("store: syncing compacted WAL: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("store: closing compacted WAL: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: installing compacted WAL: %w", err)
	}
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	wal, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The old handle now points at the renamed-over (unlinked)
		// inode: writing to it would "succeed" while landing nowhere.
		// Fail the store loudly rather than lose durability silently.
		f.closed = true
		f.wal.Close()
		return fmt.Errorf("store: reopening WAL after compaction: %w", err)
	}
	f.wal.Close()
	f.wal = wal
	f.walSize = int64(len(suffix))
	f.walLen -= coveredLen
	f.dirty = false // the new WAL was fsynced whole
	return nil
}

// Put inserts or overwrites rec under rec.ID, durably.
func (f *File) Put(rec Record) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	rec = rec.Clone()
	if err := f.append(walEntry{Put: &rec}, true); err != nil {
		f.mu.Unlock()
		return err
	}
	f.tab.put(rec)
	want := f.wantCompactLocked()
	f.mu.Unlock()
	// A compaction failure is NOT a Put failure: the record is already
	// durable in the WAL (reporting an error here would make the caller
	// treat a persisted record as unpersisted — a ghost a restart would
	// resurrect). Compaction retries at the next threshold and on Close.
	if want {
		_ = f.compact()
	}
	return nil
}

// Update applies an atomic read-modify-write to the record under id
// (see Updater). The write, if any, is durable before Update returns,
// like Put's.
func (f *File) Update(id string, fn func(cur Record, ok bool) (Record, bool, error)) (Record, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return Record{}, ErrClosed
	}
	cur, ok := f.tab.recs[id]
	if ok {
		cur = cur.Clone()
	}
	out, write, err := fn(cur, ok)
	if err != nil {
		f.mu.Unlock()
		return Record{}, err
	}
	if !write {
		f.mu.Unlock()
		return out, nil
	}
	if out.ID != id {
		f.mu.Unlock()
		return Record{}, fmt.Errorf("store: update of %q returned record %q", id, out.ID)
	}
	out = out.Clone()
	if err := f.append(walEntry{Put: &out}, true); err != nil {
		f.mu.Unlock()
		return Record{}, err
	}
	f.tab.put(out)
	want := f.wantCompactLocked()
	f.mu.Unlock()
	if want {
		_ = f.compact() // durable already; see Put
	}
	return out.Clone(), nil
}

// Get returns the record under id and whether it exists.
func (f *File) Get(id string) (Record, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return Record{}, false, ErrClosed
	}
	rec, ok := f.tab.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List pages through the records in ascending ID order.
func (f *File) List(cursor string, limit int) ([]Record, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, "", ErrClosed
	}
	recs, next := f.tab.list(cursor, limit)
	return recs, next, nil
}

// Delete removes the record under id (and the job's event log), durably.
func (f *File) Delete(id string) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	_, haveRec := f.tab.recs[id]
	_, haveEvs := f.tab.events[id]
	if !haveRec && !haveEvs {
		f.mu.Unlock()
		return nil
	}
	if err := f.append(walEntry{Delete: id}, true); err != nil {
		f.mu.Unlock()
		return err
	}
	f.tab.delete(id)
	want := f.wantCompactLocked()
	f.mu.Unlock()
	if want {
		_ = f.compact() // durable already; see Put
	}
	return nil
}

// AppendEvents appends the batch to the job's event log. The write lands
// in the log immediately; its fsync is coalesced (see the File doc), so
// the progress hot path never waits on disk latency.
func (f *File) AppendEvents(id string, events []Event) error {
	if len(events) == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	evs := cloneEvents(events)
	if err := f.append(walEntry{Events: &walEvents{ID: id, Events: evs}}, false); err != nil {
		return err
	}
	f.tab.appendEvents(id, evs)
	// No compaction here, deliberately: the server appends from inside
	// the job mutex (the progress hot path). The appended entries still
	// count toward walLen, so the next Put/Delete — always outside any
	// job mutex — triggers the compaction they accrue (and even that
	// compaction holds the store mutex only to clone state and swap the
	// WAL, never across the snapshot write).
	return nil
}

// EventsSince returns the job's events with Seq > afterSeq, in order.
func (f *File) EventsSince(id string, afterSeq int) ([]Event, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	return f.tab.eventsSince(id, afterSeq), nil
}

// Len reports how many records are resident.
func (f *File) Len() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	return len(f.tab.recs), nil
}

// Close compacts the store into its snapshot and releases the log file.
// compactMu is taken first (the lock order), so an in-flight live
// compaction finishes before the final synchronous one runs.
func (f *File) Close() error {
	f.compactMu.Lock()
	defer f.compactMu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.compactLocked()
	if cerr := f.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
