package store

// WAL line framing. Every entry appended to a write-ahead log is one
// framed line:
//
//	=CCCCCCCC LEN PAYLOAD\n
//
// where CCCCCCCC is the fixed-width hex CRC-32C (Castagnoli) of PAYLOAD
// and LEN is PAYLOAD's decimal byte length. The frame gives crash
// recovery exact entry boundaries and an integrity check that is
// independent of the payload bytes: pre-framing (v1) recovery had to
// scan damaged regions for the raw `"put":`/`"del":` record keys to
// decide whether damage was a tolerable torn event tail or a lost
// record, which in turn forbade those byte sequences inside event
// payloads (the old ErrEventData constraint). With framing, a damaged
// region is classified by decoding the intact frames around it, and
// event payloads are fully opaque.
//
// Migration: v1 logs contain bare JSON lines (first byte '{', never
// '='). Replay accepts both — unframed lines parse as plain entries, so
// a store written by a pre-framing build opens cleanly; every new
// append is framed, and the first compaction rewrites the log all-framed.

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
)

// frameMark is the first byte of every framed WAL line. JSON entries
// begin with '{', so the mark also distinguishes framed lines from v1
// unframed ones.
const frameMark = '='

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame wraps one WAL entry payload in a framed line, trailing
// newline included.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, 0, len(payload)+16)
	buf = fmt.Appendf(buf, "%c%08x %d ", frameMark, crc32.Checksum(payload, crcTable), len(payload))
	buf = append(buf, payload...)
	return append(buf, '\n')
}

// decodeFrame parses a framed WAL line (without its trailing newline)
// and returns the payload. ok is false when the line is not a frame or
// fails its length or CRC check — the caller cannot distinguish "never
// was a frame" from "was one, now damaged" beyond the frameMark byte.
func decodeFrame(line []byte) (payload []byte, ok bool) {
	if len(line) < 11 || line[0] != frameMark || line[9] != ' ' {
		return nil, false
	}
	crc, err := strconv.ParseUint(string(line[1:9]), 16, 32)
	if err != nil {
		return nil, false
	}
	rest := line[10:]
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, false
	}
	n, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || n != len(rest)-sp-1 {
		return nil, false
	}
	payload = rest[sp+1:]
	if crc32.Checksum(payload, crcTable) != uint32(crc) {
		return nil, false
	}
	return payload, true
}
