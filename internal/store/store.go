// Package store is the job persistence layer of the CVCP selection
// service: a small key-value contract (Store) over serialized job records,
// plus a per-job append-only event log (EventLog), with cursor
// pagination, and two implementations —
//
//   - Memory: maps, for servers that accept losing state on restart;
//   - File: an append-only JSONL write-ahead log plus periodic snapshot
//     in a directory, so a server restarted with the same directory
//     replays its finished jobs — event histories included — and
//     re-queues the interrupted ones.
//
// The store is deliberately ignorant of what a job is. A Record carries
// the fields every implementation needs for ordering and lifecycle
// (ID, Status, timestamps) and treats the job's specification, dataset
// payload and result as opaque JSON blobs supplied by the caller
// (internal/server). Events are equally opaque: a sequence number for
// scan-since-seq reads plus a serialized payload. That is the seam that
// keeps the job manager storage-agnostic: swapping in a sharded or
// remote store is a new implementation of this interface, not a manager
// rewrite.
//
// # Ordering and cursors
//
// List returns records in ascending ID order. IDs are expected to be
// zero-padded so that lexicographic order equals submission order (the
// server uses "job-000000042"). A cursor is simply the last ID of the
// previous page: List(cursor, limit) returns records with ID > cursor.
// The empty cursor starts from the beginning; an empty next cursor means
// the listing is exhausted. Cursors stay valid across restarts and across
// record deletions — a deleted record is skipped, never an error.
package store

import (
	"encoding/json"
	"errors"
	"time"
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Record is one persisted job. Spec, Dataset and Result are opaque to the
// store: the server serializes whatever it needs to rebuild a job into
// them. Dataset is present only while a job might still run (the server
// drops it from terminal records, so finished jobs do not hold their
// input forever).
type Record struct {
	// ID is the unique, zero-padded job identifier; it defines the
	// listing order.
	ID string `json:"id"`
	// Batch is the owning batch ID, empty for individually submitted
	// jobs. Batch membership is rebuilt from this field on replay.
	Batch string `json:"batch,omitempty"`
	// Status is the job lifecycle state ("queued", "running", "done",
	// "failed", "cancelled"). The store does not interpret it beyond
	// handing it back.
	Status   string    `json:"status"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Spec is the serialized job specification (algorithm, candidate
	// parameters, folds, seed, supervision).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Dataset is the serialized input dataset, retained only for
	// non-terminal records so an interrupted job can be re-queued.
	Dataset json.RawMessage `json:"dataset,omitempty"`
	// Result is the serialized selection outcome of a done job.
	Result json.RawMessage `json:"result,omitempty"`
}

// Clone returns a deep copy of the record (the RawMessage fields are
// copied, so the caller may retain or mutate the original freely).
func (r Record) Clone() Record {
	c := r
	c.Spec = append(json.RawMessage(nil), r.Spec...)
	c.Dataset = append(json.RawMessage(nil), r.Dataset...)
	c.Result = append(json.RawMessage(nil), r.Result...)
	return c
}

// cloneForList is Clone minus the Dataset payload — List's contract.
// Listings are hot and dataset payloads large; copying megabytes per page
// only to render id/status/spec would dominate every listing request.
func (r Record) cloneForList() Record {
	c := r
	c.Dataset = nil
	c.Spec = append(json.RawMessage(nil), r.Spec...)
	c.Result = append(json.RawMessage(nil), r.Result...)
	return c
}

// Event is one persisted entry of a job's event log. Data is the opaque
// serialized event supplied by the caller (the server stores its SSE
// event JSON); Seq is the monotonically increasing per-job sequence
// number that scan-since-seq reads and Last-Event-ID resume key on.
// Data is fully opaque: the file store's WAL frames every line with a
// length and CRC (see framing.go), so crash recovery classifies damage
// from frame structure, never from payload bytes — a payload may carry
// any byte sequence, including ones that look like record-entry keys.
type Event struct {
	Seq  int             `json:"seq"`
	Data json.RawMessage `json:"data"`
}

func (e Event) clone() Event {
	e.Data = append(json.RawMessage(nil), e.Data...)
	return e
}

func cloneEvents(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		out[i] = e.clone()
	}
	return out
}

// EventLog is the per-job event stream half of the store: an append-only
// log per job ID, scanned by sequence number. Callers append events with
// strictly increasing Seq per job; implementations preserve append order.
//
// Durability is looser than for records: a durable implementation may
// coalesce the fsyncs of consecutive appends (so per-progress-event
// appends never serialize on disk latency), meaning a crash can lose a
// recently appended suffix of a log — never a middle. Record writes
// (Put, Delete) act as barriers: every event appended before a returned
// Put is durable with it.
type EventLog interface {
	// AppendEvents appends the batch to the event log of the job with
	// the given id, in order. An empty batch is a no-op.
	AppendEvents(id string, events []Event) error
	// EventsSince returns the job's events with Seq > afterSeq, in
	// append order. A job with no log yields an empty slice, not an
	// error; afterSeq 0 scans the whole log.
	EventsSince(id string, afterSeq int) ([]Event, error)
}

// An Updater is a Store that can apply an atomic read-modify-write to a
// single record — the compare-and-swap primitive shard leases in
// internal/dist are built on. fn receives a copy of the current record
// (and whether one exists) and decides the outcome: write=true installs
// the returned record (whose ID must equal id), write=false leaves the
// store untouched, and a non-nil error aborts without writing and is
// returned verbatim. No concurrent Put, Delete or Update of the same
// store interleaves with the read-modify-write; for Shared, the
// guarantee holds across processes. Update returns the record as of the
// call's completion. All three implementations (Memory, File, Shared)
// are Updaters.
type Updater interface {
	Update(id string, fn func(cur Record, ok bool) (Record, bool, error)) (Record, error)
}

// Store persists job records and their event logs. Implementations must
// be safe for concurrent use. Put with an existing ID overwrites; Delete
// of a missing ID is a no-op; Get reports presence through its second
// return value rather than an error.
type Store interface {
	EventLog
	// Put inserts or overwrites the record under rec.ID.
	Put(rec Record) error
	// Get returns the record with the given ID, and whether it exists.
	Get(id string) (Record, bool, error)
	// List returns up to limit records with ID > cursor in ascending ID
	// order, plus the cursor for the next page (empty when the listing
	// is exhausted). limit <= 0 means no limit. Listed records omit the
	// Dataset payload (use Get for the full record) — listings are hot
	// and dataset payloads large.
	List(cursor string, limit int) ([]Record, string, error)
	// Delete removes the record under id, if present, along with the
	// job's event log — a deleted job's events are meaningless on their
	// own, and dropping them here keeps eviction a single call.
	Delete(id string) error
	// Len reports how many records are resident.
	Len() (int, error)
	// Close releases the store's resources; for durable stores it also
	// compacts. Every later operation fails with ErrClosed.
	Close() error
}
