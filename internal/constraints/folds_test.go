package constraints

import (
	"testing"
	"testing/quick"

	"cvcp/internal/stats"
)

func TestSplitLabelsExactCover(t *testing.T) {
	r := stats.NewRand(1)
	idx := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	folds, err := SplitLabels(r, idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, o := range f.TestIdx {
			seen[o]++
		}
		if len(f.TrainIdx)+len(f.TestIdx) != len(idx) {
			t.Errorf("train+test = %d+%d != %d", len(f.TrainIdx), len(f.TestIdx), len(idx))
		}
		// Train and test must be disjoint.
		inTest := map[int]bool{}
		for _, o := range f.TestIdx {
			inTest[o] = true
		}
		for _, o := range f.TrainIdx {
			if inTest[o] {
				t.Errorf("object %d in both train and test", o)
			}
		}
	}
	for _, o := range idx {
		if seen[o] != 1 {
			t.Errorf("object %d appears in %d test folds, want 1", o, seen[o])
		}
	}
}

// TestAdaptFolds pins the documented auto-lowering: the requested fold
// count drops to objects/3 but never below 2.
func TestAdaptFolds(t *testing.T) {
	cases := []struct {
		name          string
		want, objects int
		exp           int
	}{
		{"plenty of objects keeps the request", 10, 100, 10},
		{"12 objects lower 10 folds to 4", 10, 12, 4},
		{"7 objects floor at 2", 10, 7, 2},
		{"4 objects floor at 2", 10, 4, 2},
		{"a single pair still yields the 2-fold floor", 10, 2, 2},
		{"zero objects still yields the 2-fold floor", 10, 0, 2},
		{"small requests pass through", 2, 100, 2},
		{"exact multiple of three", 10, 30, 10},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := AdaptFolds(c.want, c.objects); got != c.exp {
				t.Errorf("AdaptFolds(%d, %d) = %d, want %d", c.want, c.objects, got, c.exp)
			}
		})
	}
}

// TestSplitConstraintsEdgeCases drives the Scenario II fold construction
// through the supervision shapes that stress the documented auto-lowering:
// constraint sets far too small for the paper's 10 folds, a single
// must-link pair, and all-cannot-link sets. For each case the requested 10
// folds first pass through AdaptFolds (as the selection framework does) and
// the split must then either succeed with the lowered count or reject the
// supervision as too small even for the 2-fold floor.
func TestSplitConstraintsEdgeCases(t *testing.T) {
	// build returns a constraint set over n objects: consecutive pairs
	// must-link when ml is true, otherwise every listed pair cannot-link.
	pairSet := func(pairs [][2]int, ml bool) *Set {
		s := NewSet()
		for _, p := range pairs {
			s.Add(p[0], p[1], ml)
		}
		return s
	}
	cases := []struct {
		name      string
		set       *Set
		wantFolds int  // expected fold count after auto-lowering from 10
		wantErr   bool // even the lowered count cannot be satisfied
	}{
		{
			name:      "single must-link pair cannot fill even 2 folds",
			set:       pairSet([][2]int{{0, 1}}, true),
			wantFolds: 2,
			wantErr:   true,
		},
		{
			name:      "single cannot-link pair cannot fill even 2 folds",
			set:       pairSet([][2]int{{0, 1}}, false),
			wantFolds: 2,
			wantErr:   true,
		},
		{
			name:      "two disjoint must-link pairs fill exactly the 2-fold floor",
			set:       pairSet([][2]int{{0, 1}, {2, 3}}, true),
			wantFolds: 2,
		},
		{
			name:      "all-cannot-link over 5 objects lowered to 2 folds but one side loses its pairs",
			set:       pairSet([][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}, false),
			wantFolds: 2,
		},
		{
			name: "9 constrained objects lower 10 folds to 3",
			set: pairSet([][2]int{
				{0, 1}, {2, 3}, {4, 5}, {6, 7}, {7, 8},
			}, true),
			wantFolds: 3,
		},
		{
			name: "all-cannot-link over 12 objects lowered to 4 folds",
			set: func() *Set {
				s := NewSet()
				for a := 0; a < 12; a++ {
					for b := a + 1; b < 12; b++ {
						s.Add(a, b, false)
					}
				}
				return s
			}(),
			wantFolds: 4,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			closed, err := Closure(c.set)
			if err != nil {
				t.Fatal(err)
			}
			n := AdaptFolds(10, len(closed.Involved()))
			if n != c.wantFolds {
				t.Fatalf("AdaptFolds(10, %d) = %d, want %d", len(closed.Involved()), n, c.wantFolds)
			}
			folds, err := SplitConstraints(stats.NewRand(1), c.set, n)
			if c.wantErr {
				if err == nil {
					t.Fatalf("SplitConstraints succeeded with %d folds, want error", n)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(folds) != n {
				t.Fatalf("got %d folds, want %d", len(folds), n)
			}
			for fi, f := range folds {
				if len(f.TestObjects) < 2 {
					t.Errorf("fold %d: %d test objects, want >= 2", fi, len(f.TestObjects))
				}
			}
		})
	}
}

// TestSplitLabelsEdgeCases is the Scenario I counterpart: tiny labeled sets
// must be auto-lowered to the 2-fold floor and then split cleanly.
func TestSplitLabelsEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		objects   int
		wantFolds int
		wantErr   bool
	}{
		{"4 labeled objects floor at 2 folds", 4, 2, false},
		{"3 labeled objects cannot fill the floor", 3, 2, true},
		{"7 labeled objects floor at 2 folds", 7, 2, false},
		{"12 labeled objects lower to 4 folds", 12, 4, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			idx := make([]int, c.objects)
			for i := range idx {
				idx[i] = i * 3
			}
			n := AdaptFolds(10, c.objects)
			if n != c.wantFolds {
				t.Fatalf("AdaptFolds(10, %d) = %d, want %d", c.objects, n, c.wantFolds)
			}
			folds, err := SplitLabels(stats.NewRand(1), idx, n)
			if c.wantErr {
				if err == nil {
					t.Fatal("SplitLabels succeeded, want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(folds) != n {
				t.Fatalf("got %d folds, want %d", len(folds), n)
			}
			for fi, f := range folds {
				if len(f.TestIdx) < 2 {
					t.Errorf("fold %d: %d test objects, want >= 2", fi, len(f.TestIdx))
				}
			}
		})
	}
}

func TestSplitLabelsErrors(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := SplitLabels(r, []int{1, 2, 3}, 1); err == nil {
		t.Error("expected error for <2 folds")
	}
	if _, err := SplitLabels(r, []int{1, 2, 3}, 2); err == nil {
		t.Error("expected error when folds cannot hold >=2 objects")
	}
}

// TestSplitConstraintsIndependence verifies the paper's central requirement
// (§3.1): no test-fold constraint may be derivable from the training-fold
// constraints. Since both sides are closures over disjoint object sets, it
// suffices to check the object sets are disjoint and every constraint stays
// within its side.
func TestSplitConstraintsIndependence(t *testing.T) {
	r := stats.NewRand(7)
	y := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	s := FromLabels(idx, y)
	folds, err := SplitConstraints(r, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		inTest := map[int]bool{}
		for _, o := range f.TestObjects {
			inTest[o] = true
		}
		for _, o := range f.TrainObjects {
			if inTest[o] {
				t.Fatalf("fold %d: object %d on both sides", fi, o)
			}
		}
		for _, c := range f.Train.Constraints() {
			if inTest[c.A] || inTest[c.B] {
				t.Errorf("fold %d: training constraint %+v touches a test object", fi, c)
			}
		}
		for _, c := range f.Test.Constraints() {
			if !inTest[c.A] || !inTest[c.B] {
				t.Errorf("fold %d: test constraint %+v leaves the test fold", fi, c)
			}
		}
	}
}

// Property: for random consistent constraint sets, the train side of every
// fold is transitively closed (closing it again is a no-op), so no implicit
// information can leak into the test fold.
func TestSplitConstraintsTrainClosed(t *testing.T) {
	f := func(labels [12]uint8, seed int64) bool {
		y := make([]int, 12)
		idx := make([]int, 12)
		for i, l := range labels {
			y[i] = int(l % 3)
			idx[i] = i
		}
		s := FromLabels(idx, y)
		folds, err := SplitConstraints(stats.NewRand(seed), s, 3)
		if err != nil {
			return true
		}
		for _, fo := range folds {
			closed, err := Closure(fo.Train)
			if err != nil || closed.Len() != fo.Train.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitConstraintsInconsistent(t *testing.T) {
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(1, 2, true)
	s.Add(0, 2, false)
	if _, err := SplitConstraints(stats.NewRand(1), s, 2); err == nil {
		t.Error("expected inconsistency error")
	}
}

func TestNaiveSplitLeaksThroughClosure(t *testing.T) {
	// Construct the paper's leakage scenario deterministically: with
	// must-link(A,B), must-link(C,D), cannot-link(B,C), the implied
	// cannot-link(A,D) may land in a different fold than its premises.
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(2, 3, true)
	s.Add(1, 2, false)
	s.Add(0, 3, false) // explicitly state the implied constraint too
	// Scan seeds until the naive split puts (0,3) alone in the test fold
	// while its premises sit in training — the leak.
	leaked := false
	for seed := int64(0); seed < 50 && !leaked; seed++ {
		folds, err := NaiveSplitConstraints(stats.NewRand(seed), s, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range folds {
			if f.Test.HasCannotLink(0, 3) &&
				f.Train.HasMustLink(0, 1) && f.Train.HasMustLink(2, 3) && f.Train.HasCannotLink(1, 2) {
				leaked = true
			}
		}
	}
	if !leaked {
		t.Error("naive splitting never produced the leakage the paper warns about; the ablation baseline is broken")
	}
	// The proper procedure can never leak: (0,3) in the test fold forces
	// its premises out of training because they share objects.
	for seed := int64(0); seed < 50; seed++ {
		folds, err := SplitConstraints(stats.NewRand(seed), s, 2)
		if err != nil {
			continue // too few constrained objects for the fold count is fine
		}
		for _, f := range folds {
			if f.Test.HasCannotLink(0, 3) &&
				f.Train.HasMustLink(0, 1) && f.Train.HasMustLink(2, 3) && f.Train.HasCannotLink(1, 2) {
				t.Fatal("proper split leaked")
			}
		}
	}
}

func TestPoolAndSample(t *testing.T) {
	r := stats.NewRand(3)
	y := make([]int, 100)
	for i := range y {
		y[i] = i % 4 // 4 classes of 25
	}
	pool := Pool(r, y, 0.2) // 5 objects per class -> 20 objects -> 190 pairs
	if got := pool.Len(); got != 190 {
		t.Errorf("pool size = %d, want 190", got)
	}
	sub := Sample(r, pool, 0.1)
	if got := sub.Len(); got != 19 {
		t.Errorf("sample size = %d, want 19", got)
	}
	// Every sampled constraint must come from the pool with the same sense.
	for _, c := range sub.Constraints() {
		if c.MustLink && !pool.HasMustLink(c.A, c.B) {
			t.Errorf("sampled ML %v not in pool", c)
		}
		if !c.MustLink && !pool.HasCannotLink(c.A, c.B) {
			t.Errorf("sampled CL %v not in pool", c)
		}
	}
}

func TestPoolMinimumOnePerClass(t *testing.T) {
	r := stats.NewRand(3)
	y := []int{0, 0, 1, 1, 2, 2}
	pool := Pool(r, y, 0.01) // rounds to at least one object per class
	// 3 chosen objects -> 3 pairwise constraints, all cannot-link.
	if pool.Len() != 3 || pool.NumCannotLink() != 3 {
		t.Errorf("pool = %v", pool.Constraints())
	}
}
