package constraints

import (
	"testing"
	"testing/quick"

	"cvcp/internal/stats"
)

func TestSplitLabelsExactCover(t *testing.T) {
	r := stats.NewRand(1)
	idx := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18}
	folds, err := SplitLabels(r, idx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		for _, o := range f.TestIdx {
			seen[o]++
		}
		if len(f.TrainIdx)+len(f.TestIdx) != len(idx) {
			t.Errorf("train+test = %d+%d != %d", len(f.TrainIdx), len(f.TestIdx), len(idx))
		}
		// Train and test must be disjoint.
		inTest := map[int]bool{}
		for _, o := range f.TestIdx {
			inTest[o] = true
		}
		for _, o := range f.TrainIdx {
			if inTest[o] {
				t.Errorf("object %d in both train and test", o)
			}
		}
	}
	for _, o := range idx {
		if seen[o] != 1 {
			t.Errorf("object %d appears in %d test folds, want 1", o, seen[o])
		}
	}
}

func TestSplitLabelsErrors(t *testing.T) {
	r := stats.NewRand(1)
	if _, err := SplitLabels(r, []int{1, 2, 3}, 1); err == nil {
		t.Error("expected error for <2 folds")
	}
	if _, err := SplitLabels(r, []int{1, 2, 3}, 2); err == nil {
		t.Error("expected error when folds cannot hold >=2 objects")
	}
}

// TestSplitConstraintsIndependence verifies the paper's central requirement
// (§3.1): no test-fold constraint may be derivable from the training-fold
// constraints. Since both sides are closures over disjoint object sets, it
// suffices to check the object sets are disjoint and every constraint stays
// within its side.
func TestSplitConstraintsIndependence(t *testing.T) {
	r := stats.NewRand(7)
	y := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 1, 2}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	s := FromLabels(idx, y)
	folds, err := SplitConstraints(r, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		inTest := map[int]bool{}
		for _, o := range f.TestObjects {
			inTest[o] = true
		}
		for _, o := range f.TrainObjects {
			if inTest[o] {
				t.Fatalf("fold %d: object %d on both sides", fi, o)
			}
		}
		for _, c := range f.Train.Constraints() {
			if inTest[c.A] || inTest[c.B] {
				t.Errorf("fold %d: training constraint %+v touches a test object", fi, c)
			}
		}
		for _, c := range f.Test.Constraints() {
			if !inTest[c.A] || !inTest[c.B] {
				t.Errorf("fold %d: test constraint %+v leaves the test fold", fi, c)
			}
		}
	}
}

// Property: for random consistent constraint sets, the train side of every
// fold is transitively closed (closing it again is a no-op), so no implicit
// information can leak into the test fold.
func TestSplitConstraintsTrainClosed(t *testing.T) {
	f := func(labels [12]uint8, seed int64) bool {
		y := make([]int, 12)
		idx := make([]int, 12)
		for i, l := range labels {
			y[i] = int(l % 3)
			idx[i] = i
		}
		s := FromLabels(idx, y)
		folds, err := SplitConstraints(stats.NewRand(seed), s, 3)
		if err != nil {
			return true
		}
		for _, fo := range folds {
			closed, err := Closure(fo.Train)
			if err != nil || closed.Len() != fo.Train.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplitConstraintsInconsistent(t *testing.T) {
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(1, 2, true)
	s.Add(0, 2, false)
	if _, err := SplitConstraints(stats.NewRand(1), s, 2); err == nil {
		t.Error("expected inconsistency error")
	}
}

func TestNaiveSplitLeaksThroughClosure(t *testing.T) {
	// Construct the paper's leakage scenario deterministically: with
	// must-link(A,B), must-link(C,D), cannot-link(B,C), the implied
	// cannot-link(A,D) may land in a different fold than its premises.
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(2, 3, true)
	s.Add(1, 2, false)
	s.Add(0, 3, false) // explicitly state the implied constraint too
	// Scan seeds until the naive split puts (0,3) alone in the test fold
	// while its premises sit in training — the leak.
	leaked := false
	for seed := int64(0); seed < 50 && !leaked; seed++ {
		folds, err := NaiveSplitConstraints(stats.NewRand(seed), s, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range folds {
			if f.Test.HasCannotLink(0, 3) &&
				f.Train.HasMustLink(0, 1) && f.Train.HasMustLink(2, 3) && f.Train.HasCannotLink(1, 2) {
				leaked = true
			}
		}
	}
	if !leaked {
		t.Error("naive splitting never produced the leakage the paper warns about; the ablation baseline is broken")
	}
	// The proper procedure can never leak: (0,3) in the test fold forces
	// its premises out of training because they share objects.
	for seed := int64(0); seed < 50; seed++ {
		folds, err := SplitConstraints(stats.NewRand(seed), s, 2)
		if err != nil {
			continue // too few constrained objects for the fold count is fine
		}
		for _, f := range folds {
			if f.Test.HasCannotLink(0, 3) &&
				f.Train.HasMustLink(0, 1) && f.Train.HasMustLink(2, 3) && f.Train.HasCannotLink(1, 2) {
				t.Fatal("proper split leaked")
			}
		}
	}
}

func TestPoolAndSample(t *testing.T) {
	r := stats.NewRand(3)
	y := make([]int, 100)
	for i := range y {
		y[i] = i % 4 // 4 classes of 25
	}
	pool := Pool(r, y, 0.2) // 5 objects per class -> 20 objects -> 190 pairs
	if got := pool.Len(); got != 190 {
		t.Errorf("pool size = %d, want 190", got)
	}
	sub := Sample(r, pool, 0.1)
	if got := sub.Len(); got != 19 {
		t.Errorf("sample size = %d, want 19", got)
	}
	// Every sampled constraint must come from the pool with the same sense.
	for _, c := range sub.Constraints() {
		if c.MustLink && !pool.HasMustLink(c.A, c.B) {
			t.Errorf("sampled ML %v not in pool", c)
		}
		if !c.MustLink && !pool.HasCannotLink(c.A, c.B) {
			t.Errorf("sampled CL %v not in pool", c)
		}
	}
}

func TestPoolMinimumOnePerClass(t *testing.T) {
	r := stats.NewRand(3)
	y := []int{0, 0, 1, 1, 2, 2}
	pool := Pool(r, y, 0.01) // rounds to at least one object per class
	// 3 chosen objects -> 3 pairwise constraints, all cannot-link.
	if pool.Len() != 3 || pool.NumCannotLink() != 3 {
		t.Errorf("pool = %v", pool.Constraints())
	}
}
