package constraints

import (
	"math"
	"math/rand"
)

// Pool builds the paper's candidate constraint pool (§4.1): it selects
// objFrac of the objects from each class (at least one per class) and
// generates all pairwise constraints among the selected objects. y maps
// object index to class label; labels < 0 are ignored.
func Pool(r *rand.Rand, y []int, objFrac float64) *Set {
	byClass := map[int][]int{}
	var classes []int
	for i, c := range y {
		if c < 0 {
			continue
		}
		if _, ok := byClass[c]; !ok {
			classes = append(classes, c)
		}
		byClass[c] = append(byClass[c], i)
	}
	var chosen []int
	for _, c := range classes {
		members := byClass[c]
		k := int(math.Round(objFrac * float64(len(members))))
		if k < 1 {
			k = 1
		}
		if k > len(members) {
			k = len(members)
		}
		perm := r.Perm(len(members))
		for _, j := range perm[:k] {
			chosen = append(chosen, members[j])
		}
	}
	return FromLabels(chosen, y)
}

// Sample returns a uniformly random subset containing frac of the
// constraints in s (at least one, at most all), drawn without replacement.
func Sample(r *rand.Rand, s *Set, frac float64) *Set {
	all := s.Constraints()
	k := int(math.Round(frac * float64(len(all))))
	if k < 1 {
		k = 1
	}
	if k > len(all) {
		k = len(all)
	}
	out := NewSet()
	perm := r.Perm(len(all))
	for _, j := range perm[:k] {
		out.AddConstraint(all[j])
	}
	return out
}
