package constraints

// UnionFind is a disjoint-set forest with path compression and union by
// rank, keyed by arbitrary non-negative object indices (it grows on demand).
type UnionFind struct {
	parent map[int]int
	rank   map[int]int
}

// NewUnionFind returns an empty union-find structure.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: map[int]int{}, rank: map[int]int{}}
}

// Find returns the representative of x's set, adding x as a singleton if it
// was not seen before.
func (u *UnionFind) Find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.Find(p)
	u.parent[x] = root
	return root
}

// Union merges the sets containing a and b and returns the new root.
func (u *UnionFind) Union(a, b int) int {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return ra
}

// Same reports whether a and b are in the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }

// Components returns the members of each set, keyed by representative.
// Only elements ever passed to Find/Union appear.
func (u *UnionFind) Components() map[int][]int {
	out := map[int][]int{}
	for x := range u.parent {
		out[u.Find(x)] = append(out[u.Find(x)], x)
	}
	return out
}
