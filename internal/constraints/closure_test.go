package constraints

import (
	"testing"
	"testing/quick"
)

// TestClosurePaperFigure2 reproduces the paper's Figure 2 example: given
// must-link(A,B), must-link(C,D) and cannot-link(B,C), the closure must add
// cannot-link(A,C), cannot-link(A,D) and cannot-link(B,D).
func TestClosurePaperFigure2(t *testing.T) {
	const (
		A = 0
		B = 1
		C = 2
		D = 3
	)
	s := NewSet()
	s.Add(A, B, true)
	s.Add(C, D, true)
	s.Add(B, C, false)
	closed, err := Closure(s)
	if err != nil {
		t.Fatal(err)
	}
	if !closed.HasMustLink(A, B) || !closed.HasMustLink(C, D) {
		t.Error("closure lost the explicit must-links")
	}
	for _, want := range [][2]int{{A, C}, {A, D}, {B, D}, {B, C}} {
		if !closed.HasCannotLink(want[0], want[1]) {
			t.Errorf("missing induced cannot-link(%d,%d)", want[0], want[1])
		}
	}
	if closed.Len() != 6 {
		t.Errorf("closure has %d constraints, want 6", closed.Len())
	}
}

// TestClosurePaperCounterexample reproduces the paper's second example:
// with cannot-link(A,B), cannot-link(C,D) and must-link(B,C), the closure
// derives cannot-link(A,C) and cannot-link(B,D) but must know nothing about
// (A,D).
func TestClosurePaperCounterexample(t *testing.T) {
	const (
		A = 0
		B = 1
		C = 2
		D = 3
	)
	s := NewSet()
	s.Add(A, B, false)
	s.Add(C, D, false)
	s.Add(B, C, true)
	closed, err := Closure(s)
	if err != nil {
		t.Fatal(err)
	}
	if !closed.HasCannotLink(A, C) || !closed.HasCannotLink(B, D) {
		t.Error("missing induced cannot-links")
	}
	if closed.HasCannotLink(A, D) || closed.HasMustLink(A, D) {
		t.Error("closure invented knowledge about (A,D)")
	}
}

func TestClosureMustLinkTransitivity(t *testing.T) {
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(1, 2, true)
	closed, err := Closure(s)
	if err != nil {
		t.Fatal(err)
	}
	if !closed.HasMustLink(0, 2) {
		t.Error("must-link(0,2) not derived")
	}
}

func TestClosureConflict(t *testing.T) {
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(1, 2, true)
	s.Add(0, 2, false) // contradicts the ML component {0,1,2}
	if _, err := Closure(s); err == nil {
		t.Error("expected inconsistency error")
	}
}

func TestClosureEmpty(t *testing.T) {
	closed, err := Closure(NewSet())
	if err != nil {
		t.Fatal(err)
	}
	if closed.Len() != 0 {
		t.Errorf("closure of empty set has %d constraints", closed.Len())
	}
}

// Property: Closure is idempotent — closing a closed set changes nothing.
func TestClosureIdempotent(t *testing.T) {
	f := func(edges [8][2]uint8, kinds uint8) bool {
		s := NewSet()
		for i, e := range edges {
			a, b := int(e[0]%10), int(e[1]%10)
			if a == b {
				continue
			}
			s.Add(a, b, kinds&(1<<uint(i)) != 0)
		}
		c1, err := Closure(s)
		if err != nil {
			return true // inconsistent inputs are rejected, fine
		}
		c2, err := Closure(c1)
		if err != nil {
			return false // a consistent closure must stay consistent
		}
		if c1.Len() != c2.Len() {
			return false
		}
		for _, c := range c1.Constraints() {
			if c.MustLink && !c2.HasMustLink(c.A, c.B) {
				return false
			}
			if !c.MustLink && !c2.HasCannotLink(c.A, c.B) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the closure contains the original constraints, and closure of
// labels-derived constraints equals the original set (label-derived
// constraint sets are already transitively closed).
func TestClosureOfLabelDerivedIsIdentity(t *testing.T) {
	f := func(labels [8]uint8) bool {
		y := make([]int, 8)
		idx := make([]int, 8)
		for i, l := range labels {
			y[i] = int(l % 3)
			idx[i] = i
		}
		s := FromLabels(idx, y)
		closed, err := Closure(s)
		if err != nil {
			return false
		}
		return closed.Len() == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustLinkComponents(t *testing.T) {
	s := NewSet()
	s.Add(0, 1, true)
	s.Add(1, 2, true)
	s.Add(5, 6, true)
	s.Add(3, 7, false) // CL-only objects become singleton components
	comps := MustLinkComponents(s)
	if len(comps) != 4 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 || comps[0][2] != 2 {
		t.Errorf("comps[0] = %v", comps[0])
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind()
	uf.Union(1, 2)
	uf.Union(2, 3)
	if !uf.Same(1, 3) {
		t.Error("1 and 3 must be joined")
	}
	if uf.Same(1, 4) {
		t.Error("4 must be separate")
	}
	comps := uf.Components()
	var sizes []int
	for _, m := range comps {
		sizes = append(sizes, len(m))
	}
	// {1,2,3} and {4}.
	if len(comps) != 2 {
		t.Errorf("components = %v", comps)
	}
	_ = sizes
}

// Property: union-find Same is an equivalence relation consistent with the
// union operations performed.
func TestUnionFindProperty(t *testing.T) {
	f := func(ops [10][2]uint8) bool {
		uf := NewUnionFind()
		type edge struct{ a, b int }
		var edges []edge
		for _, op := range ops {
			a, b := int(op[0]%12), int(op[1]%12)
			uf.Union(a, b)
			edges = append(edges, edge{a, b})
		}
		// Reference: brute-force reachability over the union edges.
		adj := map[int][]int{}
		for _, e := range edges {
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
		reach := func(from, to int) bool {
			seen := map[int]bool{from: true}
			stack := []int{from}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if v == to {
					return true
				}
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						stack = append(stack, w)
					}
				}
			}
			return false
		}
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				if _, ok := adj[a]; !ok {
					continue
				}
				if _, ok := adj[b]; !ok {
					continue
				}
				if uf.Same(a, b) != reach(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
