package constraints

import (
	"fmt"
	"math/rand"
	"sort"
)

// AdaptFolds lowers a requested cross-validation fold count so that each
// fold receives at least three of the given supervised objects, never going
// below 2 folds. A test fold needs several objects before the constraints
// derived from it include must-links with useful probability; with fewer
// than three objects per fold the constraint classifier is scored almost
// exclusively on cannot-links, which over-merging and over-noising
// clusterings can both satisfy. Note the floor of 2 wins over the
// three-per-fold target when the supervision is tiny (e.g. 4 objects still
// yield 2 folds of 2), so callers must tolerate 2-object test folds.
func AdaptFolds(want, objects int) int {
	n := want
	if max := objects / 3; n > max {
		n = max
	}
	if n < 2 {
		n = 2
	}
	return n
}

// LabelFold is one train/test split of labeled objects for the paper's
// Scenario I (§3.1.1). TrainIdx holds the labeled objects of the n-1
// training folds combined; TestIdx holds the held-out fold. Constraints are
// derived from each side independently with FromLabels, so by construction
// no test information is available during training.
type LabelFold struct {
	TrainIdx []int
	TestIdx  []int
}

// SplitLabels partitions the labeled object indices into nFolds random folds
// and returns the n train/test splits. Every fold must receive at least two
// objects (otherwise no test constraint can be derived), so it returns an
// error when len(indices) < 2*nFolds.
func SplitLabels(r *rand.Rand, indices []int, nFolds int) ([]LabelFold, error) {
	if nFolds < 2 {
		return nil, fmt.Errorf("constraints: need at least 2 folds, got %d", nFolds)
	}
	if len(indices) < 2*nFolds {
		return nil, fmt.Errorf("constraints: %d labeled objects cannot fill %d folds with >=2 objects each", len(indices), nFolds)
	}
	folds := partition(r, indices, nFolds)
	out := make([]LabelFold, nFolds)
	for i := range folds {
		var train []int
		for j, f := range folds {
			if j != i {
				train = append(train, f...)
			}
		}
		sort.Ints(train)
		test := append([]int(nil), folds[i]...)
		sort.Ints(test)
		out[i] = LabelFold{TrainIdx: train, TestIdx: test}
	}
	return out, nil
}

// ConstraintFold is one train/test split of a constraint set for the paper's
// Scenario II (§3.1.2). Train and Test are each transitively closed within
// their side; every constraint crossing the object partition has been
// removed, so the test information is independent of the training
// information.
type ConstraintFold struct {
	Train        *Set
	Test         *Set
	TrainObjects []int
	TestObjects  []int
}

// SplitConstraints implements the paper's Scenario II fold construction:
// it first extends s to its transitive closure, partitions the objects
// involved in any constraint into nFolds folds, deletes all constraints
// between a training-fold object and a test-fold object, and keeps each
// side's (already closed) constraints. It returns an error for inconsistent
// constraint sets or when the involved objects cannot fill the folds.
func SplitConstraints(r *rand.Rand, s *Set, nFolds int) ([]ConstraintFold, error) {
	if nFolds < 2 {
		return nil, fmt.Errorf("constraints: need at least 2 folds, got %d", nFolds)
	}
	closed, err := Closure(s)
	if err != nil {
		return nil, err
	}
	objects := closed.Involved()
	if len(objects) < 2*nFolds {
		return nil, fmt.Errorf("constraints: %d constrained objects cannot fill %d folds with >=2 objects each", len(objects), nFolds)
	}
	folds := partition(r, objects, nFolds)
	out := make([]ConstraintFold, nFolds)
	for i := range folds {
		test := map[int]bool{}
		for _, o := range folds[i] {
			test[o] = true
		}
		train := make([]int, 0, len(objects)-len(folds[i]))
		for _, o := range objects {
			if !test[o] {
				train = append(train, o)
			}
		}
		testIdx := append([]int(nil), folds[i]...)
		sort.Ints(testIdx)
		out[i] = ConstraintFold{
			Train:        closed.Restrict(func(o int) bool { return !test[o] }),
			Test:         closed.Restrict(func(o int) bool { return test[o] }),
			TrainObjects: train,
			TestObjects:  testIdx,
		}
	}
	return out, nil
}

// NaiveSplitConstraints partitions the raw constraint *edges* (not objects)
// into folds without computing the closure first — the flawed procedure the
// paper warns against in §3.1: information from training folds leaks into
// test folds through the transitive closure. It exists only to quantify that
// leakage in the ablation benchmarks and must not be used for model
// selection.
func NaiveSplitConstraints(r *rand.Rand, s *Set, nFolds int) ([]ConstraintFold, error) {
	if nFolds < 2 {
		return nil, fmt.Errorf("constraints: need at least 2 folds, got %d", nFolds)
	}
	all := s.Constraints()
	if len(all) < nFolds {
		return nil, fmt.Errorf("constraints: %d constraints cannot fill %d folds", len(all), nFolds)
	}
	perm := r.Perm(len(all))
	buckets := make([][]Constraint, nFolds)
	for pos, j := range perm {
		buckets[pos%nFolds] = append(buckets[pos%nFolds], all[j])
	}
	out := make([]ConstraintFold, nFolds)
	for i := range buckets {
		train := NewSet()
		test := NewSet()
		for j, b := range buckets {
			for _, c := range b {
				if j == i {
					test.AddConstraint(c)
				} else {
					train.AddConstraint(c)
				}
			}
		}
		out[i] = ConstraintFold{
			Train:        train,
			Test:         test,
			TrainObjects: train.Involved(),
			TestObjects:  test.Involved(),
		}
	}
	return out, nil
}

// partition shuffles items and deals them into n nearly equal folds
// (sizes differ by at most one).
func partition(r *rand.Rand, items []int, n int) [][]int {
	shuffled := append([]int(nil), items...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	folds := make([][]int, n)
	for i, it := range shuffled {
		folds[i%n] = append(folds[i%n], it)
	}
	return folds
}
