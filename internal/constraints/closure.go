package constraints

import (
	"fmt"
	"sort"
)

// Closure computes the transitive closure of s (paper §3.1, Figure 2):
//
//   - must-link is an equivalence: all pairs within a must-link-connected
//     component become must-link constraints;
//   - a cannot-link between any members of two components induces
//     cannot-link constraints between *all* cross-component pairs.
//
// Objects that appear only in cannot-link constraints form singleton
// components. Closure returns an error when the input is inconsistent, i.e.
// some cannot-link connects two objects of the same must-link component.
func Closure(s *Set) (*Set, error) {
	uf := NewUnionFind()
	for p := range s.ml {
		uf.Union(p.A, p.B)
	}
	for p := range s.cl {
		uf.Find(p.A)
		uf.Find(p.B)
	}

	// Conflicts and component-level cannot-link pairs.
	compCL := map[Pair]struct{}{}
	for p := range s.cl {
		ra, rb := uf.Find(p.A), uf.Find(p.B)
		if ra == rb {
			return nil, fmt.Errorf("constraints: inconsistent input: cannot-link(%d,%d) joins one must-link component", p.A, p.B)
		}
		compCL[MakePair(ra, rb)] = struct{}{}
	}

	comps := uf.Components()
	for _, members := range comps {
		sort.Ints(members)
	}

	out := NewSet()
	for _, members := range comps {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				out.ml[Pair{members[i], members[j]}] = struct{}{}
			}
		}
	}
	for cp := range compCL {
		for _, a := range comps[cp.A] {
			for _, b := range comps[cp.B] {
				out.cl[MakePair(a, b)] = struct{}{}
			}
		}
	}
	return out, nil
}

// MustLinkComponents returns the must-link connected components of s as
// sorted member slices, in deterministic order (by smallest member). Objects
// appearing only in cannot-links are included as singletons.
func MustLinkComponents(s *Set) [][]int {
	uf := NewUnionFind()
	for p := range s.ml {
		uf.Union(p.A, p.B)
	}
	for p := range s.cl {
		uf.Find(p.A)
		uf.Find(p.B)
	}
	comps := uf.Components()
	out := make([][]int, 0, len(comps))
	for _, members := range comps {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
