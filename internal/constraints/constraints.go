// Package constraints implements instance-level clustering constraints
// (must-link / cannot-link), their derivation from labeled objects, the
// transitive closure over the constraint graph, the paper's constraint pool,
// and the cross-validation fold construction of Section 3.1 that keeps
// training and test information independent.
package constraints

import (
	"fmt"
	"sort"
)

// Pair is an unordered pair of object indices with A < B.
type Pair struct{ A, B int }

// MakePair normalizes (a, b) into a Pair with A < B. It panics when a == b:
// self-constraints are meaningless.
func MakePair(a, b int) Pair {
	switch {
	case a == b:
		panic(fmt.Sprintf("constraints: self-pair (%d,%d)", a, b))
	case a < b:
		return Pair{a, b}
	default:
		return Pair{b, a}
	}
}

// Constraint is a pairwise instance-level constraint. MustLink true means
// the two objects should share a cluster (class 1 in the paper's
// classification view); false means they should be separated (class 0).
type Constraint struct {
	Pair
	MustLink bool
}

// Set is a deduplicated collection of constraints. The zero value is not
// usable; call NewSet.
type Set struct {
	ml map[Pair]struct{}
	cl map[Pair]struct{}
}

// NewSet returns an empty constraint set.
func NewSet() *Set {
	return &Set{ml: map[Pair]struct{}{}, cl: map[Pair]struct{}{}}
}

// Add inserts the constraint between a and b. Adding the same pair with the
// opposite sense records a direct conflict, which Validate and Closure
// report; the later Add does not silently overwrite the earlier one.
func (s *Set) Add(a, b int, mustLink bool) {
	p := MakePair(a, b)
	if mustLink {
		s.ml[p] = struct{}{}
	} else {
		s.cl[p] = struct{}{}
	}
}

// AddConstraint inserts c.
func (s *Set) AddConstraint(c Constraint) { s.Add(c.A, c.B, c.MustLink) }

// Len returns the total number of constraints.
func (s *Set) Len() int { return len(s.ml) + len(s.cl) }

// NumMustLink returns the number of must-link constraints.
func (s *Set) NumMustLink() int { return len(s.ml) }

// NumCannotLink returns the number of cannot-link constraints.
func (s *Set) NumCannotLink() int { return len(s.cl) }

// HasMustLink reports whether the pair (a,b) is a must-link constraint.
func (s *Set) HasMustLink(a, b int) bool {
	_, ok := s.ml[MakePair(a, b)]
	return ok
}

// HasCannotLink reports whether the pair (a,b) is a cannot-link constraint.
func (s *Set) HasCannotLink(a, b int) bool {
	_, ok := s.cl[MakePair(a, b)]
	return ok
}

// Constraints returns all constraints in deterministic (sorted) order:
// must-links first, then cannot-links, each sorted by (A, B).
func (s *Set) Constraints() []Constraint {
	out := make([]Constraint, 0, s.Len())
	for _, p := range sortedPairs(s.ml) {
		out = append(out, Constraint{Pair: p, MustLink: true})
	}
	for _, p := range sortedPairs(s.cl) {
		out = append(out, Constraint{Pair: p, MustLink: false})
	}
	return out
}

// MustLinks returns the must-link pairs in sorted order.
func (s *Set) MustLinks() []Pair { return sortedPairs(s.ml) }

// CannotLinks returns the cannot-link pairs in sorted order.
func (s *Set) CannotLinks() []Pair { return sortedPairs(s.cl) }

// Involved returns the sorted indices of all objects that appear in at least
// one constraint.
func (s *Set) Involved() []int {
	seen := map[int]struct{}{}
	for p := range s.ml {
		seen[p.A] = struct{}{}
		seen[p.B] = struct{}{}
	}
	for p := range s.cl {
		seen[p.A] = struct{}{}
		seen[p.B] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet()
	for p := range s.ml {
		c.ml[p] = struct{}{}
	}
	for p := range s.cl {
		c.cl[p] = struct{}{}
	}
	return c
}

// Validate reports an error if any pair is constrained both must-link and
// cannot-link.
func (s *Set) Validate() error {
	for p := range s.ml {
		if _, bad := s.cl[p]; bad {
			return fmt.Errorf("constraints: pair (%d,%d) is both must-link and cannot-link", p.A, p.B)
		}
	}
	return nil
}

// Restrict returns the subset of constraints whose endpoints are both in
// keep (given as a membership predicate over object indices).
func (s *Set) Restrict(keep func(int) bool) *Set {
	out := NewSet()
	for p := range s.ml {
		if keep(p.A) && keep(p.B) {
			out.ml[p] = struct{}{}
		}
	}
	for p := range s.cl {
		if keep(p.A) && keep(p.B) {
			out.cl[p] = struct{}{}
		}
	}
	return out
}

func sortedPairs(m map[Pair]struct{}) []Pair {
	out := make([]Pair, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// FromLabels derives the full set of constraints among the given labeled
// objects: a must-link for every same-label pair and a cannot-link for every
// different-label pair (paper §3.1.1). y maps object index to class label.
func FromLabels(indices []int, y []int) *Set {
	s := NewSet()
	for i := 0; i < len(indices); i++ {
		for j := i + 1; j < len(indices); j++ {
			a, b := indices[i], indices[j]
			s.Add(a, b, y[a] == y[b])
		}
	}
	return s
}
