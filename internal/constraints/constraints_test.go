package constraints

import (
	"testing"
	"testing/quick"
)

func TestMakePair(t *testing.T) {
	p := MakePair(5, 2)
	if p.A != 2 || p.B != 5 {
		t.Errorf("MakePair(5,2) = %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self-pair")
		}
	}()
	MakePair(3, 3)
}

func TestSetAddAndQuery(t *testing.T) {
	s := NewSet()
	s.Add(1, 2, true)
	s.Add(4, 3, false)
	s.Add(2, 1, true) // duplicate in reversed order
	if s.Len() != 2 || s.NumMustLink() != 1 || s.NumCannotLink() != 1 {
		t.Errorf("Len=%d ML=%d CL=%d", s.Len(), s.NumMustLink(), s.NumCannotLink())
	}
	if !s.HasMustLink(2, 1) || s.HasMustLink(1, 3) {
		t.Error("HasMustLink")
	}
	if !s.HasCannotLink(3, 4) || s.HasCannotLink(1, 2) {
		t.Error("HasCannotLink")
	}
}

func TestSetConstraintsOrderDeterministic(t *testing.T) {
	s := NewSet()
	s.Add(5, 1, false)
	s.Add(2, 3, true)
	s.Add(0, 9, true)
	got := s.Constraints()
	want := []Constraint{
		{Pair{0, 9}, true},
		{Pair{2, 3}, true},
		{Pair{1, 5}, false},
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Constraints[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestInvolved(t *testing.T) {
	s := NewSet()
	s.Add(7, 2, true)
	s.Add(2, 4, false)
	got := s.Involved()
	want := []int{2, 4, 7}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Involved = %v", got)
	}
}

func TestValidateConflict(t *testing.T) {
	s := NewSet()
	s.Add(1, 2, true)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Add(1, 2, false)
	if err := s.Validate(); err == nil {
		t.Error("expected conflict error")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewSet()
	s.Add(1, 2, true)
	c := s.Clone()
	c.Add(3, 4, false)
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: %d, %d", s.Len(), c.Len())
	}
}

func TestRestrict(t *testing.T) {
	s := NewSet()
	s.Add(1, 2, true)
	s.Add(2, 3, false)
	s.Add(4, 5, true)
	keep := map[int]bool{1: true, 2: true, 3: true}
	r := s.Restrict(func(i int) bool { return keep[i] })
	if r.Len() != 2 || !r.HasMustLink(1, 2) || !r.HasCannotLink(2, 3) || r.HasMustLink(4, 5) {
		t.Errorf("Restrict = %v", r.Constraints())
	}
}

func TestFromLabels(t *testing.T) {
	y := []int{0, 0, 1, 1}
	s := FromLabels([]int{0, 1, 2, 3}, y)
	// Pairs: (0,1) ML, (2,3) ML, and 4 CL cross pairs.
	if s.NumMustLink() != 2 || s.NumCannotLink() != 4 {
		t.Errorf("ML=%d CL=%d", s.NumMustLink(), s.NumCannotLink())
	}
	if !s.HasMustLink(0, 1) || !s.HasMustLink(2, 3) || !s.HasCannotLink(0, 2) {
		t.Error("wrong constraint types")
	}
}

// Property: FromLabels over k indices yields exactly k(k-1)/2 constraints,
// and every constraint's sense matches the labels.
func TestFromLabelsProperty(t *testing.T) {
	f := func(labels [7]uint8) bool {
		y := make([]int, 7)
		idx := make([]int, 7)
		for i, l := range labels {
			y[i] = int(l % 3)
			idx[i] = i
		}
		s := FromLabels(idx, y)
		if s.Len() != 21 {
			return false
		}
		for _, c := range s.Constraints() {
			if c.MustLink != (y[c.A] == y[c.B]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
