package runner

import (
	"math"
	"sync"
)

// CellStore is the persistence seam of ScoreCache: a durable map from
// content-addressed cell keys to IEEE-754 score bit patterns. The store
// package adapts its record stores to this interface; scores travel as
// uint64 bits (never formatted floats) so a cached score is bit-identical
// to the computation it replaced.
type CellStore interface {
	// GetCell returns the stored score bits for key, reporting whether the
	// key was present.
	GetCell(key string) (bits uint64, ok bool, err error)
	// PutCell stores the score bits for key. Keys are content-addressed, so
	// overwriting an existing key with different bits never happens in a
	// correct system; last-write-wins is fine.
	PutCell(key string, bits uint64) error
}

// ScoreCache is the two-tier cell-result cache: an in-memory single-flight
// layer backed by an optional persistent CellStore. Lookups try memory,
// then the store; misses compute and write back to both tiers. A failing
// store never fails a lookup — reads fall through to compute and write
// failures degrade the cache to memory-only for that cell (the score is
// recomputed next time instead of reused).
type ScoreCache struct {
	store CellStore // nil means memory-only

	maxEntries int
	mu         sync.Mutex
	order      []string // insertion order, for eviction
	entries    map[string]*scoreEntry
}

type scoreEntry struct {
	once sync.Once
	val  float64
	err  error
}

// NewScoreCache returns a ScoreCache over the given store (nil for
// memory-only) retaining at most maxEntries in-memory scores (minimum 1;
// the persistent tier is unbounded).
func NewScoreCache(store CellStore, maxEntries int) *ScoreCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &ScoreCache{store: store, maxEntries: maxEntries, entries: map[string]*scoreEntry{}}
}

// Do returns the score for the content-addressed cell key, computing it
// with compute on a full miss. The reused result reports whether the score
// came from either cache tier (or an in-flight computation of the same
// key) rather than this call's own compute — re-selection jobs sum it into
// their reused-cell counters. Errors are not cached or persisted: a failed
// cell computation is retried on the next lookup.
func (c *ScoreCache) Do(key string, compute func() (float64, error)) (score float64, reused bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &scoreEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > c.maxEntries {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()

	computed := false
	e.once.Do(func() {
		if c.store != nil {
			if bits, found, gerr := c.store.GetCell(key); gerr == nil && found {
				e.val = math.Float64frombits(bits)
				return
			}
		}
		mCellCacheMisses.Inc()
		computed = true
		v, cerr := compute()
		if cerr != nil {
			e.err = cerr
			return
		}
		e.val = v
		if c.store != nil {
			if perr := c.store.PutCell(key, math.Float64bits(v)); perr != nil {
				// Degrade, don't fail: the job keeps its computed score and
				// the next process recomputes this cell.
				mCellCacheWriteFailures.Inc()
			} else {
				mCellCacheWrites.Inc()
			}
		}
	})
	if e.err != nil {
		// Drop the failed entry so a later lookup retries the computation.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
			for i, k := range c.order {
				if k == key {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.mu.Unlock()
		return 0, false, e.err
	}
	if !computed {
		mCellCacheHits.Inc()
	}
	return e.val, !computed, nil
}

// Len reports how many scores are resident in the memory tier.
func (c *ScoreCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
