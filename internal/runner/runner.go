// Package runner is the concurrent execution engine for CVCP's
// fold×parameter grids and for the experiment harness built on top of them.
//
// CVCP scores every candidate parameter by n-fold cross-validation, an
// embarrassingly parallel params×folds grid of independent clustering runs.
// The engine schedules such grids onto a bounded worker pool with:
//
//   - deterministic results: every task owns a distinct output slot and a
//     seed derived from its grid position, never from scheduling order, so
//     results are bit-identical regardless of the worker count;
//   - context cancellation: an expensive selection can be abandoned
//     mid-grid, and the first task error cancels the remaining tasks;
//   - deterministic error reporting: when several tasks fail, the error of
//     the lowest task index is returned, independent of interleaving;
//   - progress reporting: an optional callback observes completed/total.
//
// The companion Cache type (cache.go) is the per-run memoization layer the
// grid tasks share: single-flight, so concurrent tasks needing the same
// expensive intermediate (an OPTICS ordering, a pairwise-distance matrix)
// compute it once and everyone else blocks on that one computation.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one unit of grid work. It must confine its writes to state no
// other task touches (e.g. its own result slot) and should return promptly
// once ctx is cancelled.
type Task func(ctx context.Context) error

// Options configures one engine run.
type Options struct {
	// Workers bounds the number of tasks executing concurrently.
	// 0 or negative means GOMAXPROCS. Workers == 1 runs every task inline
	// on the calling goroutine, which keeps serial callers allocation-free.
	Workers int
	// Context cancels the run: no new task starts after it is done, and
	// the run returns ctx.Err() unless a task failed first. Nil means
	// context.Background().
	Context context.Context
	// OnProgress, when non-nil, is called after every completed task with
	// the number of finished tasks and the total. Calls are serialized and
	// monotone in done, but their interleaving with still-running tasks is
	// scheduling-dependent; do not derive results from it.
	OnProgress func(done, total int)
	// Limiter, when non-nil, is a global execution budget shared with other
	// runs: every task acquires one slot before executing and releases it
	// after, so the total number of tasks executing across all runs holding
	// the same Limiter never exceeds its capacity. Workers still bounds this
	// run's own concurrency; the Limiter bounds the sum.
	Limiter *Limiter
}

// Limiter is a counting semaphore bounding how many tasks execute at once
// across every engine run that shares it. A multi-tenant caller (e.g. a job
// server running several selections concurrently) creates one Limiter with
// its global worker budget and passes it to each run's Options; each run
// then competes for slots task-by-task instead of multiplying worker pools.
//
// Slots are held only for the duration of a single task, never across
// tasks, so runs sharing a Limiter cannot deadlock on it.
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a Limiter with the given number of slots (minimum 1).
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{slots: make(chan struct{}, n)}
}

// Cap returns the number of slots.
func (l *Limiter) Cap() int { return cap(l.slots) }

// acquire blocks until a slot is free or ctx is done. The uncontended
// fast path observes a zero-length wait without reading the clock
// twice; only a blocked acquire pays for timestamps.
func (l *Limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		mLimiterWait.Observe(0)
		mLimiterInUse.Inc()
		return nil
	default:
	}
	//cvcplint:ignore nondeterm limiter-wait histogram timing: observed, exported to /metrics, never fed into a score or seed
	start := time.Now()
	select {
	case l.slots <- struct{}{}:
		//cvcplint:ignore nondeterm limiter-wait histogram timing: observed, exported to /metrics, never fed into a score or seed
		mLimiterWait.Observe(time.Since(start).Seconds())
		mLimiterInUse.Inc()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *Limiter) release() {
	<-l.slots
	mLimiterInUse.Dec()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Run executes the tasks on the pool and waits for completion. It returns
// the error of the lowest-indexed failing task, or the context error when
// the run was cancelled before all tasks finished.
func Run(opt Options, tasks []Task) error {
	n := len(tasks)
	if n == 0 {
		return opt.context().Err()
	}

	ctx := opt.context()
	workers := opt.workers()
	if workers > n {
		workers = n
	}

	if workers == 1 {
		return runSerial(ctx, opt, tasks)
	}

	// The run owns a derived context so the first task error stops the
	// remaining tasks without cancelling the caller's context.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next  int // index of the next unclaimed task, under mu
		done  int // completed tasks, under mu
		mu    sync.Mutex
		wg    sync.WaitGroup
		errs  = make([]error, n)
		fatal bool // a task failed; stop claiming, under mu
	)

	// Progress callbacks run on a dedicated goroutine fed by a buffered
	// channel (capacity n, so completions never block on it): a slow
	// callback — say, one writing to a stalled terminal — must not hold up
	// the workers. Sends happen under mu right after done increments, so
	// the reporter observes strictly increasing counts, and Run drains the
	// channel before returning so every callback lands before the caller
	// sees the result.
	var progCh chan int
	var progWg sync.WaitGroup
	if opt.OnProgress != nil {
		progCh = make(chan int, n)
		progWg.Add(1)
		go func() {
			defer progWg.Done()
			for d := range progCh {
				opt.OnProgress(d, n)
			}
		}()
	}

	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if fatal || next >= n {
			return -1
		}
		i := next
		next++
		return i
	}
	finish := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		errs[i] = err
		done++
		if err != nil && !fatal {
			fatal = true
			cancel()
		}
		if progCh != nil && err == nil {
			progCh <- done
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				if opt.Limiter != nil {
					if opt.Limiter.acquire(ctx) != nil {
						return
					}
				}
				i := claim()
				if i < 0 {
					if opt.Limiter != nil {
						opt.Limiter.release()
					}
					return
				}
				err := tasks[i](ctx)
				if opt.Limiter != nil {
					opt.Limiter.release()
				}
				finish(i, err)
			}
		}()
	}
	wg.Wait()
	if progCh != nil {
		close(progCh)
		progWg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if done == n {
		// Every task completed; the grid is whole, so a caller context
		// that died after the last task finished does not discard it —
		// matching the serial path, which also returns the full result.
		return nil
	}
	// No task failed but the grid is incomplete: the caller's context was
	// cancelled mid-run.
	return opt.context().Err()
}

// RunRange executes the contiguous task subrange [lo, hi) — the shard
// entry point of the distributed layer. Because a task's seed and output
// slot derive from its grid position at construction time, never from
// scheduling, running tasks[lo:hi] here computes bit-identical results
// to those cells of a full-grid Run; OnProgress reports done/total
// relative to the subrange.
func RunRange(opt Options, tasks []Task, lo, hi int) error {
	if lo < 0 || hi > len(tasks) || lo > hi {
		return fmt.Errorf("runner: range [%d, %d) outside grid of %d tasks", lo, hi, len(tasks))
	}
	return Run(opt, tasks[lo:hi])
}

// runSerial is the Workers == 1 path: tasks run inline in index order, so a
// serial run observes exactly the behavior of the pre-engine loop.
func runSerial(ctx context.Context, opt Options, tasks []Task) error {
	for i, t := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		if opt.Limiter != nil {
			if err := opt.Limiter.acquire(ctx); err != nil {
				return err
			}
		}
		err := t(ctx)
		if opt.Limiter != nil {
			opt.Limiter.release()
		}
		if err != nil {
			return err
		}
		if opt.OnProgress != nil {
			opt.OnProgress(i+1, len(tasks))
		}
	}
	return nil
}

// Grid runs fn over every cell of a rows×cols grid (row-major), the shape of
// a parameters×folds cross-validation. fn receives the cell coordinates; the
// linear index row*cols+col is the deterministic task index used for error
// selection, so callers can also use it for per-cell seed derivation.
func Grid(opt Options, rows, cols int, fn func(ctx context.Context, row, col int) error) error {
	tasks := make([]Task, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			r, c := r, c
			tasks = append(tasks, func(ctx context.Context) error { return fn(ctx, r, c) })
		}
	}
	return Run(opt, tasks)
}
