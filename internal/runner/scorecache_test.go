package runner

import (
	"errors"
	"math"
	"sync"
	"testing"
)

// mapCellStore is an in-memory CellStore with switchable failure modes.
type mapCellStore struct {
	mu      sync.Mutex
	m       map[string]uint64
	failPut bool
	failGet bool
	puts    int
	gets    int
}

func newMapCellStore() *mapCellStore { return &mapCellStore{m: map[string]uint64{}} }

func (s *mapCellStore) GetCell(key string) (uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.failGet {
		return 0, false, errors.New("get failed")
	}
	bits, ok := s.m[key]
	return bits, ok, nil
}

func (s *mapCellStore) PutCell(key string, bits uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failPut {
		return errors.New("put failed")
	}
	s.m[key] = bits
	return nil
}

func TestScoreCacheTiers(t *testing.T) {
	st := newMapCellStore()
	c := NewScoreCache(st, 64)
	calls := 0
	compute := func() (float64, error) { calls++; return 1.25, nil }

	v, reused, err := c.Do("k1", compute)
	if err != nil || v != 1.25 || reused || calls != 1 {
		t.Fatalf("first lookup: v=%v reused=%v calls=%d err=%v", v, reused, calls, err)
	}
	// Memory hit.
	v, reused, err = c.Do("k1", compute)
	if err != nil || v != 1.25 || !reused || calls != 1 {
		t.Fatalf("memory hit: v=%v reused=%v calls=%d err=%v", v, reused, calls, err)
	}
	// Persistent hit in a fresh process (new ScoreCache, same store).
	c2 := NewScoreCache(st, 64)
	v, reused, err = c2.Do("k1", func() (float64, error) { t.Fatal("computed despite store hit"); return 0, nil })
	if err != nil || v != 1.25 || !reused {
		t.Fatalf("store hit: v=%v reused=%v err=%v", v, reused, err)
	}
	if bits := st.m["k1"]; bits != math.Float64bits(1.25) {
		t.Fatalf("stored bits %x", bits)
	}
}

// TestScoreCachePutFailureDegrades is the degradation contract: a failing
// write-back keeps the computed score, returns no error, and simply loses
// persistence (the next process recomputes).
func TestScoreCachePutFailureDegrades(t *testing.T) {
	st := newMapCellStore()
	st.failPut = true
	c := NewScoreCache(st, 64)
	v, reused, err := c.Do("k", func() (float64, error) { return 2.5, nil })
	if err != nil || v != 2.5 || reused {
		t.Fatalf("put failure leaked: v=%v reused=%v err=%v", v, reused, err)
	}
	if len(st.m) != 0 {
		t.Fatal("failed put stored a value")
	}
	// The memory tier still serves the computed score.
	v, reused, err = c.Do("k", func() (float64, error) { t.Fatal("recomputed in same process"); return 0, nil })
	if err != nil || v != 2.5 || !reused {
		t.Fatalf("memory tier after put failure: v=%v reused=%v err=%v", v, reused, err)
	}
	// A fresh process recomputes.
	c2 := NewScoreCache(st, 64)
	calls := 0
	if _, _, err := c2.Do("k", func() (float64, error) { calls++; return 2.5, nil }); err != nil || calls != 1 {
		t.Fatalf("fresh process: calls=%d err=%v", calls, err)
	}
}

func TestScoreCacheGetFailureComputes(t *testing.T) {
	st := newMapCellStore()
	st.m["k"] = math.Float64bits(9)
	st.failGet = true
	c := NewScoreCache(st, 64)
	v, reused, err := c.Do("k", func() (float64, error) { return 3, nil })
	if err != nil || v != 3 || reused {
		t.Fatalf("get failure: v=%v reused=%v err=%v", v, reused, err)
	}
}

func TestScoreCacheErrorRetries(t *testing.T) {
	c := NewScoreCache(nil, 64)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	// Errors are not cached: the next lookup recomputes.
	v, reused, err := c.Do("k", func() (float64, error) { return 7, nil })
	if err != nil || v != 7 || reused {
		t.Fatalf("retry after error: v=%v reused=%v err=%v", v, reused, err)
	}
}

func TestScoreCacheEviction(t *testing.T) {
	c := NewScoreCache(nil, 2)
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(k, func() (float64, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d after eviction, want 2", c.Len())
	}
	// "a" was evicted; recomputing it is a miss.
	_, reused, _ := c.Do("a", func() (float64, error) { return 1, nil })
	if reused {
		t.Fatal("evicted entry reported reused")
	}
}

func TestScoreCacheSingleFlight(t *testing.T) {
	c := NewScoreCache(nil, 64)
	var calls int
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, _, _ = c.Do("k", func() (float64, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return 4, nil
			})
		}()
	}
	close(start)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}
