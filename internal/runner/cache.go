package runner

import "sync"

// Cache is the shared memoization layer for engine runs: a two-level,
// single-flight cache of expensive intermediates keyed by an owner (in CVCP,
// the dataset a value is derived from) and a per-owner key (the kind of
// value plus its parameters, e.g. an OPTICS ordering for one MinPts, or the
// owner's pairwise-distance matrix).
//
// Concurrent Do calls for the same (owner, key) collapse into one
// computation: the first caller computes, everyone else blocks on it and
// shares the result. That is what makes a fold×parameter grid cheap — all
// folds of one parameter need the same dendrogram, and every parameter
// needs the same distance matrix, yet each is computed exactly once per
// run regardless of the worker count.
//
// Owners are evicted in insertion order once more than maxOwners are
// resident: experiment harnesses walk datasets in sequence and never
// revisit old ones, so retaining a short window of recent owners bounds
// memory without a hit-rate cost.
type Cache struct {
	maxOwners int

	mu      sync.Mutex
	order   []any // insertion order of owners, for eviction
	entries map[any]map[any]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewCache returns a Cache retaining values for at most maxOwners distinct
// owners (minimum 1).
func NewCache(maxOwners int) *Cache {
	if maxOwners < 1 {
		maxOwners = 1
	}
	return &Cache{
		maxOwners: maxOwners,
		entries:   map[any]map[any]*cacheEntry{},
	}
}

// Do returns the cached value for (owner, key), computing it with compute on
// the first call. Errors are cached too: the engine's inputs are
// deterministic, so a failed computation would fail identically on retry.
// owner and key must be valid map keys.
func (c *Cache) Do(owner, key any, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	m, ok := c.entries[owner]
	if !ok {
		m = map[any]*cacheEntry{}
		c.entries[owner] = m
		c.order = append(c.order, owner)
		if len(c.order) > c.maxOwners {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, evict)
		}
	}
	e, ok := m[key]
	if !ok {
		e = &cacheEntry{}
		m[key] = e
		mCacheMisses.Inc()
	} else {
		mCacheHits.Inc()
	}
	c.mu.Unlock()

	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Flush drops every cached value. Tests use it to make compute counts
// predictable; production callers never need it.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order = nil
	c.entries = map[any]map[any]*cacheEntry{}
}

// Owners reports how many owners currently have resident values.
func (c *Cache) Owners() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}
