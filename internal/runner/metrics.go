package runner

import "cvcp/internal/metrics"

// Engine metric families (see internal/metrics): how long grid tasks
// wait for a shared Limiter slot, how many slots are occupied, and the
// run cache's hit rate. Process-wide, like the engine's Limiter and
// Cache themselves.
var (
	mLimiterWait = metrics.NewHistogram("cvcpd_limiter_wait_seconds",
		"Time a grid task waited to acquire a shared worker-budget slot.", metrics.DurationBuckets)
	mLimiterInUse = metrics.NewGauge("cvcpd_limiter_slots_in_use",
		"Shared worker-budget slots currently held by executing tasks.")
	mCacheHits = metrics.NewCounter("cvcpd_runcache_hits_total",
		"Run-cache lookups that found (or joined the computation of) an existing entry.")
	mCacheMisses = metrics.NewCounter("cvcpd_runcache_misses_total",
		"Run-cache lookups that created a new entry.")
	mCellCacheHits = metrics.NewCounter("cvcpd_cellcache_hits_total",
		"Cell-cache lookups satisfied from the memory or persistent tier without recomputing the cell.")
	mCellCacheMisses = metrics.NewCounter("cvcpd_cellcache_misses_total",
		"Cell-cache lookups that found no tier populated and computed the cell.")
	mCellCacheWrites = metrics.NewCounter("cvcpd_cellcache_writes_total",
		"Cell scores written back to the persistent cell-cache tier.")
	mCellCacheWriteFailures = metrics.NewCounter("cvcpd_cellcache_write_failures_total",
		"Cell-cache write-backs that failed; the job keeps its computed score and the cell is recomputed next time.")
)
