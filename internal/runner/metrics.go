package runner

import "cvcp/internal/metrics"

// Engine metric families (see internal/metrics): how long grid tasks
// wait for a shared Limiter slot, how many slots are occupied, and the
// run cache's hit rate. Process-wide, like the engine's Limiter and
// Cache themselves.
var (
	mLimiterWait = metrics.NewHistogram("cvcpd_limiter_wait_seconds",
		"Time a grid task waited to acquire a shared worker-budget slot.", metrics.DurationBuckets)
	mLimiterInUse = metrics.NewGauge("cvcpd_limiter_slots_in_use",
		"Shared worker-budget slots currently held by executing tasks.")
	mCacheHits = metrics.NewCounter("cvcpd_runcache_hits_total",
		"Run-cache lookups that found (or joined the computation of) an existing entry.")
	mCacheMisses = metrics.NewCounter("cvcpd_runcache_misses_total",
		"Run-cache lookups that created a new entry.")
)
