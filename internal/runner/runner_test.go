package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 100
			out := make([]int, n)
			tasks := make([]Task, n)
			for i := range tasks {
				i := i
				tasks[i] = func(context.Context) error {
					out[i] = i * i
					return nil
				}
			}
			if err := Run(Options{Workers: workers}, tasks); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("slot %d = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(Options{}, nil); err != nil {
		t.Fatal(err)
	}
}

// The engine must report the error of the lowest-indexed failing task, no
// matter how the scheduler interleaves workers.
func TestRunDeterministicError(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			tasks := make([]Task, 40)
			for i := range tasks {
				i := i
				tasks[i] = func(context.Context) error {
					if i%7 == 3 { // fails at 3, 10, 17, ...
						return fmt.Errorf("task %d failed", i)
					}
					return nil
				}
			}
			err := Run(Options{Workers: workers}, tasks)
			if err == nil || err.Error() != "task 3 failed" {
				t.Fatalf("err = %v, want task 3's error", err)
			}
		})
	}
}

func TestRunErrorCancelsRemaining(t *testing.T) {
	const n = 200
	var started atomic.Int32
	boom := errors.New("boom")
	tasks := make([]Task, n)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) error {
			started.Add(1)
			if i == 0 {
				return boom
			}
			<-ctx.Done() // park until the engine cancels the run
			return nil
		}
	}
	if err := Run(Options{Workers: 4}, tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := started.Load(); got >= n {
		t.Fatalf("all %d tasks started despite early failure", got)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	tasks := make([]Task, 50)
	for i := range tasks {
		i := i
		tasks[i] = func(context.Context) error {
			ran.Add(1)
			if i == 2 {
				cancel() // caller gives up mid-grid
			}
			return nil
		}
	}
	err := Run(Options{Workers: 2, Context: ctx}, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 50 {
		t.Fatal("cancellation did not stop the grid")
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	task := Task(func(context.Context) error { ran.Add(1); return nil })
	err := Run(Options{Workers: 3, Context: ctx}, []Task{task, task, task})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("tasks ran on a dead context")
	}
}

func TestRunProgressMonotone(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			const n = 30
			tasks := make([]Task, n)
			for i := range tasks {
				tasks[i] = func(context.Context) error { return nil }
			}
			var mu sync.Mutex
			var calls []int
			err := Run(Options{
				Workers: workers,
				OnProgress: func(done, total int) {
					if total != n {
						t.Errorf("total = %d, want %d", total, n)
					}
					mu.Lock()
					calls = append(calls, done)
					mu.Unlock()
				},
			}, tasks)
			if err != nil {
				t.Fatal(err)
			}
			if len(calls) != n {
				t.Fatalf("%d progress calls, want %d", len(calls), n)
			}
			for i := 1; i < len(calls); i++ {
				if calls[i] <= calls[i-1] {
					t.Fatalf("progress not monotone: %v", calls)
				}
			}
			if calls[n-1] != n {
				t.Fatalf("final progress %d, want %d", calls[n-1], n)
			}
		})
	}
}

func TestGridCoordinates(t *testing.T) {
	const rows, cols = 5, 7
	seen := make([]bool, rows*cols)
	err := Grid(Options{Workers: 3}, rows, cols, func(_ context.Context, r, c int) error {
		seen[r*cols+c] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("cell %d never ran", i)
		}
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4)
	var computes atomic.Int32
	const goroutines = 64
	var wg sync.WaitGroup
	results := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("owner", "key", func() (any, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}()
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("got %v, want 42", v)
		}
	}
}

// Hammer the cache from many goroutines across owners and keys; run under
// -race this doubles as the cache's race-detector coverage.
func TestCacheHammer(t *testing.T) {
	c := NewCache(3)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				owner := fmt.Sprintf("ds%d", i%5)
				key := i % 7
				want := fmt.Sprintf("%s/%d", owner, key)
				v, err := c.Do(owner, key, func() (any, error) { return want, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v != want {
					t.Errorf("goroutine %d: got %v, want %v", g, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCacheEvictsOldestOwner(t *testing.T) {
	c := NewCache(2)
	count := func(owner string) int {
		n := 0
		c.Do(owner, "k", func() (any, error) { n++; return nil, nil })
		return n
	}
	count("a")
	count("b")
	if got := count("a"); got != 0 {
		t.Fatal("a evicted too early")
	}
	count("c") // third owner: evicts a (oldest)
	if c.Owners() != 2 {
		t.Fatalf("owners = %d, want 2", c.Owners())
	}
	if got := count("a"); got != 1 {
		t.Fatal("a still cached after eviction")
	}
	// Re-adding a evicted b (the oldest of [b, c]); c must have survived.
	if got := count("c"); got != 0 {
		t.Fatal("c evicted although b was older")
	}
	if got := count("b"); got != 1 {
		t.Fatal("b still cached after re-adding a at capacity")
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache(2)
	boom := errors.New("boom")
	n := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("o", "k", func() (any, error) { n++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(2)
	n := 0
	compute := func() (any, error) { n++; return nil, nil }
	c.Do("o", "k", compute)
	c.Flush()
	if c.Owners() != 0 {
		t.Fatal("owners after flush")
	}
	c.Do("o", "k", compute)
	if n != 2 {
		t.Fatalf("computed %d times, want 2 after flush", n)
	}
}

// A shared Limiter must bound the number of tasks executing at once across
// several concurrent Runs, while every task still completes.
func TestLimiterBoundsConcurrencyAcrossRuns(t *testing.T) {
	lim := NewLimiter(2)
	if lim.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", lim.Cap())
	}
	var cur, peak, total atomic.Int64
	task := func(context.Context) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		total.Add(1)
		cur.Add(-1)
		return nil
	}
	const runs, tasksPerRun = 3, 40
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]Task, tasksPerRun)
			for i := range tasks {
				tasks[i] = task
			}
			if err := Run(Options{Workers: 8, Limiter: lim}, tasks); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != runs*tasksPerRun {
		t.Fatalf("executed %d tasks, want %d", got, runs*tasksPerRun)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds the budget of 2", p)
	}
}

// The serial path must honor the Limiter too, and a cancelled context must
// unblock a waiting acquire.
func TestLimiterSerialAndCancel(t *testing.T) {
	lim := NewLimiter(1)
	ran := 0
	err := Run(Options{Workers: 1, Limiter: lim}, []Task{
		func(context.Context) error { ran++; return nil },
		func(context.Context) error { ran++; return nil },
	})
	if err != nil || ran != 2 {
		t.Fatalf("serial limited run: err=%v ran=%d", err, ran)
	}

	// Occupy the only slot, then start a run that must block acquiring it;
	// cancelling the run's context has to release the workers.
	if err := lim.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Run(Options{Workers: 2, Context: ctx, Limiter: lim},
			[]Task{func(context.Context) error { return nil }})
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked run returned %v, want context.Canceled", err)
	}
	lim.release()
}
