package server

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family of a text-exposition scrape.
type promFamily struct {
	typ     string // counter, gauge, histogram
	samples map[string]float64
}

// parseExposition parses Prometheus text exposition format 0.0.4
// strictly enough to catch real malformations: every sample line must
// parse as "<name>[{labels}] <float>", every sample must belong to a
// family announced by a preceding # TYPE line, and HELP/TYPE must come
// paired and first.
func parseExposition(t *testing.T, r io.Reader) map[string]*promFamily {
	t.Helper()
	fams := map[string]*promFamily{}
	var cur string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(fields) != 2 || fields[0] == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln, line)
			}
			cur = fields[0]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			if fields[0] != cur {
				t.Fatalf("line %d: TYPE for %q directly after HELP for %q", ln, fields[0], cur)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln, fields[1])
			}
			fams[fields[0]] = &promFamily{typ: fields[1], samples: map[string]float64{}}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value: %q", ln, line)
		}
		key, valText := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value %q: %v", ln, valText, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln, line)
			}
			name = key[:i]
		}
		fam := fams[base(name)]
		if fam == nil {
			t.Fatalf("line %d: sample %q before its TYPE header", ln, name)
		}
		fam.samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// base maps histogram sample names (_bucket/_sum/_count suffixes) to
// their family name; other names map to themselves.
func base(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// TestMetricsScrape is the exposition acceptance test: after running a
// real job on a durable store, GET /metrics must serve valid Prometheus
// text exposition covering the server, runner, store and dist metric
// families, with histogram buckets cumulative and consistent.
func TestMetricsScrape(t *testing.T) {
	_, csvText := testDataset(t, 30)
	dir := t.TempDir()
	fs := openFileStore(t, dir)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: fs})

	// Run one job end to end so every layer has something to count.
	url := ts.URL + "/v1/jobs?algorithm=fosc&params=3,6&folds=2&seed=5&label_fraction=0.5&has_label=true"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	pollJob(t, ts, job.ID, StatusDone)

	scrape, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if scrape.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", scrape.StatusCode)
	}
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	fams := parseExposition(t, scrape.Body)

	// Every layer's families must be present: server, runner, store, dist.
	for fam, typ := range map[string]string{
		"cvcpd_jobs_submitted_total":     "counter",
		"cvcpd_jobs_rejected_total":      "counter",
		"cvcpd_jobs_completed_total":     "counter",
		"cvcpd_jobs_evicted_total":       "counter",
		"cvcpd_jobs_queued":              "gauge",
		"cvcpd_jobs_running":             "gauge",
		"cvcpd_job_duration_seconds":     "histogram",
		"cvcpd_auth_failures_total":      "counter",
		"cvcpd_limiter_wait_seconds":     "histogram",
		"cvcpd_limiter_slots_in_use":     "gauge",
		"cvcpd_runcache_hits_total":      "counter",
		"cvcpd_runcache_misses_total":    "counter",
		"cvcpd_wal_appends_total":        "counter",
		"cvcpd_wal_fsync_seconds":        "histogram",
		"cvcpd_store_compactions_total":  "counter",
		"cvcpd_shard_leases_total":       "counter",
		"cvcpd_shard_reclaims_total":     "counter",
		"cvcpd_heartbeat_renewals_total": "counter",
	} {
		f := fams[fam]
		if f == nil {
			t.Errorf("family %s missing from scrape", fam)
			continue
		}
		if f.typ != typ {
			t.Errorf("family %s has type %s, want %s", fam, f.typ, typ)
		}
	}

	// The job this test ran must be visible in the counters. (Values are
	// process-global, so assert floors, not exact counts.)
	mustAtLeast := func(sample string, min float64) {
		t.Helper()
		found := false
		for _, f := range fams {
			if v, ok := f.samples[sample]; ok {
				found = true
				if v < min {
					t.Errorf("%s = %v, want >= %v", sample, v, min)
				}
			}
		}
		if !found {
			t.Errorf("sample %s missing from scrape", sample)
		}
	}
	mustAtLeast("cvcpd_jobs_submitted_total", 1)
	mustAtLeast(`cvcpd_jobs_completed_total{status="done"}`, 1)
	mustAtLeast("cvcpd_job_duration_seconds_count", 1)
	mustAtLeast("cvcpd_limiter_wait_seconds_count", 1)
	mustAtLeast("cvcpd_wal_appends_total", 1)
	mustAtLeast("cvcpd_wal_fsync_seconds_count", 1)
	mustAtLeast("cvcpd_runcache_misses_total", 1)

	// Histogram integrity: cumulative buckets, +Inf == _count.
	for name, f := range fams {
		if f.typ != "histogram" {
			continue
		}
		type bkt struct {
			le  float64
			val float64
		}
		var buckets []bkt
		var inf float64
		hasInf := false
		for key, val := range f.samples {
			if !strings.HasPrefix(key, name+"_bucket{le=\"") {
				continue
			}
			leText := strings.TrimSuffix(strings.TrimPrefix(key, name+"_bucket{le=\""), "\"}")
			if leText == "+Inf" {
				inf, hasInf = val, true
				continue
			}
			le, err := strconv.ParseFloat(leText, 64)
			if err != nil {
				t.Fatalf("%s: unparsable le %q", name, leText)
			}
			buckets = append(buckets, bkt{le, val})
		}
		if !hasInf {
			t.Errorf("%s: no +Inf bucket", name)
			continue
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
		prev := 0.0
		for _, b := range buckets {
			if b.val < prev {
				t.Errorf("%s: bucket le=%v count %v below previous %v (not cumulative)", name, b.le, b.val, prev)
			}
			prev = b.val
		}
		if inf < prev {
			t.Errorf("%s: +Inf bucket %v below largest finite bucket %v", name, inf, prev)
		}
		count, ok := f.samples[name+"_count"]
		if !ok {
			t.Errorf("%s: missing _count", name)
			continue
		}
		if inf != count {
			t.Errorf("%s: +Inf bucket %v != _count %v", name, inf, count)
		}
		if _, ok := f.samples[name+"_sum"]; !ok {
			t.Errorf("%s: missing _sum", name)
		}
	}
}
