package server

import (
	"context"
	"sync"
	"time"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/runner"
	"cvcp/internal/stats"
)

// Status is a job's lifecycle state. Transitions are
// queued → running → done/failed/cancelled, with queued → cancelled for
// jobs cancelled before an executor picks them up.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// ConstraintSpec is one pairwise constraint of a Scenario II job. The
// JSON tags fix the persisted form the job store replays after a restart.
type ConstraintSpec struct {
	A        int  `json:"a"`
	B        int  `json:"b"`
	MustLink bool `json:"must_link"`
}

// Spec is a validated job specification — everything a selection needs
// except the dataset itself. It is immutable after submission and is
// persisted verbatim (JSON) into the job store, so a re-queued job re-runs
// with exactly the options it was submitted with. At execution time it maps
// one-to-one onto a cvcp.Spec: Algorithm/Algorithms+Params become the Grid,
// LabelFraction/Constraints the Supervision, Scorer the scoring strategy.
type Spec struct {
	// Algorithm is the single candidate method of an ordinary job; empty
	// means the registry default ("fosc") unless Algorithms is set.
	Algorithm string `json:"algorithm"`
	// Algorithms, when non-empty, makes the job a cross-method selection:
	// every named method competes on the same supervision in one shared
	// engine grid, and the best method+parameter combination wins.
	// Mutually exclusive with Algorithm.
	Algorithms []string `json:"algorithms,omitempty"`
	// Params is the candidate parameter range. For single-method jobs it is
	// never empty after validation (defaults come from the algorithm
	// registry); for cross-method jobs an empty Params means every
	// candidate uses its own registry default range, while a non-empty one
	// applies to all candidates.
	Params []int `json:"params"`
	// NFolds is the requested fold count; 0 lets the framework default
	// (10, lowered automatically for small supervision).
	NFolds int   `json:"folds"`
	Seed   int64 `json:"seed"`
	// Scorer names the scoring strategy: "" or "cv" is cross-validation
	// (the paper's CVCP criterion), "bootstrap" is out-of-bag resampling,
	// and any validity index name (silhouette, davies-bouldin,
	// calinski-harabasz, dunn) scores by that relative criterion.
	Scorer string `json:"scorer,omitempty"`
	// BootstrapRounds is the round count when Scorer is "bootstrap";
	// 0 means the framework default (10).
	BootstrapRounds int `json:"bootstrap_rounds,omitempty"`
	// Matrix32 makes the job's FOSC candidates compute their OPTICS
	// distance matrix in float32 (half the memory, with the library's
	// documented bit-exactness caveats). Valid only when the grid has a
	// FOSC candidate; other methods have no distance matrix to shrink.
	Matrix32 bool `json:"matrix32,omitempty"`
	// Eps, when positive, caps the OPTICS neighborhood radius of the
	// job's FOSC candidates: density estimation routes through the
	// VP-tree ε-range driver (optics.RunWithEps) instead of the dense
	// distance matrix, trading the matrix's O(n²) memory for on-demand
	// range queries. 0 means the dense ε=∞ path. Valid only when the
	// grid has a FOSC candidate, and mutually exclusive with Matrix32
	// (the ε-range driver has no float32-matrix mode). Must be finite —
	// an unbounded radius is exactly what Eps=0 already runs.
	Eps float64 `json:"eps,omitempty"`
	// Tenant is the name of the API-key tenant that submitted the job
	// ("" for the anonymous tenant of an open deployment). Set by the
	// server from the authenticated key, never by clients; persisting it
	// in the spec keeps quota and fair-queue accounting correct across a
	// restart's re-queue.
	Tenant string `json:"tenant,omitempty"`
	// DatasetID, when set, points the job at a registered versioned
	// dataset instead of an inline CSV payload. Dataset jobs run the
	// stable supervision (cvcp.StableLabels): fold assignment and label
	// sampling depend only on row index and seed, never on dataset size,
	// so a re-selection after appends reuses every clean fold's cells
	// from the content-addressed cell cache. Requires LabelFraction.
	DatasetID string `json:"dataset_id,omitempty"`
	// DatasetVersion pins the dataset version the job runs against. 0 at
	// submission means the current version; the handler resolves the pin
	// and writes it back before the job persists, so a restart's re-queue
	// (and every distributed worker) sees exactly the same rows.
	DatasetVersion int `json:"dataset_version,omitempty"`
	// Exactly one of LabelFraction / Constraints is set: LabelFraction > 0
	// runs Scenario I (labels sampled from the dataset's label column with
	// the job seed, exactly as cmd/cvcp does), a non-empty Constraints list
	// runs Scenario II.
	LabelFraction float64          `json:"label_fraction,omitempty"`
	Constraints   []ConstraintSpec `json:"constraints,omitempty"`
}

// methods returns the candidate algorithm names of the job's grid.
func (s Spec) methods() []string {
	if len(s.Algorithms) > 0 {
		return s.Algorithms
	}
	return []string{s.Algorithm}
}

// Event is one entry of a job's progress stream. Status events mark
// lifecycle transitions; progress events report grid completion and are
// monotonically increasing in Done within one run (the engine
// serializes its progress callbacks; a crash-recovery re-queue restarts
// the grid, so a replayed stream may carry two runs' progress). Shard
// events exist only on distributed jobs (coordinator role) and report
// shard lifecycle transitions: ShardStatus "leased" when a worker
// acquires (or reclaims) a shard, "done"/"failed" when its partial
// result lands.
type Event struct {
	Seq    int    `json:"seq"`
	Type   string `json:"type"` // "status", "progress" or "shard"
	Status Status `json:"status,omitempty"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	// Shard fields, set only on "shard" events: the shard index and the
	// job's shard count, the transition, and the worker involved.
	Shard       int    `json:"shard,omitempty"`
	Shards      int    `json:"shards,omitempty"`
	ShardStatus string `json:"shard_status,omitempty"`
	Worker      string `json:"worker,omitempty"`
}

// subscriberBuffer is the channel capacity of one SSE subscriber. A
// subscriber that falls this far behind loses intermediate events (the
// stream stays monotone; only granularity suffers — the SSE handler
// catches up from the replay log after the channel closes, so the
// terminal status event is never lost).
const subscriberBuffer = 256

// eventTailCap bounds the per-job in-memory event history. The durable
// event log (the store) is the source of truth for full replay; the job
// keeps only this recent tail so replays and catch-ups that are nearly
// current never touch the store, and a long-running job's memory stays
// proportional to the tail, not to its grid.
const eventTailCap = 256

// Progress coalescing: the engine reports every completed grid cell, but
// publishing (and durably logging) an event per cell would make huge
// grids emit thousands of near-identical events. A progress event is
// published when done has advanced by at least total/maxProgressEvents
// cells (so a full run emits on the order of maxProgressEvents
// delta-driven events however large the grid), plus up to
// maxProgressEvents interval-driven events — at most one per
// progressMinInterval — so slow grids still show movement without
// making the log proportional to run *duration*; the final cell always
// publishes. Total progress events per run: at most
// 2*maxProgressEvents + 1. Grids with at most maxProgressEvents cells
// publish every cell, exactly as before coalescing existed.
const (
	maxProgressEvents   = 256
	progressMinInterval = 200 * time.Millisecond
)

// seqRequeueGap is added to the sequence counter when a restart resumes
// a job from its durable event log before publishing anything new. A
// crash can lose an fsync-coalesced suffix of events that live
// subscribers already received; if post-restart events re-used those
// sequence numbers for different content, a client resuming with a
// pre-crash Last-Event-ID would silently skip them. One incarnation can
// publish at most 2*maxProgressEvents+1 progress events (the coalescing
// cap) plus a handful of status events, so this gap strictly clears
// every sequence number the lost suffix could have carried. Gaps are
// harmless to consumers: ids only need to be monotone.
const seqRequeueGap = 4 * maxProgressEvents

// jobEventLog is the job's view of the durable per-job event log: the
// Manager implements it over the store, serializing server events into
// opaque store entries and back. Appends happen inside publishLocked —
// under the job mutex — which is what guarantees the log's sequence
// order matches publish order. An append never performs its own fsync
// (the file store coalesces syncs off the append path), so it is
// normally a buffered write; it can briefly contend on the store mutex
// with a concurrent record commit, a deliberate trade for the ordering
// guarantee.
type jobEventLog interface {
	appendEvents(jobID string, evs []Event)
	eventsSince(jobID string, afterSeq int) []Event
}

// eventTail is a fixed-capacity ring buffer of a job's most recent
// events. Callers synchronize (the job mutex).
type eventTail struct {
	buf   []Event // ring storage, grows up to eventTailCap then wraps
	start int     // index of the oldest entry once the ring is full
	n     int     // live entries
}

func (t *eventTail) push(ev Event) {
	if t.n < eventTailCap {
		t.buf = append(t.buf, ev)
		t.n++
		return
	}
	t.buf[t.start] = ev
	t.start = (t.start + 1) % t.n
}

// since returns the tail's events with Seq > after, and whether the tail
// reaches back far enough to answer authoritatively: its oldest entry
// must be at or before after+1, otherwise events older than the tail may
// be missing and the caller should prefer the durable log. The events
// are returned either way — a caller whose log read comes back empty
// (the job was evicted mid-stream) serves the partial tail rather than
// nothing.
func (t *eventTail) since(after int) ([]Event, bool) {
	if t.n == 0 {
		return nil, false
	}
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		if ev := t.buf[(t.start+i)%t.n]; ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, t.buf[t.start].Seq <= after+1
}

// Job is one selection job. All mutable state is guarded by mu; the
// dataset and spec are immutable after submission. ds is nil for terminal
// jobs resurrected from the store (their records drop the dataset
// payload); dsName and objects carry the dataset identity independently.
type Job struct {
	id      string
	batch   string // owning batch ID, empty for individual submissions
	spec    Spec
	ds      *dataset.Dataset
	dsBlob  []byte // serialized dataset payload for non-terminal records
	dsName  string
	objects int
	created time.Time

	ctx    context.Context
	cancel context.CancelFunc

	// Cell-cache wiring of dataset-referencing jobs, installed by
	// Manager.runJob before execution (nil for inline-CSV jobs). Both are
	// machine-local: a cached score is bit-identical to the computation
	// it replaced, so neither ever affects results.
	cellCache *runner.ScoreCache
	cellStats *corecvcp.CellStats

	log jobEventLog // durable event mirror; never nil

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	done     int
	total    int
	errMsg   string
	result   *ResultView
	seq      int
	tail     eventTail
	subs     map[chan Event]struct{}

	// Progress coalescing state: the done value and wall time of the
	// last published progress event, and how many interval-driven
	// publishes the job has spent (capped at maxProgressEvents).
	lastProgressDone int
	lastProgressPub  time.Time
	intervalPubs     int
}

// newJob builds a queued job. dsBlob is the pre-serialized dataset
// payload for persistence — callers build it once, outside the manager
// lock (marshalDataset), or reuse the payload of a replayed record.
// prior is the job's replayed event history and restored marks a job
// re-queued from a restart: prior seeds the sequence counter and the
// tail so the fresh queued event continues the existing log instead of
// restarting seq numbering, and a restored job gaps its sequence
// counter even when prior is empty — the log may have been wholly lost
// to WAL corruption, yet a pre-crash subscriber still holds the old
// sequence numbers (see seqRequeueGap). seqFloor is the record's
// persisted sequence high-water mark: record writes fsync even when
// event appends are failing, so seeding from max(prior, seqFloor)
// keeps the gap sound across repeated crashes with a stalled log.
func newJob(id, batch string, spec Spec, ds *dataset.Dataset, dsBlob []byte, parent context.Context, log jobEventLog, prior []Event, seqFloor int, restored bool) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		id:      id,
		batch:   batch,
		spec:    spec,
		ds:      ds,
		dsBlob:  dsBlob,
		dsName:  ds.Name,
		objects: ds.N(),
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		log:     log,
		subs:    map[chan Event]struct{}{},
	}
	j.mu.Lock()
	j.seedEventsLocked(prior)
	if seqFloor > j.seq {
		j.seq = seqFloor
	}
	if restored {
		j.seq += seqRequeueGap // see seqRequeueGap: never reuse possibly-lost seqs
	}
	j.publishLocked(Event{Type: "status", Status: StatusQueued})
	j.mu.Unlock()
	return j
}

// seedEventsLocked installs replayed history: the sequence counter
// resumes past it and the tail holds its most recent entries. Seeded
// events are already in the durable log, so they are not re-appended and
// there are no subscribers yet to fan them out to. Callers hold mu.
func (j *Job) seedEventsLocked(prior []Event) {
	for _, ev := range prior {
		j.seq = ev.Seq
		j.tail.push(ev)
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Batch returns the owning batch ID ("" for individual submissions).
func (j *Job) Batch() string { return j.batch }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// publishLocked assigns the next sequence number, mirrors the event into
// the durable log, keeps it in the in-memory tail and fans it out to the
// live subscribers. Callers hold mu. Slow subscribers (full buffers)
// skip the event rather than blocking the engine — the SSE handler
// catches up from the log. Appending under mu is what makes the log's
// order equal the publish order; the append is a buffered write that
// never fsyncs on its own (see jobEventLog).
func (j *Job) publishLocked(ev Event) {
	j.seq++
	ev.Seq = j.seq
	j.tail.push(ev)
	j.log.appendEvents(j.id, []Event{ev})
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubsLocked ends every live subscription; used after the terminal
// event so SSE streams terminate. Callers hold mu.
func (j *Job) closeSubsLocked() {
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// SubscribeSince returns a replay of the events with Seq > after plus a
// channel of future events. after 0 replays the full history (served
// from the durable log when it reaches past the in-memory tail); a
// client resuming with Last-Event-ID passes its last seen sequence
// number and re-receives nothing before it. The channel is closed after
// the terminal event (or immediately when the job already finished).
// The returned cancel function releases the subscription; it is safe to
// call after the channel closed. The replay and the subscription are
// atomic — an event is in the replay or will arrive on the channel;
// late-buffered duplicates are possible and callers drop events with
// Seq at or below the last one written.
func (j *Job) SubscribeSince(after int) ([]Event, <-chan Event, func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after > j.seq {
		// A sequence number this job never issued (a stale or foreign
		// Last-Event-ID): treat it as unknown and replay in full, rather
		// than silently suppressing every event below the bogus cutoff.
		after = 0
	}
	replay := j.eventsSinceLocked(after)
	ch := make(chan Event, subscriberBuffer)
	if j.status.Terminal() {
		close(ch)
		return replay, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	cancel := func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return replay, ch, cancel
}

// EventsSince returns the events with Seq > after, in order. SSE
// handlers use it to catch up after a subscription channel closes: a
// slow subscriber may have had buffered events dropped, and the terminal
// status event must still reach it.
func (j *Job) EventsSince(after int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventsSinceLocked(after)
}

// eventsSinceLocked serves scan-since-seq from the in-memory tail when
// it reaches back far enough, and from the durable log otherwise.
// Callers hold mu; the log read is an in-memory lookup in both store
// backends, so holding the job mutex across it is cheap. When the log
// has nothing (the job was evicted mid-stream, dropping its log, while
// this handler already held the *Job), the partial tail is served
// instead of an empty stream — it always holds the newest events, so
// the terminal status still reaches the subscriber.
func (j *Job) eventsSinceLocked(after int) []Event {
	if after >= j.seq {
		return nil
	}
	evs, ok := j.tail.since(after)
	if ok {
		return evs
	}
	logged := j.log.eventsSince(j.id, after)
	if len(logged) == 0 {
		return evs
	}
	// The log can lag the tail — appends may have been failing (disk
	// full; the manager swallows append errors) or the log may have
	// been dropped by a concurrent eviction. Graft the tail's newer
	// events on so the newest — the terminal status above all — are
	// never lost from a catch-up.
	last := logged[len(logged)-1].Seq
	for _, ev := range evs {
		if ev.Seq > last {
			logged = append(logged, ev)
		}
	}
	return logged
}

// requestCancel cancels the job's context and, when the job has not started
// yet, finalizes it as cancelled immediately. It returns the resulting
// status and is idempotent.
func (j *Job) requestCancel() Status {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusQueued {
		j.status = StatusCancelled
		j.finished = time.Now()
		j.publishLocked(Event{Type: "status", Status: StatusCancelled})
		j.closeSubsLocked()
	}
	return j.status
}

// claimRun transitions queued → running. It returns false when the job was
// cancelled while queued, in which case the executor must skip it.
func (j *Job) claimRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.publishLocked(Event{Type: "status", Status: StatusRunning})
	return true
}

// onProgress is the engine progress hook; the engine serializes calls
// and guarantees done is monotone, so the event stream is too. The
// counters always update (GET /v1/jobs/{id} reports the exact state),
// but consecutive progress events are coalesced — see the
// maxProgressEvents doc — so a huge grid's event log stays bounded.
func (j *Job) onProgress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return
	}
	j.done, j.total = done, total
	if !j.shouldPublishProgressLocked(done, total) {
		return
	}
	j.lastProgressDone = done
	j.lastProgressPub = time.Now()
	j.publishLocked(Event{Type: "progress", Done: done, Total: total})
}

func (j *Job) shouldPublishProgressLocked(done, total int) bool {
	if done >= total {
		return true // the final cell always publishes
	}
	// Ceiling division: a floor stride would let grids just above a
	// multiple of maxProgressEvents emit up to ~25% more delta-driven
	// events than the documented cap.
	stride := (total + maxProgressEvents - 1) / maxProgressEvents
	if stride < 1 {
		stride = 1
	}
	if done-j.lastProgressDone >= stride {
		return true
	}
	// Interval-driven publishes are capped: without the cap, a grid
	// whose cells each outlast the interval would publish every cell
	// and grow the durable log with run duration instead of staying
	// bounded.
	if j.intervalPubs < maxProgressEvents && time.Since(j.lastProgressPub) >= progressMinInterval {
		j.intervalPubs++
		return true
	}
	return false
}

// finish records the selection outcome and publishes the terminal event.
func (j *Job) finish(res *corecvcp.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = resultView(res, len(j.spec.Algorithms) > 0)
		if j.result != nil && j.cellStats != nil {
			c, r := j.cellStats.Computed(), j.cellStats.Reused()
			j.result.CellsComputed = int(c)
			j.result.CellsReused = int(r)
			mReselectDirty.Add(uint64(c))
			mReselectReused.Add(uint64(r))
		}
	case j.ctx.Err() != nil:
		j.status = StatusCancelled
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	j.publishLocked(Event{Type: "status", Status: j.status})
	j.closeSubsLocked()
	// Release the cancelCtx registered on the manager's base context;
	// without this every completed job would stay referenced by the parent
	// context for the life of the process.
	j.cancel()
}

// onShard publishes a distributed job's shard transition as a "shard"
// event. Shard events bypass progress coalescing — a job has at most a
// few hundred shards (each spanning many grid cells), so the volume is
// inherently bounded.
func (j *Job) onShard(shard, shards int, shardStatus, worker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusRunning {
		return
	}
	j.publishLocked(Event{Type: "shard", Shard: shard, Shards: shards,
		ShardStatus: shardStatus, Worker: worker})
}

// execute runs the selection. The caller (a Manager executor) has already
// claimed the running state. workers bounds this job's own grid
// concurrency; limiter is the server-wide budget shared across jobs.
func (j *Job) execute(limiter *runner.Limiter, workers int) {
	spec, err := buildSelectionSpec(j.spec, j.ds)
	if err != nil {
		// Validated at submission; only a racing re-registration can
		// invalidate it.
		j.finish(nil, err)
		return
	}
	spec.Options.Workers = workers
	spec.Options.Progress = j.onProgress
	spec.Options.Limiter = limiter
	spec.Options.CellCache = j.cellCache
	spec.Options.CellStats = j.cellStats
	res, err := corecvcp.Select(j.ctx, spec)
	j.finish(res, err)
}

// buildSelectionSpec maps a persisted job spec onto the library's unified
// selection Spec: the algorithm list becomes the Grid (per-candidate
// registry defaults fill empty parameter ranges), the supervision fields
// become a Supervision, and the scorer name resolves to a Scorer strategy.
// Batch members go through exactly the same mapping.
//
// Everything score-determining lives here — including Options.NFolds and
// Options.Seed, which fix the fold split. Distributed execution depends on
// that: a coordinator and every worker each call buildSelectionSpec on the
// same persisted spec and dataset and must end up with plans that score
// every grid cell bit-identically. Machine-local knobs (Workers, Progress,
// Limiter) are layered on by the caller afterwards; they never affect
// scores.
func buildSelectionSpec(spec Spec, ds *dataset.Dataset) (corecvcp.Spec, error) {
	grid := make(corecvcp.Grid, 0, len(spec.methods()))
	for _, name := range spec.methods() {
		entry, ok := lookupAlgorithm(name)
		if !ok {
			return corecvcp.Spec{}, errUnknownAlgorithm(name)
		}
		alg := entry.alg
		if spec.Matrix32 || spec.Eps > 0 {
			if fo, ok := alg.(corecvcp.FOSCOpticsDend); ok {
				fo.Matrix32 = spec.Matrix32
				fo.Eps = spec.Eps
				alg = fo
			}
		}
		params := spec.Params
		if len(params) == 0 {
			params = entry.defaultParams
		}
		grid = append(grid, corecvcp.Candidate{Algorithm: alg, Params: params})
	}
	var sup corecvcp.Supervision
	switch {
	case len(spec.Constraints) > 0:
		cons := constraints.NewSet()
		for _, c := range spec.Constraints {
			cons.Add(c.A, c.B, c.MustLink)
		}
		sup = corecvcp.ConstraintSet(cons)
	case spec.DatasetID != "":
		// Dataset-referencing jobs use the stable supervision: per-row
		// label selection and fold assignment that never move under
		// append, the contract the cell cache's reuse guarantee is built
		// on. DatasetID travels in the persisted spec, so a coordinator
		// and every worker route here identically.
		sup = corecvcp.StableLabels(spec.LabelFraction)
	default:
		// Scenario I: sample the labeled objects exactly as cmd/cvcp does,
		// so a job replays identically to the CLI with the same seed.
		r := stats.NewRand(spec.Seed)
		sup = corecvcp.Labels(ds.SampleLabels(r, spec.LabelFraction))
	}
	scorer, err := resolveScorer(spec.Scorer, spec.BootstrapRounds)
	if err != nil {
		return corecvcp.Spec{}, err
	}
	return corecvcp.Spec{
		Dataset:     ds,
		Grid:        grid,
		Supervision: sup,
		Scorer:      scorer,
		Options:     corecvcp.Options{NFolds: spec.NFolds, Seed: spec.Seed},
	}, nil
}

// ScoreView is one candidate's cross-validated score in a job result.
type ScoreView struct {
	Param      int       `json:"param"`
	Score      float64   `json:"score"`
	FoldScores []float64 `json:"fold_scores"`
}

// ResultView is the JSON form of a finished job's selection: the winner's
// fields at the top level plus, for cross-method jobs, one summary per grid
// candidate. It is also the persisted result format in the job store.
type ResultView struct {
	Algorithm   string      `json:"algorithm"`
	BestParam   int         `json:"best_param"`
	BestScore   float64     `json:"best_score"`
	Scores      []ScoreView `json:"scores"`
	FinalLabels []int       `json:"final_labels"`
	// CellsComputed and CellsReused split the job's cell-grid work for
	// dataset-referencing jobs: cells computed this run (dirty under the
	// current dataset version) versus served from the persistent cell
	// cache. Reused cells are bit-identical to recomputation, so the
	// split is pure observability. Both absent for inline-CSV jobs.
	CellsComputed int `json:"cells_computed,omitempty"`
	CellsReused   int `json:"cells_reused,omitempty"`
	// Candidates summarizes every grid candidate of a cross-method
	// ("algorithms") job — including the winner, and even when the list
	// named a single method, so clients can rely on the field's presence
	// from the submission shape alone. Absent for single-method
	// ("algorithm") jobs.
	Candidates []CandidateView `json:"candidates,omitempty"`
}

// CandidateView is one grid candidate's outcome in a cross-method result.
// Final labelings are reported only for the winner (the top-level
// ResultView fields), keeping persisted results proportional to the grid,
// not to grid × objects.
type CandidateView struct {
	Algorithm string      `json:"algorithm"`
	BestParam int         `json:"best_param"`
	BestScore float64     `json:"best_score"`
	Scores    []ScoreView `json:"scores"`
}

func scoreViews(sel *corecvcp.Selection) []ScoreView {
	out := make([]ScoreView, 0, len(sel.Scores))
	for _, ps := range sel.Scores {
		out = append(out, ScoreView{Param: ps.Param, Score: ps.Score, FoldScores: ps.FoldScores})
	}
	return out
}

// resultView converts a library selection result into its JSON/persisted
// form. crossMethod reports whether the job was submitted with the
// "algorithms" grid shape: those results always carry the Candidates
// array, even for a one-entry grid, so the response shape follows the
// submission shape rather than the candidate count.
func resultView(res *corecvcp.Result, crossMethod bool) *ResultView {
	if res == nil || res.Winner == nil {
		return nil
	}
	sel := res.Winner
	out := &ResultView{
		Algorithm:   sel.Algorithm,
		BestParam:   sel.Best.Param,
		BestScore:   sel.Best.Score,
		Scores:      scoreViews(sel),
		FinalLabels: sel.FinalLabels,
	}
	if crossMethod {
		for _, c := range res.PerCandidate {
			out.Candidates = append(out.Candidates, CandidateView{
				Algorithm: c.Algorithm,
				BestParam: c.Best.Param,
				BestScore: c.Best.Score,
				Scores:    scoreViews(c),
			})
		}
	}
	return out
}

// JobView is the JSON form of a job's state. Algorithm is the single
// candidate method; cross-method jobs list their grid in Algorithms
// instead.
type JobView struct {
	ID         string      `json:"id"`
	Batch      string      `json:"batch,omitempty"`
	Status     Status      `json:"status"`
	Algorithm  string      `json:"algorithm,omitempty"`
	Algorithms []string    `json:"algorithms,omitempty"`
	Scorer     string      `json:"scorer,omitempty"`
	Matrix32   bool        `json:"matrix32,omitempty"`
	Eps        float64     `json:"eps,omitempty"`
	Tenant     string      `json:"tenant,omitempty"`
	Dataset    string      `json:"dataset"`
	DatasetID  string      `json:"dataset_id,omitempty"`
	DatasetVer int         `json:"dataset_version,omitempty"`
	Objects    int         `json:"objects"`
	Params     []int       `json:"params"`
	Folds      int         `json:"folds"`
	Seed       int64       `json:"seed"`
	Created    time.Time   `json:"created"`
	Started    *time.Time  `json:"started,omitempty"`
	Finished   *time.Time  `json:"finished,omitempty"`
	Done       int         `json:"done"`
	Total      int         `json:"total"`
	Error      string      `json:"error,omitempty"`
	Result     *ResultView `json:"result,omitempty"`
}

// View snapshots the job for JSON responses.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Batch:      j.batch,
		Status:     j.status,
		Algorithm:  j.spec.Algorithm,
		Algorithms: j.spec.Algorithms,
		Scorer:     j.spec.Scorer,
		Matrix32:   j.spec.Matrix32,
		Eps:        j.spec.Eps,
		Tenant:     j.spec.Tenant,
		Dataset:    j.dsName,
		DatasetID:  j.spec.DatasetID,
		DatasetVer: j.spec.DatasetVersion,
		Objects:    j.objects,
		Params:     j.spec.Params,
		Folds:      j.spec.NFolds,
		Seed:       j.spec.Seed,
		Created:    j.created,
		Done:       j.done,
		Total:      j.total,
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	v.Result = j.result
	return v
}
