package server

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/stats"
	"cvcp/internal/store"
)

func openSharedStore(t *testing.T, dir string) *store.Shared {
	t.Helper()
	s, err := store.OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startServerWorker runs the worker role against its own shared-store
// handle on dir — a separate handle per worker, exactly as separate
// worker processes would have — and returns a stop function that waits
// for the worker to exit and closes its store.
func startServerWorker(t *testing.T, dir, id string) (stop func()) {
	t.Helper()
	ws := openSharedStore(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = RunWorker(ctx, WorkerConfig{
			Store:    ws,
			ID:       id,
			Workers:  2,
			LeaseTTL: 300 * time.Millisecond,
			Poll:     3 * time.Millisecond,
		})
	}()
	return func() {
		cancel()
		wg.Wait()
		ws.Close()
	}
}

// distTestSpec is a cross-method, cross-validated job — distributable
// (partition scorer) with a multi-candidate grid, so shards span both
// algorithms.
func distTestSpec() Spec {
	return Spec{Algorithms: []string{"fosc", "mpck"}, Params: []int{3, 6}, NFolds: 2, Seed: 7, LabelFraction: 0.5}
}

func sameResultView(t *testing.T, got, want *ResultView) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("missing result: got %v want %v", got, want)
	}
	if got.Algorithm != want.Algorithm || got.BestParam != want.BestParam ||
		math.Float64bits(got.BestScore) != math.Float64bits(want.BestScore) {
		t.Fatalf("selection (%s, %d, %v) != (%s, %d, %v)",
			got.Algorithm, got.BestParam, got.BestScore, want.Algorithm, want.BestParam, want.BestScore)
	}
	if len(got.Scores) != len(want.Scores) {
		t.Fatalf("%d winner scores, want %d", len(got.Scores), len(want.Scores))
	}
	for i, s := range got.Scores {
		w := want.Scores[i]
		if s.Param != w.Param || math.Float64bits(s.Score) != math.Float64bits(w.Score) {
			t.Fatalf("score %d: (%d, %v) != (%d, %v)", i, s.Param, s.Score, w.Param, w.Score)
		}
		if len(s.FoldScores) != len(w.FoldScores) {
			t.Fatalf("score %d: %d fold scores, want %d", i, len(s.FoldScores), len(w.FoldScores))
		}
		for f, fs := range s.FoldScores {
			if math.Float64bits(fs) != math.Float64bits(w.FoldScores[f]) {
				t.Fatalf("score %d fold %d: %v != %v (bits differ)", i, f, fs, w.FoldScores[f])
			}
		}
	}
	if len(got.FinalLabels) != len(want.FinalLabels) {
		t.Fatalf("%d final labels, want %d", len(got.FinalLabels), len(want.FinalLabels))
	}
	for i, l := range got.FinalLabels {
		if l != want.FinalLabels[i] {
			t.Fatalf("final label %d: %d != %d", i, l, want.FinalLabels[i])
		}
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("%d candidates, want %d", len(got.Candidates), len(want.Candidates))
	}
	for i, c := range got.Candidates {
		w := want.Candidates[i]
		if c.Algorithm != w.Algorithm || c.BestParam != w.BestParam ||
			math.Float64bits(c.BestScore) != math.Float64bits(w.BestScore) {
			t.Fatalf("candidate %d: (%s, %d, %v) != (%s, %d, %v)",
				i, c.Algorithm, c.BestParam, c.BestScore, w.Algorithm, w.BestParam, w.BestScore)
		}
	}
}

// A coordinator with workers over a shared store must produce a result —
// selection, per-fold score bits, final labels — bit-identical to the
// same job on a single-node manager, and must emit shard events along
// the way and leave no distribution records behind.
func TestDistributedManagerMatchesSingleNode(t *testing.T) {
	ds, _ := testDataset(t, 40)
	spec := distTestSpec()

	// Single-node reference.
	single := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2})
	sj, err := single.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, sj); s != StatusDone {
		t.Fatalf("single-node job finished as %s (%s)", s, sj.View().Error)
	}
	want := sj.View().Result
	single.Shutdown(context.Background())

	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "one-worker", 4: "four-workers"}[workers], func(t *testing.T) {
			dir := t.TempDir()
			cs := openSharedStore(t, dir)
			defer cs.Close()
			m := NewManager(Config{
				MaxRunningJobs: 1, WorkerBudget: 2, Store: cs,
				Role: RoleCoordinator, ShardCells: 2, Poll: 3 * time.Millisecond,
			})
			defer m.Shutdown(context.Background())
			for i := 0; i < workers; i++ {
				defer startServerWorker(t, dir, "w"+string(rune('0'+i)))()
			}

			j, err := m.Submit(spec, ds)
			if err != nil {
				t.Fatal(err)
			}
			if s := waitTerminal(t, j); s != StatusDone {
				t.Fatalf("distributed job finished as %s (%s)", s, j.View().Error)
			}
			sameResultView(t, j.View().Result, want)

			// Shard events reached the job's stream: every shard reported
			// done by a named worker.
			var shardDone int
			for _, ev := range j.EventsSince(0) {
				if ev.Type != "shard" {
					continue
				}
				if ev.Shards < 1 || ev.ShardStatus == "" {
					t.Fatalf("malformed shard event: %+v", ev)
				}
				if ev.ShardStatus == "done" {
					shardDone++
					if ev.Worker == "" {
						t.Fatalf("done shard event without worker: %+v", ev)
					}
				}
			}
			if shardDone == 0 {
				t.Fatal("no done shard events in the job's stream")
			}

			// The job's distribution records were cleaned up.
			recs, _, err := cs.List("", 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs {
				for _, prefix := range []string{"grid-", "shard-", "part-"} {
					if strings.HasPrefix(rec.ID, prefix) {
						t.Fatalf("leftover distribution record %s", rec.ID)
					}
				}
			}
		})
	}
}

// Kill a coordinator mid-distribution: a fresh coordinator on the same
// store directory must re-queue the interrupted job, sweep the stale
// shard records, redistribute, and finish with exactly the selection the
// library computes — the distributed mirror of
// TestRestartRequeuesInterruptedJob.
func TestCoordinatorRestartRedistributesInterruptedJob(t *testing.T) {
	ds, _ := testDataset(t, 40)
	spec := distTestSpec()
	dir := t.TempDir()

	s1 := openSharedStore(t, dir)
	m1 := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 2, Store: s1,
		Role: RoleCoordinator, ShardCells: 2, Poll: 3 * time.Millisecond,
	})
	interrupted, err := m1.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}

	// No workers exist, so the job sits distributed-but-uncomputed. Wait
	// until its shard records are on disk (which also proves the
	// "running" job record was persisted first), then "kill" the
	// coordinator by closing its store handle out from under it — its
	// writes stop mid-job exactly as a killed process's would, leaving
	// the stale grid and shard records behind.
	probe := openSharedStore(t, dir)
	defer probe.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		recs, _, err := probe.List("shard-", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) > 0 && strings.HasPrefix(recs[0].ID, "shard-") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never published shard records")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Close()

	// Restart: fresh store handle, fresh coordinator, plus a worker this
	// time. The replayed "running" record re-queues; redistribution
	// starts by sweeping the dead incarnation's records.
	s2 := openSharedStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 2, Store: s2,
		Role: RoleCoordinator, ShardCells: 2, Poll: 3 * time.Millisecond,
	})
	defer m2.Shutdown(context.Background())
	defer startServerWorker(t, dir, "restart-worker")()

	rj, err := m2.Get(interrupted.ID())
	if err != nil {
		t.Fatalf("interrupted job not replayed: %v", err)
	}
	if s := waitTerminal(t, rj); s != StatusDone {
		t.Fatalf("re-queued job finished as %s (%s)", s, rj.View().Error)
	}

	// Bit-identical to the library's own selection for the same inputs.
	r := stats.NewRand(spec.Seed)
	idx := ds.SampleLabels(r, spec.LabelFraction)
	lres, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset: ds,
		Grid: corecvcp.Grid{
			{Algorithm: corecvcp.FOSCOpticsDend{}, Params: spec.Params},
			{Algorithm: corecvcp.MPCKMeans{}, Params: spec.Params},
		},
		Supervision: corecvcp.Labels(idx),
		Options:     corecvcp.Options{NFolds: spec.NFolds, Seed: spec.Seed},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rj.View().Result
	sel := lres.Winner
	if got == nil || got.Algorithm != sel.Algorithm || got.BestParam != sel.Best.Param ||
		math.Float64bits(got.BestScore) != math.Float64bits(sel.Best.Score) {
		t.Fatalf("recovered selection %+v, library selected (%s, %d, %v)", got, sel.Algorithm, sel.Best.Param, sel.Best.Score)
	}
	for i, l := range sel.FinalLabels {
		if got.FinalLabels[i] != l {
			t.Fatalf("final label %d: recovered %d, library %d", i, got.FinalLabels[i], l)
		}
	}

	// The abandoned coordinator can be drained now; its store is closed,
	// so it finishes its job as failed without touching the shared state.
	waitTerminal(t, interrupted)
	m1.Shutdown(context.Background())
}

// A validity-scored job cannot shard (no folds to partition); a
// coordinator must fall back to computing it locally rather than failing
// it.
func TestCoordinatorFallsBackToLocalForValidityScorer(t *testing.T) {
	ds, _ := testDataset(t, 40)
	dir := t.TempDir()
	cs := openSharedStore(t, dir)
	defer cs.Close()
	m := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 2, Store: cs,
		Role: RoleCoordinator, Poll: 3 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())
	// No workers at all: if this job were distributed it could never
	// finish.
	spec := Spec{Algorithm: "mpck", Params: []int{2, 3}, Seed: 5, Scorer: "silhouette", LabelFraction: 0.5}
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("validity job on a coordinator finished as %s (%s)", s, j.View().Error)
	}
	for _, ev := range j.EventsSince(0) {
		if ev.Type == "shard" {
			t.Fatalf("locally-computed job emitted a shard event: %+v", ev)
		}
	}
}

// The matrix32 option threads through spec validation, execution and the
// job view: valid only with a FOSC candidate, reported in the view, and
// the job completes.
func TestMatrix32Spec(t *testing.T) {
	ds, _ := testDataset(t, 30)

	if _, _, apiErr := finishSpec(Spec{Algorithm: "mpck", Params: []int{2, 3}, Matrix32: true, Seed: 1, LabelFraction: 0.5}, ds); apiErr == nil {
		t.Fatal("matrix32 without a fosc candidate was accepted")
	}
	spec, _, apiErr := finishSpec(Spec{Algorithm: "fosc", Params: []int{3, 6}, Matrix32: true, NFolds: 2, Seed: 5, LabelFraction: 0.5}, ds)
	if apiErr != nil {
		t.Fatalf("matrix32 with fosc rejected: %v", apiErr.Message)
	}
	if cross, _, apiErr := finishSpec(Spec{Algorithms: []string{"mpck", "fosc"}, Params: []int{3, 6}, Matrix32: true, NFolds: 2, Seed: 5, LabelFraction: 0.5}, ds); apiErr != nil || !cross.Matrix32 {
		t.Fatalf("matrix32 with fosc among algorithms rejected: %v", apiErr)
	}

	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2})
	defer m.Shutdown(context.Background())
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("matrix32 job finished as %s (%s)", s, j.View().Error)
	}
	v := j.View()
	if !v.Matrix32 {
		t.Fatal("job view does not report matrix32")
	}
	if v.Result == nil || len(v.Result.FinalLabels) != ds.N() {
		t.Fatalf("matrix32 job result: %+v", v.Result)
	}
}
