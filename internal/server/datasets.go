package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cvcp/internal/dataset"
	"cvcp/internal/store"
)

// Dataset record conventions. A versioned dataset lives in the store as
// one meta record ("ds-000000042", Status "dataset") plus one row-batch
// record per append ("dsb-000000042-000000003", Status "dataset-rows",
// the encoded batch in the record's Dataset field). Lexicographic store
// order replays metas before batches and batches in version order, so
// the registry rebuilds every dataset by appending its batches exactly
// as they were submitted. Cell-cache records cite the meta record ID as
// their owner (store.CellID), which is what ties a dataset's cached cell
// scores to its lifetime.
const (
	datasetPrefix      = "ds-"
	datasetBatchPrefix = "dsb-"
	datasetStatus      = "dataset"
	datasetRowsStatus  = "dataset-rows"
)

// ErrDatasetNotFound marks an unknown (or deleted) dataset ID.
var ErrDatasetNotFound = errors.New("server: no such dataset")

// datasetMetaRecord is the Spec payload of a dataset meta record.
type datasetMetaRecord struct {
	Name     string `json:"name"`
	HasLabel bool   `json:"has_label"`
}

// datasetBatchMeta is the Spec payload of a row-batch record: which
// dataset it extends and the version it produced (redundant with the
// record ID, but self-describing for operators inspecting the store).
type datasetBatchMeta struct {
	Dataset string `json:"dataset"`
	Version int    `json:"version"`
}

// managedDataset is one live versioned dataset. The Versioned log is
// guarded by the manager's dsMu; appendMu additionally serializes
// appends per dataset so row batches hit the store in version order
// without holding dsMu across the write.
type managedDataset struct {
	id      string
	created time.Time
	v       *dataset.Versioned

	appendMu sync.Mutex
}

// DatasetView is the JSON form of a dataset's state.
type DatasetView struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	HasLabel bool      `json:"has_label"`
	Version  int       `json:"version"`
	Rows     int       `json:"rows"`
	Dims     int       `json:"dims"`
	Created  time.Time `json:"created"`
}

func (m *Manager) datasetViewLocked(md *managedDataset) DatasetView {
	return DatasetView{
		ID:       md.id,
		Name:     md.v.Name(),
		HasLabel: md.v.HasLabel(),
		Version:  md.v.Version(),
		Rows:     md.v.N(),
		Dims:     md.v.Dims(),
		Created:  md.created,
	}
}

// datasetBatchID returns the row-batch record ID for one version of a
// dataset. dsID is the meta record ID ("ds-000000042"); the batch seq is
// the version the batch produced, zero-padded so lexicographic store
// order equals version order for the lifetime of a durable store.
func datasetBatchID(dsID string, version int) string {
	return fmt.Sprintf("%s%s-%09d", datasetBatchPrefix, strings.TrimPrefix(dsID, datasetPrefix), version)
}

// datasetOfBatchID recovers the meta record ID from a batch record ID.
func datasetOfBatchID(batchID string) (string, bool) {
	rest, ok := strings.CutPrefix(batchID, datasetBatchPrefix)
	if !ok {
		return "", false
	}
	i := strings.IndexByte(rest, '-')
	if i < 0 {
		return "", false
	}
	return datasetPrefix + rest[:i], true
}

// datasetBatchPayload is the Dataset document of a batch record. The
// record's Dataset field is json.RawMessage (the durable stores marshal
// whole records), so the encoded batch travels as a JSON string rather
// than raw bytes.
type datasetBatchPayload struct {
	// Batch is the EncodeRowBatch form of the appended rows — full-precision
	// CSV, so a replayed batch is bit-identical to the appended one.
	Batch string `json:"batch"`
}

// encodeBatchRecord builds the store record of one appended row batch.
func encodeBatchRecord(dsID string, version int, b dataset.RowBatch, created time.Time) (store.Record, error) {
	var buf bytes.Buffer
	if err := dataset.EncodeRowBatch(&buf, b); err != nil {
		return store.Record{}, err
	}
	payload, err := json.Marshal(datasetBatchPayload{Batch: buf.String()})
	if err != nil {
		return store.Record{}, err
	}
	meta, err := json.Marshal(datasetBatchMeta{Dataset: dsID, Version: version})
	if err != nil {
		return store.Record{}, err
	}
	return store.Record{
		ID:      datasetBatchID(dsID, version),
		Status:  datasetRowsStatus,
		Created: created,
		Spec:    meta,
		Dataset: payload,
	}, nil
}

// CreateDataset registers a new versioned dataset, optionally seeded
// with an initial row batch (initial may be nil for an empty dataset at
// version 0). The meta record is durably persisted before the dataset
// becomes visible.
func (m *Manager) CreateDataset(name string, hasLabel bool, initial *dataset.RowBatch) (DatasetView, error) {
	if name == "" {
		name = "dataset"
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return DatasetView{}, ErrDraining
	}
	m.nextDataset++
	id := fmt.Sprintf("%s%09d", datasetPrefix, m.nextDataset)
	m.mu.Unlock()

	created := time.Now()
	spec, err := json.Marshal(datasetMetaRecord{Name: name, HasLabel: hasLabel})
	if err != nil {
		return DatasetView{}, err
	}
	if err := m.store.Put(store.Record{ID: id, Status: datasetStatus, Created: created, Spec: spec}); err != nil {
		return DatasetView{}, fmt.Errorf("server: persisting dataset: %w", err)
	}
	md := &managedDataset{id: id, created: created, v: dataset.NewVersioned(name, hasLabel)}
	m.dsMu.Lock()
	m.datasets[id] = md
	m.dsMu.Unlock()
	mDatasetVersion.With(id).Set(0)
	if initial == nil {
		m.dsMu.Lock()
		defer m.dsMu.Unlock()
		return m.datasetViewLocked(md), nil
	}
	return m.AppendRows(id, *initial)
}

// AppendRows appends one row batch to a dataset, returning the view at
// the new version. The batch record is durably persisted before the
// in-memory log grows, so a crash between the two replays the append
// rather than losing rows a client was told exist.
func (m *Manager) AppendRows(id string, b dataset.RowBatch) (DatasetView, error) {
	m.dsMu.Lock()
	md, ok := m.datasets[id]
	m.dsMu.Unlock()
	if !ok {
		return DatasetView{}, ErrDatasetNotFound
	}

	md.appendMu.Lock()
	defer md.appendMu.Unlock()
	m.dsMu.Lock()
	version := md.v.Version() + 1
	// Validate against the live log before touching the store, so a bad
	// batch never leaves a record behind; Append re-validates on commit.
	err := md.v.CanAppend(b)
	m.dsMu.Unlock()
	if err != nil {
		return DatasetView{}, err
	}
	rec, err := encodeBatchRecord(id, version, b, time.Now())
	if err != nil {
		return DatasetView{}, err
	}
	//cvcplint:ignore lockio appendMu exists to serialize exactly this write: row batches of one dataset must reach the WAL in version order; the registry's shared dsMu (and the manager's m.mu) are not held
	if err := m.store.Put(rec); err != nil {
		return DatasetView{}, fmt.Errorf("server: persisting row batch: %w", err)
	}
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	if _, err := md.v.Append(b); err != nil {
		return DatasetView{}, err
	}
	mDatasetVersion.With(id).Set(int64(md.v.Version()))
	return m.datasetViewLocked(md), nil
}

// GetDataset returns a dataset's current view.
func (m *Manager) GetDataset(id string) (DatasetView, error) {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	md, ok := m.datasets[id]
	if !ok {
		return DatasetView{}, ErrDatasetNotFound
	}
	return m.datasetViewLocked(md), nil
}

// ListDatasets returns every registered dataset's view in ID order.
func (m *Manager) ListDatasets() []DatasetView {
	m.dsMu.Lock()
	out := make([]DatasetView, 0, len(m.datasets))
	for _, md := range m.datasets {
		out = append(out, m.datasetViewLocked(md))
	}
	m.dsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeleteDataset removes a dataset: the registry entry, the meta record,
// every row-batch record and every cell-cache record owned by the
// dataset. The meta record is deleted first so a crash mid-delete
// leaves orphans (batches, cells) that the startup sweeps collect, never
// a half-alive dataset. Running jobs hold materialized snapshots and are
// unaffected; their remaining cache writes become orphans too.
func (m *Manager) DeleteDataset(id string) error {
	m.dsMu.Lock()
	_, ok := m.datasets[id]
	delete(m.datasets, id)
	m.dsMu.Unlock()
	if !ok {
		return ErrDatasetNotFound
	}
	mDatasetVersion.Delete(id)
	// Cover the deleted ID in the counter high-water mark before any
	// record disappears, so a restart cannot re-issue it.
	m.applyEviction(nil, true)
	if err := m.store.Delete(id); err != nil {
		return fmt.Errorf("server: deleting dataset %s: %w", id, err)
	}
	m.deleteByPrefix(datasetBatchPrefix + strings.TrimPrefix(id, datasetPrefix) + "-")
	if n, err := store.SweepCells(m.store, id); err == nil && n > 0 {
		mDatasetCellsSwept.Add(uint64(n))
	}
	return nil
}

// deleteByPrefix best-effort deletes every record whose ID has the given
// prefix, exploiting the store's ascending listing order.
func (m *Manager) deleteByPrefix(prefix string) {
	cursor := prefix // IDs with the prefix sort strictly after it
	for {
		recs, next, err := m.store.List(cursor, 64)
		if err != nil {
			return
		}
		for _, rec := range recs {
			if !strings.HasPrefix(rec.ID, prefix) {
				if rec.ID > prefix {
					return
				}
				continue
			}
			_ = m.store.Delete(rec.ID)
		}
		if next == "" {
			return
		}
		cursor = next
	}
}

// restoreDatasetMeta rebuilds one dataset registry entry during startup
// replay (metas replay before their batches — store order). Runs before
// any concurrency exists, so it takes no locks.
func (m *Manager) restoreDatasetMeta(rec store.Record) {
	if n, ok := numericSuffix(rec.ID, datasetPrefix); ok && n > m.nextDataset {
		m.nextDataset = n
	}
	var meta datasetMetaRecord
	if err := json.Unmarshal(rec.Spec, &meta); err != nil {
		return // corrupt meta: the dataset's batches and cells become orphans
	}
	m.datasets[rec.ID] = &managedDataset{
		id:      rec.ID,
		created: rec.Created,
		v:       dataset.NewVersioned(meta.Name, meta.HasLabel),
	}
	mDatasetVersion.With(rec.ID).Set(0)
}

// restoreDatasetRows replays one row-batch record into its dataset's
// log. Listings omit the Dataset payload, so the full record is fetched.
// A batch whose dataset meta is gone (a crash mid-delete) is an orphan
// and is deleted durably, mirroring the store's own orphan sweeps.
func (m *Manager) restoreDatasetRows(rec store.Record) {
	dsID, ok := datasetOfBatchID(rec.ID)
	if !ok {
		return
	}
	md, ok := m.datasets[dsID]
	if !ok {
		_ = m.store.Delete(rec.ID)
		return
	}
	full, ok, err := m.store.Get(rec.ID)
	if err != nil || !ok {
		return
	}
	var payload datasetBatchPayload
	if err := json.Unmarshal(full.Dataset, &payload); err != nil {
		return // corrupt batch: the dataset resumes at the last good version
	}
	b, err := dataset.DecodeRowBatch(strings.NewReader(payload.Batch), 0)
	if err != nil {
		return // corrupt batch: the dataset resumes at the last good version
	}
	if _, err := md.v.Append(b); err != nil {
		return
	}
	mDatasetVersion.With(dsID).Set(int64(md.v.Version()))
}

// SnapshotForJob resolves a dataset-referencing job submission: it pins
// the version (0 means the current one, written back into the spec so
// the persisted job replays against the same rows) and materializes the
// pinned snapshot the job will run on.
func (m *Manager) SnapshotForJob(spec *Spec) (*dataset.Dataset, *apiError) {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	md, ok := m.datasets[spec.DatasetID]
	if !ok {
		return nil, &apiError{status: 404, Code: "not_found", Message: fmt.Sprintf("server: no dataset %q", spec.DatasetID)}
	}
	if spec.DatasetVersion == 0 {
		spec.DatasetVersion = md.v.Version()
	}
	ds, err := md.v.Snapshot(spec.DatasetVersion)
	if err != nil {
		return nil, badRequest("invalid_request", "%v", err)
	}
	return ds, nil
}
