package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"cvcp/internal/metrics"
)

// NewHandler returns the HTTP API over the manager. When the manager's
// config names tenants, every /v1 route requires one of their API keys;
// /healthz and /metrics stay keyless (see auth.go).
func NewHandler(m *Manager) http.Handler {
	a := &api{m: m, keys: map[string]Tenant{}}
	for _, t := range m.Config().Tenants {
		a.keys[t.Key] = t
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.authed(a.submit))
	mux.HandleFunc("GET /v1/jobs", a.authed(a.list))
	mux.HandleFunc("GET /v1/jobs/{id}", a.authed(a.get))
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.authed(a.cancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.authed(a.events))
	mux.HandleFunc("POST /v1/batches", a.authed(a.submitBatch))
	mux.HandleFunc("GET /v1/batches/{id}", a.authed(a.getBatch))
	mux.HandleFunc("POST /v1/datasets", a.authed(a.createDataset))
	mux.HandleFunc("GET /v1/datasets", a.authed(a.listDatasets))
	mux.HandleFunc("GET /v1/datasets/{id}", a.authed(a.getDataset))
	mux.HandleFunc("DELETE /v1/datasets/{id}", a.authed(a.deleteDataset))
	mux.HandleFunc("POST /v1/datasets/{id}/rows", a.authed(a.appendRows))
	mux.HandleFunc("GET /healthz", a.health)
	if !m.Config().DisableMetrics {
		mux.Handle("GET /metrics", metrics.Handler())
	}
	return mux
}

type api struct {
	m    *Manager
	keys map[string]Tenant // API key -> tenant; empty means auth disabled
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	maxBody := a.m.Config().MaxBodyBytes
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	spec, ds, apiErr := parseSubmission(r, maxBody)
	if apiErr == nil && spec.DatasetID != "" {
		// Dataset-referencing job: materialize the pinned snapshot (this
		// also writes the resolved version into the spec) and validate
		// the options against it — the step inline-CSV submissions ran
		// inside the parser.
		ds, apiErr = a.m.SnapshotForJob(&spec)
		if apiErr == nil {
			spec, ds, apiErr = finishSpec(spec, ds)
		}
	}
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	spec.Tenant = requestTenant(r)
	j, err := a.m.Submit(spec, ds)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, &apiError{status: http.StatusTooManyRequests, Code: "queue_full", Message: err.Error()})
		return
	case errors.Is(err, ErrTenantQuota):
		writeError(w, &apiError{status: http.StatusTooManyRequests, Code: "quota_exceeded", Message: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeError(w, &apiError{status: http.StatusServiceUnavailable, Code: "draining", Message: err.Error()})
		return
	case err != nil:
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.View())
}

// jobListResponse is the GET /v1/jobs body. NextCursor, when non-empty,
// is passed back as ?cursor= to fetch the next page; its absence means the
// listing is exhausted.
type jobListResponse struct {
	Jobs       []JobView `json:"jobs"`
	NextCursor string    `json:"next_cursor,omitempty"`
}

func (a *api) list(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeError(w, badRequest("invalid_request", "option %q: want a non-negative integer", "limit"))
			return
		}
		limit = v
	}
	views, next, err := a.m.ListPage(q.Get("cursor"), limit)
	if err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, jobListResponse{Jobs: views, NextCursor: next})
}

func (a *api) get(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, err := a.m.Cancel(id)
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": status})
}

func (a *api) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": a.m.Len()})
}
