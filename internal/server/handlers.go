package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler returns the HTTP API over the manager.
func NewHandler(m *Manager) http.Handler {
	a := &api{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.get)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", a.events)
	mux.HandleFunc("GET /healthz", a.health)
	return mux
}

type api struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, map[string]*apiError{"error": e})
}

func (a *api) submit(w http.ResponseWriter, r *http.Request) {
	maxBody := a.m.Config().MaxBodyBytes
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	spec, ds, apiErr := parseSubmission(r, maxBody)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	j, err := a.m.Submit(spec, ds)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, &apiError{status: http.StatusTooManyRequests, Code: "queue_full", Message: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeError(w, &apiError{status: http.StatusServiceUnavailable, Code: "draining", Message: err.Error()})
		return
	case err != nil:
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, j.View())
}

func (a *api) list(w http.ResponseWriter, r *http.Request) {
	jobs := a.m.List()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string][]JobView{"jobs": views})
}

func (a *api) get(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (a *api) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	status, err := a.m.Cancel(id)
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": status})
}

func (a *api) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": a.m.Len()})
}
