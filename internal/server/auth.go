package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// API-key authentication. With tenants configured (Config.Tenants),
// every /v1 endpoint requires a configured key via "Authorization:
// Bearer <key>" or "X-API-Key: <key>"; the resolved tenant name rides
// the request context and is stamped onto submitted specs, where the
// manager's fair queue and quotas pick it up. /healthz and /metrics
// stay keyless — probes and scrapers are infrastructure, not tenants.
// With no tenants configured, authentication is disabled and every
// request acts as the anonymous tenant.

// tenantKey is the context key of the authenticated tenant name.
type tenantKey struct{}

// requestTenant returns the tenant name the authed middleware resolved
// ("" on open deployments).
func requestTenant(r *http.Request) string {
	t, _ := r.Context().Value(tenantKey{}).(string)
	return t
}

// requestKey extracts the presented API key, preferring the
// Authorization bearer form.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return key
		}
		return "" // a non-bearer Authorization header never matches
	}
	return r.Header.Get("X-API-Key")
}

// authed wraps a handler with API-key authentication.
func (a *api) authed(next http.HandlerFunc) http.HandlerFunc {
	if len(a.keys) == 0 {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := a.keys[requestKey(r)]
		if !ok {
			mAuthFailures.Inc()
			writeError(w, &apiError{status: http.StatusUnauthorized, Code: "unauthorized",
				Message: "missing or unknown API key (send Authorization: Bearer <key> or X-API-Key)"})
			return
		}
		next(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, t.Name)))
	}
}

// ParseTenants reads the cvcpd -api-keys file format: one tenant per
// line, "<key> <name> [weight [max_queued]]", with blank lines and '#'
// comments ignored. Keys and names must be unique; weight defaults to
// 1 and max_queued to 0 (no per-tenant cap).
func ParseTenants(r io.Reader) ([]Tenant, error) {
	var out []Tenant
	keys, names := map[string]bool{}, map[string]bool{}
	sc := bufio.NewScanner(r)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("api-keys line %d: want \"<key> <name> [weight [max_queued]]\", got %d fields", ln, len(fields))
		}
		t := Tenant{Key: fields[0], Name: fields[1], Weight: 1}
		if len(fields) >= 3 {
			w, err := strconv.Atoi(fields[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("api-keys line %d: weight %q: want a positive integer", ln, fields[2])
			}
			t.Weight = w
		}
		if len(fields) == 4 {
			q, err := strconv.Atoi(fields[3])
			if err != nil || q < 0 {
				return nil, fmt.Errorf("api-keys line %d: max_queued %q: want a non-negative integer", ln, fields[3])
			}
			t.MaxQueued = q
		}
		if keys[t.Key] {
			return nil, fmt.Errorf("api-keys line %d: duplicate key", ln)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("api-keys line %d: duplicate tenant name %q", ln, t.Name)
		}
		keys[t.Key], names[t.Name] = true, true
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("api-keys: %w", err)
	}
	return out, nil
}
