package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cvcp/internal/constraints"
	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/stats"
	"cvcp/internal/store"
)

func openFileStore(t *testing.T, dir string) *store.File {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A job submitted (and finished) before a clean shutdown must be visible
// — with its result — after a restart on the same store directory; batch
// membership must be rebuilt too.
func TestRestartRecoversFinishedJobs(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})
	j, err := m1.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("job finished as %s", s)
	}
	want := j.View()

	bview, err := m1.SubmitBatch([]BatchItem{
		{Spec: quickSpec(), Dataset: ds},
		{Spec: quickSpec(), Dataset: ds},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{bview.Jobs[0].ID, bview.Jobs[1].ID} {
		bj, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, bj)
	}
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh manager over the same directory.
	s2 := openFileStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s2})
	defer m2.Shutdown(context.Background())

	rj, err := m2.Get(want.ID)
	if err != nil {
		t.Fatalf("restarted manager lost job %s: %v", want.ID, err)
	}
	got := rj.View()
	if got.Status != StatusDone || got.Result == nil {
		t.Fatalf("restored job: status %s result %v", got.Status, got.Result)
	}
	if got.Result.BestParam != want.Result.BestParam || got.Result.BestScore != want.Result.BestScore {
		t.Fatalf("restored result (%d, %v) != original (%d, %v)",
			got.Result.BestParam, got.Result.BestScore, want.Result.BestParam, want.Result.BestScore)
	}
	if len(got.Result.FinalLabels) != len(want.Result.FinalLabels) {
		t.Fatalf("restored final labels: %d entries, want %d", len(got.Result.FinalLabels), len(want.Result.FinalLabels))
	}
	if got.Dataset != want.Dataset || got.Objects != want.Objects || got.Seed != want.Seed {
		t.Fatalf("restored identity %q/%d/%d, want %q/%d/%d",
			got.Dataset, got.Objects, got.Seed, want.Dataset, want.Objects, want.Seed)
	}
	if got.Finished == nil || !got.Finished.Equal(*want.Finished) {
		t.Fatalf("restored finish time %v, want %v", got.Finished, want.Finished)
	}

	// Listing still works, in submission order.
	views, _, err := m2.ListPage("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 || views[0].ID != want.ID {
		t.Fatalf("restarted listing = %d jobs, first %s", len(views), views[0].ID)
	}

	// Batch membership came back from the records' batch fields.
	rb, err := m2.GetBatch(bview.ID)
	if err != nil {
		t.Fatalf("restarted manager lost batch %s: %v", bview.ID, err)
	}
	if rb.Total != 2 || rb.Counts[StatusDone] != 2 || !rb.Done {
		t.Fatalf("restored batch: %+v", rb)
	}

	// New submissions resume the ID sequence past everything replayed.
	nj, err := m2.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if nj.ID() <= bview.Jobs[1].ID {
		t.Fatalf("new job ID %s does not continue past replayed %s", nj.ID(), bview.Jobs[1].ID)
	}
	waitTerminal(t, nj)
}

// gatedAlg wraps FOSC-OPTICSDend: the FIRST Cluster call across the
// process parks until release is closed; every later call passes straight
// through. It holds a job deterministically in the running state for the
// "kill a server mid-job" simulation, while still computing real
// selections afterwards.
type gatedAlg struct {
	started chan struct{}
	release chan struct{}
	first   *atomic.Bool
}

func newGatedAlg() gatedAlg {
	first := &atomic.Bool{}
	first.Store(true)
	return gatedAlg{started: make(chan struct{}), release: make(chan struct{}), first: first}
}

func (g gatedAlg) Name() string { return "gated" }

func (g gatedAlg) Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error) {
	if g.first.CompareAndSwap(true, false) {
		close(g.started)
		<-g.release
	}
	return corecvcp.FOSCOpticsDend{}.Cluster(ds, train, param, seed)
}

// Kill a server mid-job: a second manager opened on the same store
// directory must list the finished job and re-queue the interrupted one,
// which then completes with exactly the selection the library computes
// for the same data and seed.
func TestRestartRequeuesInterruptedJob(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()
	alg := newGatedAlg()
	RegisterAlgorithm("gated-restart", alg, []int{3, 6})

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})

	done1, err := m1.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, done1); s != StatusDone {
		t.Fatalf("first job finished as %s", s)
	}

	spec := Spec{Algorithm: "gated-restart", Params: []int{3, 6}, NFolds: 2, Seed: 11, LabelFraction: 0.5}
	interrupted, err := m1.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started // the job is running and its "running" record is on disk

	// "Kill" the server: m1 is abandoned mid-job (its executor is parked
	// inside the algorithm, so it writes nothing more), and a fresh
	// manager starts over the same directory — exactly what a process
	// restart with the same -store-dir does.
	s2 := openFileStore(t, dir)
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s2})

	rj, err := m2.Get(interrupted.ID())
	if err != nil {
		t.Fatalf("interrupted job not replayed: %v", err)
	}
	if s := waitTerminal(t, rj); s != StatusDone {
		t.Fatalf("re-queued job finished as %s (%s)", s, rj.View().Error)
	}
	// The finished job from before the crash is intact too.
	if fj, err := m2.Get(done1.ID()); err != nil || fj.Status() != StatusDone {
		t.Fatalf("pre-crash finished job: %v / %v", fj, err)
	}

	// The re-run must select exactly what the library selects for the
	// same data, seed and options: deterministic seeding plus a full-
	// precision CSV round-trip make the recovery bit-identical.
	r := stats.NewRand(11)
	idx := ds.SampleLabels(r, 0.5)
	lres, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        corecvcp.Grid{{Algorithm: corecvcp.FOSCOpticsDend{}, Params: []int{3, 6}}},
		Supervision: corecvcp.Labels(idx),
		Options:     corecvcp.Options{NFolds: 2, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := lres.Winner
	got := rj.View()
	if got.Result == nil || got.Result.BestParam != sel.Best.Param || got.Result.BestScore != sel.Best.Score {
		t.Fatalf("re-queued selection = %+v, library selected (%d, %v)", got.Result, sel.Best.Param, sel.Best.Score)
	}
	for i, l := range sel.FinalLabels {
		if got.Result.FinalLabels[i] != l {
			t.Fatalf("final label %d: recovered %d, library %d", i, got.Result.FinalLabels[i], l)
		}
	}

	// Orderly teardown of both managers (the test-only gate must open
	// before m1 can drain).
	m2.Shutdown(context.Background())
	s2.Close()
	close(alg.release)
	waitTerminal(t, interrupted)
	m1.Shutdown(context.Background())
	s1.Close()
}

// An evicted job's ID must never be re-issued after a restart, even when
// the evicted job held the highest ID in the store (the counter
// high-water mark record covers what the surviving records cannot prove).
func TestRestartDoesNotReuseEvictedIDs(t *testing.T) {
	ds, _ := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-hwm", alg, []int{1})
	dir := t.TempDir()

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1, RetainFinished: 1, QueueDepth: 8, Store: s1})
	spec := quickSpec()
	spec.Algorithm = "block-hwm"
	spec.Params = []int{1}
	running, err := m1.Submit(spec, ds) // job-000000001, parks the only executor
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started
	j2, err := m1.Submit(quickSpec(), ds) // job-000000002, queued
	if err != nil {
		t.Fatal(err)
	}
	j3, err := m1.Submit(quickSpec(), ds) // job-000000003, queued
	if err != nil {
		t.Fatal(err)
	}
	// Cancel in reverse order: job-000000003 finishes first and is evicted
	// (RetainFinished 1) — the highest ID leaves the store.
	if _, err := m1.Cancel(j3.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Cancel(j2.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Get(j3.ID()); err == nil {
		t.Fatal("job-000000003 was not evicted")
	}

	// Crash-restart over the same directory.
	s2 := openFileStore(t, dir)
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1, RetainFinished: 4, Store: s2})
	nj, err := m2.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if nj.ID() != "job-000000004" {
		t.Fatalf("new job minted ID %s; evicted job-000000003 must not be reused (want job-000000004)", nj.ID())
	}

	// Teardown: the gate must open before either manager can drain (m2
	// re-queued the interrupted blocking job).
	close(alg.release)
	m1.Cancel(running.ID())
	m2.Shutdown(context.Background())
	s2.Close()
	m1.Shutdown(context.Background())
	s1.Close()
}

// A corrupt record must surface as a failed job, not vanish.
func TestRestartSurfacesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s1 := openFileStore(t, dir)
	// Valid JSON, wrong shape: the store accepts it, the manager cannot
	// decode it into a job spec.
	if err := s1.Put(store.Record{ID: "job-000007", Status: "running", Spec: []byte(`123`)}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openFileStore(t, dir)
	defer s2.Close()
	m := NewManager(Config{Store: s2})
	defer m.Shutdown(context.Background())
	j, err := m.Get("job-000007")
	if err != nil {
		t.Fatalf("corrupt record dropped: %v", err)
	}
	if v := j.View(); v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("corrupt record restored as %s (%q), want failed with an error", v.Status, v.Error)
	}
	// And the failure was written back, so the next restart agrees.
	rec, ok, err := s2.Get("job-000007")
	if err != nil || !ok || rec.Status != string(StatusFailed) {
		t.Fatalf("failed state not persisted: %+v ok=%v err=%v", rec, ok, err)
	}
}

// flakyStore fails exactly one Put (the nth), letting tests exercise
// mid-batch persistence failure and the rollback that follows.
type flakyStore struct {
	store.Store
	failOn int
	puts   int
}

func (f *flakyStore) Put(rec store.Record) error {
	f.puts++
	if f.puts == f.failOn {
		return errFlaky
	}
	return f.Store.Put(rec)
}

var errFlaky = errors.New("flaky store: injected Put failure")

// A persistence failure mid-batch must roll back the already-persisted
// members: nothing resident, nothing durable, and the manager still
// usable.
func TestBatchRollbackLeavesNoTrace(t *testing.T) {
	ds, _ := testDataset(t, 30)
	fs := &flakyStore{Store: store.NewMemory(), failOn: 3} // fail the 3rd job record
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: fs})
	defer m.Shutdown(context.Background())

	items := []BatchItem{
		{Spec: quickSpec(), Dataset: ds},
		{Spec: quickSpec(), Dataset: ds},
		{Spec: quickSpec(), Dataset: ds},
	}
	if _, err := m.SubmitBatch(items); !errors.Is(err, errFlaky) {
		t.Fatalf("SubmitBatch = %v, want the injected failure", err)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("%d jobs resident after rolled-back batch", n)
	}
	if n, _ := fs.Store.Len(); n != 0 {
		t.Fatalf("%d records durable after rolled-back batch", n)
	}
	if _, err := m.GetBatch("batch-000000001"); err == nil {
		t.Fatal("rolled-back batch is visible")
	}

	// The manager still works: the queue slots were released.
	j, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("post-rollback job finished as %s", s)
	}
}

// The counter high-water-mark record must not shorten or empty listing
// pages: a page of limit n contains n jobs whenever n more jobs exist.
func TestListPageFullDespiteMetaRecord(t *testing.T) {
	ds, _ := testDataset(t, 30)
	s := store.NewMemory()
	// Seed the reserved record exactly as an eviction would.
	if err := s.Put(store.Record{ID: "_meta", Status: "meta", Spec: []byte(`{"next_id":0}`)}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s})
	defer m.Shutdown(context.Background())

	for i := 0; i < 2; i++ {
		j, err := m.Submit(quickSpec(), ds)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
	// The meta record sorts before every job ID; the first page must
	// still hold a full page of jobs.
	views, next, err := m.ListPage("", 1)
	if err != nil || len(views) != 1 || views[0].ID != "job-000000001" {
		t.Fatalf("first page = %+v (next %q, err %v), want exactly job-000000001", views, next, err)
	}
	views, _, err = m.ListPage(next, 0)
	if err != nil || len(views) != 1 || views[0].ID != "job-000000002" {
		t.Fatalf("second page = %+v (err %v), want exactly job-000000002", views, err)
	}
}

// Eviction must delete the record from the store, not only from memory.
func TestEvictionDeletesFromStore(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()
	s := openFileStore(t, dir)
	defer s.Close()
	m := NewManager(Config{MaxRunningJobs: 1, RetainFinished: 1, WorkerBudget: 2, Store: s})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	j2, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := m.Get(j1.ID()); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok, _ := s.Get(j1.ID()); ok {
		t.Fatal("evicted job still in the store")
	}
	if _, ok, _ := s.Get(j2.ID()); !ok {
		t.Fatal("retained job missing from the store")
	}
}

// A failed submission must not leave an orphaned event log in the store:
// the queued event is appended before the record Put, and the consumed
// ID is never reused, so a leak here would be permanent.
func TestFailedSubmitLeavesNoEventLog(t *testing.T) {
	ds, _ := testDataset(t, 30)
	fs := &flakyStore{Store: store.NewMemory(), failOn: 1}
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: fs})
	defer m.Shutdown(context.Background())

	if _, err := m.Submit(quickSpec(), ds); !errors.Is(err, errFlaky) {
		t.Fatalf("Submit = %v, want the injected failure", err)
	}
	if evs, err := fs.Store.EventsSince("job-000000001", 0); err != nil || len(evs) != 0 {
		t.Fatalf("failed submission left %d orphaned events (err %v)", len(evs), err)
	}

	// Same for the batch member whose own Put fails.
	fs.failOn = fs.puts + 2 // fail the 2nd member's record write
	items := []BatchItem{{Spec: quickSpec(), Dataset: ds}, {Spec: quickSpec(), Dataset: ds}}
	if _, err := m.SubmitBatch(items); !errors.Is(err, errFlaky) {
		t.Fatalf("SubmitBatch = %v, want the injected failure", err)
	}
	for _, id := range []string{"job-000000002", "job-000000003"} {
		if evs, _ := fs.Store.EventsSince(id, 0); len(evs) != 0 {
			t.Fatalf("rolled-back batch left %d orphaned events for %s", len(evs), id)
		}
	}
}
