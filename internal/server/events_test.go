package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// getSSE fetches a job's event stream, optionally resuming with a
// Last-Event-ID header, and parses it to completion (the handler ends
// the stream at the terminal event).
func getSSE(t *testing.T, ts *httptest.Server, id string, lastEventID int) []sseEvent {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	return readSSE(t, resp.Body)
}

func sameSSE(a, b sseEvent) bool {
	return a.id == b.id && a.event == b.event && a.raw == b.raw
}

// The acceptance criterion of event persistence: with a file store, the
// event stream of a finished job after a kill -9 + restart is identical
// — sequence numbers, types and payloads — to the stream served before
// the crash.
func TestSSEReplayIdenticalAcrossRestart(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})
	ts1 := httptest.NewServer(NewHandler(m1))
	defer ts1.Close()

	j, err := m1.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("job finished as %s", s)
	}
	before := getSSE(t, ts1, j.ID(), 0)
	if len(before) < 3 {
		t.Fatalf("pre-restart stream has only %d events", len(before))
	}

	// "kill -9": the first manager is abandoned without Shutdown or
	// store Close; a fresh manager opens the same directory.
	s2 := openFileStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s2})
	defer m2.Shutdown(context.Background())
	ts2 := httptest.NewServer(NewHandler(m2))
	defer ts2.Close()

	after := getSSE(t, ts2, j.ID(), 0)
	if len(after) != len(before) {
		t.Fatalf("replayed stream has %d events, pre-restart had %d:\n%+v\nvs\n%+v",
			len(after), len(before), after, before)
	}
	for i := range before {
		if !sameSSE(before[i], after[i]) {
			t.Fatalf("event %d differs across restart:\npre:  %+v\npost: %+v", i, before[i], after[i])
		}
	}

	// And Last-Event-ID resume works identically on the replayed log.
	mid := before[len(before)/2].id
	resumed := getSSE(t, ts2, j.ID(), mid)
	want := before[len(before)/2+1:]
	if len(resumed) != len(want) {
		t.Fatalf("resumed stream has %d events, want %d", len(resumed), len(want))
	}
	for i := range want {
		if !sameSSE(resumed[i], want[i]) {
			t.Fatalf("resumed event %d = %+v, want %+v", i, resumed[i], want[i])
		}
	}

	m1.Shutdown(context.Background()) // executor cleanup; s1 stays un-Closed like a killed process
}

// A reconnecting client sending Last-Event-ID receives only events with
// a later sequence number — on a finished job and on a live one.
func TestSSELastEventIDResume(t *testing.T) {
	ds, _ := testDataset(t, 30)
	ts, m := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 2})

	j, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)

	full := getSSE(t, ts, j.ID(), 0)
	if len(full) < 3 {
		t.Fatalf("only %d events", len(full))
	}
	for cut := 0; cut < len(full); cut++ {
		resumed := getSSE(t, ts, j.ID(), full[cut].id)
		if len(resumed) != len(full)-cut-1 {
			t.Fatalf("resume after seq %d: %d events, want %d", full[cut].id, len(resumed), len(full)-cut-1)
		}
		for i, ev := range resumed {
			if !sameSSE(ev, full[cut+1+i]) {
				t.Fatalf("resume after seq %d, event %d = %+v, want %+v", full[cut].id, i, ev, full[cut+1+i])
			}
		}
	}
	// A Last-Event-ID the job never issued (past its final seq) is
	// unknown: the full history replays — it must never suppress the
	// stream below a bogus cutoff.
	if resumed := getSSE(t, ts, j.ID(), full[len(full)-1].id+10); len(resumed) != len(full) {
		t.Fatalf("resume past the end replayed %d events, want the full %d", len(resumed), len(full))
	}
	// A malformed Last-Event-ID is ignored: the full history replays.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+j.ID()+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(got) != len(full) {
		t.Fatalf("malformed Last-Event-ID: %d events, want the full %d", len(got), len(full))
	}
}

// Resuming against a RUNNING job must not re-receive the history before
// Last-Event-ID.
func TestSSELastEventIDResumeLive(t *testing.T) {
	ds, _ := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-sse-resume", alg, []int{1})
	ts, m := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 1})

	spec := quickSpec()
	spec.Algorithm = "block-sse-resume"
	spec.Params = []int{1}
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started // running: seq 1 (queued) and seq 2 (running) exist

	// Reconnect claiming we already saw seq 2, then let the job finish.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+j.ID()+"/events", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(alg.release)

	events := readSSE(t, resp.Body) // ends at the terminal event
	if len(events) == 0 {
		t.Fatal("no events after resume")
	}
	prev := 2
	for _, ev := range events {
		if ev.id <= prev {
			t.Fatalf("resumed stream replayed seq %d (after %d): %+v", ev.id, prev, events)
		}
		prev = ev.id
	}
	if last := events[len(events)-1]; last.event != "status" || last.data.Status != StatusDone {
		t.Fatalf("last resumed event = %+v, want done status", last)
	}
}

// A job re-queued by a restart appends to its existing event log: the
// post-recovery stream starts with the pre-crash events and continues
// with fresh sequence numbers, never restarting from 1.
func TestRestartRequeueContinuesEventSeq(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()
	alg := newGatedAlg()
	RegisterAlgorithm("gated-sse-requeue", alg, []int{3, 6})

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})

	spec := Spec{Algorithm: "gated-sse-requeue", Params: []int{3, 6}, NFolds: 2, Seed: 7, LabelFraction: 0.5}
	j, err := m1.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started // running; queued(1) + running(2) are on disk

	// "kill -9", restart over the same directory.
	s2 := openFileStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s2})
	ts2 := httptest.NewServer(NewHandler(m2))
	defer ts2.Close()

	rj, err := m2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, rj); s != StatusDone {
		t.Fatalf("re-queued job finished as %s (%s)", s, rj.View().Error)
	}
	events := getSSE(t, ts2, j.ID(), 0)
	if len(events) < 5 {
		t.Fatalf("only %d events after requeue", len(events))
	}
	if events[0].id != 1 || events[0].data.Status != StatusQueued {
		t.Fatalf("stream does not start with the original queued event: %+v", events[0])
	}
	if events[1].id != 2 || events[1].data.Status != StatusRunning {
		t.Fatalf("second event is not the pre-crash running event: %+v", events[1])
	}
	queued, prev := 0, 0
	for _, ev := range events {
		if ev.id <= prev {
			t.Fatalf("sequence restarted or repeated: %d after %d in %+v", ev.id, prev, events)
		}
		prev = ev.id
		if ev.event == "status" && ev.data.Status == StatusQueued {
			queued++
		}
	}
	if queued != 2 {
		t.Fatalf("saw %d queued events, want 2 (original + re-queue)", queued)
	}
	if last := events[len(events)-1]; last.data.Status != StatusDone {
		t.Fatalf("stream does not end terminal: %+v", last)
	}

	// Teardown: open the gate so the abandoned first manager can drain.
	m2.Shutdown(context.Background())
	close(alg.release)
	waitTerminal(t, j)
	m1.Shutdown(context.Background())
}

// testEventLog is an in-memory jobEventLog for unit tests that build
// jobs without a manager.
type testEventLog struct {
	mu  sync.Mutex
	evs map[string][]Event
}

func newTestEventLog() *testEventLog { return &testEventLog{evs: map[string][]Event{}} }

func (l *testEventLog) appendEvents(jobID string, evs []Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs[jobID] = append(l.evs[jobID], evs...)
}

func (l *testEventLog) eventsSince(jobID string, afterSeq int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.evs[jobID] {
		if ev.Seq > afterSeq {
			out = append(out, ev)
		}
	}
	return out
}

// Consecutive progress events are coalesced on large grids — the event
// log stays near maxProgressEvents entries however many cells the grid
// has — while the counters, the final progress event and full replay
// through the log all stay exact.
func TestProgressCoalescing(t *testing.T) {
	ds, _ := testDataset(t, 30)
	log := newTestEventLog()
	j := newJob("job-000000001", "", quickSpec(), ds, nil, context.Background(), log, nil, 0, false)
	defer j.cancel()
	if !j.claimRun() {
		t.Fatal("claimRun failed")
	}

	const total = 10000
	for done := 1; done <= total; done++ {
		j.onProgress(done, total)
	}

	history := j.EventsSince(0)
	progress := 0
	lastDone := 0
	for _, ev := range history {
		if ev.Type == "progress" {
			progress++
			if ev.Done <= lastDone {
				t.Fatalf("progress not monotone: %d after %d", ev.Done, lastDone)
			}
			lastDone = ev.Done
		}
	}
	if lastDone != total {
		t.Fatalf("final published progress = %d, want %d", lastDone, total)
	}
	// Tight loop: only the delta rule fires (plus at most a few interval
	// publishes). Far fewer than one event per cell, and within a small
	// factor of the target.
	if progress > maxProgressEvents+16 {
		t.Fatalf("%d progress events published for %d cells, want ≈%d", progress, total, maxProgressEvents)
	}
	if progress < maxProgressEvents/2 {
		t.Fatalf("only %d progress events for %d cells — coalescing dropped too much", progress, total)
	}
	if v := j.View(); v.Done != total || v.Total != total {
		t.Fatalf("view counters = %d/%d, want exact", v.Done, v.Total)
	}

	// The in-memory tail is bounded; the full history still replays
	// through the log, and a tail-covered resume never touches it.
	j.mu.Lock()
	tailLen := j.tail.n
	j.mu.Unlock()
	if tailLen > eventTailCap {
		t.Fatalf("tail holds %d events, cap %d", tailLen, eventTailCap)
	}
	if got := len(history); got != progress+2 { // queued + running + progress
		t.Fatalf("full replay = %d events, want %d", got, progress+2)
	}
	seq := history[len(history)-1].Seq
	if got := j.EventsSince(seq - 5); len(got) != 5 {
		t.Fatalf("tail resume = %d events, want 5", len(got))
	}
}

// The small-grid behavior is unchanged by coalescing: every cell
// publishes (the stride is 1) so existing consumers see full granularity.
func TestProgressSmallGridUncoalesced(t *testing.T) {
	ds, _ := testDataset(t, 30)
	log := newTestEventLog()
	j := newJob("job-000000001", "", quickSpec(), ds, nil, context.Background(), log, nil, 0, false)
	defer j.cancel()
	if !j.claimRun() {
		t.Fatal("claimRun failed")
	}
	for done := 1; done <= 20; done++ {
		j.onProgress(done, 20)
	}
	progress := 0
	for _, ev := range j.EventsSince(0) {
		if ev.Type == "progress" {
			progress++
		}
	}
	if progress != 20 {
		t.Fatalf("%d progress events for a 20-cell grid, want all 20", progress)
	}
}

func tailSeqs(evs []Event) []int {
	out := make([]int, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}

// eventTail ring semantics: growth, wraparound, and the authoritative
// cutoff that sends older scans to the durable log.
func TestEventTailRing(t *testing.T) {
	var tail eventTail
	if _, ok := tail.since(0); ok {
		t.Fatal("empty tail claimed authority")
	}
	for seq := 1; seq <= 3; seq++ {
		tail.push(Event{Seq: seq})
	}
	if evs, ok := tail.since(0); !ok || len(evs) != 3 {
		t.Fatalf("small tail since(0) = %v, %v", tailSeqs(evs), ok)
	}
	if evs, ok := tail.since(2); !ok || len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("small tail since(2) = %v, %v", tailSeqs(evs), ok)
	}

	for seq := 4; seq <= 300; seq++ { // wrap: oldest resident is 300-cap+1 = 45
		tail.push(Event{Seq: seq})
	}
	oldest := 300 - eventTailCap + 1
	if _, ok := tail.since(oldest - 2); ok {
		t.Fatalf("tail answered a scan reaching before its oldest entry (%d)", oldest)
	}
	evs, ok := tail.since(oldest - 1)
	if !ok || len(evs) != eventTailCap || evs[0].Seq != oldest || evs[len(evs)-1].Seq != 300 {
		t.Fatalf("tail since(%d): ok=%v len=%d", oldest-1, ok, len(evs))
	}
	if evs, ok := tail.since(299); !ok || len(evs) != 1 || evs[0].Seq != 300 {
		t.Fatalf("tail since(299) = %v, %v", tailSeqs(evs), ok)
	}
	if evs, ok := tail.since(300); !ok || len(evs) != 0 {
		t.Fatalf("tail since(300) = %v, %v", tailSeqs(evs), ok)
	}
}

// TestSSEConcurrentSubscribers hammers concurrent publishes, durable
// appends, subscriptions and resumes; meaningful under -race. Every
// stream — whatever its entry point — must be strictly increasing in seq
// and end terminal.
func TestSSEConcurrentSubscribers(t *testing.T) {
	ds, _ := testDataset(t, 24)
	ts, m := newTestServer(t, Config{MaxRunningJobs: 2, WorkerBudget: 4, QueueDepth: 32, RetainFinished: 64})

	const jobs = 4
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		spec := quickSpec()
		spec.Seed = int64(g + 1)
		j, err := m.Submit(spec, ds)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func(id string, after int) {
				defer wg.Done()
				events := getSSE(t, ts, id, after)
				prev := after
				for _, ev := range events {
					if ev.id <= prev {
						t.Errorf("job %s: seq %d after %d", id, ev.id, prev)
						return
					}
					prev = ev.id
				}
				// An empty stream is legal when the job finished at or
				// before the resume point (e.g. cancelled at seq 2,
				// resumed with after=2); otherwise it must end terminal.
				if len(events) > 0 && events[len(events)-1].event != "status" {
					t.Errorf("job %s: stream (after=%d) did not end with a status event", id, after)
				}
			}(j.ID(), r) // after = 0, 1, 2
		}
		if g%2 == 1 {
			go m.Cancel(j.ID())
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("subscribers never finished")
	}
}

// Jobs resurrected from a store written before event persistence existed
// (no event log) still stream a condensed lifecycle history.
func TestLegacyRecordCondensedHistory(t *testing.T) {
	ds, _ := testDataset(t, 30)
	dir := t.TempDir()

	s1 := openFileStore(t, dir)
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})
	j, err := m1.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip the event log from the snapshot, simulating a pre-event
	// store directory.
	s2 := openFileStore(t, dir)
	if err := s2.Delete(j.ID()); err != nil { // drops record + events
		t.Fatal(err)
	}
	rec := j.record()
	if err := s2.Put(rec); err != nil { // record back, log gone
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3 := openFileStore(t, dir)
	defer s3.Close()
	m3 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s3})
	defer m3.Shutdown(context.Background())
	ts := httptest.NewServer(NewHandler(m3))
	defer ts.Close()

	events := getSSE(t, ts, j.ID(), 0)
	if len(events) != 2 {
		t.Fatalf("condensed history = %+v, want queued + terminal", events)
	}
	if events[0].data.Status != StatusQueued || events[1].data.Status != StatusDone {
		t.Fatalf("condensed history = %+v", events)
	}
}

// A job evicted mid-stream loses its store log; replays that reach past
// the tail must then serve the partial tail — newest events, terminal
// status included — rather than an empty stream.
func TestEvictedJobServesTailWhenLogGone(t *testing.T) {
	ds, _ := testDataset(t, 30)
	log := newTestEventLog()
	j := newJob("job-000000001", "", quickSpec(), ds, nil, context.Background(), log, nil, 0, false)
	defer j.cancel()
	if !j.claimRun() {
		t.Fatal("claimRun failed")
	}
	const total = 2000
	for done := 1; done <= total; done++ {
		j.onProgress(done, total)
	}
	if j.EventsSince(0)[0].Seq != 1 {
		t.Fatal("full history should come from the log while it exists")
	}

	// Eviction: the store drops the job's event log.
	log.mu.Lock()
	log.evs = map[string][]Event{}
	log.mu.Unlock()

	history := j.EventsSince(0)
	if len(history) == 0 {
		t.Fatal("empty stream after the log vanished; want the tail")
	}
	if len(history) > eventTailCap {
		t.Fatalf("tail fallback returned %d events, cap %d", len(history), eventTailCap)
	}
	j.mu.Lock()
	lastSeq := j.seq
	j.mu.Unlock()
	if history[len(history)-1].Seq != lastSeq {
		t.Fatalf("tail fallback missing the newest event: last %d, want %d", history[len(history)-1].Seq, lastSeq)
	}
}

// A restart resuming a job from its durable log must leave a sequence
// gap before publishing: a crash may have lost an fsync-coalesced
// suffix that live subscribers already received, and reusing those
// numbers for different events would let a Last-Event-ID resume
// silently skip the replacements.
func TestRequeueSeqGapAvoidsLostSuffixCollision(t *testing.T) {
	ds, _ := testDataset(t, 30)
	log := newTestEventLog()
	prior := []Event{
		{Seq: 1, Type: "status", Status: StatusQueued},
		{Seq: 2, Type: "status", Status: StatusRunning},
	}
	j := newJob("job-000000001", "", quickSpec(), ds, nil, context.Background(), log, prior, 0, true)
	defer j.cancel()
	evs := j.EventsSince(2)
	if len(evs) != 1 {
		t.Fatalf("replay after seed = %+v, want only the fresh queued event", evs)
	}
	if want := 2 + seqRequeueGap + 1; evs[0].Seq != want {
		t.Fatalf("post-requeue queued event has seq %d, want %d (gap %d past the durable log)",
			evs[0].Seq, want, seqRequeueGap)
	}
	// Any possibly-lost pre-crash seq (durable last .. last+publishable)
	// resumes without skipping the fresh events.
	for _, after := range []int{2, 5, 2 + 2*maxProgressEvents} {
		if got := j.EventsSince(after); len(got) != 1 || got[0].Seq != 2+seqRequeueGap+1 {
			t.Fatalf("resume after %d = %+v; the fresh queued event must not be skipped", after, got)
		}
	}
}

// When the durable log lags the tail (append failures are swallowed; a
// disk-full store stalls the log while the tail keeps publishing), a
// deep catch-up must graft the tail's newer events onto the stale log
// read so the newest events — the terminal status above all — still
// reach the subscriber.
func TestCatchUpGraftsTailOntoStaleLog(t *testing.T) {
	ds, _ := testDataset(t, 30)
	log := newTestEventLog()
	const id = "job-000000001"
	// 300 prior events: more than the 256-entry tail, so EventsSince(0)
	// must take the log path.
	var prior []Event
	for seq := 1; seq <= 300; seq++ {
		prior = append(prior, Event{Seq: seq, Type: "progress", Done: seq, Total: 300})
	}
	// The durable log holds only a stale prefix — appends "failed" for
	// everything after seq 200.
	log.mu.Lock()
	log.evs[id] = append([]Event(nil), prior[:200]...)
	log.mu.Unlock()

	j := newJob(id, "", quickSpec(), ds, nil, context.Background(), log, prior, 0, true)
	defer j.cancel()
	// Drop the fresh queued event from the log too: it is the newest
	// event, exactly what the graft must recover from the tail.
	log.mu.Lock()
	log.evs[id] = log.evs[id][:200]
	log.mu.Unlock()

	history := j.EventsSince(0)
	if len(history) != 301 { // seqs 1..300 plus the fresh queued event
		t.Fatalf("grafted history has %d events, want 301", len(history))
	}
	for i := 1; i < len(history); i++ {
		if history[i].Seq <= history[i-1].Seq {
			t.Fatalf("grafted history not monotone: %d after %d", history[i].Seq, history[i-1].Seq)
		}
	}
	last := history[len(history)-1]
	if want := 300 + seqRequeueGap + 1; last.Seq != want || last.Status != StatusQueued {
		t.Fatalf("newest event lost by the stale-log catch-up: last = %+v, want queued seq %d", last, want)
	}
}
