package server

import (
	"context"
	"net/http"
	"strings"
	"testing"

	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/stats"
)

// A JSON submission with a field the schema does not define must be
// rejected as invalid_request naming the field — never silently ignored (a
// typoed option would otherwise run the job with the default and look
// successful).
func TestUnknownJSONFieldRejected(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	_, csvText := testDataset(t, 12)

	body := `{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "seeed": 7}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	apiErr := decodeAPIError(t, resp)
	if apiErr.Code != "invalid_request" {
		t.Errorf("code %q, want invalid_request", apiErr.Code)
	}
	if !strings.Contains(apiErr.Message, "seeed") {
		t.Errorf("error message %q does not name the offending field", apiErr.Message)
	}

	// Batch submissions go through the same strict decoding.
	batch := `{"datasets": [{"csv": ` + jsonString(csvText) + `, "has_label": true}], "label_fraction": 0.5, "algoritm": "fosc"}`
	resp, err = http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch status %d, want 400", resp.StatusCode)
	}
	apiErr = decodeAPIError(t, resp)
	if apiErr.Code != "invalid_request" || !strings.Contains(apiErr.Message, "algoritm") {
		t.Errorf("batch error (%q, %q) does not name the offending field", apiErr.Code, apiErr.Message)
	}
}

// jsonString quotes s as a JSON string literal.
func jsonString(s string) string {
	out := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n").Replace(s)
	return `"` + out + `"`
}

// A cross-method job ("algorithms") must run the whole grid as one
// selection and report both the winner and every candidate — identical to
// what the library's unified Select produces for the same spec.
func TestCrossMethodJob(t *testing.T) {
	ds, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{})

	body := `{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5,
		"algorithms": ["fosc", "mpck"], "params": [3, 4], "folds": 3, "seed": 11}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %+v", resp.StatusCode, decodeAPIError(t, resp))
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if len(job.Algorithms) != 2 || job.Algorithm != "" {
		t.Fatalf("job view algorithms = %v / %q", job.Algorithms, job.Algorithm)
	}

	final := pollJob(t, ts, job.ID, StatusDone)
	if final.Result == nil {
		t.Fatal("done job has no result")
	}
	if len(final.Result.Candidates) != 2 {
		t.Fatalf("result has %d candidates, want 2", len(final.Result.Candidates))
	}

	// Replay through the library's unified core.
	r := stats.NewRand(11)
	idx := ds.SampleLabels(r, 0.5)
	lres, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset: ds,
		Grid: corecvcp.Grid{
			{Algorithm: corecvcp.FOSCOpticsDend{}, Params: []int{3, 4}},
			{Algorithm: corecvcp.MPCKMeans{}, Params: []int{3, 4}},
		},
		Supervision: corecvcp.Labels(idx),
		Options:     corecvcp.Options{NFolds: 3, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Result.Algorithm != lres.Winner.Algorithm ||
		final.Result.BestParam != lres.Winner.Best.Param ||
		final.Result.BestScore != lres.Winner.Best.Score {
		t.Fatalf("server winner (%s, %d, %v), library winner (%s, %d, %v)",
			final.Result.Algorithm, final.Result.BestParam, final.Result.BestScore,
			lres.Winner.Algorithm, lres.Winner.Best.Param, lres.Winner.Best.Score)
	}
	for ci, cand := range final.Result.Candidates {
		want := lres.PerCandidate[ci]
		if cand.Algorithm != want.Algorithm || cand.BestParam != want.Best.Param || cand.BestScore != want.Best.Score {
			t.Errorf("candidate %d: server (%s, %d, %v), library (%s, %d, %v)",
				ci, cand.Algorithm, cand.BestParam, cand.BestScore,
				want.Algorithm, want.Best.Param, want.Best.Score)
		}
	}
	for i, l := range lres.Winner.FinalLabels {
		if final.Result.FinalLabels[i] != l {
			t.Fatalf("final label %d: server %d, library %d", i, final.Result.FinalLabels[i], l)
		}
	}

	// A one-entry "algorithms" list is still a cross-method job: the
	// response shape follows the submission shape, so the candidates
	// array must be present even with a single candidate.
	one := `{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5,
		"algorithms": ["fosc"], "params": [3, 4], "folds": 3, "seed": 11}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	oneJob := decodeJob(t, resp.Body)
	resp.Body.Close()
	oneDone := pollJob(t, ts, oneJob.ID, StatusDone)
	if len(oneDone.Result.Candidates) != 1 {
		t.Fatalf("single-entry algorithms job has %d candidates, want 1", len(oneDone.Result.Candidates))
	}
}

// The scorer option must route the job through the requested strategy; the
// result must match the library run of the same Spec.
func TestScorerOptions(t *testing.T) {
	ds, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{})

	submit := func(body string) JobView {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d: %+v", resp.StatusCode, decodeAPIError(t, resp))
		}
		job := decodeJob(t, resp.Body)
		resp.Body.Close()
		return job
	}

	boot := submit(`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5,
		"algorithm": "mpck", "params": [2, 3], "scorer": "bootstrap", "bootstrap_rounds": 4, "seed": 11}`)
	sil := submit(`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5,
		"algorithm": "mpck", "params": [2, 3], "scorer": "silhouette", "seed": 11}`)

	bootDone := pollJob(t, ts, boot.ID, StatusDone)
	silDone := pollJob(t, ts, sil.ID, StatusDone)

	r := stats.NewRand(11)
	idx := ds.SampleLabels(r, 0.5)
	bootWant, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        corecvcp.Grid{{Algorithm: corecvcp.MPCKMeans{}, Params: []int{2, 3}}},
		Supervision: corecvcp.Labels(idx),
		Scorer:      corecvcp.Bootstrap{Rounds: 4},
		Options:     corecvcp.Options{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bootDone.Result.BestParam != bootWant.Winner.Best.Param || bootDone.Result.BestScore != bootWant.Winner.Best.Score {
		t.Errorf("bootstrap job (%d, %v), library (%d, %v)",
			bootDone.Result.BestParam, bootDone.Result.BestScore,
			bootWant.Winner.Best.Param, bootWant.Winner.Best.Score)
	}
	if got := len(bootDone.Result.Scores[0].FoldScores); got != 4 {
		t.Errorf("bootstrap job ran %d rounds, want 4", got)
	}
	if !strings.HasSuffix(silDone.Result.Algorithm, "+silhouette") {
		t.Errorf("silhouette job result algorithm %q", silDone.Result.Algorithm)
	}
}

// Invalid combinations of the new options must be rejected at submission.
func TestSpecOptionValidation(t *testing.T) {
	_, csvText := testDataset(t, 12)
	ts, _ := newTestServer(t, Config{})

	cases := []struct {
		name, body, wantInMsg string
	}{
		{"unknown scorer",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "scorer": "magic"}`,
			"unknown scorer"},
		{"bootstrap on constraints",
			`{"csv": ` + jsonString(csvText) + `, "scorer": "bootstrap", "constraints": [{"a":0,"b":1,"link":"ml"}]}`,
			"label_fraction"},
		{"rounds without bootstrap",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "bootstrap_rounds": 5}`,
			"bootstrap_rounds"},
		{"algorithm and algorithms",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "algorithm": "fosc", "algorithms": ["mpck"]}`,
			"mutually exclusive"},
		{"unknown algorithm in list",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "algorithms": ["fosc", "nope"]}`,
			"unknown algorithm"},
		{"duplicate algorithms",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "algorithms": ["fosc", "fosc"]}`,
			"duplicate"},
		{"grid columns over limit across algorithms",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "algorithms": ["fosc", "mpck"], "param_min": 1, "param_max": 300}`,
			"grid columns"},
		{"bootstrap rounds over limit",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "scorer": "bootstrap", "bootstrap_rounds": 100000}`,
			"bootstrap rounds"},
		{"folds with a non-cv scorer",
			`{"csv": ` + jsonString(csvText) + `, "has_label": true, "label_fraction": 0.5, "scorer": "silhouette", "folds": 20}`,
			"cross-validation scorer"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		apiErr := decodeAPIError(t, resp)
		if apiErr.Code != "invalid_request" || !strings.Contains(apiErr.Message, c.wantInMsg) {
			t.Errorf("%s: got (%q, %q), want invalid_request mentioning %q", c.name, apiErr.Code, apiErr.Message, c.wantInMsg)
		}
	}
}
