package server

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fqJobs builds n distinct job pointers for queue-only tests (the fair
// queue never looks inside them).
func fqJobs(n int) []*Job {
	out := make([]*Job, n)
	for i := range out {
		out[i] = &Job{id: fmt.Sprintf("fq-%03d", i)}
	}
	return out
}

// TestFairQueueWeightRatio: under contention a weight-3 tenant dequeues
// three entries for every one of a weight-1 tenant.
func TestFairQueueWeightRatio(t *testing.T) {
	q := newFairQueue()
	heavy, light := fqJobs(12), fqJobs(4)
	owner := map[*Job]string{}
	for _, j := range heavy {
		owner[j] = "heavy"
		q.push("heavy", 3, j)
	}
	for _, j := range light {
		owner[j] = "light"
		q.push("light", 1, j)
	}
	if q.len() != 16 {
		t.Fatalf("len = %d, want 16", q.len())
	}
	// Every window of 4 pops must hold exactly 3 heavy and 1 light.
	for w := 0; w < 4; w++ {
		counts := map[string]int{}
		for i := 0; i < 4; i++ {
			j := q.pop()
			if j == nil {
				t.Fatalf("queue empty at pop %d", w*4+i)
			}
			counts[owner[j]]++
		}
		if counts["heavy"] != 3 || counts["light"] != 1 {
			t.Fatalf("window %d popped %v, want 3 heavy + 1 light", w, counts)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestFairQueuePerTenantFIFO: a tenant's own submissions dequeue in
// submission order regardless of interleaving with other tenants.
func TestFairQueuePerTenantFIFO(t *testing.T) {
	q := newFairQueue()
	a, b := fqJobs(5), fqJobs(5)
	for i := 0; i < 5; i++ {
		q.push("a", 2, a[i])
		q.push("b", 1, b[i])
	}
	ai, bi := 0, 0
	for q.len() > 0 {
		j := q.pop()
		switch {
		case ai < 5 && j == a[ai]:
			ai++
		case bi < 5 && j == b[bi]:
			bi++
		default:
			t.Fatalf("pop returned out-of-order job %s (a at %d, b at %d)", j.id, ai, bi)
		}
	}
}

// TestFairQueueBacklogCannotStarve: a tenant arriving behind another
// tenant's deep backlog is served within two pops, not after the backlog.
func TestFairQueueBacklogCannotStarve(t *testing.T) {
	q := newFairQueue()
	backlog := fqJobs(100)
	for _, j := range backlog {
		q.push("busy", 1, j)
	}
	late := &Job{id: "late"}
	q.push("patient", 1, late)
	for i := 0; i < 2; i++ {
		if q.pop() == late {
			return
		}
	}
	t.Fatal("the late tenant's job was not among the first two pops over a 100-job backlog")
}

// TestFairQueueRemove: cancelling a queued entry updates the counts and
// never resurfaces the job.
func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue()
	jobs := fqJobs(3)
	for _, j := range jobs {
		q.push("t", 1, j)
	}
	if !q.remove(jobs[1]) {
		t.Fatal("remove of a queued job returned false")
	}
	if q.remove(jobs[1]) {
		t.Fatal("second remove of the same job returned true")
	}
	if q.len() != 2 || q.queued("t") != 2 {
		t.Fatalf("len %d, queued %d; want 2, 2", q.len(), q.queued("t"))
	}
	if j := q.pop(); j != jobs[0] {
		t.Fatalf("first pop = %v, want jobs[0]", j)
	}
	if j := q.pop(); j != jobs[2] {
		t.Fatalf("second pop = %v, want jobs[2]", j)
	}
}

// TestFairnessSingleJobBeatsBacklog is the acceptance scenario: with one
// executor and two equal-weight tenants, a tenant submitting one job
// after another tenant queued 50 must have it complete while the bulk of
// the backlog is still waiting.
func TestFairnessSingleJobBeatsBacklog(t *testing.T) {
	ds, _ := testDataset(t, 30)
	RegisterAlgorithm("fair-sleep", sleepAlg{d: 10 * time.Millisecond}, []int{1})
	m := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 1, QueueDepth: 64,
		Tenants: []Tenant{
			{Key: "ka", Name: "alice", Weight: 1},
			{Key: "kb", Name: "bob", Weight: 1},
		},
	})
	defer m.Shutdown(context.Background())

	spec := quickSpec()
	spec.Algorithm = "fair-sleep"
	spec.Params = []int{1}

	aliceSpec := spec
	aliceSpec.Tenant = "alice"
	for i := 0; i < 50; i++ {
		if _, err := m.Submit(aliceSpec, ds); err != nil {
			t.Fatalf("alice job %d: %v", i, err)
		}
	}
	bobSpec := spec
	bobSpec.Tenant = "bob"
	bob, err := m.Submit(bobSpec, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, bob); s != StatusDone {
		t.Fatalf("bob's job finished as %s (%s)", s, bob.View().Error)
	}

	queued := 0
	for _, j := range m.List() {
		v := j.View()
		if v.Tenant == "alice" && v.Status == StatusQueued {
			queued++
		}
	}
	if queued < 45 {
		t.Fatalf("only %d alice jobs still queued when bob finished; fair queueing should have left >= 45", queued)
	}
}
