package server

import (
	"context"
	"testing"
	"time"
)

// TestShardEventOrderingUnderConcurrentWorkers runs a distributed job
// against four concurrent workers and checks the invariants of the shard
// event stream a client replays over SSE:
//
//   - per shard, the status sequence is monotone: any number of "leased"
//     transitions (reclaims repeat the state with a new owner) followed by
//     exactly one terminal "done", and nothing after it;
//   - every event attributes the transition to a worker from the known
//     worker set;
//   - the reported shard count is the same in every event, and every
//     shard index lies within it;
//   - sequence numbers are strictly increasing, so the SSE replay
//     delivers the transitions in exactly this order.
func TestShardEventOrderingUnderConcurrentWorkers(t *testing.T) {
	ds, _ := testDataset(t, 40)
	dir := t.TempDir()
	cs := openSharedStore(t, dir)
	defer cs.Close()
	m := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 2, Store: cs,
		Role: RoleCoordinator, ShardCells: 2, Poll: 3 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())

	workerIDs := map[string]bool{"w0": true, "w1": true, "w2": true, "w3": true}
	for id := range workerIDs {
		defer startServerWorker(t, dir, id)()
	}

	j, err := m.Submit(distTestSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("distributed job finished as %s (%s)", s, j.View().Error)
	}

	evs := j.EventsSince(0)
	lastSeq := 0
	shards := 0
	terminal := map[int]bool{}
	leasedSeen := map[int]int{}
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("event sequence not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Type != "shard" {
			continue
		}
		if shards == 0 {
			shards = ev.Shards
		}
		if ev.Shards != shards {
			t.Errorf("shard event reports %d shards, earlier events said %d", ev.Shards, shards)
		}
		if ev.Shard < 0 || ev.Shard >= shards {
			t.Errorf("shard index %d outside [0, %d)", ev.Shard, shards)
		}
		if !workerIDs[ev.Worker] {
			t.Errorf("shard event attributed to unknown worker %q: %+v", ev.Worker, ev)
		}
		switch ev.ShardStatus {
		case "leased":
			if terminal[ev.Shard] {
				t.Errorf("shard %d leased after its terminal event", ev.Shard)
			}
			leasedSeen[ev.Shard]++
		case "done":
			if terminal[ev.Shard] {
				t.Errorf("shard %d reported done twice", ev.Shard)
			}
			terminal[ev.Shard] = true
		case "failed":
			t.Errorf("shard %d failed: %+v", ev.Shard, ev)
		default:
			t.Errorf("unknown shard status %q", ev.ShardStatus)
		}
	}
	if shards == 0 {
		t.Fatal("no shard events in the job's stream")
	}
	if len(terminal) != shards {
		t.Fatalf("%d of %d shards reported done", len(terminal), shards)
	}
}
