package server

// fairQueue is the manager's pending-job queue: weighted fair queueing
// (virtual-finish-time WFQ) over per-tenant FIFOs, replacing the single
// global FIFO. Each tenant's submissions stay FIFO among themselves, but
// the queue head — what the next free executor runs — is the entry with
// the smallest virtual finish time across tenants, so a tenant that
// queued 100 jobs cannot starve a tenant that queued one: their heads
// alternate in proportion to their weights.
//
// The bookkeeping is the classic start-time fair queueing recurrence.
// The queue keeps a virtual clock v that advances to the popped entry's
// finish time; an arriving job of a tenant with weight w starts at
// max(v, tenant's last finish) and finishes 1/w later. A weight-3
// tenant's entries therefore pack three finish times into the virtual
// span a weight-1 tenant's single entry occupies, yielding a 3:1
// dequeue ratio under contention, while an idle tenant's first arrival
// starts at the current clock — it gets its fair share immediately but
// earns no credit for having been idle.
//
// All methods require the manager's mutex; the type adds no locking of
// its own.
type fairQueue struct {
	vtime   float64
	size    int
	tenants map[string]*tenantQueue
}

// tenantQueue is one tenant's FIFO plus its WFQ state. Entries are kept
// resident once a tenant has queued (the tenant set is small and fixed
// by configuration), preserving lastVFinish across bursts.
type tenantQueue struct {
	name        string
	lastVFinish float64
	entries     []fqEntry
}

type fqEntry struct {
	job     *Job
	vfinish float64
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: map[string]*tenantQueue{}}
}

// push appends j to its tenant's FIFO with weight w (values < 1 are
// treated as 1).
func (q *fairQueue) push(tenant string, w int, j *Job) {
	if w < 1 {
		w = 1
	}
	tq := q.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{name: tenant}
		q.tenants[tenant] = tq
	}
	vstart := q.vtime
	if tq.lastVFinish > vstart {
		vstart = tq.lastVFinish
	}
	tq.lastVFinish = vstart + 1/float64(w)
	tq.entries = append(tq.entries, fqEntry{job: j, vfinish: tq.lastVFinish})
	q.size++
}

// pop removes and returns the entry with the smallest virtual finish
// time (ties broken by tenant name, for determinism), or nil when the
// queue is empty.
func (q *fairQueue) pop() *Job {
	var best *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.entries) == 0 {
			continue
		}
		if best == nil {
			best = tq
			continue
		}
		h, b := tq.entries[0].vfinish, best.entries[0].vfinish
		if h < b || (h == b && tq.name < best.name) {
			best = tq
		}
	}
	if best == nil {
		return nil
	}
	e := best.entries[0]
	best.entries = best.entries[1:]
	q.size--
	if e.vfinish > q.vtime {
		q.vtime = e.vfinish
	}
	return e.job
}

// remove pulls a specific job out of the queue (a queued-job cancel)
// and reports whether it was present. The tenant's later entries keep
// their virtual finish times: the cancelled slot's share is simply
// forfeited, which can never hurt another tenant.
func (q *fairQueue) remove(j *Job) bool {
	for _, tq := range q.tenants {
		for i, e := range tq.entries {
			if e.job == j {
				tq.entries = append(tq.entries[:i], tq.entries[i+1:]...)
				q.size--
				return true
			}
		}
	}
	return false
}

// len returns the total queued jobs across tenants.
func (q *fairQueue) len() int { return q.size }

// queued returns how many jobs the tenant has waiting.
func (q *fairQueue) queued(tenant string) int {
	if tq := q.tenants[tenant]; tq != nil {
		return len(tq.entries)
	}
	return 0
}
