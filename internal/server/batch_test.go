package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func decodeBatch(t *testing.T, resp *http.Response) BatchView {
	t.Helper()
	defer resp.Body.Close()
	var v BatchView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollBatch(t *testing.T, ts *httptest.Server, id string) BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/batches/" + id)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeBatch(t, resp)
		if v.Done {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("batch %s never finished", id)
	return BatchView{}
}

// A 3-dataset batch must return exactly the per-dataset selections that
// three individual submissions with the same options and seed return.
func TestBatchMatchesIndividualSubmissions(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 2, WorkerBudget: 4, QueueDepth: 16})

	var csvs []string
	for _, n := range []int{24, 30, 36} {
		_, csvText := testDataset(t, n)
		csvs = append(csvs, csvText)
	}
	datasets := make([]map[string]any, len(csvs))
	for i, c := range csvs {
		datasets[i] = map[string]any{"name": fmt.Sprintf("ds-%d", i), "csv": c, "has_label": true}
	}
	body, _ := json.Marshal(map[string]any{
		"datasets": datasets, "algorithm": "fosc", "params": []int{3, 6},
		"folds": 2, "seed": 5, "label_fraction": 0.5,
	})
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/batches/") {
		t.Fatalf("batch Location %q", loc)
	}
	bv := decodeBatch(t, resp)
	if bv.Total != 3 || len(bv.Jobs) != 3 {
		t.Fatalf("fresh batch view: %+v", bv)
	}

	final := pollBatch(t, ts, bv.ID)
	if final.Counts[StatusDone] != 3 {
		t.Fatalf("batch counts: %+v", final.Counts)
	}
	byName := map[string]JobView{}
	for _, jv := range final.Jobs {
		if jv.Batch != bv.ID {
			t.Fatalf("batch member %s reports batch %q", jv.ID, jv.Batch)
		}
		byName[jv.Dataset] = jv
	}

	// The same three datasets as individual jobs, same options and seed.
	for i, c := range csvs {
		url := ts.URL + "/v1/jobs?algorithm=fosc&params=3,6&folds=2&seed=5&label_fraction=0.5&has_label=true&name=solo-" + fmt.Sprint(i)
		resp, err := http.Post(url, "text/csv", strings.NewReader(c))
		if err != nil {
			t.Fatal(err)
		}
		jv := decodeJob(t, resp.Body)
		resp.Body.Close()
		solo := pollJob(t, ts, jv.ID, StatusDone)
		batched := byName[fmt.Sprintf("ds-%d", i)]
		if batched.Result == nil || solo.Result == nil {
			t.Fatalf("missing result: batch %v solo %v", batched.Result, solo.Result)
		}
		if batched.Result.BestParam != solo.Result.BestParam || batched.Result.BestScore != solo.Result.BestScore {
			t.Fatalf("dataset %d: batch selected (%d, %v), individual selected (%d, %v)", i,
				batched.Result.BestParam, batched.Result.BestScore, solo.Result.BestParam, solo.Result.BestScore)
		}
		for k, l := range solo.Result.FinalLabels {
			if batched.Result.FinalLabels[k] != l {
				t.Fatalf("dataset %d, label %d: batch %d, individual %d", i, k, batched.Result.FinalLabels[k], l)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	ts, _ := newTestServer(t, Config{QueueDepth: 2})
	_, csvText := testDataset(t, 24)

	post := func(body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// No datasets.
	resp := post(map[string]any{"algorithm": "fosc", "label_fraction": 0.5})
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("empty batch: status %d code %q", resp.StatusCode, e.Code)
	}

	// A bad dataset names its index.
	resp = post(map[string]any{
		"algorithm": "fosc", "label_fraction": 0.5,
		"datasets": []map[string]any{
			{"csv": csvText, "has_label": true},
			{"csv": "not,a,number\n1,2\n", "has_label": true},
		},
	})
	if e := decodeAPIError(t, resp); e.Code != "bad_csv" || !strings.Contains(e.Message, "datasets[1]") {
		t.Fatalf("bad member: code %q message %q", e.Code, e.Message)
	}

	// A batch larger than the queue space is rejected whole.
	many := make([]map[string]any, 3)
	for i := range many {
		many[i] = map[string]any{"csv": csvText, "has_label": true}
	}
	resp = post(map[string]any{"algorithm": "fosc", "label_fraction": 0.5, "datasets": many})
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusTooManyRequests || e.Code != "queue_full" {
		t.Fatalf("oversized batch: status %d code %q", resp.StatusCode, e.Code)
	}

	// Unknown batch → 404.
	gresp, err := http.Get(ts.URL + "/v1/batches/batch-999999")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, gresp); gresp.StatusCode != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("missing batch: status %d code %q", gresp.StatusCode, e.Code)
	}
}

// GET /v1/jobs?limit=&cursor= pages through every job in submission order.
func TestListPagination(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 2, RetainFinished: 16})

	var ids []string
	for i := 0; i < 5; i++ {
		url := fmt.Sprintf("%s/v1/jobs?algorithm=fosc&params=3&folds=2&seed=%d&label_fraction=0.5&has_label=true", ts.URL, i+1)
		resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
		if err != nil {
			t.Fatal(err)
		}
		jv := decodeJob(t, resp.Body)
		resp.Body.Close()
		ids = append(ids, jv.ID)
		pollJob(t, ts, jv.ID, StatusDone)
	}

	var walked []string
	cursor := ""
	for page := 0; ; page++ {
		if page > 4 {
			t.Fatal("pagination never terminated")
		}
		url := ts.URL + "/v1/jobs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var lr jobListResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(lr.Jobs) > 2 {
			t.Fatalf("page of %d jobs with limit=2", len(lr.Jobs))
		}
		for _, jv := range lr.Jobs {
			walked = append(walked, jv.ID)
		}
		if lr.NextCursor == "" {
			break
		}
		cursor = lr.NextCursor
	}
	if len(walked) != len(ids) {
		t.Fatalf("pagination walked %d of %d jobs: %v", len(walked), len(ids), walked)
	}
	for i, id := range ids {
		if walked[i] != id {
			t.Fatalf("pagination order: got %v, want %v", walked, ids)
		}
	}

	// An invalid limit is a structured error.
	resp, err := http.Get(ts.URL + "/v1/jobs?limit=nope")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("bad limit: status %d code %q", resp.StatusCode, e.Code)
	}
}

// Cancelling a queued job must free its queue slot immediately — not when
// an executor eventually pops it.
func TestQueuedCancelFreesSlotImmediately(t *testing.T) {
	ds, _ := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-slot", alg, []int{1})
	m := NewManager(Config{MaxRunningJobs: 1, QueueDepth: 1, WorkerBudget: 1})
	defer m.Shutdown(context.Background())

	spec := quickSpec()
	spec.Algorithm = "block-slot"
	spec.Params = []int{1}
	running, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started // the single executor is now parked inside the running job

	queued, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(quickSpec(), ds); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full: %v", err)
	}

	if st, err := m.Cancel(queued.ID()); err != nil || st != StatusCancelled {
		t.Fatalf("cancel queued: %s, %v", st, err)
	}
	// The executor is still parked, yet the slot is free right now.
	replacement, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatalf("slot not freed by queued cancel: %v", err)
	}

	close(alg.release)
	m.Cancel(running.ID())
	waitTerminal(t, running)
	if s := waitTerminal(t, replacement); s != StatusDone {
		t.Fatalf("replacement job finished as %s", s)
	}
	// The cancelled job never ran.
	if v := queued.View(); v.Started != nil {
		t.Fatalf("cancelled queued job has a start time: %+v", v)
	}
}
