package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cvcp/internal/dataset"
	"cvcp/internal/store"
	"cvcp/internal/store/storetest"
)

// growthRows builds rows [lo, hi) of the deterministic two-cluster growth
// sequence the dataset tests share: the rows of a grown dataset are
// bit-identical to the same index range of a from-scratch one.
func growthRows(lo, hi int) ([][]float64, []int) {
	x := make([][]float64, 0, hi-lo)
	y := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		cl := i % 2
		base := float64(cl) * 10
		x = append(x, []float64{base + 0.3*float64(i%7), base + 0.2*float64(i%5)})
		y = append(y, cl)
	}
	return x, y
}

// growthCSV is growthRows as labeled CSV.
func growthCSV(t *testing.T, lo, hi int) string {
	t.Helper()
	x, y := growthRows(lo, hi)
	ds, err := dataset.New("rows", x, y)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// growthBatch is growthRows as a RowBatch.
func growthBatch(lo, hi int) dataset.RowBatch {
	x, y := growthRows(lo, hi)
	return dataset.RowBatch{Rows: x, Labels: y}
}

// datasetJobSpec is the dataset-referencing job the tests submit: stable
// folds, so only appended-to folds dirty.
func datasetJobSpec(id string) Spec {
	return Spec{DatasetID: id, Algorithm: "fosc", Params: []int{3, 6}, NFolds: 4, Seed: 7, LabelFraction: 0.5}
}

// submitDatasetJob pins the dataset's current version into the spec,
// materializes the snapshot and submits — the manager-level equivalent of
// the POST /v1/jobs dataset path.
func submitDatasetJob(t *testing.T, m *Manager, spec Spec) *Job {
	t.Helper()
	ds, apiErr := m.SnapshotForJob(&spec)
	if apiErr != nil {
		t.Fatalf("snapshot: %v", apiErr.Message)
	}
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// runDatasetJob submits and waits for done, returning the result view.
func runDatasetJob(t *testing.T, m *Manager, spec Spec) *ResultView {
	t.Helper()
	j := submitDatasetJob(t, m, spec)
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("dataset job finished as %s (%s)", s, j.View().Error)
	}
	return j.View().Result
}

// postJSON posts a JSON document and fails on transport errors.
func postJSON(t *testing.T, url string, doc any) *http.Response {
	t.Helper()
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// createDatasetHTTP creates a dataset over the API and returns its ID.
func createDatasetHTTP(t *testing.T, ts string, name, csv string) string {
	t.Helper()
	resp := postJSON(t, ts+"/v1/datasets", map[string]any{"name": name, "has_label": true, "csv": csv})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create dataset: status %d", resp.StatusCode)
	}
	var v DatasetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// submitDatasetJobHTTP submits a dataset-referencing job over the API and
// waits for done.
func submitDatasetJobHTTP(t *testing.T, ts, id string) JobView {
	t.Helper()
	resp := postJSON(t, ts+"/v1/jobs", map[string]any{
		"dataset_id": id, "algorithm": "fosc", "params": []int{3, 6},
		"folds": 4, "seed": 7, "label_fraction": 0.5,
	})
	v := decodeJob(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit dataset job: status %d", resp.StatusCode)
	}
	return v
}

// An incremental re-selection over the HTTP API — create a dataset, run a
// selection, append rows, run it again — must (a) be bit-identical to a
// from-scratch selection over a dataset created with all rows at once,
// and (b) schedule strictly fewer cells, reusing every clean fold's
// cached scores. Holds at every worker budget.
func TestDatasetIncrementalReselectBitIdenticalHTTP(t *testing.T) {
	const totalCells = 2 * 4 // params × folds
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("budget-%d", workers), func(t *testing.T) {
			ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: workers})
			id := createDatasetHTTP(t, ts.URL, "g", growthCSV(t, 0, 60))

			warm := submitDatasetJobHTTP(t, ts.URL, id)
			warmDone := pollJob(t, ts, warm.ID, StatusDone)
			if warmDone.DatasetID != id || warmDone.DatasetVer != 1 {
				t.Fatalf("warm job pinned (%s, v%d), want (%s, v1)", warmDone.DatasetID, warmDone.DatasetVer, id)
			}
			if c, r := warmDone.Result.CellsComputed, warmDone.Result.CellsReused; c != totalCells || r != 0 {
				t.Fatalf("warm run computed %d, reused %d; want %d, 0", c, r, totalCells)
			}

			// Append two rows: they land in folds 0 and 1 (StableFold),
			// so folds 2 and 3 — half the grid — stay clean.
			resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/rows", "text/csv", strings.NewReader(growthCSV(t, 60, 62)))
			if err != nil {
				t.Fatal(err)
			}
			var dv DatasetView
			if err := json.NewDecoder(resp.Body).Decode(&dv); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if dv.Version != 2 || dv.Rows != 62 {
				t.Fatalf("append: version %d rows %d, want 2 and 62", dv.Version, dv.Rows)
			}

			incr := pollJob(t, ts, submitDatasetJobHTTP(t, ts.URL, id).ID, StatusDone)
			c, r := incr.Result.CellsComputed, incr.Result.CellsReused
			if c+r != totalCells || r == 0 || c >= totalCells {
				t.Fatalf("incremental run computed %d, reused %d; want a full split with strictly fewer than %d computed", c, r, totalCells)
			}

			// From-scratch reference: a fresh server whose dataset gets
			// all 62 rows in one batch.
			ts2, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: workers})
			id2 := createDatasetHTTP(t, ts2.URL, "g", growthCSV(t, 0, 62))
			scratch := pollJob(t, ts2, submitDatasetJobHTTP(t, ts2.URL, id2).ID, StatusDone)
			sameResultView(t, incr.Result, scratch.Result)
		})
	}
}

// The same incremental-vs-scratch contract through the distributed path:
// a coordinator with four workers over a shared store, where the cell
// cache lives in the shared store and the reused/dirty split is reported
// by the workers and summed by the coordinator.
func TestDatasetIncrementalReselectBitIdenticalDistributed(t *testing.T) {
	dir := t.TempDir()
	cs := openSharedStore(t, dir)
	defer cs.Close()
	m := NewManager(Config{
		MaxRunningJobs: 1, WorkerBudget: 2, Store: cs,
		Role: RoleCoordinator, ShardCells: 2, Poll: 3 * time.Millisecond,
		LeaseTTL: 10 * time.Second,
	})
	defer m.Shutdown(context.Background())
	for i := 0; i < 4; i++ {
		defer startServerWorker(t, dir, fmt.Sprintf("w%d", i))()
	}

	dv, err := m.CreateDataset("g", true, batchPtr(growthBatch(0, 60)))
	if err != nil {
		t.Fatal(err)
	}
	spec := datasetJobSpec(dv.ID)
	const totalCells = 2 * 4
	warm := runDatasetJob(t, m, spec)
	if warm.CellsComputed != totalCells || warm.CellsReused != 0 {
		t.Fatalf("warm run computed %d, reused %d; want %d, 0", warm.CellsComputed, warm.CellsReused, totalCells)
	}

	if _, err := m.AppendRows(dv.ID, growthBatch(60, 62)); err != nil {
		t.Fatal(err)
	}
	incr := runDatasetJob(t, m, datasetJobSpec(dv.ID))
	c, r := incr.CellsComputed, incr.CellsReused
	if c+r != totalCells || r == 0 || c >= totalCells {
		t.Fatalf("incremental run computed %d, reused %d; want a full split with strictly fewer than %d computed", c, r, totalCells)
	}

	// From-scratch reference on a fresh single-node manager.
	scratchM := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2})
	defer scratchM.Shutdown(context.Background())
	sdv, err := scratchM.CreateDataset("g", true, batchPtr(growthBatch(0, 62)))
	if err != nil {
		t.Fatal(err)
	}
	scratch := runDatasetJob(t, scratchM, datasetJobSpec(sdv.ID))
	sameResultView(t, incr, scratch)
}

// A failing cell-cache write must degrade to recomputation, never fail
// the job or change its result: the cache is an optimization, not a
// correctness dependency.
func TestDatasetCellCachePutFailureDegrades(t *testing.T) {
	faulty := storetest.Wrap(store.NewMemory())
	faulty.Hook(storetest.OpPut, func(call int, id string) error {
		if strings.HasPrefix(id, "cell-") {
			return errInjected
		}
		return nil
	})
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: faulty})
	defer m.Shutdown(context.Background())
	dv, err := m.CreateDataset("g", true, batchPtr(growthBatch(0, 60)))
	if err != nil {
		t.Fatal(err)
	}
	const totalCells = 2 * 4
	for run := 0; run < 2; run++ {
		res := runDatasetJob(t, m, datasetJobSpec(dv.ID))
		// Nothing was ever cached, so the second run recomputes the full
		// grid too.
		if res.CellsComputed != totalCells || res.CellsReused != 0 {
			t.Fatalf("run %d computed %d, reused %d; want %d, 0", run, res.CellsComputed, res.CellsReused, totalCells)
		}
	}

	// And the degraded result is the clean-store result, bit for bit.
	clean := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2})
	defer clean.Shutdown(context.Background())
	cdv, err := clean.CreateDataset("g", true, batchPtr(growthBatch(0, 60)))
	if err != nil {
		t.Fatal(err)
	}
	want := runDatasetJob(t, clean, datasetJobSpec(cdv.ID))
	got := runDatasetJob(t, m, datasetJobSpec(dv.ID))
	sameResultView(t, got, want)
}

// Restarting a manager over its file store must resurrect every dataset
// at its exact version and keep the cell cache warm: the first selection
// after the restart reuses the whole grid. Deleting the dataset then
// sweeps its batches and cells from the store.
func TestDatasetRestartKeepsDatasetsAndCellCache(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s1})
	dv, err := m1.CreateDataset("g", true, batchPtr(growthBatch(0, 40)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.AppendRows(dv.ID, growthBatch(40, 60)); err != nil {
		t.Fatal(err)
	}
	const totalCells = 2 * 4
	warm := runDatasetJob(t, m1, datasetJobSpec(dv.ID))
	if warm.CellsComputed != totalCells {
		t.Fatalf("warm run computed %d cells, want %d", warm.CellsComputed, totalCells)
	}
	m1.Shutdown(context.Background())
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2 := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2, Store: s2})
	defer m2.Shutdown(context.Background())
	got, err := m2.GetDataset(dv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.Rows != 60 || got.Dims != 2 || !got.HasLabel {
		t.Fatalf("restored dataset %+v, want version 2 with 60 2-dim labeled rows", got)
	}
	res := runDatasetJob(t, m2, datasetJobSpec(dv.ID))
	if res.CellsComputed != 0 || res.CellsReused != totalCells {
		t.Fatalf("post-restart run computed %d, reused %d; want 0, %d", res.CellsComputed, res.CellsReused, totalCells)
	}
	sameResultView(t, res, warm)

	// DELETE sweeps the dataset's meta, batch and cell records.
	if err := m2.DeleteDataset(dv.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.GetDataset(dv.ID); err == nil {
		t.Fatal("deleted dataset still visible")
	}
	recs, _, err := s2.List("", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		for _, prefix := range []string{"cell-", "ds-", "dsb-"} {
			if strings.HasPrefix(rec.ID, prefix) {
				t.Fatalf("leftover dataset record %s after delete", rec.ID)
			}
		}
	}
}

func batchPtr(b dataset.RowBatch) *dataset.RowBatch { return &b }
