package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// events streams a job's progress as Server-Sent Events: every event
// published so far is replayed first (so late subscribers see the full
// history), then live events stream until the job reaches a terminal
// status or the client disconnects. Each SSE message carries the event's
// sequence number as its id, the event type ("status" or "progress") and
// the Event JSON as data; progress events are monotonically increasing in
// done.
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal",
			Message: "streaming unsupported by this connection"})
		return
	}

	replay, ch, cancel := j.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	lastSeq := 0
	for _, ev := range replay {
		writeEvent(w, ev)
		lastSeq = ev.Seq
	}
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// The job is terminal. A slow subscriber may have had
				// events dropped from its buffer — catch up from the
				// replay log so the terminal status event always lands.
				for _, missed := range j.EventsSince(lastSeq) {
					writeEvent(w, missed)
				}
				fl.Flush()
				return
			}
			writeEvent(w, ev)
			lastSeq = ev.Seq
			fl.Flush()
		}
	}
}

func writeEvent(w io.Writer, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}
