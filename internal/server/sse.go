package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// sseWriteTimeout is the per-event write deadline of an SSE stream. The
// server runs without a global WriteTimeout (it would kill every stream
// outliving it); instead the handler arms a fresh deadline before each
// write via http.NewResponseController, so a dead or stalled client
// tears the stream down within one timeout instead of pinning the
// connection forever.
const sseWriteTimeout = 30 * time.Second

// sseHeartbeatInterval paces comment-line keepalives (": ping") on
// event-quiet streams — a queued job, or a running one between
// coalesced progress events. Without them the write deadline never
// arms, and a silently dead client (NAT timeout, pulled cable) would
// pin its connection and subscription until the job next published.
// EventSource clients ignore comment lines by specification.
const sseHeartbeatInterval = 15 * time.Second

// events streams a job's progress as Server-Sent Events: the persisted
// event history is replayed first (so late subscribers — and subscribers
// arriving after a server restart — see the full history), then live
// events stream until the job reaches a terminal status or the client
// disconnects. Each SSE message carries the event's sequence number as
// its id, the event type ("status" or "progress") and the Event JSON as
// data; progress events are monotonically increasing in done within a
// run (a crash-recovery re-queue restarts the grid, so its stream shows
// the pre-crash attempt's progress before the recovery run's).
//
// A reconnecting client sends the standard Last-Event-ID header (every
// EventSource does this automatically with the last id it saw); the
// stream then resumes after that sequence number instead of replaying
// the entire history.
func (a *api) events(w http.ResponseWriter, r *http.Request) {
	j, err := a.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal",
			Message: "streaming unsupported by this connection"})
		return
	}

	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}

	replay, ch, cancel := j.SubscribeSince(after)
	defer cancel()

	rc := http.NewResponseController(w)
	// The server's read timeout covers the request, not the stream:
	// clear it so a long-lived stream is not torn down when the
	// connection's read deadline (armed while reading the request)
	// expires mid-stream. Write deadlines are re-armed per event — and
	// cleared on exit, because with no global WriteTimeout net/http
	// never resets them between requests, and a stale deadline would
	// fail the next request on this keep-alive connection. The read
	// deadline re-arms itself (ReadTimeout is set), so only the write
	// side needs the reset.
	_ = rc.SetReadDeadline(time.Time{})
	defer rc.SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	lastSeq := after
	write := func(ev Event) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
		if err := writeEvent(w, ev); err != nil {
			return false
		}
		lastSeq = ev.Seq
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-ch:
			if !open {
				// The job is terminal. A slow subscriber may have had
				// events dropped from its buffer — catch up from the
				// event log so the terminal status event always lands.
				for _, missed := range j.EventsSince(lastSeq) {
					if !write(missed) {
						return
					}
				}
				fl.Flush()
				return
			}
			if ev.Seq <= lastSeq {
				continue // buffered before the replay covered it
			}
			if !write(ev) {
				return
			}
			fl.Flush()
		}
	}
}

func writeEvent(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return nil
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}
