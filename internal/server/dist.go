package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/dataset"
	"cvcp/internal/dist"
	"cvcp/internal/runner"
	"cvcp/internal/store"
)

// distSpec is the grid-record Spec payload a coordinator publishes for a
// distributed job: the persisted job spec plus the dataset identity.
// Together with the record's dataset payload (the same datasetRecord the
// job store persists) it is everything a worker needs to rebuild the
// job's cell plan bit-identically — both sides decode it through
// buildSelectionSpec.
type distSpec struct {
	Spec        Spec   `json:"spec"`
	DatasetName string `json:"dataset_name"`
}

// distPlan reports whether the job can be distributed and returns its
// cell plan. Only partition-based scorers shard (validity indices score
// whole-dataset clusterings, not folds); a non-shardable job on a
// coordinator simply runs locally. cache, when non-nil, is the job's
// cell cache — machine-local, threaded into the plan's options so the
// plan's cells consult and populate it.
func distPlan(spec Spec, ds *dataset.Dataset, cache *runner.ScoreCache) (*corecvcp.CellPlan, error) {
	sel, err := buildSelectionSpec(spec, ds)
	if err != nil {
		return nil, err
	}
	sel.Options.CellCache = cache
	return corecvcp.PlanCells(sel)
}

// executeDistributed runs one claimed job through the dist coordinator:
// the grid is sharded into the shared store, workers compute the cells,
// and the merged per-cell scores finalize through the exact single-node
// reduction (CellPlan.Finalize), so the result — selection, fold scores
// and final labels — is bit-identical to Job.execute. Shard transitions
// publish as "shard" events and feed the job's regular progress counter
// at shard granularity.
func (m *Manager) executeDistributed(j *Job, ds dist.Store, plan *corecvcp.CellPlan) {
	blob, err := json.Marshal(distSpec{Spec: j.spec, DatasetName: j.dsName})
	if err != nil {
		j.finish(nil, err)
		return
	}
	job := dist.GridJob{ID: j.id, Spec: blob, Cells: plan.NumCells()}

	cellsDone := 0
	onShard := func(ev dist.ShardEvent) {
		j.onShard(ev.Shard, ev.Shards, ev.Status, ev.Worker)
		if ev.Status == dist.ShardDone || ev.Status == dist.ShardFailed {
			cellsDone += ev.Hi - ev.Lo
			j.onProgress(cellsDone, plan.NumCells())
		}
		// Workers report how many of their shard's cells came from the
		// shared cell cache; the coordinator sums the split into the
		// job's stats so distributed re-selections report the same
		// dirty/reused counters as single-node ones.
		if ev.Status == dist.ShardDone && j.cellStats != nil {
			j.cellStats.Add(int64(ev.Hi-ev.Lo-ev.Reused), int64(ev.Reused))
		}
	}
	coord := &dist.Coordinator{Store: ds, ShardCells: m.cfg.ShardCells, Poll: m.cfg.Poll}
	scores, err := coord.RunJob(j.ctx, job, j.dsBlob, onShard)
	if err != nil {
		j.finish(nil, err)
		return
	}
	res, err := plan.Finalize(j.ctx, scores, m.cfg.WorkerBudget, m.limiter)
	j.finish(res, err)
}

// cellCacheEntries bounds the in-memory tier of a job's cell cache; the
// persistent tier (the store's cell records) is unbounded.
const cellCacheEntries = 4096

// runJob dispatches one claimed job: coordinators distribute every job
// whose store and scorer allow it, everything else (single role, a store
// without atomic updates, a validity-scored job) computes locally.
// Dataset-referencing jobs get their cell-cache wiring here — the cache
// persists cell scores under the dataset's record ID, so later
// re-selections (this process or the next one) reuse every clean fold's
// cells.
func (m *Manager) runJob(j *Job) {
	if j.spec.DatasetID != "" {
		j.cellStats = &corecvcp.CellStats{}
		j.cellCache = runner.NewScoreCache(store.NewCellCache(m.store, j.spec.DatasetID), cellCacheEntries)
	}
	if m.cfg.Role == RoleCoordinator {
		if ds, ok := m.store.(dist.Store); ok {
			if plan, err := distPlan(j.spec, j.ds, j.cellCache); err == nil {
				m.executeDistributed(j, ds, plan)
				return
			}
		}
	}
	j.execute(m.limiter, m.cfg.WorkerBudget)
}

// WorkerConfig configures RunWorker, the worker-role counterpart of the
// Manager.
type WorkerConfig struct {
	// Store is the topology's shared store (store.OpenShared on the same
	// directory the coordinator serves from). It must support atomic
	// updates; both built-in stores do.
	Store store.Store
	// ID names this worker in shard leases and events. It must be unique
	// in the topology.
	ID string
	// Workers bounds the worker's own per-shard grid concurrency;
	// 0 means one per CPU. Purely machine-local — it never affects
	// scores.
	Workers int
	// LeaseTTL and Poll tune the lease protocol; zero values mean the
	// dist package defaults (10s, 100ms).
	LeaseTTL time.Duration
	Poll     time.Duration
}

// RunWorker runs the worker role: it leases grid shards from the shared
// store, computes their cells and writes partial scores back, until ctx
// is done (which is the only way it returns). The worker rebuilds each
// job's selection spec from the coordinator's grid record through the
// same buildSelectionSpec the coordinator used, so both sides plan
// identical grids over bit-identical datasets.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	ds, ok := cfg.Store.(dist.Store)
	if !ok {
		return fmt.Errorf("server: worker store does not support atomic updates")
	}
	w := &dist.Worker{
		Store:    ds,
		ID:       cfg.ID,
		Resolve:  resolvePlan(cfg.Store),
		Workers:  cfg.Workers,
		Limiter:  runner.NewLimiter(workerBudget(cfg.Workers)),
		LeaseTTL: cfg.LeaseTTL,
		Poll:     cfg.Poll,
	}
	return w.Run(ctx)
}

func workerBudget(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

// resolvePlan returns the worker's dist.Worker.Resolve hook, bound to
// the worker's shared store: it decodes the coordinator's grid record —
// job spec and dataset payload — and builds the cell plan. Both decodes
// are strict: a field mismatch means the coordinator runs a different
// version of this code, and silently ignoring the difference could split
// scores across versions. Dataset-referencing jobs get a store-backed
// cell cache (the plan is cached per job by the worker, so the cache
// lives for all the worker's shards of that job): cells another process
// already scored are served from the shared store instead of recomputed,
// and the worker reports the split in its partials.
func resolvePlan(s store.Store) func(dist.GridJob, json.RawMessage) (*corecvcp.CellPlan, error) {
	return func(job dist.GridJob, datasetBlob json.RawMessage) (*corecvcp.CellPlan, error) {
		var sp distSpec
		if err := strictUnmarshal(job.Spec, &sp); err != nil {
			return nil, fmt.Errorf("server: decoding grid spec of %s: %w", job.ID, err)
		}
		var dr datasetRecord
		if err := strictUnmarshal(datasetBlob, &dr); err != nil {
			return nil, fmt.Errorf("server: decoding dataset of %s: %w", job.ID, err)
		}
		// ReadCSV of WriteCSV output is bit-identical (full float64
		// precision), so the worker scores the exact dataset the
		// coordinator plans over.
		ds, err := dataset.ReadCSV(sp.DatasetName, strings.NewReader(dr.CSV), dr.HasLabel)
		if err != nil {
			return nil, fmt.Errorf("server: rebuilding dataset of %s: %w", job.ID, err)
		}
		var cache *runner.ScoreCache
		if sp.Spec.DatasetID != "" {
			cache = runner.NewScoreCache(store.NewCellCache(s, sp.Spec.DatasetID), cellCacheEntries)
		}
		return distPlan(sp.Spec, ds, cache)
	}
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
