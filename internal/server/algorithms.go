package server

import (
	"sort"
	"sync"

	corecvcp "cvcp/internal/cvcp"
)

// defaultKRange is the conservative k range used when a k-selection job
// does not name its own candidates.
var defaultKRange = corecvcp.KRange(2, 10)

type algorithmEntry struct {
	alg           corecvcp.Algorithm
	defaultParams []int
}

var (
	algMu      sync.RWMutex
	algorithms = map[string]algorithmEntry{
		"fosc": {corecvcp.FOSCOpticsDend{}, corecvcp.DefaultMinPtsRange},
		"mpck": {corecvcp.MPCKMeans{}, defaultKRange},
		"copk": {corecvcp.COPKMeans{}, defaultKRange},
	}
)

// RegisterAlgorithm installs alg under name for job submissions, replacing
// any previous registration. defaultParams is the candidate range used when
// a submission omits one. Tests use this to install instrumented
// algorithms; deployments can use it to expose additional methods.
func RegisterAlgorithm(name string, alg corecvcp.Algorithm, defaultParams []int) {
	algMu.Lock()
	defer algMu.Unlock()
	algorithms[name] = algorithmEntry{alg, append([]int(nil), defaultParams...)}
}

func lookupAlgorithm(name string) (algorithmEntry, bool) {
	algMu.RLock()
	defer algMu.RUnlock()
	e, ok := algorithms[name]
	return e, ok
}

// gridHasFOSC reports whether any of the named candidates is the FOSC
// method — the only registered algorithm with an OPTICS distance matrix,
// and hence the only one the matrix32 option applies to.
func gridHasFOSC(names []string) bool {
	for _, name := range names {
		if entry, ok := lookupAlgorithm(name); ok {
			if _, ok := entry.alg.(corecvcp.FOSCOpticsDend); ok {
				return true
			}
		}
	}
	return false
}

// algorithmNames returns the registered algorithm names, sorted, for error
// messages.
func algorithmNames() []string {
	algMu.RLock()
	defer algMu.RUnlock()
	out := make([]string, 0, len(algorithms))
	for name := range algorithms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// resolveScorer maps a job spec's scorer name onto the library's Scorer
// strategies via the library's own name registry, so submission
// validation, job execution and the cvcp CLI all accept exactly the same
// vocabulary.
func resolveScorer(name string, rounds int) (corecvcp.Scorer, error) {
	return corecvcp.ScorerByName(name, rounds)
}
