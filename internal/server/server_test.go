package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	corecvcp "cvcp/internal/cvcp"
	"cvcp/internal/stats"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return ts, m
}

func decodeJob(t *testing.T, body io.Reader) JobView {
	t.Helper()
	var v JobView
	if err := json.NewDecoder(body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func decodeAPIError(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	defer resp.Body.Close()
	var wrapper struct {
		Error apiError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wrapper); err != nil {
		t.Fatal(err)
	}
	return wrapper.Error
}

func pollJob(t *testing.T, ts *httptest.Server, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last JobView
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		last = decodeJob(t, resp.Body)
		resp.Body.Close()
		if last.Status == want {
			return last
		}
		if last.Status.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, last.Status, last.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck at %s, want %s", id, last.Status, want)
	return last
}

// A raw-CSV submission must select exactly the parameter the library
// selects for the same data, seed and options — the server adds queueing
// and transport, never different math.
func TestEndToEndMatchesDirectSelection(t *testing.T) {
	ds, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 2})

	url := ts.URL + "/v1/jobs?algorithm=fosc&params=3,6&folds=3&seed=11&label_fraction=0.5&has_label=true&name=test"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("submit: no Location header")
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if job.Status != StatusQueued && job.Status != StatusRunning && job.Status != StatusDone {
		t.Fatalf("fresh job has status %s", job.Status)
	}

	final := pollJob(t, ts, job.ID, StatusDone)
	if final.Result == nil {
		t.Fatal("done job has no result")
	}

	// Replay the exact server-side procedure through the library.
	r := stats.NewRand(11)
	idx := ds.SampleLabels(r, 0.5)
	lres, err := corecvcp.Select(context.Background(), corecvcp.Spec{
		Dataset:     ds,
		Grid:        corecvcp.Grid{{Algorithm: corecvcp.FOSCOpticsDend{}, Params: []int{3, 6}}},
		Supervision: corecvcp.Labels(idx),
		Options:     corecvcp.Options{NFolds: 3, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := lres.Winner
	if final.Result.BestParam != sel.Best.Param {
		t.Fatalf("server selected %d, library selected %d", final.Result.BestParam, sel.Best.Param)
	}
	if final.Result.BestScore != sel.Best.Score {
		t.Fatalf("server best score %v, library %v", final.Result.BestScore, sel.Best.Score)
	}
	if len(final.Result.FinalLabels) != ds.N() {
		t.Fatalf("final labels: %d entries for %d objects", len(final.Result.FinalLabels), ds.N())
	}
	for i, l := range sel.FinalLabels {
		if final.Result.FinalLabels[i] != l {
			t.Fatalf("final label %d: server %d, library %d", i, final.Result.FinalLabels[i], l)
		}
	}
}

func TestSubmitJSONWithConstraints(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1})

	body, _ := json.Marshal(map[string]any{
		"name": "consjob", "csv": csvText, "has_label": true,
		"algorithm": "fosc", "params": []int{3, 6}, "folds": 2, "seed": 3,
		"constraints": []map[string]any{
			{"a": 0, "b": 2, "link": "ml"}, {"a": 4, "b": 6, "link": "ml"},
			{"a": 8, "b": 10, "link": "ml"}, {"a": 0, "b": 1, "link": "cl"},
			{"a": 2, "b": 3, "link": "cl"}, {"a": 4, "b": 5, "link": "cl"},
			{"a": 6, "b": 9, "link": "cl"}, {"a": 1, "b": 3, "link": "ml"},
			{"a": 5, "b": 7, "link": "ml"}, {"a": 8, "b": 12, "link": "ml"},
		},
	})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	final := pollJob(t, ts, job.ID, StatusDone)
	if final.Result == nil || final.Dataset != "consjob" {
		t.Fatalf("unexpected final view: %+v", final)
	}
}

func TestSubmitMultipart(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("dataset", "test.csv")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(fw, csvText)
	for k, v := range map[string]string{
		"algorithm": "fosc", "params": "3,6", "folds": "2", "seed": "9",
		"label_fraction": "0.5", "has_label": "true", "name": "multi",
	} {
		mw.WriteField(k, v)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	if got := pollJob(t, ts, job.ID, StatusDone); got.Dataset != "multi" {
		t.Fatalf("dataset name %q, want multi", got.Dataset)
	}
}

func TestCancelRunningJobOverHTTP(t *testing.T) {
	_, csvText := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-http", alg, []int{1})
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 1})

	url := ts.URL + "/v1/jobs?algorithm=block-http&params=1&folds=2&seed=1&label_fraction=0.5&has_label=true"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()
	<-alg.started
	pollJob(t, ts, job.ID, StatusRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	close(alg.release)

	final := pollJob(t, ts, job.ID, StatusCancelled)
	if final.Result != nil {
		t.Fatalf("cancelled job carries a result: %+v", final.Result)
	}
}

// sseEvent is one parsed SSE message. raw is the exact data payload as
// written on the wire, for byte-level replay-equivalence assertions.
type sseEvent struct {
	id    int
	event string
	data  Event
	raw   string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur != (sseEvent{}) { // skip comment-only blocks (heartbeats)
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.raw = strings.TrimPrefix(line, "data: ")
			if err := json.Unmarshal([]byte(cur.raw), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return out
}

func TestSSEProgressOrdering(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, WorkerBudget: 4})

	url := ts.URL + "/v1/jobs?algorithm=fosc&params=3,6,9&folds=3&seed=2&label_fraction=0.5&has_label=true"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	job := decodeJob(t, resp.Body)
	resp.Body.Close()

	// Subscribe immediately; the replay log guarantees the full history
	// regardless of how far the job has progressed by now.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	events := readSSE(t, sresp.Body) // the stream ends at the terminal event

	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	if first := events[0]; first.event != "status" || first.data.Status != StatusQueued {
		t.Fatalf("first event = %+v, want queued status", first)
	}
	last := events[len(events)-1]
	if last.event != "status" || last.data.Status != StatusDone {
		t.Fatalf("last event = %+v, want done status", last)
	}
	prevSeq, prevDone, progress := 0, 0, 0
	for _, ev := range events {
		if ev.id <= prevSeq {
			t.Fatalf("sequence not increasing: %d after %d", ev.id, prevSeq)
		}
		prevSeq = ev.id
		if ev.event == "progress" {
			progress++
			if ev.data.Done <= prevDone {
				t.Fatalf("progress not monotone: done=%d after %d", ev.data.Done, prevDone)
			}
			prevDone = ev.data.Done
			if ev.data.Total != 9 { // 3 params × 3 folds
				t.Fatalf("progress total = %d, want 9", ev.data.Total)
			}
		}
	}
	if progress != 9 {
		t.Fatalf("saw %d progress events, want 9", progress)
	}
	if prevDone != 9 {
		t.Fatalf("final done = %d, want 9", prevDone)
	}
}

func TestStructuredErrors(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxBodyBytes: 4096})

	post := func(url, ct, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+url, ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Malformed CSV → 400 bad_csv.
	resp := post("/v1/jobs?label_fraction=0.5&has_label=true", "text/csv", "not,a,number\n1,2\n")
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "bad_csv" {
		t.Fatalf("bad CSV: status %d code %q", resp.StatusCode, e.Code)
	}

	// Oversized body → 413 too_large.
	big := strings.Repeat("1.0,2.0,0\n", 1000)
	resp = post("/v1/jobs?label_fraction=0.5&has_label=true", "text/csv", big)
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge || e.Code != "too_large" {
		t.Fatalf("oversized: status %d code %q", resp.StatusCode, e.Code)
	}

	// Unknown algorithm → 400 invalid_request.
	resp = post("/v1/jobs?algorithm=nope&label_fraction=0.5&has_label=true", "text/csv", csvText)
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("unknown algorithm: status %d code %q", resp.StatusCode, e.Code)
	}

	// No supervision → 400 invalid_request.
	resp = post("/v1/jobs?has_label=true", "text/csv", csvText)
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("no supervision: status %d code %q", resp.StatusCode, e.Code)
	}

	// label_fraction without labels → 400 invalid_request.
	resp = post("/v1/jobs?label_fraction=0.5", "text/csv", csvText)
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("unlabeled scenario I: status %d code %q", resp.StatusCode, e.Code)
	}

	// Unknown job → 404 not_found.
	gresp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, gresp); gresp.StatusCode != http.StatusNotFound || e.Code != "not_found" {
		t.Fatalf("missing job: status %d code %q", gresp.StatusCode, e.Code)
	}

	// Malformed JSON → 400 invalid_request.
	resp = post("/v1/jobs", "application/json", "{nope")
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("bad JSON: status %d code %q", resp.StatusCode, e.Code)
	}
}

func TestListAndEvictionOverHTTP(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 1, RetainFinished: 1})

	submit := func(seed int) string {
		t.Helper()
		url := fmt.Sprintf("%s/v1/jobs?algorithm=fosc&params=3&folds=2&seed=%d&label_fraction=0.5&has_label=true", ts.URL, seed)
		resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		return decodeJob(t, resp.Body).ID
	}

	id1 := submit(1)
	pollJob(t, ts, id1, StatusDone)
	id2 := submit(2)
	pollJob(t, ts, id2, StatusDone)

	// RetainFinished == 1: job 1 is eventually evicted and GET turns 404.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id1)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}

	lresp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != id2 {
		t.Fatalf("listing = %+v, want only %s", listing.Jobs, id2)
	}
}

// TestConcurrentSubmissionHammer pounds the API from many goroutines;
// meaningful under -race.
func TestConcurrentSubmissionHammer(t *testing.T) {
	_, csvText := testDataset(t, 24)
	ts, _ := newTestServer(t, Config{MaxRunningJobs: 3, WorkerBudget: 4, QueueDepth: 128, RetainFinished: 256})

	const submitters = 8
	ids := make(chan string, submitters)
	for g := 0; g < submitters; g++ {
		go func(g int) {
			url := fmt.Sprintf("%s/v1/jobs?algorithm=fosc&params=3,6&folds=2&seed=%d&label_fraction=0.5&has_label=true", ts.URL, g+1)
			resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
			if err != nil {
				t.Error(err)
				ids <- ""
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit: status %d", resp.StatusCode)
				ids <- ""
				return
			}
			job := decodeJob(t, resp.Body)
			if g%3 == 0 {
				// Race a cancel against the run; either outcome is legal.
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
				if dresp, err := http.DefaultClient.Do(req); err == nil {
					dresp.Body.Close()
				}
			}
			http.Get(ts.URL + "/v1/jobs")
			ids <- job.ID
		}(g)
	}
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < submitters; i++ {
		id := <-ids
		if id == "" {
			continue
		}
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			v := decodeJob(t, resp.Body)
			resp.Body.Close()
			if v.Status.Terminal() {
				if v.Status == StatusFailed {
					t.Fatalf("job %s failed: %s", id, v.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck at %s", id, v.Status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// A huge param_min..param_max span must be rejected before any allocation,
// not materialized into a giant candidate slice.
func TestParamRangeBounded(t *testing.T) {
	_, csvText := testDataset(t, 30)
	ts, _ := newTestServer(t, Config{})

	url := ts.URL + "/v1/jobs?algorithm=mpck&param_min=1&param_max=2000000000&label_fraction=0.5&has_label=true"
	resp, err := http.Post(url, "text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("huge range: status %d code %q", resp.StatusCode, e.Code)
	}

	// Inverted range is invalid_request too, not an empty-range fallback.
	resp, err = http.Post(ts.URL+"/v1/jobs?algorithm=mpck&param_min=9&param_max=2&label_fraction=0.5&has_label=true",
		"text/csv", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if e := decodeAPIError(t, resp); resp.StatusCode != http.StatusBadRequest || e.Code != "invalid_request" {
		t.Fatalf("inverted range: status %d code %q", resp.StatusCode, e.Code)
	}
}
