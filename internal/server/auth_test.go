package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func authTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ts, _ := newTestServer(t, Config{
		MaxRunningJobs: 1, WorkerBudget: 2, QueueDepth: 8,
		Tenants: []Tenant{
			{Key: "secret-a", Name: "alice", Weight: 2},
			{Key: "secret-b", Name: "bob", Weight: 1, MaxQueued: 2},
		},
	})
	_, csvText := testDataset(t, 30)
	return ts, csvText
}

func submitAs(t *testing.T, ts *httptest.Server, csvText string, header, value string) *http.Response {
	t.Helper()
	url := ts.URL + "/v1/jobs?algorithm=fosc&params=3,6&folds=2&seed=5&label_fraction=0.5&has_label=true"
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	if header != "" {
		req.Header.Set(header, value)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// With tenants configured, every /v1 route demands a known key; health
// and metrics stay open for probes and scrapers.
func TestAuthRequiredWhenTenantsConfigured(t *testing.T) {
	ts, csvText := authTestServer(t)

	for name, resp := range map[string]*http.Response{
		"no key":        submitAs(t, ts, csvText, "", ""),
		"wrong key":     submitAs(t, ts, csvText, "X-API-Key", "nope"),
		"non-bearer":    submitAs(t, ts, csvText, "Authorization", "Basic secret-a"),
		"bearer-spaced": submitAs(t, ts, csvText, "Authorization", "Bearersecret-a"),
	} {
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", name, resp.StatusCode)
		}
		if e := decodeAPIError(t, resp); e.Code != "unauthorized" {
			t.Errorf("%s: error code %q, want unauthorized", name, e.Code)
		}
	}

	listReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	resp, err := http.DefaultClient.Do(listReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated list: status %d, want 401", resp.StatusCode)
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without key: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// Both credential forms resolve the tenant, and the authenticated tenant
// is stamped onto the job — visible in its view and immune to spoofing
// via the request body.
func TestAuthStampsTenant(t *testing.T) {
	ts, csvText := authTestServer(t)

	bearer := submitAs(t, ts, csvText, "Authorization", "Bearer secret-a")
	if bearer.StatusCode != http.StatusAccepted {
		t.Fatalf("bearer submit: status %d", bearer.StatusCode)
	}
	jv := decodeJob(t, bearer.Body)
	bearer.Body.Close()
	if jv.Tenant != "alice" {
		t.Fatalf("bearer job tenant %q, want alice", jv.Tenant)
	}

	apiKey := submitAs(t, ts, csvText, "X-API-Key", "secret-b")
	if apiKey.StatusCode != http.StatusAccepted {
		t.Fatalf("x-api-key submit: status %d", apiKey.StatusCode)
	}
	jv2 := decodeJob(t, apiKey.Body)
	apiKey.Body.Close()
	if jv2.Tenant != "bob" {
		t.Fatalf("x-api-key job tenant %q, want bob", jv2.Tenant)
	}
}

// A tenant's MaxQueued quota yields 429 quota_exceeded once its waiting
// jobs hit the cap, without touching other tenants' headroom.
func TestTenantQuota(t *testing.T) {
	_, csvText := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-quota", alg, []int{1})
	ts, _ := newTestServer(t, Config{
		MaxRunningJobs: 1, WorkerBudget: 1, QueueDepth: 16,
		Tenants: []Tenant{
			{Key: "secret-a", Name: "alice", Weight: 1},
			{Key: "secret-b", Name: "bob", Weight: 1, MaxQueued: 2},
		},
	})

	submit := func(key string) *http.Response {
		url := ts.URL + "/v1/jobs?algorithm=block-quota&params=1&folds=2&seed=5&label_fraction=0.5&has_label=true"
		req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(csvText))
		req.Header.Set("Content-Type", "text/csv")
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Park alice's job in the executor so later jobs stay queued.
	first := submit("secret-a")
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("alice's job: status %d", first.StatusCode)
	}
	first.Body.Close()
	<-alg.started
	defer close(alg.release)

	for i := 0; i < 2; i++ {
		resp := submit("secret-b")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("bob's job %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	over := submit("secret-b")
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bob over quota: status %d, want 429", over.StatusCode)
	}
	if e := decodeAPIError(t, over); e.Code != "quota_exceeded" {
		t.Fatalf("bob over quota: code %q, want quota_exceeded", e.Code)
	}

	// Alice has no MaxQueued: the global queue is her only bound.
	extra := submit("secret-a")
	if extra.StatusCode != http.StatusAccepted {
		t.Fatalf("alice after bob's quota: status %d", extra.StatusCode)
	}
	extra.Body.Close()
}

func TestParseTenants(t *testing.T) {
	in := `
# production keys
key-a alice
key-b bob 3
key-c carol 2 10
`
	tenants, err := ParseTenants(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Key: "key-a", Name: "alice", Weight: 1},
		{Key: "key-b", Name: "bob", Weight: 3},
		{Key: "key-c", Name: "carol", Weight: 2, MaxQueued: 10},
	}
	if len(tenants) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(tenants), len(want))
	}
	for i, tn := range tenants {
		if tn != want[i] {
			t.Errorf("tenant %d = %+v, want %+v", i, tn, want[i])
		}
	}

	for name, bad := range map[string]string{
		"one field":      "justakey",
		"five fields":    "k n 1 2 3",
		"bad weight":     "k n zero",
		"zero weight":    "k n 0",
		"bad quota":      "k n 1 many",
		"negative quota": "k n 1 -2",
		"dup key":        "k a\nk b",
		"dup name":       "k1 a\nk2 a",
	} {
		if _, err := ParseTenants(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ParseTenants accepted %q", name, bad)
		}
	}
}
