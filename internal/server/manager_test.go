package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cvcp/internal/constraints"
	"cvcp/internal/dataset"
)

// testDataset builds a small two-cluster labeled dataset and its CSV form.
func testDataset(t *testing.T, n int) (*dataset.Dataset, string) {
	t.Helper()
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		cl := i % 2
		base := float64(cl) * 10
		x[i] = []float64{base + 0.3*float64(i%7), base + 0.2*float64(i%5)}
		y[i] = cl
	}
	ds, err := dataset.New("test", x, y)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return ds, buf.String()
}

func quickSpec() Spec {
	return Spec{Algorithm: "fosc", Params: []int{3, 6}, NFolds: 2, Seed: 5, LabelFraction: 0.5}
}

func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.Status(); s.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal status (stuck at %s)", j.ID(), j.Status())
	return ""
}

// blockingAlg parks every Cluster call until release is closed, signalling
// started on the first call. It lets tests hold a job deterministically in
// the running state.
type blockingAlg struct {
	started chan struct{}
	release chan struct{}
	once    *sync.Once
}

func newBlockingAlg() blockingAlg {
	return blockingAlg{started: make(chan struct{}), release: make(chan struct{}), once: &sync.Once{}}
}

func (b blockingAlg) Name() string { return "blocking" }

func (b blockingAlg) Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error) {
	b.once.Do(func() { close(b.started) })
	<-b.release
	return make([]int, ds.N()), nil
}

// sleepAlg sleeps per Cluster call, giving cancellation a window between
// grid cells.
type sleepAlg struct{ d time.Duration }

func (s sleepAlg) Name() string { return "sleepy" }

func (s sleepAlg) Cluster(ds *dataset.Dataset, train *constraints.Set, param int, seed int64) ([]int, error) {
	time.Sleep(s.d)
	return make([]int, ds.N()), nil
}

func TestManagerLifecycleAndEviction(t *testing.T) {
	ds, _ := testDataset(t, 30)
	m := NewManager(Config{MaxRunningJobs: 1, RetainFinished: 1, WorkerBudget: 2})
	defer m.Shutdown(context.Background())

	j1, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j1); s != StatusDone {
		t.Fatalf("job 1 finished as %s, want done", s)
	}
	if s := waitTerminal(t, j2); s != StatusDone {
		t.Fatalf("job 2 finished as %s, want done", s)
	}
	if v := j1.View(); v.Result == nil || v.Result.BestParam == 0 {
		t.Fatalf("job 1 has no result: %+v", v)
	}

	// RetainFinished == 1: once job 2 retires, job 1 must be evicted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.Get(j1.ID())
		if errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 was never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Get(j2.ID()); err != nil {
		t.Fatalf("job 2 should survive eviction: %v", err)
	}
	if got := len(m.List()); got != 1 {
		t.Fatalf("List returned %d jobs, want 1", got)
	}
}

func TestManagerQueueFullAndQueuedCancel(t *testing.T) {
	ds, _ := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-mgr", alg, []int{1})
	m := NewManager(Config{MaxRunningJobs: 1, QueueDepth: 1, WorkerBudget: 1})
	defer m.Shutdown(context.Background())

	spec := quickSpec()
	spec.Algorithm = "block-mgr"
	spec.Params = []int{1}
	running, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started // the executor is now inside the blocking job

	queued, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(quickSpec(), ds); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: err = %v, want ErrQueueFull", err)
	}

	// Cancelling the queued job finalizes it without ever running.
	if st, err := m.Cancel(queued.ID()); err != nil || st != StatusCancelled {
		t.Fatalf("cancel queued: status %s, err %v", st, err)
	}
	if v := queued.View(); v.Started != nil {
		t.Fatalf("cancelled-while-queued job reports a start time: %+v", v)
	}

	// Cancelling the running job: context first, then unblock the
	// algorithm; the engine stops claiming tasks and the job ends cancelled.
	if _, err := m.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	close(alg.release)
	if s := waitTerminal(t, running); s != StatusCancelled {
		t.Fatalf("running job finished as %s, want cancelled", s)
	}
}

func TestManagerDrain(t *testing.T) {
	ds, _ := testDataset(t, 30)
	alg := newBlockingAlg()
	RegisterAlgorithm("block-drain", alg, []int{1})
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1})

	spec := quickSpec()
	spec.Algorithm = "block-drain"
	spec.Params = []int{1}
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	<-alg.started

	done := make(chan error, 1)
	go func() { done <- m.Shutdown(context.Background()) }()

	// Draining rejects new submissions.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.Submit(quickSpec(), ds)
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never returned ErrDraining")
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(alg.release) // let the running job finish
	if err := <-done; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if s := j.Status(); s != StatusDone {
		t.Fatalf("drained job finished as %s, want done", s)
	}
}

func TestManagerDrainDeadlineForceCancels(t *testing.T) {
	ds, _ := testDataset(t, 30)
	RegisterAlgorithm("sleep-drain", sleepAlg{d: 20 * time.Millisecond}, []int{1})
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1})

	spec := quickSpec()
	spec.Algorithm = "sleep-drain"
	spec.Params = []int{1, 2, 3, 4, 5, 6, 7, 8}
	spec.NFolds = 5
	j, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if s := j.Status(); s != StatusCancelled {
		t.Fatalf("force-cancelled job finished as %s, want cancelled", s)
	}
}

// TestManagerHammer exercises concurrent submissions, cancellations and
// listings; run it under -race.
func TestManagerHammer(t *testing.T) {
	ds, _ := testDataset(t, 24)
	m := NewManager(Config{MaxRunningJobs: 3, WorkerBudget: 4, QueueDepth: 128, RetainFinished: 256})
	defer m.Shutdown(context.Background())

	const submitters = 8
	var wg sync.WaitGroup
	jobs := make(chan *Job, submitters*2)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				spec := quickSpec()
				spec.Seed = int64(g*100 + k)
				j, err := m.Submit(spec, ds)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs <- j
				if (g+k)%3 == 0 {
					m.Cancel(j.ID())
				}
				m.List()
				m.Get(j.ID())
			}
		}(g)
	}
	wg.Wait()
	close(jobs)
	for j := range jobs {
		s := waitTerminal(t, j)
		if s != StatusDone && s != StatusCancelled {
			t.Fatalf("job %s finished as %s (%s)", j.ID(), s, j.View().Error)
		}
	}
}

// The limiter budget must bound total concurrency across jobs; this is a
// smoke check that two jobs sharing a budget of 1 still both complete.
func TestManagerSharedBudget(t *testing.T) {
	ds, _ := testDataset(t, 30)
	m := NewManager(Config{MaxRunningJobs: 2, WorkerBudget: 1})
	defer m.Shutdown(context.Background())
	var js []*Job
	for i := 0; i < 2; i++ {
		spec := quickSpec()
		spec.Seed = int64(i + 1)
		j, err := m.Submit(spec, ds)
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		if s := waitTerminal(t, j); s != StatusDone {
			t.Fatalf("job %s finished as %s: %s", j.ID(), s, j.View().Error)
		}
	}
}
