package server

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cvcp/internal/store"
	"cvcp/internal/store/storetest"
)

// errInjected is the scripted failure every fault test injects.
var errInjected = errors.New("storetest: injected failure")

// TestSubmitStoreFailureReleasesSlot proves a failed record write cannot
// leak its reserved queue slot or leave a half-created job behind: the
// very next submission into a depth-1 queue succeeds.
func TestSubmitStoreFailureReleasesSlot(t *testing.T) {
	ds, _ := testDataset(t, 20)
	faulty := storetest.Wrap(store.NewMemory())
	faulty.FailCalls(storetest.OpPut, errInjected, 1)
	m := NewManager(Config{QueueDepth: 1, MaxRunningJobs: 1, WorkerBudget: 1, Store: faulty})
	defer m.Shutdown(context.Background())

	if _, err := m.Submit(quickSpec(), ds); !errors.Is(err, errInjected) {
		t.Fatalf("submit error = %v, want the injected store failure", err)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("failed submission left %d job(s) visible", n)
	}

	// The queue has exactly one slot; if the failed submission leaked its
	// reservation this would fail with ErrQueueFull.
	j, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatalf("submit after store failure: %v", err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("job finished as %s, want done", s)
	}
}

// TestBatchStoreFailureRollsBack proves a mid-batch write failure removes
// every already-persisted sibling: the store retains no job records and
// the queue slots all free.
func TestBatchStoreFailureRollsBack(t *testing.T) {
	ds, _ := testDataset(t, 20)
	faulty := storetest.Wrap(store.NewMemory())
	faulty.FailCalls(storetest.OpPut, errInjected, 2) // second item's record write
	m := NewManager(Config{QueueDepth: 3, MaxRunningJobs: 1, WorkerBudget: 1, Store: faulty})
	defer m.Shutdown(context.Background())

	items := []BatchItem{
		{Spec: quickSpec(), Dataset: ds},
		{Spec: quickSpec(), Dataset: ds},
		{Spec: quickSpec(), Dataset: ds},
	}
	if _, err := m.SubmitBatch(items); !errors.Is(err, errInjected) {
		t.Fatalf("batch error = %v, want the injected store failure", err)
	}
	if n := m.Len(); n != 0 {
		t.Fatalf("rolled-back batch left %d job(s) visible", n)
	}
	recs, _, err := faulty.List("", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if strings.HasPrefix(rec.ID, "job-") {
			t.Fatalf("rolled-back batch left record %s in the store", rec.ID)
		}
	}

	// All three slots must be free again: the same batch fits.
	bv, err := m.SubmitBatch(items)
	if err != nil {
		t.Fatalf("batch after rollback: %v", err)
	}
	if len(bv.Jobs) != 3 {
		t.Fatalf("retried batch created %d jobs, want 3", len(bv.Jobs))
	}
	for _, v := range bv.Jobs {
		j, err := m.Get(v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s := waitTerminal(t, j); s != StatusDone {
			t.Fatalf("batch job %s finished as %s, want done", v.ID, s)
		}
	}
}

// TestReplayListFailureServesEmpty proves an unreadable store at startup
// degrades to an empty service instead of a crash — and that the manager
// still accepts new work against the (now healthy) store.
func TestReplayListFailureServesEmpty(t *testing.T) {
	ds, _ := testDataset(t, 20)
	mem := store.NewMemory()

	seed := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1, Store: mem})
	j, err := seed.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	seed.Shutdown(context.Background())

	faulty := storetest.Wrap(mem)
	faulty.FailCalls(storetest.OpList, errInjected, 1)
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1, Store: faulty})
	defer m.Shutdown(context.Background())
	if n := m.Len(); n != 0 {
		t.Fatalf("manager replayed %d job(s) from an unreadable store", n)
	}
	j2, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatalf("submit after failed replay: %v", err)
	}
	if s := waitTerminal(t, j2); s != StatusDone {
		t.Fatalf("job finished as %s, want done", s)
	}
}

// TestAppendEventsFailureDegrades proves a broken event log never fails
// the job: the selection completes and only the persisted SSE history is
// lost.
func TestAppendEventsFailureDegrades(t *testing.T) {
	ds, _ := testDataset(t, 20)
	faulty := storetest.Wrap(store.NewMemory())
	faulty.Hook(storetest.OpAppendEvents, func(call int, id string) error { return errInjected })
	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 1, Store: faulty})
	defer m.Shutdown(context.Background())

	j, err := m.Submit(quickSpec(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, j); s != StatusDone {
		t.Fatalf("job finished as %s, want done", s)
	}
	if v := j.View(); v.Result == nil {
		t.Fatal("job completed without a result")
	}
	if faulty.Calls(storetest.OpAppendEvents) == 0 {
		t.Fatal("no AppendEvents calls reached the store; the test exercised nothing")
	}
	evs, err := faulty.EventsSince(j.ID(), 0)
	if err != nil && !errors.Is(err, errInjected) {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("injected failures still persisted %d event(s)", len(evs))
	}
}
