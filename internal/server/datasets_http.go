package server

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"strings"

	"cvcp/internal/dataset"
)

// datasetCreateRequest is the JSON document of POST /v1/datasets. CSV,
// when non-empty, seeds the dataset with an initial row batch (version 1);
// an empty CSV registers an empty dataset at version 0.
type datasetCreateRequest struct {
	Name     string `json:"name"`
	HasLabel bool   `json:"has_label"`
	CSV      string `json:"csv"`
}

// createDataset handles POST /v1/datasets.
func (a *api) createDataset(w http.ResponseWriter, r *http.Request) {
	maxBody := a.m.Config().MaxBodyBytes
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	var req datasetCreateRequest
	if apiErr := decodeStrictJSON(r.Body, &req); apiErr != nil {
		writeError(w, apiErr)
		return
	}
	var initial *dataset.RowBatch
	if req.CSV != "" {
		ds, apiErr := parseCSV(req.Name, strings.NewReader(req.CSV), req.HasLabel, maxBody)
		if apiErr != nil {
			writeError(w, apiErr)
			return
		}
		initial = &dataset.RowBatch{Rows: ds.X, Labels: ds.Y}
	}
	v, err := a.m.CreateDataset(req.Name, req.HasLabel, initial)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/datasets/"+v.ID)
	writeJSON(w, http.StatusCreated, v)
}

// datasetListResponse is the GET /v1/datasets body.
type datasetListResponse struct {
	Datasets []DatasetView `json:"datasets"`
}

// listDatasets handles GET /v1/datasets.
func (a *api) listDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, datasetListResponse{Datasets: a.m.ListDatasets()})
}

// getDataset handles GET /v1/datasets/{id}.
func (a *api) getDataset(w http.ResponseWriter, r *http.Request) {
	v, err := a.m.GetDataset(r.PathValue("id"))
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// deleteDataset handles DELETE /v1/datasets/{id}: the dataset, its row
// batches and its cached cell scores all go.
func (a *api) deleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := a.m.DeleteDataset(id); err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
}

// appendRows handles POST /v1/datasets/{id}/rows. Two body shapes are
// accepted: an encoded row batch (the cmd/datagen -append file format,
// sniffed by its header) or plain CSV rows in the dataset's column
// layout. The response is the dataset view at the new version.
func (a *api) appendRows(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cur, err := a.m.GetDataset(id)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	maxBody := a.m.Config().MaxBodyBytes
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	b, apiErr := readRowBatch(r.Body, cur.HasLabel, maxBody)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	v, err := a.m.AppendRows(id, b)
	if err != nil {
		writeDatasetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// readRowBatch decodes an append body: an encoded row batch when the
// magic header matches, CSV rows (under the dataset's label layout)
// otherwise.
func readRowBatch(r io.Reader, hasLabel bool, maxBody int64) (dataset.RowBatch, *apiError) {
	br := bufio.NewReader(r)
	peek, _ := br.Peek(len(dataset.RowBatchMagic))
	if string(peek) == dataset.RowBatchMagic {
		b, err := dataset.DecodeRowBatch(br, maxBody)
		if err != nil {
			if apiErr := asSizeError(err); apiErr != nil {
				return dataset.RowBatch{}, apiErr
			}
			return dataset.RowBatch{}, badRequest("bad_csv", "malformed row batch: %v", err)
		}
		if hasLabel != (b.Labels != nil) {
			return dataset.RowBatch{}, badRequest("invalid_request", "row batch label layout does not match the dataset")
		}
		return b, nil
	}
	ds, apiErr := parseCSV("rows", br, hasLabel, maxBody)
	if apiErr != nil {
		return dataset.RowBatch{}, apiErr
	}
	return dataset.RowBatch{Rows: ds.X, Labels: ds.Y}, nil
}

// writeDatasetError maps dataset registry errors to API responses:
// unknown IDs are 404s, rejected batches (validation) are 400s, drains
// and store failures keep their job-submission semantics.
func writeDatasetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDatasetNotFound):
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: err.Error()})
	case errors.Is(err, ErrDraining):
		writeError(w, &apiError{status: http.StatusServiceUnavailable, Code: "draining", Message: err.Error()})
	case strings.Contains(err.Error(), "persisting"):
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
	default:
		writeError(w, badRequest("invalid_request", "%v", err))
	}
}
